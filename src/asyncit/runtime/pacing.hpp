// Worker pacing shared by the threaded executors (rt::) and the
// message-passing peers (net::).
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <span>

#include "asyncit/operators/operator.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::rt {

/// CPU-time slice after which a worker voluntarily yields. On machines
/// with fewer cores than workers, a worker otherwise burns its whole OS
/// quantum re-iterating against the other workers' frozen state; yielding
/// after each slice of OWN CPU time keeps the interleaving fine-grained
/// without distorting the update-count ratio between fast and slow
/// workers (every worker gives up the core at the same CPU-consumption
/// cadence, so counts stay proportional to speed). Long enough that the
/// yield is invisible in throughput, short enough that oversubscribed
/// workers alternate many times per contraction step; free when every
/// worker has its own core.
constexpr double kYieldPeriod = 1e-4;

/// Compute repetition count for heterogeneity injection: a slowdown
/// factor f makes the worker redo each block update ceil(f) times
/// (empty = all workers at normal speed).
inline std::size_t slowdown_repetitions(std::span<const double> slowdown,
                                        std::size_t worker) {
  if (slowdown.empty()) return 1;
  ASYNCIT_CHECK(worker < slowdown.size());
  const double f = slowdown[worker];
  ASYNCIT_CHECK(f >= 1.0);
  return static_cast<std::size_t>(std::ceil(f));
}

/// Displacement stopping rule with residual confirmation, shared by the
/// rt:: async executor (worker 0 doubles as the monitor) and the net::
/// orchestrator's monitor loop. All-small recent displacements are only a
/// CANDIDATE signal: on a timesliced machine each worker converges
/// conditionally on the others' frozen blocks within its quantum, so small
/// per-update displacements do not imply a global fixed point. Confirm on
/// a snapshot with the true residual ‖F(x) − x‖ before stopping (same
/// tol/(1−α) certificate, now sound). A failed confirmation costs a full
/// operator sweep, so back off rather than re-running it every check.
class DisplacementStop {
 public:
  /// Returns true when the stop is confirmed. `last_displacement` is the
  /// per-block displacement plane (written via atomic_ref by workers);
  /// `snapshot_into` fills a caller buffer with a consistent copy of the
  /// iterate on demand. Snapshot and residual scratch come from `ws`, so
  /// a poll allocates nothing once the workspace is warm.
  template <class SnapshotIntoFn>
  bool should_stop(std::span<double> last_displacement,
                   const op::BlockOperator& op, double tol,
                   SnapshotIntoFn&& snapshot_into, op::Workspace& ws) {
    if (backoff_ > 0) {
      --backoff_;
      return false;
    }
    double worst = 0.0;
    for (double& d : last_displacement)
      worst = std::max(
          worst, std::atomic_ref<double>(d).load(std::memory_order_relaxed));
    if (worst >= tol) return false;
    op::Scratch snap(ws, op.dim());
    snapshot_into(snap.span());
    if (op::max_block_residual(op, snap, ws) < tol) return true;
    backoff_ = kConfirmBackoff;
    return false;
  }

 private:
  /// Checks skipped after a failed confirmation (~5 ms of net:: monitor
  /// polls; 25 · check_every worker-0 updates in rt::).
  static constexpr int kConfirmBackoff = 25;
  int backoff_ = 0;
};

}  // namespace asyncit::rt
