// Shared-memory iterate stores for the threaded runtime.
//
// Two stores with different consistency/throughput trade-offs (the benches
// compare them — an ablation the paper's shared-memory discussion implies):
//
// SharedIterate — Hogwild-style: one double per coordinate, writers use
//   std::atomic_ref with relaxed ordering, readers take the raw span.
//   Concurrent plain reads race with atomic writes; on the supported
//   targets (x86-64 / AArch64, naturally aligned 8-byte accesses) a read
//   observes either the old or the new value, never a torn one — this is
//   the standard asynchronous-iterations memory model (component values
//   may be stale, which Definition 1 models through the labels, but are
//   never invalid). Writes of a block are NOT atomic as a group: readers
//   may see a mix of two updates of the same block, i.e. a "partial
//   update" in the paper's flexible-communication sense.
//
// SeqlockBlockStore — per-block sequence locks: block writes are atomic as
//   a group, block reads retry until consistent, and every block carries
//   the global step tag of its producing update. Use it when an
//   experiment's bookkeeping needs exact per-block labels (delay
//   measurement in the threaded runtime) or when block-consistent reads
//   are required.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/linalg/vector_ops.hpp"
#include "asyncit/model/history.hpp"

namespace asyncit::rt {

class SharedIterate {
 public:
  explicit SharedIterate(la::Vector init) : data_(std::move(init)) {}

  std::size_t size() const { return data_.size(); }

  /// Raw read view (Hogwild semantics; see file comment).
  std::span<const double> raw_view() const { return data_; }

  double load(std::size_t i) const {
    return std::atomic_ref<const double>(data_[i]).load(
        std::memory_order_relaxed);
  }

  void store(std::size_t i, double v) {
    std::atomic_ref<double>(data_[i]).store(v, std::memory_order_relaxed);
  }

  void store_block(std::size_t begin, std::span<const double> values) {
    for (std::size_t k = 0; k < values.size(); ++k)
      store(begin + k, values[k]);
  }

  /// Element-wise atomic snapshot (each element consistent, the vector as
  /// a whole possibly mixed-label — exactly an asynchronous read).
  la::Vector snapshot() const;

  /// Allocation-free snapshot into a caller-provided buffer (monitor hot
  /// path: stopping rules poll this thousands of times per run).
  void snapshot_into(std::span<double> out) const;

 private:
  mutable la::Vector data_;
};

class SeqlockBlockStore {
 public:
  SeqlockBlockStore(const la::Partition& partition, const la::Vector& init);

  std::size_t dim() const { return partition_->dim(); }
  std::size_t num_blocks() const { return blocks_.size(); }

  /// Atomically replaces block b (tag = producing global step).
  void write_block(la::BlockId b, std::span<const double> value,
                   model::Step tag);

  /// Consistent read of block b into out; returns the block's tag.
  model::Step read_block(la::BlockId b, std::span<double> out) const;

  /// Consistent per-block read of the whole vector; tags[b] receives each
  /// block's producing step (the measured labels of the reading update).
  void read_all(std::span<double> out, std::span<model::Step> tags) const;

 private:
  struct alignas(64) Block {
    std::atomic<std::uint64_t> version{0};
    std::atomic<model::Step> tag{0};
    std::vector<std::atomic<double>> data;
  };
  const la::Partition* partition_;
  std::vector<Block> blocks_;
};

}  // namespace asyncit::rt
