#include "asyncit/runtime/shared_iterate.hpp"

#include "asyncit/support/check.hpp"

namespace asyncit::rt {

la::Vector SharedIterate::snapshot() const {
  la::Vector out(data_.size());
  snapshot_into(out);
  return out;
}

void SharedIterate::snapshot_into(std::span<double> out) const {
  ASYNCIT_CHECK(out.size() == data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) out[i] = load(i);
}

SeqlockBlockStore::SeqlockBlockStore(const la::Partition& partition,
                                     const la::Vector& init)
    : partition_(&partition), blocks_(partition.num_blocks()) {
  ASYNCIT_CHECK(init.size() == partition.dim());
  for (la::BlockId b = 0; b < blocks_.size(); ++b) {
    const la::BlockRange r = partition.range(b);
    blocks_[b].data = std::vector<std::atomic<double>>(r.size());
    for (std::size_t k = 0; k < r.size(); ++k)
      blocks_[b].data[k].store(init[r.begin + k],
                               std::memory_order_relaxed);
  }
}

void SeqlockBlockStore::write_block(la::BlockId b,
                                    std::span<const double> value,
                                    model::Step tag) {
  ASYNCIT_CHECK(b < blocks_.size());
  Block& blk = blocks_[b];
  ASYNCIT_CHECK(value.size() == blk.data.size());
  const std::uint64_t v = blk.version.load(std::memory_order_relaxed);
  blk.version.store(v + 1, std::memory_order_relaxed);  // odd: writing
  // Release fence: a reader that observes any of the data stores below
  // (through its acquire fence) must also observe the odd marker.
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t k = 0; k < value.size(); ++k)
    blk.data[k].store(value[k], std::memory_order_relaxed);
  blk.tag.store(tag, std::memory_order_relaxed);
  blk.version.store(v + 2, std::memory_order_release);  // even: stable
}

model::Step SeqlockBlockStore::read_block(la::BlockId b,
                                          std::span<double> out) const {
  ASYNCIT_CHECK(b < blocks_.size());
  const Block& blk = blocks_[b];
  ASYNCIT_CHECK(out.size() == blk.data.size());
  for (;;) {
    const std::uint64_t v1 = blk.version.load(std::memory_order_acquire);
    if (v1 & 1) continue;  // writer in progress
    for (std::size_t k = 0; k < out.size(); ++k)
      out[k] = blk.data[k].load(std::memory_order_relaxed);
    const model::Step tag = blk.tag.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t v2 = blk.version.load(std::memory_order_relaxed);
    if (v1 == v2) return tag;
  }
}

void SeqlockBlockStore::read_all(std::span<double> out,
                                 std::span<model::Step> tags) const {
  ASYNCIT_CHECK(out.size() == partition_->dim());
  ASYNCIT_CHECK(tags.size() == blocks_.size());
  for (la::BlockId b = 0; b < blocks_.size(); ++b) {
    const la::BlockRange r = partition_->range(b);
    tags[b] = read_block(b, out.subspan(r.begin, r.size()));
  }
}

}  // namespace asyncit::rt
