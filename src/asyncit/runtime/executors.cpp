#include "asyncit/runtime/executors.hpp"

#include <atomic>
#include <barrier>
#include <thread>

#include "asyncit/obs/trace_recorder.hpp"
#include "asyncit/runtime/pacing.hpp"
#include "asyncit/runtime/shared_iterate.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/support/timer.hpp"

namespace asyncit::rt {

namespace {

/// Seqlock-consistent async executor: every update copies the iterate via
/// per-block consistent reads, applies the operator to the copy, and
/// publishes the block atomically. Slower than Hogwild, but every block a
/// reader sees is a complete published update (no shared-memory partial
/// mixes) — the consistency ablation of bench/a3_read_consistency.
RuntimeResult run_async_threads_seqlock(const op::BlockOperator& op,
                                        const la::Vector& x0,
                                        const RuntimeOptions& options) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  SeqlockBlockStore store(partition, x0);
  la::WeightedMaxNorm norm{partition};
  const bool oracle = options.x_star.has_value();

  const auto owned = la::assign_blocks_contiguous(m, options.workers);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_updates{0};
  std::vector<std::uint64_t> per_worker(options.workers, 0);

  WallTimer timer;
  auto worker_fn = [&](std::size_t w) {
    op::Workspace ws;  // per-worker scratch: steady state allocates nothing
    la::Vector local(partition.dim());
    std::vector<model::Step> tags(m);
    la::Vector out(partition.max_block_size());
    std::size_t cursor = 0;
    std::uint64_t own_updates = 0;
    model::Step my_step = 0;
    ThreadCpuTimer cpu_timer;
    const std::size_t reps = slowdown_repetitions(options.worker_slowdown, w);
    while (!stop.load(std::memory_order_relaxed)) {
      const la::BlockId b = owned[w][cursor];
      cursor = (cursor + 1) % owned[w].size();
      const la::BlockRange r = partition.range(b);
      out.resize(r.size());
      const bool traced = obs::tracing_full();
      const std::uint64_t t_phase_ns = traced ? obs::phase_start_ns() : 0;
      store.read_all(local, tags);  // consistent per-block snapshot
      for (std::size_t t = 0; t < options.inner_steps; ++t) {
        for (std::size_t rep = 0; rep < reps; ++rep)
          op.apply_block(b, local, out, ws);
        std::copy(out.begin(), out.end(),
                  local.begin() + static_cast<std::ptrdiff_t>(r.begin));
        if (options.publish_partials && t + 1 < options.inner_steps) {
          store.write_block(b, out, ++my_step);
          obs::record(obs::EventType::kBlockUpdate, 1, b, my_step, 0.0);
        }
      }
      store.write_block(b, out, ++my_step);
      if (traced)
        obs::record_phase_end(obs::EventType::kBlockUpdate, 0, b, my_step,
                              t_phase_ns);
      ++own_updates;
      total_updates.fetch_add(1, std::memory_order_relaxed);

      if (own_updates % options.check_every == 0) {
        const double now = timer.seconds();
        if (now > options.max_seconds ||
            total_updates.load(std::memory_order_relaxed) >=
                options.max_updates) {
          obs::record(obs::EventType::kStopDecision, 0,
                      static_cast<std::uint32_t>(
                          now > options.max_seconds
                              ? obs::StopReason::kWallBudget
                              : obs::StopReason::kUpdateBudget),
                      own_updates, now);
          stop.store(true, std::memory_order_relaxed);
          break;
        }
        if (oracle && w == 0) {
          store.read_all(local, tags);
          if (norm.distance(local, *options.x_star) < options.tol) {
            obs::record(obs::EventType::kStopDecision, 0,
                        static_cast<std::uint32_t>(obs::StopReason::kOracle),
                        own_updates, now);
            stop.store(true, std::memory_order_relaxed);
          }
        }
        // On oversubscribed machines (fewer cores than workers) a worker
        // otherwise burns its whole OS quantum re-iterating against the
        // other workers' frozen blocks. Yielding after each slice of OWN
        // CPU time keeps the interleaving fine-grained without distorting
        // the update-count ratio between fast and slow workers (every
        // worker gives up the core at the same CPU-consumption cadence,
        // so counts stay proportional to speed); it is free when every
        // worker has its own core.
        if (cpu_timer.seconds() > kYieldPeriod) {
          cpu_timer.reset();
          std::this_thread::yield();
        }
      }
    }
    per_worker[w] = own_updates;
  };

  std::vector<std::thread> threads;
  threads.reserve(options.workers);
  for (std::size_t w = 0; w < options.workers; ++w)
    threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();

  RuntimeResult result;
  result.wall_seconds = timer.seconds();
  result.x.resize(partition.dim());
  std::vector<model::Step> tags(m);
  store.read_all(result.x, tags);
  result.total_updates = total_updates.load();
  result.updates_per_worker = per_worker;
  if (oracle) {
    result.final_error = norm.distance(result.x, *options.x_star);
    result.converged = result.final_error < options.tol;
  }
  return result;
}

}  // namespace

RuntimeResult run_async_threads(const op::BlockOperator& op,
                                const la::Vector& x0,
                                const RuntimeOptions& options) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  ASYNCIT_CHECK(options.workers >= 1 && options.workers <= m);
  ASYNCIT_CHECK(x0.size() == partition.dim());
  ASYNCIT_CHECK(options.inner_steps >= 1);

  if (options.consistent_reads)
    return run_async_threads_seqlock(op, x0, options);

  SharedIterate shared(x0);
  la::WeightedMaxNorm norm{partition};
  const bool oracle = options.x_star.has_value();
  const bool displacement_stop = options.displacement_tol > 0.0;

  const auto owned = la::assign_blocks_contiguous(m, options.workers);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_updates{0};
  std::vector<std::uint64_t> per_worker(options.workers, 0);
  // Per-block displacement of the most recent update (+inf until a block
  // has been updated once), for the [15]-style displacement stopping rule.
  std::vector<double> last_displacement(m, 1e300);

  WallTimer timer;
  auto worker_fn = [&](std::size_t w) {
    op::Workspace ws;  // per-worker scratch: steady state allocates nothing
    la::Vector out(partition.max_block_size());
    la::Vector local;  // private snapshot for non-flexible inner phases
    la::Vector prev_block(partition.max_block_size());
    std::size_t cursor = 0;
    std::uint64_t own_updates = 0;
    DisplacementStop stop_rule;  // worker 0 only
    ThreadCpuTimer cpu_timer;
    const std::size_t reps = slowdown_repetitions(options.worker_slowdown, w);
    while (!stop.load(std::memory_order_relaxed)) {
      const la::BlockId b = owned[w][cursor];
      cursor = (cursor + 1) % owned[w].size();
      const la::BlockRange r = partition.range(b);
      out.resize(r.size());
      const bool traced = obs::tracing_full();
      const std::uint64_t t_phase_ns = traced ? obs::phase_start_ns() : 0;
      // Hogwild read: the raw view; element loads are never torn on the
      // supported targets (see shared_iterate.hpp).
      const std::span<const double> view = shared.raw_view();
      if (displacement_stop)
        prev_block.assign(view.begin() + static_cast<std::ptrdiff_t>(r.begin),
                          view.begin() + static_cast<std::ptrdiff_t>(r.end));
      if (options.inner_steps == 1) {
        for (std::size_t rep = 0; rep < reps; ++rep)
          op.apply_block(b, view, out, ws);  // slow worker: redo the work
        shared.store_block(r.begin, out);
      } else if (options.publish_partials) {
        // Flexible communication: each inner step reads the LIVE shared
        // state (mid-phase arrivals included) and publishes its partial
        // immediately — other workers can consume it at once.
        for (std::size_t t = 0; t < options.inner_steps; ++t) {
          for (std::size_t rep = 0; rep < reps; ++rep)
            op.apply_block(b, view, out, ws);
          shared.store_block(r.begin, out);
          if (t + 1 < options.inner_steps)
            obs::record(obs::EventType::kBlockUpdate, 1, b, own_updates + 1,
                        0.0);
        }
      } else {
        // Plain asynchronous phase: inner iterates stay private; only the
        // final value is published at phase end.
        local.assign(view.begin(), view.end());
        for (std::size_t t = 0; t < options.inner_steps; ++t) {
          for (std::size_t rep = 0; rep < reps; ++rep)
            op.apply_block(b, local, out, ws);
          std::copy(out.begin(), out.end(),
                    local.begin() + static_cast<std::ptrdiff_t>(r.begin));
        }
        shared.store_block(r.begin, out);
      }
      if (displacement_stop) {
        std::atomic_ref<double>(last_displacement[b])
            .store(la::dist2(out, prev_block), std::memory_order_relaxed);
      }
      ++own_updates;
      if (traced)
        obs::record_phase_end(obs::EventType::kBlockUpdate, 0, b, own_updates,
                              t_phase_ns);
      total_updates.fetch_add(1, std::memory_order_relaxed);

      if (own_updates % options.check_every == 0) {
        const double now = timer.seconds();
        if (now > options.max_seconds ||
            total_updates.load(std::memory_order_relaxed) >=
                options.max_updates) {
          obs::record(obs::EventType::kStopDecision, 0,
                      static_cast<std::uint32_t>(
                          now > options.max_seconds
                              ? obs::StopReason::kWallBudget
                              : obs::StopReason::kUpdateBudget),
                      own_updates, now);
          stop.store(true, std::memory_order_relaxed);
          break;
        }
        if (w == 0) {
          // worker 0 doubles as the convergence monitor
          if (oracle) {
            op::Scratch snap(ws, partition.dim());
            shared.snapshot_into(snap.span());
            if (norm.distance(snap, *options.x_star) < options.tol) {
              obs::record(obs::EventType::kStopDecision, 0,
                          static_cast<std::uint32_t>(obs::StopReason::kOracle),
                          own_updates, now);
              stop.store(true, std::memory_order_relaxed);
            }
          }
          if (displacement_stop &&
              stop_rule.should_stop(
                  last_displacement, op, options.displacement_tol,
                  [&](std::span<double> s) { shared.snapshot_into(s); }, ws)) {
            obs::record(
                obs::EventType::kStopDecision, 0,
                static_cast<std::uint32_t>(obs::StopReason::kDisplacement),
                own_updates, now);
            stop.store(true, std::memory_order_relaxed);
          }
        }
        // See the seqlock executor: CPU-time-sliced yield keeps
        // interleaving fine-grained when workers outnumber cores.
        if (cpu_timer.seconds() > kYieldPeriod) {
          cpu_timer.reset();
          std::this_thread::yield();
        }
      }
    }
    per_worker[w] = own_updates;
  };

  std::vector<std::thread> threads;
  threads.reserve(options.workers);
  for (std::size_t w = 0; w < options.workers; ++w)
    threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();

  RuntimeResult result;
  result.wall_seconds = timer.seconds();
  result.x = shared.snapshot();
  result.total_updates = total_updates.load();
  result.updates_per_worker = per_worker;
  if (oracle) {
    result.final_error = norm.distance(result.x, *options.x_star);
    result.converged = result.final_error < options.tol;
  }
  return result;
}

RuntimeResult run_sync_threads(const op::BlockOperator& op,
                               const la::Vector& x0,
                               const RuntimeOptions& options) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  ASYNCIT_CHECK(options.workers >= 1 && options.workers <= m);
  ASYNCIT_CHECK(x0.size() == partition.dim());

  la::WeightedMaxNorm norm{partition};
  const bool oracle = options.x_star.has_value();
  const auto owned = la::assign_blocks_contiguous(m, options.workers);

  la::Vector x = x0;          // published state (read phase)
  la::Vector x_next = x0;     // staging (write phase)
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rounds{0};
  WallTimer timer;

  std::barrier barrier(static_cast<std::ptrdiff_t>(options.workers),
                       [&]() noexcept {
                         // round completion (single thread): publish and
                         // evaluate stopping
                         x.swap(x_next);
                         const std::uint64_t r =
                             rounds.fetch_add(1, std::memory_order_relaxed) +
                             1;
                         const double now = timer.seconds();
                         // One phase event per BSP round (all m blocks).
                         obs::record(obs::EventType::kBlockUpdate, 0,
                                     static_cast<std::uint32_t>(m), r, now);
                         if (now > options.max_seconds ||
                             r * m >= options.max_updates) {
                           obs::record(
                               obs::EventType::kStopDecision, 0,
                               static_cast<std::uint32_t>(
                                   now > options.max_seconds
                                       ? obs::StopReason::kWallBudget
                                       : obs::StopReason::kUpdateBudget),
                               r, now);
                           stop.store(true, std::memory_order_relaxed);
                         }
                         if (oracle &&
                             norm.distance(x, *options.x_star) < options.tol) {
                           obs::record(
                               obs::EventType::kStopDecision, 0,
                               static_cast<std::uint32_t>(
                                   obs::StopReason::kOracle),
                               r, now);
                           stop.store(true, std::memory_order_relaxed);
                         }
                       });

  auto worker_fn = [&](std::size_t w) {
    op::Workspace ws;
    la::Vector out(partition.max_block_size());
    const std::size_t reps = slowdown_repetitions(options.worker_slowdown, w);
    while (!stop.load(std::memory_order_relaxed)) {
      for (la::BlockId b : owned[w]) {
        const la::BlockRange r = partition.range(b);
        out.resize(r.size());
        for (std::size_t rep = 0; rep < reps; ++rep)
          op.apply_block(b, x, out, ws);
        std::copy(out.begin(), out.end(),
                  x_next.begin() + static_cast<std::ptrdiff_t>(r.begin));
      }
      barrier.arrive_and_wait();  // everyone published; completion swaps
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(options.workers);
  for (std::size_t w = 0; w < options.workers; ++w)
    threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();

  RuntimeResult result;
  result.wall_seconds = timer.seconds();
  result.x = x;
  result.rounds = rounds.load();
  result.total_updates = result.rounds * m;
  result.updates_per_worker.assign(options.workers,
                                   result.rounds * (m / options.workers));
  if (oracle) {
    result.final_error = norm.distance(result.x, *options.x_star);
    result.converged = result.final_error < options.tol;
  }
  return result;
}

}  // namespace asyncit::rt
