#include "asyncit/runtime/executors.hpp"

#include <atomic>
#include <barrier>
#include <cmath>
#include <thread>

#include "asyncit/runtime/shared_iterate.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/support/timer.hpp"

namespace asyncit::rt {

namespace {

/// Contiguous near-even assignment of blocks to workers.
std::vector<std::vector<la::BlockId>> assign_blocks(std::size_t m,
                                                    std::size_t workers) {
  std::vector<std::vector<la::BlockId>> owned(workers);
  const std::size_t base = m / workers, extra = m % workers;
  la::BlockId b = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t count = base + (w < extra ? 1 : 0);
    for (std::size_t k = 0; k < count; ++k) owned[w].push_back(b++);
  }
  return owned;
}

std::size_t repetitions(const RuntimeOptions& options, std::size_t worker) {
  if (options.worker_slowdown.empty()) return 1;
  ASYNCIT_CHECK(worker < options.worker_slowdown.size());
  const double f = options.worker_slowdown[worker];
  ASYNCIT_CHECK(f >= 1.0);
  return static_cast<std::size_t>(std::ceil(f));
}

}  // namespace

namespace {

/// Seqlock-consistent async executor: every update copies the iterate via
/// per-block consistent reads, applies the operator to the copy, and
/// publishes the block atomically. Slower than Hogwild, but every block a
/// reader sees is a complete published update (no shared-memory partial
/// mixes) — the consistency ablation of bench/a3_read_consistency.
RuntimeResult run_async_threads_seqlock(const op::BlockOperator& op,
                                        const la::Vector& x0,
                                        const RuntimeOptions& options) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  SeqlockBlockStore store(partition, x0);
  la::WeightedMaxNorm norm{partition};
  const bool oracle = options.x_star.has_value();

  const auto owned = assign_blocks(m, options.workers);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_updates{0};
  std::vector<std::uint64_t> per_worker(options.workers, 0);

  WallTimer timer;
  auto worker_fn = [&](std::size_t w) {
    la::Vector local(partition.dim());
    std::vector<model::Step> tags(m);
    la::Vector out;
    std::size_t cursor = 0;
    std::uint64_t own_updates = 0;
    model::Step my_step = 0;
    const std::size_t reps = repetitions(options, w);
    while (!stop.load(std::memory_order_relaxed)) {
      const la::BlockId b = owned[w][cursor];
      cursor = (cursor + 1) % owned[w].size();
      const la::BlockRange r = partition.range(b);
      out.resize(r.size());
      store.read_all(local, tags);  // consistent per-block snapshot
      for (std::size_t t = 0; t < options.inner_steps; ++t) {
        for (std::size_t rep = 0; rep < reps; ++rep)
          op.apply_block(b, local, out);
        std::copy(out.begin(), out.end(),
                  local.begin() + static_cast<std::ptrdiff_t>(r.begin));
        if (options.publish_partials && t + 1 < options.inner_steps)
          store.write_block(b, out, ++my_step);
      }
      store.write_block(b, out, ++my_step);
      ++own_updates;
      total_updates.fetch_add(1, std::memory_order_relaxed);

      if (own_updates % options.check_every == 0) {
        if (timer.seconds() > options.max_seconds ||
            total_updates.load(std::memory_order_relaxed) >=
                options.max_updates) {
          stop.store(true, std::memory_order_relaxed);
          break;
        }
        if (oracle && w == 0) {
          store.read_all(local, tags);
          if (norm.distance(local, *options.x_star) < options.tol)
            stop.store(true, std::memory_order_relaxed);
        }
      }
    }
    per_worker[w] = own_updates;
  };

  std::vector<std::thread> threads;
  threads.reserve(options.workers);
  for (std::size_t w = 0; w < options.workers; ++w)
    threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();

  RuntimeResult result;
  result.wall_seconds = timer.seconds();
  result.x.resize(partition.dim());
  std::vector<model::Step> tags(m);
  store.read_all(result.x, tags);
  result.total_updates = total_updates.load();
  result.updates_per_worker = per_worker;
  if (oracle) {
    result.final_error = norm.distance(result.x, *options.x_star);
    result.converged = result.final_error < options.tol;
  }
  return result;
}

}  // namespace

RuntimeResult run_async_threads(const op::BlockOperator& op,
                                const la::Vector& x0,
                                const RuntimeOptions& options) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  ASYNCIT_CHECK(options.workers >= 1 && options.workers <= m);
  ASYNCIT_CHECK(x0.size() == partition.dim());
  ASYNCIT_CHECK(options.inner_steps >= 1);

  if (options.consistent_reads)
    return run_async_threads_seqlock(op, x0, options);

  SharedIterate shared(x0);
  la::WeightedMaxNorm norm{partition};
  const bool oracle = options.x_star.has_value();
  const bool displacement_stop = options.displacement_tol > 0.0;

  const auto owned = assign_blocks(m, options.workers);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_updates{0};
  std::vector<std::uint64_t> per_worker(options.workers, 0);
  // Per-block displacement of the most recent update (+inf until a block
  // has been updated once), for the [15]-style displacement stopping rule.
  std::vector<double> last_displacement(m, 1e300);

  WallTimer timer;
  auto worker_fn = [&](std::size_t w) {
    la::Vector out;
    la::Vector local;  // private snapshot for non-flexible inner phases
    std::size_t cursor = 0;
    std::uint64_t own_updates = 0;
    const std::size_t reps = repetitions(options, w);
    while (!stop.load(std::memory_order_relaxed)) {
      const la::BlockId b = owned[w][cursor];
      cursor = (cursor + 1) % owned[w].size();
      const la::BlockRange r = partition.range(b);
      out.resize(r.size());
      // Hogwild read: the raw view; element loads are never torn on the
      // supported targets (see shared_iterate.hpp).
      const std::span<const double> view = shared.raw_view();
      la::Vector prev_block;
      if (displacement_stop)
        prev_block.assign(view.begin() + static_cast<std::ptrdiff_t>(r.begin),
                          view.begin() + static_cast<std::ptrdiff_t>(r.end));
      if (options.inner_steps == 1) {
        for (std::size_t rep = 0; rep < reps; ++rep)
          op.apply_block(b, view, out);  // slow worker: redo the work
        shared.store_block(r.begin, out);
      } else if (options.publish_partials) {
        // Flexible communication: each inner step reads the LIVE shared
        // state (mid-phase arrivals included) and publishes its partial
        // immediately — other workers can consume it at once.
        for (std::size_t t = 0; t < options.inner_steps; ++t) {
          for (std::size_t rep = 0; rep < reps; ++rep)
            op.apply_block(b, view, out);
          shared.store_block(r.begin, out);
        }
      } else {
        // Plain asynchronous phase: inner iterates stay private; only the
        // final value is published at phase end.
        local.assign(view.begin(), view.end());
        for (std::size_t t = 0; t < options.inner_steps; ++t) {
          for (std::size_t rep = 0; rep < reps; ++rep)
            op.apply_block(b, local, out);
          std::copy(out.begin(), out.end(),
                    local.begin() + static_cast<std::ptrdiff_t>(r.begin));
        }
        shared.store_block(r.begin, out);
      }
      if (displacement_stop) {
        double d2 = 0.0;
        for (std::size_t k = 0; k < out.size(); ++k) {
          const double d = out[k] - prev_block[k];
          d2 += d * d;
        }
        std::atomic_ref<double>(last_displacement[b])
            .store(std::sqrt(d2), std::memory_order_relaxed);
      }
      ++own_updates;
      total_updates.fetch_add(1, std::memory_order_relaxed);

      if (own_updates % options.check_every == 0) {
        if (timer.seconds() > options.max_seconds ||
            total_updates.load(std::memory_order_relaxed) >=
                options.max_updates) {
          stop.store(true, std::memory_order_relaxed);
          break;
        }
        if (w == 0) {
          // worker 0 doubles as the convergence monitor
          if (oracle) {
            const la::Vector snap = shared.snapshot();
            if (norm.distance(snap, *options.x_star) < options.tol)
              stop.store(true, std::memory_order_relaxed);
          }
          if (displacement_stop) {
            double worst = 0.0;
            for (la::BlockId blk = 0; blk < m; ++blk)
              worst = std::max(
                  worst, std::atomic_ref<double>(last_displacement[blk])
                             .load(std::memory_order_relaxed));
            if (worst < options.displacement_tol)
              stop.store(true, std::memory_order_relaxed);
          }
        }
      }
    }
    per_worker[w] = own_updates;
  };

  std::vector<std::thread> threads;
  threads.reserve(options.workers);
  for (std::size_t w = 0; w < options.workers; ++w)
    threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();

  RuntimeResult result;
  result.wall_seconds = timer.seconds();
  result.x = shared.snapshot();
  result.total_updates = total_updates.load();
  result.updates_per_worker = per_worker;
  if (oracle) {
    result.final_error = norm.distance(result.x, *options.x_star);
    result.converged = result.final_error < options.tol;
  }
  return result;
}

RuntimeResult run_sync_threads(const op::BlockOperator& op,
                               const la::Vector& x0,
                               const RuntimeOptions& options) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  ASYNCIT_CHECK(options.workers >= 1 && options.workers <= m);
  ASYNCIT_CHECK(x0.size() == partition.dim());

  la::WeightedMaxNorm norm{partition};
  const bool oracle = options.x_star.has_value();
  const auto owned = assign_blocks(m, options.workers);

  la::Vector x = x0;          // published state (read phase)
  la::Vector x_next = x0;     // staging (write phase)
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rounds{0};
  WallTimer timer;

  std::barrier barrier(static_cast<std::ptrdiff_t>(options.workers),
                       [&]() noexcept {
                         // round completion (single thread): publish and
                         // evaluate stopping
                         x.swap(x_next);
                         const std::uint64_t r =
                             rounds.fetch_add(1, std::memory_order_relaxed) +
                             1;
                         if (timer.seconds() > options.max_seconds ||
                             r * m >= options.max_updates)
                           stop.store(true, std::memory_order_relaxed);
                         if (oracle &&
                             norm.distance(x, *options.x_star) < options.tol)
                           stop.store(true, std::memory_order_relaxed);
                       });

  auto worker_fn = [&](std::size_t w) {
    la::Vector out;
    const std::size_t reps = repetitions(options, w);
    while (!stop.load(std::memory_order_relaxed)) {
      for (la::BlockId b : owned[w]) {
        const la::BlockRange r = partition.range(b);
        out.resize(r.size());
        for (std::size_t rep = 0; rep < reps; ++rep)
          op.apply_block(b, x, out);
        std::copy(out.begin(), out.end(),
                  x_next.begin() + static_cast<std::ptrdiff_t>(r.begin));
      }
      barrier.arrive_and_wait();  // everyone published; completion swaps
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(options.workers);
  for (std::size_t w = 0; w < options.workers; ++w)
    threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();

  RuntimeResult result;
  result.wall_seconds = timer.seconds();
  result.x = x;
  result.rounds = rounds.load();
  result.total_updates = result.rounds * m;
  result.updates_per_worker.assign(options.workers,
                                   result.rounds * (m / options.workers));
  if (oracle) {
    result.final_error = norm.distance(result.x, *options.x_star);
    result.converged = result.final_error < options.tol;
  }
  return result;
}

}  // namespace asyncit::rt
