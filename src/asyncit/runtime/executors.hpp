// Threaded executors: real wall-clock asynchronous and synchronous
// iterations on shared memory.
//
// run_async_threads — totally asynchronous (Hogwild-style over blocks):
//   each worker sweeps its own blocks without any synchronization, reading
//   the shared iterate in place and publishing block updates as it goes.
//   No barriers, no waiting: the execution the paper's Section II
//   advocates. Worker heterogeneity is injected by making a slow worker
//   repeat its block computation `slowdown` times (emulating a slower
//   CPU or a larger load — the load-imbalance scenario of claim C1).
//
// run_sync_threads — the barrier-synchronized (BSP/Jacobi) baseline: all
//   workers compute one sweep from the same snapshot, meet at a barrier,
//   publish, meet again. Every round costs as much as the SLOWEST worker;
//   heterogeneity translates directly into idle waiting.
//
// Both stop on: oracle error below tol (when x_star given), update budget
// exhausted, or wall-clock budget exhausted.
#pragma once

#include <optional>
#include <vector>

#include "asyncit/linalg/norms.hpp"
#include "asyncit/operators/operator.hpp"

namespace asyncit::rt {

struct RuntimeOptions {
  std::size_t workers = 2;
  /// Per-worker compute repetition factors (heterogeneity injection);
  /// empty = all 1.0. A factor f makes the worker redo each block update
  /// ceil(f) times (f=1: normal speed).
  std::vector<double> worker_slowdown;

  std::size_t inner_steps = 1;
  /// Publish inner iterates as they are produced (flexible communication
  /// on shared memory: other workers immediately see partials).
  bool publish_partials = false;

  /// Read consistency of the shared iterate:
  ///   false — Hogwild: workers read the raw shared view in place (block
  ///           values may mix two updates: shared-memory "partial
  ///           updates", the fastest mode);
  ///   true  — seqlock block store: every block read is atomic as a group
  ///           (exact per-block labels), at the cost of copying the
  ///           vector per update. bench/a3_read_consistency measures the
  ///           gap.
  bool consistent_reads = false;

  double tol = 1e-9;
  std::optional<la::Vector> x_star;  ///< oracle stopping + error metric

  /// Practical stopping without a known solution (the macro-residual rule
  /// of ref [15] on shared memory): stop when every block's most recent
  /// update displaced it by less than `displacement_tol` in the Euclidean
  /// block norm. For a contraction with factor α this certifies
  /// ‖x − x*‖ ≤ displacement_tol / (1 − α). 0 disables the rule.
  double displacement_tol = 0.0;

  std::uint64_t max_updates = 1000000;  ///< total block updates budget
  double max_seconds = 30.0;
  /// Stopping check cadence (in own updates) per worker.
  std::uint64_t check_every = 64;

  std::uint64_t seed = 1;
};

struct RuntimeResult {
  la::Vector x;
  double wall_seconds = 0.0;
  bool converged = false;
  std::uint64_t total_updates = 0;  ///< block updates (async) / rounds*m (sync)
  std::size_t rounds = 0;           ///< sync only
  std::vector<std::uint64_t> updates_per_worker;
  double final_error = -1.0;        ///< oracle error (when x_star given)
};

RuntimeResult run_async_threads(const op::BlockOperator& op,
                                const la::Vector& x0,
                                const RuntimeOptions& options);

RuntimeResult run_sync_threads(const op::BlockOperator& op,
                               const la::Vector& x0,
                               const RuntimeOptions& options);

}  // namespace asyncit::rt
