// Virtual-time backend: the WAN topology of config.hpp behind the
// transport::Transport interface (DESIGN.md §10).
//
// Delivery is a dest-side min-heap keyed (deliver_at, global send seq) —
// the same (time, seq) deterministic tie-break as the engine's event
// queue, so delivery order is a pure function of (config, seed). Each
// frame's latency is base(s, d) * jitter_draw + serialization, where
// base(s, d) is COMPUTED from (latency, regions, cross_region, asymmetry)
// rather than stored: the only per-link state is the jitter/drop RNG
// stream (32 B) and, with fifo, the in-order floor — O(world) per
// endpoint instead of an O(world^2) matrix of doubles.
//
// Two drive modes per endpoint:
//
//   engine-driven  (a SimEngine fiber calls receive()): receive() first
//       charges one per-rank compute draw via SimEngine::advance() —
//       the peer loop drains once per update phase, so the draw IS the
//       phase cost, and a bare poll is charged the same draw (a poll
//       occupies a scheduling slot) — then drains frames matured against
//       the post-advance clock. This is what makes virtual time move:
//       every pass through any peer loop advances the clock, so gate
//       polls always make progress and wait_for_activity() never spins
//       at a frozen instant.
//
//   passive  (no engine, or called off-fiber): receive() is a plain
//       drain against the caller's `now`, and wait_for_activity()
//       returns immediately. This is the scripted mode the cross-backend
//       parity tests drive from one thread.
//
// Time source: with an engine attached, send/receive use engine->now()
// (the peer's SimClock reads the same value); the caller's `now` is used
// only in passive mode.
//
// Pooling mirrors inproc: a sender borrows the net::Message from the
// DESTINATION endpoint's pool, where the receiver's recycle() returns it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "asyncit/net/channel.hpp"
#include "asyncit/simnet/config.hpp"
#include "asyncit/simnet/engine.hpp"
#include "asyncit/transport/pool.hpp"
#include "asyncit/transport/transport.hpp"

namespace asyncit::simnet {

class SimTransport;

class SimEndpoint final : public transport::Endpoint {
 public:
  std::uint32_t rank() const override { return rank_; }
  transport::SendReceipt send(std::uint32_t dst,
                              const transport::MessageHeader& header,
                              std::span<const double> value, double now,
                              bool allow_drop) override;
  std::size_t receive(double now, std::vector<net::Message>& out) override;
  void recycle(std::vector<net::Message>& consumed) override;
  std::uint64_t activity() const override { return activity_; }
  void wait_for_activity(std::uint64_t seen,
                         double timeout_seconds) override;
  double next_delivery() const override;
  std::uint64_t sent() const override { return sent_; }
  std::uint64_t dropped() const override { return dropped_; }
  std::uint64_t delivered() const override { return delivered_; }
  net::DelayHistogram delays() const override { return delays_; }

  /// Frames dropped by an active PartitionWindow cut (subset of
  /// dropped()). Partition drops ignore allow_drop: a severed link loses
  /// control frames too — that is the failure being modelled.
  std::uint64_t partition_dropped() const { return partition_dropped_; }

 private:
  friend class SimTransport;

  struct Pending {
    double deliver_at = 0.0;
    std::uint64_t seq = 0;  ///< transport-global send counter (tie-break)
    net::Message msg;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };

  /// One virtual compute-phase cost draw for this rank.
  double compute_draw();
  /// Pops matured frames (deliver_at <= now) in (deliver_at, seq) order.
  std::size_t drain(double now, std::vector<net::Message>& out);

  SimTransport* owner_ = nullptr;
  std::uint32_t rank_ = 0;
  /// Jitter/drop stream per destination, consumed in fixed per-frame
  /// order (latency draw, then drop draw if drop_prob > 0) so the draw
  /// sequence of a link depends only on the seed and its frame count.
  std::vector<Rng> links_;
  std::vector<double> fifo_floor_;  ///< per destination; empty unless fifo
  Rng compute_rng_{0};
  double straggler_ = 1.0;  ///< this rank's compute multiplier

  // Receive side. Single-threaded by construction (one carrier: either
  // the engine thread or the scripted test thread), so plain counters.
  std::vector<Pending> pending_;  ///< min-heap via std::push_heap
  transport::MessagePool pool_;
  std::uint64_t activity_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t partition_dropped_ = 0;
  std::uint64_t delivered_ = 0;
  net::DelayHistogram delays_;
};

class SimTransport final : public transport::Transport {
 public:
  /// All `world` ranks are local. `engine` may be null (passive mode);
  /// when set, it must outlive the transport and frames wake blocked
  /// destination fibers at their delivery time.
  SimTransport(std::size_t world, const SimConfig& config,
               std::uint64_t seed, SimEngine* engine);

  std::size_t world() const override { return endpoints_.size(); }
  std::vector<std::uint32_t> local_ranks() const override;
  transport::Endpoint& endpoint(std::uint32_t rank) override;
  const char* backend() const override { return "sim"; }

  std::uint64_t partition_dropped() const;

  /// Deterministic base one-way latency of directed link s -> d (no
  /// jitter, no serialization): latency * region multiplier * the
  /// per-link asymmetry skew hashed from the seed. Exposed for tests.
  double base_latency(std::uint32_t s, std::uint32_t d) const;

 private:
  friend class SimEndpoint;

  SimConfig config_;
  std::uint64_t seed_ = 0;
  SimEngine* engine_ = nullptr;
  std::uint64_t next_seq_ = 0;  ///< global send counter (delivery ties)
  std::vector<std::unique_ptr<SimEndpoint>> endpoints_;
};

}  // namespace asyncit::simnet
