// Configuration for the simnet/ virtual-time backend (DESIGN.md §10).
//
// Everything the simulator models is described here as plain data so the
// node_config schema SSOT (net/node_config.cpp) can expose every knob as
// a `sim_*` config key without simnet depending on net/ or vice versa:
// this header has no dependencies beyond <cstdint>/<vector> and is safe
// to include from the config layer, the tools and the benches alike.
//
// All times are virtual seconds, all sizes bytes. Every stochastic knob
// draws from streams derived from the run's master seed (per directed
// link for the wire, per rank for compute), so one (config, seed) pair
// names exactly one execution — the reproducibility contract the
// unbounded-delay experiments rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asyncit::simnet {

/// One scheduled network partition: while t0 <= t < t1, frames crossing
/// the cut {rank < boundary} | {rank >= boundary} are dropped (counted,
/// never silent). The window end IS the heal schedule; overlapping
/// windows compose (a frame is dropped if ANY active window cuts it).
struct PartitionWindow {
  double t0 = 0.0;
  double t1 = 0.0;
  std::uint32_t boundary = 0;
};

/// WAN topology of the simulated fabric. Per-directed-link base latency
/// is derived deterministically from (latency, regions, cross_region,
/// asymmetry) — an explicit world x world matrix would be O(ranks^2)
/// memory for what is, in every WAN we care to model, a low-rank
/// structure (region pairs + per-link skew).
struct TopologyConfig {
  /// Base one-way latency in seconds for an intra-region link.
  double latency = 1e-3;
  /// Per-message uniform jitter as a fraction of the link's base
  /// latency: each frame draws from [base*(1-j), base*(1+j)). j >= 1
  /// gives the paper's unbounded-ish heavy reordering regime.
  double jitter = 0.5;
  /// Deterministic per-directed-link base skew fraction: link (s, d)
  /// scales its base by (1 + asymmetry * u(s,d)) with u(s,d) in [-1, 1)
  /// hashed from the seed — (s, d) and (d, s) draw independently, so
  /// routes are asymmetric like real WAN paths.
  double asymmetry = 0.0;
  /// Link bandwidth in bytes/second; adds frame_bytes/bandwidth of
  /// serialization delay per frame. 0 = infinite.
  double bandwidth = 0.0;
  /// In-order delivery floor per directed link (sim analogue of
  /// net::DeliveryPolicy::fifo). Off by default: out-of-order delivery
  /// is the phenomenon under study.
  bool fifo = false;
  /// Per-frame loss probability (droppable frames only, exactly the
  /// net::LinkStamper contract; drop_control extends it to control
  /// frames).
  double drop_prob = 0.0;
  bool drop_control = false;
  /// Ranks are assigned round-robin to `regions` regions; links whose
  /// endpoints live in different regions scale their base latency by
  /// `cross_region`.
  std::uint32_t regions = 1;
  double cross_region = 4.0;
  std::vector<PartitionWindow> partitions;
};

/// Virtual cost of computation. The engine charges one draw from
/// [phase*(1-jitter), phase*(1+jitter)) per endpoint drain — the peer
/// loop drains once per update phase, so the draw IS the phase cost, and
/// a gate poll is charged the same draw (a poll occupies a scheduling
/// slot). Stragglers model the paper's unbounded heterogeneity: every
/// `straggler_every`-th rank multiplies its draws by `straggler_factor`.
struct ComputeModel {
  double phase = 1e-3;
  double jitter = 0.5;
  std::uint32_t straggler_every = 0;  ///< 0 = no stragglers
  double straggler_factor = 10.0;
};

/// Everything run_world / SimTransport need beyond the solver options.
struct SimConfig {
  TopologyConfig topology;
  ComputeModel compute;
  /// Per-rank fiber stack (lazily committed mmap; sanitizer builds
  /// enforce a larger floor — see simnet/fiber.cpp).
  std::size_t stack_bytes = 256 * 1024;
  /// Record the full dispatch log (EventRecord stream) for byte-identical
  /// replay comparison. The rolling log hash is always maintained; the
  /// full log is opt-in because 10M-event runs would hold ~240 MB.
  bool record_log = false;
  std::size_t log_capacity = 1 << 20;
};

}  // namespace asyncit::simnet
