// Virtual-time discrete-event engine (DESIGN.md §10).
//
// Single-threaded: simulated ranks are cooperative fibers, time is a
// double of virtual seconds, and the only scheduler is a monotone event
// queue keyed (t_virtual, seq). `seq` is a global push counter, so ties
// at equal virtual time dispatch in push order — the deterministic
// tie-break that makes one (config, seed) pair name exactly one
// execution. Two runs of the same world agree event-for-event, which the
// determinism tests check by comparing the rolling log hash (and, opt-in,
// the byte-exact EventRecord stream).
//
// Time model: a fiber accrues cost with charge(dt) (no yield), sleeps
// with advance(dt) (yield; resumes at now()+dt), and blocks with
// wait_until(deadline) (yield; resumes at the deadline OR earlier when
// another fiber calls wake()). Every live fiber therefore always has at
// least one pending event, so queue-exhaustion == all fibers done; a
// drained queue with a live fiber is a lost wakeup and fails loudly.
//
// Stale events: each task carries a generation counter bumped on every
// dispatch. Events are stamped with the generation at push time; a
// dispatched event whose stamp is old (the task already ran for another
// reason — e.g. a wake beat the wait_until deadline) is skipped and NOT
// logged. Only dispatched events enter the log/hash, so the log is the
// exact execution order, not the push order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "asyncit/simnet/fiber.hpp"

namespace asyncit::simnet {

/// What a dispatched event was. Values are part of the log-hash contract:
/// renumbering changes every recorded hash.
enum class EventKind : std::uint16_t {
  kSpawn = 0,    ///< fiber's first slice (t = 0, spawn order)
  kAdvance = 1,  ///< resume after an advance(dt) sleep
  kTimeout = 2,  ///< wait_until() deadline fired
  kWake = 3,     ///< wait_until() cut short by wake()
};

/// One dispatched event, exactly 24 bytes with no padding so the full
/// log is byte-comparable across runs and the rolling hash is defined
/// over a stable layout.
struct EventRecord {
  double t;           ///< virtual dispatch time
  std::uint64_t seq;  ///< global push sequence number
  std::uint32_t rank;
  std::uint16_t kind;  ///< EventKind
  std::uint16_t aux;   ///< kind-specific (kWake: low bits of waker rank)
};
static_assert(sizeof(EventRecord) == 24, "log records must be packed");

class SimEngine {
 public:
  struct Options {
    /// Forwarded to each fiber (see simnet/fiber.cpp for the floors).
    std::size_t stack_bytes = 256 * 1024;
    /// Keep the full EventRecord stream (hash is always kept).
    bool record_log = false;
    std::size_t log_capacity = 1 << 20;
  };

  SimEngine();  // default Options (= {} as a default arg trips gcc's
                // nested-class NSDMI handling, so two constructors)
  explicit SimEngine(Options options);
  ~SimEngine();

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Register rank `rank` to run `body` on its own fiber, starting at
  /// t = 0 in spawn order. Must be called before run().
  void spawn(std::uint32_t rank, std::function<void()> body);

  /// Dispatch events until every fiber has finished. While running, the
  /// engine is visible as active() (used by the obs virtual-clock hook).
  void run();

  /// Current virtual time: dispatch time of the running event plus any
  /// cost accrued via charge() since. Valid outside run() too (returns
  /// the last dispatch time; 0 before the first).
  double now() const { return now_ + accrued_; }
  std::uint64_t now_ns() const;

  /// Accrue `dt` of virtual cost without yielding. Fiber-side.
  void charge(double dt);

  /// Sleep: yield and resume at now() + dt. Fiber-side.
  void advance(double dt);

  /// Block until `deadline` or an earlier wake(). Fiber-side. Returns
  /// with now() == deadline (timeout) or now() == the wake time.
  void wait_until(double deadline);

  /// Schedule rank `rank` to be resumed at virtual time `at` (>= now()).
  /// No-op if the task already has an equal-or-earlier pending resume —
  /// the event-storm guard: N messages to a blocked rank push one event,
  /// not N.
  void wake(std::uint32_t rank, double at, std::uint16_t aux = 0);

  bool in_fiber() const { return current_ != kNoTask; }
  std::uint32_t current_rank() const;

  std::uint64_t events_dispatched() const { return dispatched_; }
  /// Rolling FNV-1a over every dispatched EventRecord, always on.
  std::uint64_t log_hash() const { return hash_; }
  /// Full dispatch log; empty unless Options::record_log (capped at
  /// log_capacity — a 10M-event run would otherwise hold ~240 MB).
  const std::vector<EventRecord>& log() const { return log_; }
  /// True if record_log hit log_capacity (hash still covers everything).
  bool log_truncated() const { return log_truncated_; }

  /// The engine currently inside run() on this thread, else nullptr.
  static SimEngine* active();

 private:
  static constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);

  struct Task {
    std::unique_ptr<Fiber> fiber;
    std::uint32_t rank = 0;
    std::uint64_t gen = 0;  ///< bumped on dispatch; stamps invalidate
    bool waiting = false;   ///< parked in wait_until() (wake()-able)
    /// Earliest pending resume for this task (+inf when none) — wake()
    /// dedup so message storms stay O(1) events per blocked rank.
    double earliest = 0.0;
  };

  struct Ev {
    double t;
    std::uint64_t seq;
    std::uint32_t task;
    std::uint64_t gen;
    std::uint16_t kind;
    std::uint16_t aux;
  };
  struct EvLater {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void push(std::size_t task, double t, EventKind kind, std::uint16_t aux);
  /// Yield the current fiber; on resume, adopt the dispatched event time.
  void suspend();

  Options options_;
  std::vector<Task> tasks_;
  std::vector<std::size_t> rank_to_task_;
  std::vector<Ev> heap_;  ///< min-heap via std::push_heap/pop_heap
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
  double accrued_ = 0.0;
  std::size_t current_ = kNoTask;
  bool running_ = false;
  std::uint64_t dispatched_ = 0;
  std::uint64_t hash_ = 1469598103934665603ull;  ///< FNV-1a offset basis
  std::vector<EventRecord> log_;
  bool log_truncated_ = false;
};

}  // namespace asyncit::simnet
