#include "asyncit/simnet/world.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "asyncit/net/node_runtime.hpp"
#include "asyncit/obs/metrics.hpp"
#include "asyncit/obs/trace_recorder.hpp"
#include "asyncit/simnet/transport.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/transport/chaos.hpp"

namespace asyncit::simnet {

namespace {

/// The injectable obs clock: virtual nanoseconds of the engine running
/// on this thread. Armed BEFORE engine.run() it reads 0, so the
/// recorder's t0 anchor is virtual zero and every event timestamp is
/// virtual time directly.
std::uint64_t sim_trace_clock() {
  const SimEngine* engine = SimEngine::active();
  return engine != nullptr ? engine->now_ns() : 0;
}

/// Scoped recorder arming for a simulated world: installs the virtual
/// clock, enables the single process-global recorder (the per-rank
/// runtimes are handed trace_level kOff so they don't re-anchor it), and
/// restores everything on scope exit.
class WorldObs {
 public:
  WorldObs(obs::TraceLevel level, std::size_t ring_capacity)
      : level_(level), prev_clock_(obs::trace_clock()) {
    if (level_ == obs::TraceLevel::kOff) return;
    obs::set_trace_clock(&sim_trace_clock);
    obs::TraceConfig tc;
    tc.level = level_;
    tc.ring_capacity = ring_capacity;
    tc.rank = 0;  // one process hosts the world; Event::rank stays 0
    obs::TraceRecorder::instance().enable(tc);
    obs::MetricsRegistry::instance().reset();
  }

  ~WorldObs() {
    if (level_ == obs::TraceLevel::kOff) return;
    obs::TraceRecorder::instance().disable();
    obs::set_trace_clock(prev_clock_);
  }

  void collect(std::uint64_t& recorded, std::uint64_t& dropped) const {
    if (level_ == obs::TraceLevel::kOff) return;
    const obs::RecorderStats stats = obs::TraceRecorder::instance().stats();
    recorded = stats.recorded;
    dropped = stats.dropped;
  }

 private:
  obs::TraceLevel level_;
  obs::TraceClockFn prev_clock_;
};

SimEngine::Options engine_options(const SimConfig& sim) {
  SimEngine::Options eo;
  eo.stack_bytes = sim.stack_bytes;
  eo.record_log = sim.record_log;
  eo.log_capacity = sim.log_capacity;
  return eo;
}

}  // namespace

WorldResult run_world(const op::BlockOperator& op, const la::Vector& x0,
                      const WorldOptions& options) {
  const std::size_t world = options.mp.workers;
  ASYNCIT_CHECK(world >= 2);
  WallTimer wall;

  SimEngine engine(engine_options(options.sim));
  SimTransport fabric(world, options.sim, options.mp.seed, &engine);
  std::unique_ptr<transport::ChaosTransport> chaos;
  if (options.chaos)
    chaos = std::make_unique<transport::ChaosTransport>(
        fabric, options.chaos_policy, options.mp.seed);
  transport::Transport& transport_ref =
      chaos ? static_cast<transport::Transport&>(*chaos) : fabric;

  // The ranks share one options block: tracing is owned by the world
  // (see WorldObs), and per-source link histograms are a world^2 memory
  // cliff the simulator exists to scale past.
  net::MpOptions per_rank = options.mp;
  per_rank.obs.trace_level = obs::TraceLevel::kOff;
  per_rank.obs.link_delays = false;

  SimClock clock(&engine);
  WorldObs world_obs(options.mp.obs.trace_level,
                     options.mp.obs.trace_ring_capacity);

  WorldResult result;
  result.ranks.resize(world);
  for (std::size_t r = 0; r < world; ++r) {
    engine.spawn(static_cast<std::uint32_t>(r), [&, r] {
      result.ranks[r] =
          net::run_node(op, x0, per_rank,
                        transport_ref.endpoint(static_cast<std::uint32_t>(r)),
                        clock);
    });
  }
  engine.run();

  result.virtual_seconds = engine.now();
  result.wall_seconds = wall.seconds();
  result.events = engine.events_dispatched();
  result.log_hash = engine.log_hash();
  result.event_log = engine.log();
  result.log_truncated = engine.log_truncated();
  result.partition_dropped = fabric.partition_dropped();
  world_obs.collect(result.obs_events_recorded, result.obs_events_dropped);
  result.all_converged = options.mp.solve.x_star.has_value();
  for (const net::MpResult& rank : result.ranks) {
    result.all_converged = result.all_converged && rank.converged;
    result.final_residual = std::max(result.final_residual, rank.final_error);
    result.total_updates += rank.total_updates;
    result.messages_sent += rank.messages_sent;
    result.messages_dropped += rank.messages_dropped;
    result.messages_delivered += rank.messages_delivered;
  }
  return result;
}

TrainWorldResult run_train_world(const train::Dataset& data,
                                 const la::Vector& x0,
                                 const TrainWorldOptions& options) {
  const std::size_t world = options.train.workers + 1;
  ASYNCIT_CHECK(options.train.workers >= 1);
  WallTimer wall;

  SimEngine engine(engine_options(options.sim));
  SimTransport fabric(world, options.sim, options.train.seed, &engine);

  train::TrainOptions per_rank = options.train;
  per_rank.obs.trace_level = obs::TraceLevel::kOff;

  SimClock clock(&engine);
  WorldObs world_obs(options.train.obs.trace_level,
                     options.train.obs.trace_ring_capacity);

  TrainWorldResult result;
  result.ranks.resize(world);
  for (std::size_t r = 0; r < world; ++r) {
    engine.spawn(static_cast<std::uint32_t>(r), [&, r] {
      result.ranks[r] = train::run_training_node(
          data, x0, per_rank,
          fabric.endpoint(static_cast<std::uint32_t>(r)), clock);
    });
  }
  engine.run();

  result.virtual_seconds = engine.now();
  result.wall_seconds = wall.seconds();
  result.events = engine.events_dispatched();
  result.log_hash = engine.log_hash();
  std::uint64_t rec = 0, drop = 0;
  world_obs.collect(rec, drop);
  if (!result.ranks.empty()) {
    result.ranks[0].obs_events_recorded = rec;
    result.ranks[0].obs_events_dropped = drop;
  }
  return result;
}

}  // namespace asyncit::simnet
