// Cooperative fibers for the virtual-time engine (DESIGN.md §10).
//
// One fiber hosts one simulated rank; the single-threaded SimEngine
// switches between them with ucontext, so net::Peer / membership /
// train code runs UNCHANGED — a rank blocks by yielding back to the
// scheduler instead of blocking an OS thread. Thread-per-rank with a
// baton was measured out: a futex handoff per event times ~10M events
// would eat the entire 1000-rank wall budget in context switches, while
// a ucontext swap is a register save/restore.
//
// Stacks are mmap'd with a PROT_NONE guard page at the low end and are
// lazily committed, so 1000 fibers reserve address space, not RSS.
//
// Sanitizer contract: the asan and tsan CI legs run the simnet tests, so
// every switch is annotated with the fiber APIs
// (__sanitizer_start_switch_fiber / __tsan_switch_to_fiber families) —
// without them asan misattributes fake stacks across switches and tsan
// aborts on the "unexpected stack switch" heuristic. See fiber.cpp.
#pragma once

#include <cstddef>
#include <functional>
#include <ucontext.h>

namespace asyncit::simnet {

class Fiber {
 public:
  /// `body` runs on the fiber's own stack across resume() calls;
  /// `stack_bytes` is rounded up to whole pages (sanitizer builds
  /// enforce a larger floor for redzone-inflated frames).
  Fiber(std::size_t stack_bytes, std::function<void()> body);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Scheduler side: runs the fiber until its next yield() or until the
  /// body returns. Must not be called from inside a fiber, nor after
  /// done().
  void resume();

  /// Fiber side: suspends back into the resume() that is running us.
  void yield();

  bool done() const { return done_; }

 private:
  static void trampoline();
  void entry();

  ucontext_t ctx_{};        ///< the fiber's saved context
  ucontext_t scheduler_{};  ///< where resume() was called from
  void* map_ = nullptr;     ///< mmap base (guard page lives here)
  std::size_t map_bytes_ = 0;
  void* stack_lo_ = nullptr;  ///< usable stack (above the guard page)
  std::size_t stack_bytes_ = 0;
  std::function<void()> body_;
  bool started_ = false;
  bool done_ = false;

  // Sanitizer bookkeeping (unused members cost nothing when the build
  // has no sanitizer).
  void* asan_fake_stack_ = nullptr;      ///< fiber's saved fake stack
  void* asan_sched_fake_stack_ = nullptr;  ///< scheduler's, across resume
  const void* sched_stack_lo_ = nullptr;   ///< scheduler stack, learned
  std::size_t sched_stack_bytes_ = 0;      ///< at first entry
  void* tsan_fiber_ = nullptr;
  void* tsan_scheduler_ = nullptr;
};

}  // namespace asyncit::simnet
