#include "asyncit/simnet/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <utility>

#include "asyncit/support/check.hpp"

// Sanitizer fiber annotations. The asan/tsan CI presets run simnet_test
// and the sim smokes, so every context switch must be announced: asan
// needs the fake-stack handoff (__sanitizer_*_switch_fiber) or it keeps
// attributing frames to the previous stack; tsan needs the fiber API
// (__tsan_*_fiber) or its shadow-stack check flags the switch as a
// corrupted stack. Both headers ship with gcc >= 10 and clang.
#if defined(__SANITIZE_ADDRESS__)
#define ASYNCIT_FIBER_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define ASYNCIT_FIBER_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ASYNCIT_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define ASYNCIT_FIBER_TSAN 1
#endif
#endif

#ifdef ASYNCIT_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef ASYNCIT_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace asyncit::simnet {

namespace {

/// The fiber a first resume() is about to enter. makecontext can only
/// pass int arguments portably, so the trampoline fetches its Fiber
/// through this slot instead; thread_local because nothing stops two
/// engines from running on two threads.
thread_local Fiber* g_starting = nullptr;

std::size_t stack_floor(std::size_t requested) {
  // Sanitizer frames are several times larger (redzones, fake-stack
  // bookkeeping); a 256 KiB production stack overflows under asan.
#if defined(ASYNCIT_FIBER_ASAN)
  const std::size_t floor = 1024 * 1024;
#elif defined(ASYNCIT_FIBER_TSAN)
  const std::size_t floor = 512 * 1024;
#else
  const std::size_t floor = 64 * 1024;
#endif
  return requested < floor ? floor : requested;
}

}  // namespace

Fiber::Fiber(std::size_t stack_bytes, std::function<void()> body)
    : body_(std::move(body)) {
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  stack_bytes_ = (stack_floor(stack_bytes) + page - 1) / page * page;
  map_bytes_ = stack_bytes_ + page;  // + low guard page
  map_ = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
              MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  ASYNCIT_CHECK(map_ != MAP_FAILED);
  ASYNCIT_CHECK(mprotect(map_, page, PROT_NONE) == 0);
  stack_lo_ = static_cast<std::uint8_t*>(map_) + page;
#ifdef ASYNCIT_FIBER_TSAN
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  // A live (started, not finished) fiber cannot be safely destroyed:
  // its stack holds un-unwound frames (peer state, RAII locks). The
  // engine only destroys fibers after run() drained them.
  ASYNCIT_CHECK(!started_ || done_);
#ifdef ASYNCIT_FIBER_TSAN
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  if (map_ != nullptr) munmap(map_, map_bytes_);
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  self->entry();
}

void Fiber::entry() {
#ifdef ASYNCIT_FIBER_ASAN
  // First words executed on the new stack: complete the switch the
  // scheduler announced, learning the scheduler's stack bounds so
  // yield()/termination can announce the reverse switch.
  __sanitizer_finish_switch_fiber(nullptr, &sched_stack_lo_,
                                  &sched_stack_bytes_);
#endif
  body_();
  done_ = true;
#ifdef ASYNCIT_FIBER_ASAN
  // nullptr fake-stack save: this stack is terminating, let asan free
  // its fake frames instead of preserving them for a resume that never
  // comes.
  __sanitizer_start_switch_fiber(nullptr, sched_stack_lo_,
                                 sched_stack_bytes_);
#endif
#ifdef ASYNCIT_FIBER_TSAN
  __tsan_switch_to_fiber(tsan_scheduler_, 0);
#endif
  swapcontext(&ctx_, &scheduler_);
  // A finished fiber is never resumed (engine checks done()).
  ASYNCIT_CHECK(false);
}

void Fiber::resume() {
  ASYNCIT_CHECK(!done_);
  if (!started_) {
    started_ = true;
    ASYNCIT_CHECK(getcontext(&ctx_) == 0);
    ctx_.uc_stack.ss_sp = stack_lo_;
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &scheduler_;  // backstop; entry() swaps out explicitly
    makecontext(&ctx_, &Fiber::trampoline, 0);
    g_starting = this;
  }
#ifdef ASYNCIT_FIBER_ASAN
  __sanitizer_start_switch_fiber(&asan_sched_fake_stack_, stack_lo_,
                                 stack_bytes_);
#endif
#ifdef ASYNCIT_FIBER_TSAN
  tsan_scheduler_ = __tsan_get_current_fiber();
#endif
#ifdef ASYNCIT_FIBER_TSAN
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  swapcontext(&scheduler_, &ctx_);
#ifdef ASYNCIT_FIBER_ASAN
  __sanitizer_finish_switch_fiber(asan_sched_fake_stack_, nullptr, nullptr);
#endif
}

void Fiber::yield() {
  ASYNCIT_CHECK(started_ && !done_);
#ifdef ASYNCIT_FIBER_ASAN
  __sanitizer_start_switch_fiber(&asan_fake_stack_, sched_stack_lo_,
                                 sched_stack_bytes_);
#endif
#ifdef ASYNCIT_FIBER_TSAN
  __tsan_switch_to_fiber(tsan_scheduler_, 0);
#endif
  swapcontext(&ctx_, &scheduler_);
#ifdef ASYNCIT_FIBER_ASAN
  __sanitizer_finish_switch_fiber(asan_fake_stack_, nullptr, nullptr);
#endif
}

}  // namespace asyncit::simnet
