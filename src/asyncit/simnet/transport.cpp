#include "asyncit/simnet/transport.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "asyncit/support/check.hpp"
#include "asyncit/transport/wire.hpp"

namespace asyncit::simnet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// splitmix64 finalizer — the standard bit mixer, used to derive
/// independent per-link / per-rank seeds and the asymmetry skew from the
/// master seed without maintaining O(world^2) generator state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Domain-separation salts so link streams, compute streams and the
// asymmetry hash never collide for any (seed, rank) combination.
constexpr std::uint64_t kLinkSalt = 0x6c696e6b5f73696dull;     // "link_sim"
constexpr std::uint64_t kComputeSalt = 0x636f6d705f73696dull;  // "comp_sim"
constexpr std::uint64_t kSkewSalt = 0x736b65775f73696dull;     // "skew_sim"

}  // namespace

SimTransport::SimTransport(std::size_t world, const SimConfig& config,
                           std::uint64_t seed, SimEngine* engine)
    : config_(config), seed_(seed), engine_(engine) {
  ASYNCIT_CHECK(world >= 1);
  const TopologyConfig& topo = config_.topology;
  ASYNCIT_CHECK(topo.latency >= 0.0 && topo.jitter >= 0.0);
  ASYNCIT_CHECK(topo.drop_prob >= 0.0 && topo.drop_prob < 1.0);
  ASYNCIT_CHECK(topo.bandwidth >= 0.0);
  ASYNCIT_CHECK(topo.regions >= 1 && topo.cross_region >= 0.0);
  ASYNCIT_CHECK(config_.compute.phase >= 0.0 &&
                config_.compute.jitter >= 0.0 &&
                config_.compute.jitter <= 1.0);
  for (const PartitionWindow& w : topo.partitions)
    ASYNCIT_CHECK_MSG(w.t1 >= w.t0, "partition window ends before it starts");
  endpoints_.reserve(world);
  for (std::size_t src = 0; src < world; ++src) {
    auto ep = std::make_unique<SimEndpoint>();
    ep->owner_ = this;
    ep->rank_ = static_cast<std::uint32_t>(src);
    ep->links_.reserve(world);
    for (std::size_t dst = 0; dst < world; ++dst)
      ep->links_.emplace_back(mix64(seed ^ kLinkSalt) ^
                              mix64(src * world + dst));
    if (topo.fifo) ep->fifo_floor_.assign(world, 0.0);
    ep->compute_rng_.reseed(mix64(seed ^ kComputeSalt) ^ mix64(src));
    const std::uint32_t every = config_.compute.straggler_every;
    // Ranks every-1, 2*every-1, ... straggle (never rank 0: the train
    // stack's parameter server lives there and a straggling server would
    // measure a different phenomenon than straggling workers).
    if (every > 0 && (ep->rank_ % every) == every - 1)
      ep->straggler_ = config_.compute.straggler_factor;
    endpoints_.push_back(std::move(ep));
  }
}

std::vector<std::uint32_t> SimTransport::local_ranks() const {
  std::vector<std::uint32_t> ranks(endpoints_.size());
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ranks[i] = static_cast<std::uint32_t>(i);
  return ranks;
}

transport::Endpoint& SimTransport::endpoint(std::uint32_t rank) {
  ASYNCIT_CHECK(rank < endpoints_.size());
  return *endpoints_[rank];
}

std::uint64_t SimTransport::partition_dropped() const {
  std::uint64_t n = 0;
  for (const auto& ep : endpoints_) n += ep->partition_dropped_;
  return n;
}

double SimTransport::base_latency(std::uint32_t s, std::uint32_t d) const {
  const TopologyConfig& topo = config_.topology;
  double base = topo.latency;
  if (topo.regions > 1 && (s % topo.regions) != (d % topo.regions))
    base *= topo.cross_region;
  if (topo.asymmetry != 0.0) {
    // Deterministic per-directed-link skew in [-1, 1): (s, d) and (d, s)
    // hash independently, so routes are asymmetric like real WAN paths.
    const std::uint64_t h =
        mix64(seed_ ^ kSkewSalt) ^
        mix64(std::uint64_t(s) * endpoints_.size() + d);
    const double u =
        double(h >> 11) * (1.0 / 9007199254740992.0) * 2.0 - 1.0;
    base *= 1.0 + topo.asymmetry * u;
  }
  return std::max(base, 0.0);
}

double SimEndpoint::compute_draw() {
  const ComputeModel& c = owner_->config_.compute;
  return c.phase * compute_rng_.uniform(1.0 - c.jitter, 1.0 + c.jitter) *
         straggler_;
}

transport::SendReceipt SimEndpoint::send(
    std::uint32_t dst, const transport::MessageHeader& header,
    std::span<const double> value, double now, bool allow_drop) {
  ASYNCIT_CHECK(dst < owner_->endpoints_.size() && dst != rank_);
  SimEngine* engine = owner_->engine_;
  const double t = engine != nullptr ? engine->now() : now;
  const TopologyConfig& topo = owner_->config_.topology;
  ++sent_;
  // A severed link loses everything crossing the cut, control frames
  // included — that IS the modelled failure, so allow_drop does not
  // apply. Checked before the loss-model draws: a partitioned link
  // carries no traffic, so it consumes no draws (the per-link stream is
  // a function of the frames the link actually carried).
  for (const PartitionWindow& w : topo.partitions) {
    if (t >= w.t0 && t < w.t1 &&
        (rank_ < w.boundary) != (dst < w.boundary)) {
      ++dropped_;
      ++partition_dropped_;
      return transport::SendReceipt{false, t, 0.0};
    }
  }
  // Fixed per-frame draw order (latency, then drop if drop_prob > 0),
  // consumed regardless of outcome — LinkStamper's replay-determinism
  // contract.
  Rng& link = links_[dst];
  const double jitter_mult =
      link.uniform(1.0 - topo.jitter, 1.0 + topo.jitter);
  const bool drop_draw =
      topo.drop_prob > 0.0 && link.bernoulli(topo.drop_prob);
  const bool droppable =
      allow_drop && (!net::is_control(header.kind) || topo.drop_control);
  if (drop_draw && droppable) {
    ++dropped_;
    return transport::SendReceipt{false, t, 0.0};
  }
  double latency =
      std::max(owner_->base_latency(rank_, dst) * jitter_mult, 0.0);
  if (topo.bandwidth > 0.0) {
    // Serialization delay charged at the frame's TRUE wire size (the TCP
    // framing: header + payload, quantized frames at their packed size)
    // plus a notional 8-byte transport overhead — for raw full-width
    // frames this is exactly the historical 8*count + 64 bytes, so
    // existing sweeps replay unchanged, while delta/codec frames now pay
    // what they would actually cost on a real link.
    latency += (double(transport::wire_frame_bytes(value.size(),
                                                   header.quant_bits)) +
                8.0) /
               topo.bandwidth;
  }
  double deliver_at = t + latency;
  if (!fifo_floor_.empty()) {
    deliver_at = std::max(deliver_at, fifo_floor_[dst]);
    fifo_floor_[dst] = deliver_at;
  }
  SimEndpoint& station = *owner_->endpoints_[dst];
  net::Message m = station.pool_.acquire();
  m.src = rank_;
  m.block = header.block;
  m.tag = header.tag;
  m.round = header.round;
  m.partial = header.partial;
  m.complete = header.complete;
  m.kind = header.kind;
  m.offset = header.offset;
  m.injected_delay = header.injected_delay;  // chaos latency rides along
  m.t_send = t;
  m.deliver_at = deliver_at;
  m.value.assign(value.begin(), value.end());
  Pending p;
  p.deliver_at = deliver_at;
  p.seq = owner_->next_seq_++;
  p.msg = std::move(m);
  station.pending_.push_back(std::move(p));
  std::push_heap(station.pending_.begin(), station.pending_.end(),
                 PendingLater{});
  ++station.activity_;
  if (engine != nullptr) {
    // Low 16 bits of the sender identify the waker in the event log.
    engine->wake(dst, deliver_at, static_cast<std::uint16_t>(rank_));
  }
  return transport::SendReceipt{true, t, deliver_at};
}

std::size_t SimEndpoint::drain(double now, std::vector<net::Message>& out) {
  std::size_t n = 0;
  while (!pending_.empty() && pending_.front().deliver_at <= now) {
    std::pop_heap(pending_.begin(), pending_.end(), PendingLater{});
    Pending p = std::move(pending_.back());
    pending_.pop_back();
    delays_.add(now - p.msg.t_send);
    out.push_back(std::move(p.msg));
    ++n;
  }
  delivered_ += n;
  return n;
}

std::size_t SimEndpoint::receive(double now, std::vector<net::Message>& out) {
  SimEngine* engine = owner_->engine_;
  if (engine != nullptr && engine->in_fiber()) {
    // Virtual time moves HERE: one compute draw per drain, charged
    // before maturity is evaluated, so frames landing inside the phase
    // are visible at its end and a bare gate poll still advances the
    // clock (guaranteed progress for wait loops).
    engine->advance(compute_draw());
    return drain(engine->now(), out);
  }
  return drain(now, out);
}

void SimEndpoint::recycle(std::vector<net::Message>& consumed) {
  for (net::Message& m : consumed) pool_.recycle(std::move(m));
  consumed.clear();
}

void SimEndpoint::wait_for_activity(std::uint64_t seen,
                                    double timeout_seconds) {
  if (activity_ > seen) return;
  SimEngine* engine = owner_->engine_;
  if (engine != nullptr && engine->in_fiber()) {
    engine->wait_until(engine->now() + std::max(timeout_seconds, 0.0));
  }
  // Passive mode: no thread to wait on — scripted drivers poll.
}

double SimEndpoint::next_delivery() const {
  return pending_.empty() ? kInf : pending_.front().deliver_at;
}

}  // namespace asyncit::simnet
