#include "asyncit/simnet/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "asyncit/support/check.hpp"

namespace asyncit::simnet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

thread_local SimEngine* g_active = nullptr;

}  // namespace

SimEngine::SimEngine() : SimEngine(Options{}) {}

SimEngine::SimEngine(Options options) : options_(std::move(options)) {}

SimEngine::~SimEngine() = default;

SimEngine* SimEngine::active() { return g_active; }

std::uint64_t SimEngine::now_ns() const {
  return static_cast<std::uint64_t>(std::llround(now() * 1e9));
}

void SimEngine::spawn(std::uint32_t rank, std::function<void()> body) {
  ASYNCIT_CHECK_MSG(!running_, "spawn() after run() started");
  if (rank >= rank_to_task_.size()) {
    rank_to_task_.resize(rank + 1, kNoTask);
  }
  ASYNCIT_CHECK_MSG(rank_to_task_[rank] == kNoTask, "duplicate rank spawned");
  const std::size_t idx = tasks_.size();
  rank_to_task_[rank] = idx;
  Task task;
  task.fiber = std::make_unique<Fiber>(options_.stack_bytes, std::move(body));
  task.rank = rank;
  task.earliest = kInf;
  tasks_.push_back(std::move(task));
  push(idx, 0.0, EventKind::kSpawn, 0);
}

void SimEngine::push(std::size_t task, double t, EventKind kind,
                     std::uint16_t aux) {
  Ev ev;
  ev.t = t;
  ev.seq = next_seq_++;
  ev.task = static_cast<std::uint32_t>(task);
  ev.gen = tasks_[task].gen;
  ev.kind = static_cast<std::uint16_t>(kind);
  ev.aux = aux;
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), EvLater{});
  tasks_[task].earliest = std::min(tasks_[task].earliest, t);
}

void SimEngine::run() {
  ASYNCIT_CHECK_MSG(!running_, "run() is not reentrant");
  running_ = true;
  SimEngine* prev_active = g_active;
  g_active = this;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EvLater{});
    const Ev ev = heap_.back();
    heap_.pop_back();
    Task& task = tasks_[ev.task];
    // Stale: the task already dispatched for another reason since this
    // was pushed (e.g. a wake() beat a wait_until() deadline).
    if (ev.gen != task.gen || task.fiber->done()) continue;
    ASYNCIT_CHECK_MSG(ev.t >= now_, "event queue must be monotone");
    now_ = ev.t;
    accrued_ = 0.0;
    ++task.gen;  // every other pending event for this task is now stale
    task.waiting = false;
    task.earliest = kInf;
    EventRecord rec;
    rec.t = ev.t;
    rec.seq = ev.seq;
    rec.rank = task.rank;
    rec.kind = ev.kind;
    rec.aux = ev.aux;
    unsigned char bytes[sizeof(EventRecord)];
    std::memcpy(bytes, &rec, sizeof rec);
    for (unsigned char b : bytes) {
      hash_ ^= b;
      hash_ *= 1099511628211ull;  // FNV-1a prime
    }
    ++dispatched_;
    if (options_.record_log) {
      if (log_.size() < options_.log_capacity) {
        log_.push_back(rec);
      } else {
        log_truncated_ = true;
      }
    }
    current_ = ev.task;
    task.fiber->resume();
    current_ = kNoTask;
  }
  // Every live fiber keeps one pending event (advance/wait_until always
  // push), so a drained queue with a live fiber is a lost wakeup.
  for (const Task& task : tasks_) {
    ASYNCIT_CHECK_MSG(task.fiber->done(),
                      "event queue drained with a live fiber (lost wakeup)");
  }
  g_active = prev_active;
  running_ = false;
}

std::uint32_t SimEngine::current_rank() const {
  ASYNCIT_CHECK(in_fiber());
  return tasks_[current_].rank;
}

void SimEngine::charge(double dt) {
  ASYNCIT_CHECK(in_fiber() && dt >= 0.0);
  accrued_ += dt;
}

void SimEngine::suspend() {
  const std::size_t self = current_;
  tasks_[self].fiber->yield();
  // run() re-set now_/accrued_/current_ when it dispatched our resume.
}

void SimEngine::advance(double dt) {
  ASYNCIT_CHECK(in_fiber() && dt >= 0.0);
  const double deadline = now() + dt;
  accrued_ = 0.0;
  push(current_, deadline, EventKind::kAdvance, 0);
  suspend();
}

void SimEngine::wait_until(double deadline) {
  ASYNCIT_CHECK(in_fiber());
  deadline = std::max(deadline, now());
  accrued_ = 0.0;
  tasks_[current_].waiting = true;
  push(current_, deadline, EventKind::kTimeout, 0);
  suspend();
}

void SimEngine::wake(std::uint32_t rank, double at, std::uint16_t aux) {
  ASYNCIT_CHECK(rank < rank_to_task_.size() &&
                rank_to_task_[rank] != kNoTask);
  Task& task = tasks_[rank_to_task_[rank]];
  if (task.fiber->done()) return;
  // Only a task blocked in wait_until() may be resumed early; a task
  // that is running or sleeping in advance() is mid-computation, and
  // shortening that would let message arrivals rewrite compute costs.
  // Such a task finds the message via Endpoint::activity() on its next
  // poll instead (the transport bumps the counter at send time).
  if (!task.waiting) return;
  at = std::max(at, now());
  if (at >= task.earliest) return;  // already waking at least this early
  push(rank_to_task_[rank], at, EventKind::kWake, aux);
}

}  // namespace asyncit::simnet
