// One-call simulated worlds: N ranks of the unchanged net::/train::
// node runtimes, cooperatively scheduled over virtual time (DESIGN.md
// §10).
//
// run_world spawns one engine fiber per rank, each executing
// net::run_node over a SimTransport endpoint — the same code path a real
// deployment runs, with three substitutions wired here:
//
//   clock  every rank reads a shared SimClock (WallTimer whose
//          seconds() is engine virtual time, starting at 0), so
//          solve.max_seconds is a DETERMINISTIC VIRTUAL budget: the
//          wall-budget flake class of the chaos tests cannot exist over
//          simnet, because "time" no longer depends on host load.
//   obs    per-rank trace arming is forced off; the world arms the ONE
//          process-global TraceRecorder here, with set_trace_clock()
//          routing event timestamps through the active engine — traces
//          and the admissibility auditor see virtual nanoseconds.
//   memory per-source link_delays histograms are forced off (O(world^2)
//          DelayHistograms would dwarf the actual solver state at 1000
//          ranks); endpoint-level delay aggregates remain.
//
// Determinism contract: everything a fiber can observe derives from
// (options, seed) — event dispatch order, per-link draws, compute draws,
// delivery order. Two run_world calls with equal options produce
// byte-identical event logs and bit-identical iterates; the engine's
// log_hash is the cheap witness the tests and asyncit_sim compare.
#pragma once

#include <cstdint>
#include <vector>

#include "asyncit/net/mp_runtime.hpp"
#include "asyncit/operators/operator.hpp"
#include "asyncit/simnet/config.hpp"
#include "asyncit/simnet/engine.hpp"
#include "asyncit/support/timer.hpp"
#include "asyncit/train/train.hpp"

namespace asyncit::simnet {

/// WallTimer whose seconds() is the engine's virtual clock. Handed to
/// run_node / run_training_node as the external clock: every budget and
/// timestamp the runtimes derive from "wall time" becomes virtual.
class SimClock final : public WallTimer {
 public:
  explicit SimClock(const SimEngine* engine) : engine_(engine) {}
  double seconds() const override { return engine_->now(); }

 private:
  const SimEngine* engine_;
};

struct WorldOptions {
  /// Solver options; `workers` is the world size (every rank is local).
  /// obs.trace_level/audit apply to the WORLD (single recorder, armed
  /// here); obs.link_delays is ignored (forced off, see above).
  net::MpOptions mp;
  SimConfig sim;
  /// Stack the chaos delay-model decorator over the sim fabric (the
  /// virtual-time variant of chaos-over-tcp: same sender-side seeded
  /// draws, no sockets, no wall clock).
  bool chaos = false;
  net::DeliveryPolicy chaos_policy;
};

struct WorldResult {
  std::vector<net::MpResult> ranks;  ///< per-rank results, rank order
  double virtual_seconds = 0.0;      ///< engine clock at quiescence
  double wall_seconds = 0.0;         ///< real cost of the simulation
  std::uint64_t events = 0;          ///< dispatched engine events
  std::uint64_t log_hash = 0;        ///< FNV-1a over the dispatch log
  std::vector<EventRecord> event_log;  ///< full log (sim.record_log)
  bool log_truncated = false;
  std::uint64_t partition_dropped = 0;
  bool all_converged = false;
  /// Max per-rank final oracle error (solve.x_star runs), the scalar
  /// the determinism checks compare across runs.
  double final_residual = 0.0;
  std::uint64_t total_updates = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t obs_events_recorded = 0;
  std::uint64_t obs_events_dropped = 0;
};

/// Runs options.mp.workers ranks of the solve runtime to quiescence
/// (every rank met its stopping criterion or virtual budget).
/// Single-threaded; returns when the event queue drains.
WorldResult run_world(const op::BlockOperator& op, const la::Vector& x0,
                      const WorldOptions& options);

struct TrainWorldOptions {
  /// options.workers SGD workers + the rank-0 parameter server, i.e.
  /// workers + 1 fibers. obs (if any) arms the world recorder here,
  /// exactly as in WorldOptions.
  train::TrainOptions train;
  SimConfig sim;
};

struct TrainWorldResult {
  std::vector<train::TrainResult> ranks;  ///< [0] server, then workers
  double virtual_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t log_hash = 0;
};

/// The PSGD train stack (parameter server + workers) over virtual time.
TrainWorldResult run_train_world(const train::Dataset& data,
                                 const la::Vector& x0,
                                 const TrainWorldOptions& options);

}  // namespace asyncit::simnet
