// The parameter-server and worker state machines of the PSGD mode.
//
// Both are single-threaded pump() loops over one transport::Endpoint —
// the same driving contract as net::Peer — so the threaded orchestrator
// (train.cpp), the per-process node runtime, and the allocation test can
// all drive them: pump() performs one receive/compute/send slice and
// returns whether it made progress; a driver that sees no progress
// blocks on Endpoint::wait_for_activity.
//
// Wire mapping (DESIGN.md §9): the model is logical block 0.
//   worker -> server   delta:  kValue, partial=true, offset/count =
//                      nonzero support of the scaled delta, round =
//                      worker clock (completed steps), tag = per-worker
//                      monotone send counter.
//   server -> worker   params: kValue, partial=false, full model
//                      payload, round = server round (min active worker
//                      clock — the SSP gate value), tag = parameter
//                      version (newest-wins at the worker), offset = the
//                      live adaptive-staleness bound (0 when steering is
//                      off — offset has no placement meaning on a full
//                      model frame, so the field is free to carry it).
//   either direction   kStop:  empty control frame; a worker announces
//                      budget exhaustion, the server announces
//                      target-accuracy / wall-budget termination.
//
// The delta hot path is allocation-free in steady state: scratch and
// pending buffers are sized at construction, receive batches are
// recycled to the endpoint's pool, and sends borrow pooled frames
// (tests/alloc_test.cpp pins this).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "asyncit/obs/metrics.hpp"
#include "asyncit/obs/steering.hpp"
#include "asyncit/support/rng.hpp"
#include "asyncit/support/timer.hpp"
#include "asyncit/train/sgd.hpp"
#include "asyncit/train/train.hpp"
#include "asyncit/transport/transport.hpp"

namespace asyncit::train {

/// Shared read-only context (outlives server and workers).
struct PsgdContext {
  const Dataset* data = nullptr;
  const TrainOptions* options = nullptr;
  const WallTimer* clock = nullptr;  ///< run clock (seconds since start)
};

/// Rank 0: folds worker deltas into the authoritative model under the
/// configured discipline and publishes parameter versions.
class PsgdServer {
 public:
  PsgdServer(const PsgdContext& ctx, const la::Vector& x0,
             transport::Endpoint& endpoint);

  /// One slice: drain arrivals, fold deltas (barrier-apply for kBsp),
  /// eval/stop checks. Returns true if any work was done.
  bool pump();
  bool finished() const { return finished_; }

  const la::Vector& model() const { return x_; }
  /// High-water min active-worker clock (survives end-of-run worker
  /// deactivation, when min_active() would degenerate to 0).
  std::uint64_t rounds() const { return rounds_seen_; }
  std::uint64_t versions() const { return version_; }
  std::uint64_t deltas_applied() const { return deltas_applied_; }
  std::uint64_t examples_processed() const { return examples_; }
  std::uint64_t frames_rejected() const { return frames_rejected_; }
  std::uint64_t workers_stopped() const { return workers_stopped_; }
  bool target_reached() const { return target_reached_; }
  double last_loss() const { return last_loss_; }
  double last_accuracy() const { return last_accuracy_; }
  std::uint64_t steering_decisions() const {
    return steer_ ? steer_->decisions() : 0;
  }
  /// Current SSP bound: the controller's when steering, the static
  /// option otherwise (kBsp reports its effective 0).
  std::uint64_t staleness_bound() const {
    return steer_ ? steer_->bound() : clock_.staleness();
  }

 private:
  double now() const { return ctx_.clock->seconds(); }
  std::size_t workers() const { return ctx_.options->workers; }
  void handle(const net::Message& m);
  void apply_delta(std::span<const double> payload, std::uint32_t offset,
                   double factor);
  void apply_bsp_round_if_complete();
  void send_params(std::uint32_t dst);
  void broadcast_params();
  void maybe_eval();
  void finish(bool broadcast_stop);

  PsgdContext ctx_;
  transport::Endpoint* endpoint_;
  la::Vector x_;
  SspClock clock_;  ///< per-worker completed-step clocks (all disciplines)
  /// Adaptive staleness (kSsp + sgd.adaptive.enabled): decisions re-point
  /// clock_ and are pushed to the workers via the params-frame offset.
  std::unique_ptr<obs::StalenessController> steer_;
  std::uint64_t steer_gap_max_ = 0;  ///< window max of arrival clock gaps
  std::uint64_t steer_window_ = 0;   ///< deltas folded since last decision

  // BSP barrier: one buffered delta per worker per round, applied in
  // rank order with factorDelta = 1/W (bit-reproducible averaging).
  std::vector<double> pending_;        ///< workers() * features, flat
  std::vector<DeltaSpan> pending_span_;
  std::vector<std::uint8_t> pending_full_;
  std::vector<std::uint8_t> worker_stopped_;

  std::vector<net::Message> inbox_;

  bool finished_ = false;
  bool target_reached_ = false;
  bool stop_broadcast_ = false;
  std::uint64_t version_ = 0;
  std::uint64_t bsp_round_ = 0;
  std::uint64_t rounds_seen_ = 0;
  std::uint64_t deltas_applied_ = 0;
  std::uint64_t examples_ = 0;
  std::uint64_t frames_rejected_ = 0;
  std::uint64_t workers_stopped_ = 0;
  std::uint64_t next_eval_ = 0;
  double last_loss_ = -1.0;
  double last_accuracy_ = -1.0;

  obs::Counter* m_deltas_ = nullptr;  ///< cached registry handles
  obs::Gauge* m_loss_ = nullptr;
  obs::Gauge* m_accuracy_ = nullptr;
};

/// Rank w+1: samples minibatches from shard w, ships scaled deltas, and
/// tracks the newest published parameters (self-applying its own delta
/// between publications in the asynchronous disciplines).
class PsgdWorker {
 public:
  /// `w` is the worker index in [0, workers); the endpoint's rank must
  /// be w + 1.
  PsgdWorker(const PsgdContext& ctx, std::size_t w, const la::Vector& x0,
             transport::Endpoint& endpoint);

  bool pump();
  bool finished() const { return finished_; }

  const la::Vector& model() const { return x_; }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t examples_processed() const {
    return steps_ * ctx_.options->sgd.batch_size;
  }
  std::uint64_t step_budget() const { return step_budget_; }
  std::uint64_t frames_rejected() const { return frames_rejected_; }
  /// Newest adaptive-staleness bound a params frame carried (0 until the
  /// server publishes one; stays 0 with steering off).
  std::uint64_t steered_bound() const { return steered_bound_; }
  /// The server's stop frame (not a local budget) ended this worker.
  bool stopped_by_server() const { return stopped_by_server_; }

 private:
  double now() const { return ctx_.clock->seconds(); }
  bool drain();  ///< returns true if anything arrived
  bool admissible() const;
  void step();
  void finish(bool notify_server);

  PsgdContext ctx_;
  std::size_t w_;
  transport::Endpoint* endpoint_;
  la::BlockRange shard_;
  Rng rng_;
  la::Vector x_;       ///< local parameter copy
  la::Vector delta_;   ///< step scratch
  std::vector<net::Message> inbox_;

  bool finished_ = false;
  bool stopped_by_server_ = false;
  std::uint64_t steps_ = 0;          ///< == completed-step clock
  std::uint64_t step_budget_ = 0;
  std::uint64_t send_seq_ = 0;
  std::uint64_t server_round_ = 0;   ///< newest published round seen
  std::uint64_t param_version_ = 0;  ///< newest published version seen
  std::uint64_t steered_bound_ = 0;  ///< newest steered bound seen
  std::uint64_t frames_rejected_ = 0;
  obs::Counter* m_steps_ = nullptr;  ///< cached registry handle
};

/// Per-worker RNG stream: child `w` of the run seed, identical in the
/// distributed run and the serial oracle (split() consumed in worker
/// order). Exposed so tests can replay a worker's batch sequence.
Rng worker_stream(std::uint64_t seed, std::size_t w);

}  // namespace asyncit::train
