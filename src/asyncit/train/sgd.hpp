// Minibatch SGD math + the SSP admission clock.
//
// Everything here is allocation-free in steady state: the minibatch
// gradient accumulates into caller-owned scratch (sized once per run),
// loss/accuracy reduce to scalars over CSR rows, and SspClock is a flat
// per-worker table. tests/alloc_test.cpp pins the delta path at zero
// steady-state allocations; tests/train_test.cpp drives SspClock on a
// virtual clock with no transport at all.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "asyncit/support/rng.hpp"
#include "asyncit/train/dataset.hpp"

namespace asyncit::train {

/// Support range of a computed delta: the frame payload is
/// delta[offset, offset + count) — the partial-block offset/count fields
/// of the existing wire format carry it unchanged. count == 0 means the
/// delta was exactly zero and nothing needs to travel.
struct DeltaSpan {
  std::uint32_t offset = 0;
  std::uint32_t count = 0;
};

/// One worker step: sample `batch_size` rows uniformly (with replacement)
/// from [shard.begin, shard.end) using `rng`, and write
///   delta = −lr · ( (1/batch) Σ_h ℓ'_h(x) + ridge · x )
/// into `delta` (resized-once scratch, |delta| == features). Returns the
/// nonzero support range — the sub-range a delta frame ships.
///
/// The batch draw consumes exactly `batch_size` rng values, so a serial
/// oracle replaying the same per-worker streams reproduces the batch
/// sequence (the BSP parity test in tests/train_test.cpp).
DeltaSpan sgd_minibatch_delta(const Dataset& data, la::BlockRange shard,
                              std::size_t batch_size, double learning_rate,
                              std::span<const double> x, Rng& rng,
                              std::span<double> delta);

/// Mean logistic loss + ridge over the full dataset. Allocation-free.
double dataset_loss(const Dataset& data, std::span<const double> x);

/// Fraction of rows classified correctly by sign(⟨a_h, x⟩).
double dataset_accuracy(const Dataset& data, std::span<const double> x);

/// The SSP bounded-staleness rule on per-worker clocks (yxtj/PSGD's
/// deltaIter table; the Feyzmahdavian–Johansson bounded-delay setting).
/// A worker's clock counts COMPLETED steps; the server admits a worker
/// into step `c` iff c ≤ min_active() + staleness, and broadcasts a new
/// parameter round exactly when the minimum advances. Workers that leave
/// (stop frames, crash eviction) are deactivated so they cannot pin the
/// minimum forever. BSP is the staleness = 0 special case plus the
/// all-deltas barrier; TAP ignores the rule entirely (Theorem 1 licenses
/// unbounded delays).
class SspClock {
 public:
  SspClock(std::size_t workers, std::uint64_t staleness)
      : completed_(workers, 0), active_(workers, 1), staleness_(staleness) {}

  /// Monotone: records that worker `w` has completed `completed` steps.
  void advance(std::size_t w, std::uint64_t completed) {
    if (completed > completed_[w]) completed_[w] = completed;
  }

  /// Worker `w` left the run; it no longer holds the minimum back.
  void deactivate(std::size_t w) { active_[w] = 0; }

  std::size_t active() const {
    std::size_t n = 0;
    for (const auto a : active_) n += a;
    return n;
  }

  /// Min completed-step clock over active workers (0 when none remain).
  std::uint64_t min_active() const {
    std::uint64_t m = ~std::uint64_t{0};
    bool any = false;
    for (std::size_t w = 0; w < completed_.size(); ++w) {
      if (!active_[w]) continue;
      any = true;
      if (completed_[w] < m) m = completed_[w];
    }
    return any ? m : 0;
  }

  /// May a worker whose clock is `clock` start its next step?
  bool admissible(std::uint64_t clock) const {
    return clock <= min_active() + staleness_;
  }

  std::uint64_t staleness() const { return staleness_; }

  /// Adaptive steering (obs/steering.hpp): the server re-points the bound
  /// at a StalenessController decision. Monotone per decision, not over
  /// time — lowers are legal and gate future admissions only.
  void set_staleness(std::uint64_t staleness) { staleness_ = staleness; }

 private:
  std::vector<std::uint64_t> completed_;
  std::vector<std::uint8_t> active_;
  std::uint64_t staleness_;
};

}  // namespace asyncit::train
