#include "asyncit/train/psgd.hpp"

#include <algorithm>

#include "asyncit/obs/metrics.hpp"
#include "asyncit/obs/trace_recorder.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::train {

namespace {

/// Per-worker minibatch step budget for the configured epoch budget.
std::uint64_t step_budget_for(const SgdOptions& sgd, std::size_t shard_rows) {
  const std::uint64_t per_epoch =
      (shard_rows + sgd.batch_size - 1) / sgd.batch_size;
  return std::max<std::uint64_t>(1, sgd.max_epochs * per_epoch);
}

}  // namespace

Rng worker_stream(std::uint64_t seed, std::size_t w) {
  // One base stream per run; children split off in worker order, so the
  // serial oracle and the distributed run draw identical batch
  // sequences (splitmix64 seeding keeps the children independent).
  Rng base(seed ^ 0x747261696e5347ULL);  // "trainSG"
  Rng child = base.split();
  for (std::size_t i = 0; i < w; ++i) child = base.split();
  return child;
}

// ---------------------------------------------------------------------------
// PsgdServer

PsgdServer::PsgdServer(const PsgdContext& ctx, const la::Vector& x0,
                       transport::Endpoint& endpoint)
    : ctx_(ctx),
      endpoint_(&endpoint),
      x_(x0),
      clock_(ctx.options->workers,
             ctx.options->sgd.discipline == Discipline::kBsp
                 ? 0
                 : ctx.options->sgd.staleness) {
  ASYNCIT_CHECK(endpoint.rank() == 0);
  const std::size_t W = workers();
  const std::size_t n = ctx_.data->features();
  ASYNCIT_CHECK(W >= 1 && x_.size() == n);
  if (ctx_.options->sgd.discipline == Discipline::kBsp) {
    pending_.assign(W * n, 0.0);
    pending_span_.assign(W, DeltaSpan{});
    pending_full_.assign(W, 0);
  }
  worker_stopped_.assign(W, 0);
  if (ctx_.options->sgd.discipline == Discipline::kSsp &&
      ctx_.options->sgd.adaptive.enabled)
    steer_ = std::make_unique<obs::StalenessController>(
        ctx_.options->sgd.adaptive, ctx_.options->sgd.staleness);
  inbox_.reserve(4 * W);
  // Cached registry handles: find-or-create once here so the hot path
  // never rebuilds the name strings (the zero-alloc discipline).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  m_deltas_ = &reg.counter("train.deltas_applied");
  m_loss_ = &reg.gauge("train.loss");
  m_accuracy_ = &reg.gauge("train.accuracy");
  next_eval_ = std::max<std::uint64_t>(1, ctx_.options->sgd.eval_every);
}

void PsgdServer::apply_delta(std::span<const double> payload,
                             std::uint32_t offset, double factor) {
  for (std::size_t i = 0; i < payload.size(); ++i)
    x_[offset + i] += factor * payload[i];
}

void PsgdServer::send_params(std::uint32_t dst) {
  transport::MessageHeader h;
  h.block = 0;
  h.tag = version_;
  h.round = ctx_.options->sgd.discipline == Discipline::kBsp ? bsp_round_
                                                             : rounds_seen_;
  // offset has no placement meaning on a full model frame; it carries
  // the live adaptive bound to the workers' self-gate (0 = steering off).
  if (steer_) h.offset = static_cast<std::uint32_t>(steer_->bound());
  const bool tap = ctx_.options->sgd.discipline == Discipline::kTap;
  endpoint_->send(dst, h, x_, now(), /*allow_drop=*/tap);
}

void PsgdServer::broadcast_params() {
  const std::size_t W = workers();
  for (std::size_t w = 0; w < W; ++w)
    if (!worker_stopped_[w]) send_params(static_cast<std::uint32_t>(w + 1));
}

void PsgdServer::maybe_eval() {
  const SgdOptions& sgd = ctx_.options->sgd;
  const std::uint64_t progress =
      sgd.discipline == Discipline::kBsp ? bsp_round_ : deltas_applied_;
  if (progress < next_eval_) return;
  next_eval_ = progress + std::max<std::uint64_t>(1, sgd.eval_every);
  last_loss_ = dataset_loss(*ctx_.data, x_);
  last_accuracy_ = dataset_accuracy(*ctx_.data, x_);
  m_loss_->set(last_loss_);
  m_accuracy_->set(last_accuracy_);
  obs::record(obs::EventType::kTrainStep, 2,
              static_cast<std::uint32_t>(rounds()), deltas_applied_,
              last_accuracy_);
  if (sgd.target_accuracy > 0.0 && last_accuracy_ >= sgd.target_accuracy) {
    target_reached_ = true;
    finish(/*broadcast_stop=*/true);
  }
}

void PsgdServer::handle(const net::Message& m) {
  const std::size_t W = workers();
  const std::size_t n = ctx_.data->features();
  if (m.src < 1 || m.src > W) {
    ++frames_rejected_;
    obs::record(obs::EventType::kFrameReject,
                static_cast<std::uint8_t>(m.kind), m.src, m.block, 0.0);
    return;
  }
  const std::size_t w = m.src - 1;
  if (m.kind == net::MsgKind::kStop) {
    if (!worker_stopped_[w]) {
      worker_stopped_[w] = 1;
      ++workers_stopped_;
      clock_.deactivate(w);
    }
    return;
  }
  if (m.kind != net::MsgKind::kValue || m.block != 0 || m.offset > n ||
      m.value.size() > n - m.offset) {
    ++frames_rejected_;
    obs::record(obs::EventType::kFrameReject,
                static_cast<std::uint8_t>(m.kind), m.src, m.block, 0.0);
    return;
  }

  // The steering signal, measured BEFORE this arrival moves the clocks:
  // how far ahead of the published min the sender's clock ran — exactly
  // the staleness this delta needed admitted.
  const std::uint64_t arrival_gap =
      m.round > rounds_seen_ ? m.round - rounds_seen_ : 0;
  clock_.advance(w, m.round + 1);
  if (clock_.active() > 0)
    rounds_seen_ = std::max(rounds_seen_, clock_.min_active());
  const SgdOptions& sgd = ctx_.options->sgd;
  switch (sgd.discipline) {
    case Discipline::kBsp: {
      // Buffer until the barrier; applied in rank order by
      // apply_bsp_round_if_complete (factorDelta = 1/W averaging).
      double* row = pending_.data() + w * n;
      const DeltaSpan old = pending_span_[w];
      std::fill(row + old.offset, row + old.offset + old.count, 0.0);
      std::copy(m.value.begin(), m.value.end(), row + m.offset);
      pending_span_[w] = {m.offset,
                          static_cast<std::uint32_t>(m.value.size())};
      pending_full_[w] = 1;
      break;
    }
    case Discipline::kTap: {
      // Any delta advances the model (Theorem 1's totally asynchronous
      // regime); the sender gets the fresh parameters right back.
      apply_delta(m.value, m.offset, 1.0);
      ++version_;
      ++deltas_applied_;
      examples_ += sgd.batch_size;
      obs::record(obs::EventType::kTrainStep, 1, m.src, version_, 1.0);
      m_deltas_->add();
      send_params(m.src);
      maybe_eval();
      break;
    }
    case Discipline::kSsp: {
      // Fold immediately; the min-clock broadcast happens post-drain in
      // pump() when the minimum advances.
      apply_delta(m.value, m.offset, 1.0);
      ++version_;
      ++deltas_applied_;
      examples_ += sgd.batch_size;
      obs::record(obs::EventType::kTrainStep, 1, m.src, version_, 1.0);
      m_deltas_->add();
      if (steer_) {
        steer_gap_max_ = std::max(steer_gap_max_, arrival_gap);
        if (++steer_window_ >= sgd.adaptive.decide_every) {
          const bool applied =
              steer_->decide(static_cast<double>(steer_gap_max_),
                             obs::SteeringDomain::kTrainSsp);
          steer_window_ = 0;
          steer_gap_max_ = 0;
          if (applied) {
            clock_.set_staleness(steer_->bound());
            // Push the new bound out even when the min hasn't advanced:
            // a raise must reach gated workers or it frees nobody.
            broadcast_params();
          }
        }
      }
      break;
    }
  }
}

void PsgdServer::apply_bsp_round_if_complete() {
  const std::size_t W = workers();
  const std::size_t n = ctx_.data->features();
  for (std::size_t w = 0; w < W; ++w)
    if (!worker_stopped_[w] && !pending_full_[w]) return;  // barrier open
  bool any = false;
  for (std::size_t w = 0; w < W; ++w)
    if (pending_full_[w]) { any = true; break; }
  if (!any) return;
  // factorDelta = 1/W over the FULL worker count (yxtj/PSGD bspInit):
  // rank-order application makes the float sum bit-reproducible against
  // the serial oracle.
  const double factor = 1.0 / static_cast<double>(W);
  const SgdOptions& sgd = ctx_.options->sgd;
  for (std::size_t w = 0; w < W; ++w) {
    if (!pending_full_[w]) continue;
    double* row = pending_.data() + w * n;
    const DeltaSpan s = pending_span_[w];
    apply_delta({row + s.offset, s.count}, s.offset, factor);
    std::fill(row + s.offset, row + s.offset + s.count, 0.0);
    pending_span_[w] = {0, 0};
    pending_full_[w] = 0;
    ++deltas_applied_;
    examples_ += sgd.batch_size;
    obs::record(obs::EventType::kTrainStep, 1,
                static_cast<std::uint32_t>(w + 1), version_ + 1, factor);
    m_deltas_->add();
  }
  ++bsp_round_;
  ++version_;
  broadcast_params();
  maybe_eval();
}

void PsgdServer::finish(bool broadcast_stop) {
  if (broadcast_stop && !stop_broadcast_) {
    transport::MessageHeader h;
    h.kind = net::MsgKind::kStop;
    const std::size_t W = workers();
    const double t = now();
    for (std::size_t w = 0; w < W; ++w)
      if (!worker_stopped_[w])
        endpoint_->send(static_cast<std::uint32_t>(w + 1), h, {}, t,
                        /*allow_drop=*/false);
    stop_broadcast_ = true;
  }
  finished_ = true;
}

bool PsgdServer::pump() {
  if (finished_) return false;
  const double t = now();
  const bool ssp = ctx_.options->sgd.discipline == Discipline::kSsp;
  const std::uint64_t prev_min =
      ssp && clock_.active() > 0 ? clock_.min_active() : 0;

  const std::size_t got = endpoint_->receive(t, inbox_);
  for (const net::Message& m : inbox_) {
    if (finished_) break;  // target reached mid-drain
    handle(m);
  }
  if (got > 0) endpoint_->recycle(inbox_);

  if (!finished_) {
    if (ctx_.options->sgd.discipline == Discipline::kBsp)
      apply_bsp_round_if_complete();
    if (ssp && clock_.active() > 0) {
      const std::uint64_t mn = clock_.min_active();
      if (mn > prev_min) {
        // The slowest active worker advanced: publish the new round so
        // gated workers can re-check clock <= round + staleness.
        broadcast_params();
      }
      maybe_eval();
    }
  }
  if (finished_) return true;

  if (t > ctx_.options->sgd.max_seconds) {
    finish(/*broadcast_stop=*/true);
    return true;
  }
  if (workers_stopped_ == workers()) {
    finish(/*broadcast_stop=*/false);
    return true;
  }
  return got > 0;
}

// ---------------------------------------------------------------------------
// PsgdWorker

PsgdWorker::PsgdWorker(const PsgdContext& ctx, std::size_t w,
                       const la::Vector& x0, transport::Endpoint& endpoint)
    : ctx_(ctx),
      w_(w),
      endpoint_(&endpoint),
      shard_(ctx.data->shard(w, ctx.options->workers)),
      rng_(worker_stream(ctx.options->seed, w)),
      x_(x0),
      delta_(la::zeros(ctx.data->features())) {
  ASYNCIT_CHECK(endpoint.rank() == w + 1);
  ASYNCIT_CHECK(shard_.size() >= 1);
  ASYNCIT_CHECK(x_.size() == ctx_.data->features());
  step_budget_ = step_budget_for(ctx_.options->sgd, shard_.size());
  inbox_.reserve(8);
  m_steps_ = &obs::MetricsRegistry::instance().counter("train.worker_steps");
}

bool PsgdWorker::drain() {
  const std::size_t n = ctx_.data->features();
  const std::size_t got = endpoint_->receive(now(), inbox_);
  for (const net::Message& m : inbox_) {
    if (m.kind == net::MsgKind::kStop) {
      stopped_by_server_ = true;
      finished_ = true;
      continue;
    }
    // offset on a full params frame is the adaptive-staleness bound, not
    // a placement (psgd.hpp wire mapping) — it is excluded from the
    // geometry validation and read as data below.
    if (m.kind != net::MsgKind::kValue || m.src != 0 || m.block != 0 ||
        m.partial || m.value.size() != n) {
      ++frames_rejected_;
      obs::record(obs::EventType::kFrameReject,
                  static_cast<std::uint8_t>(m.kind), m.src, m.block, 0.0);
      continue;
    }
    if (m.tag > param_version_) {
      param_version_ = m.tag;
      std::copy(m.value.begin(), m.value.end(), x_.begin());
      // The bound rides the version, not the round: a steering raise is
      // re-broadcast with a fresh version but an unchanged round.
      steered_bound_ = m.offset;
    }
    if (m.round > server_round_) server_round_ = m.round;
  }
  if (got > 0) endpoint_->recycle(inbox_);
  return got > 0;
}

bool PsgdWorker::admissible() const {
  switch (ctx_.options->sgd.discipline) {
    case Discipline::kBsp:
      // Step c needs the round-c parameters (== x after round c-1).
      return server_round_ >= steps_;
    case Discipline::kSsp: {
      // The bounded-staleness rule on the last published min clock. With
      // steering the gate follows the newest published bound; until the
      // first steered frame arrives the static option applies.
      const SgdOptions& sgd = ctx_.options->sgd;
      const std::uint64_t bound = sgd.adaptive.enabled && steered_bound_ > 0
                                      ? steered_bound_
                                      : sgd.staleness;
      return steps_ <= server_round_ + bound;
    }
    case Discipline::kTap:
      return true;
  }
  return true;
}

void PsgdWorker::step() {
  const SgdOptions& sgd = ctx_.options->sgd;
  const bool traced = obs::tracing_full();
  const std::uint64_t t0 = traced ? obs::phase_start_ns() : 0;
  const DeltaSpan span =
      sgd_minibatch_delta(*ctx_.data, shard_, sgd.batch_size,
                          sgd.learning_rate, x_, rng_, delta_);
  transport::MessageHeader h;
  h.block = 0;
  h.tag = ++send_seq_;
  h.round = steps_;  // the clock this delta was computed at
  h.partial = true;
  h.offset = span.offset;
  const bool tap = sgd.discipline == Discipline::kTap;
  endpoint_->send(0, h,
                  std::span<const double>(delta_.data() + span.offset,
                                          span.count),
                  now(), /*allow_drop=*/tap);
  if (sgd.discipline != Discipline::kBsp) {
    // Keep making progress on the local copy until the next published
    // version replaces it wholesale (the server folds this same delta
    // with factor 1, so nothing is counted twice).
    for (std::size_t i = span.offset; i < span.offset + span.count; ++i)
      x_[i] += delta_[i];
  }
  ++steps_;
  m_steps_->add();
  if (traced)
    obs::record_phase_end(obs::EventType::kTrainStep, 0,
                          static_cast<std::uint32_t>(steps_),
                          sgd.batch_size, t0);
}

void PsgdWorker::finish(bool notify_server) {
  if (notify_server) {
    transport::MessageHeader h;
    h.kind = net::MsgKind::kStop;
    endpoint_->send(0, h, {}, now(), /*allow_drop=*/false);
  }
  finished_ = true;
}

bool PsgdWorker::pump() {
  if (finished_) return false;
  const bool got = drain();
  if (finished_) return true;  // server stop frame
  if (now() > ctx_.options->sgd.max_seconds) {
    finish(/*notify_server=*/true);
    return true;
  }
  if (steps_ >= step_budget_) {
    finish(/*notify_server=*/true);
    return true;
  }
  if (!admissible()) return got;
  step();
  return true;
}

}  // namespace asyncit::train
