// Training dataset: sharded rows of a labelled design matrix.
//
// The PSGD mode (train/psgd.hpp) is data-parallel, not block-parallel:
// every rank holds the SAME model vector x and a WORKER owns a contiguous
// shard of dataset ROWS, not a block of coordinates. A Dataset is the
// value type both sides share — the server evaluates loss/accuracy over
// all rows, a worker samples minibatches from its shard.
//
// Datasets are built deterministically from a (config, seed) pair, so in
// one-rank-per-process deployments (tools/asyncit_node.cpp) every rank
// reconstructs an identical dataset from the launch config instead of
// shipping megabytes of design matrix over the wire.
#pragma once

#include <cstddef>
#include <vector>

#include "asyncit/linalg/csr_matrix.hpp"
#include "asyncit/linalg/partition.hpp"
#include "asyncit/problems/synthetic.hpp"

namespace asyncit::train {

/// L2-regularized logistic training set (labels in {-1, +1}). The loss
/// trained against is the MEAN logistic loss plus the ridge term:
///   f(x) = (1/m) Σ_h log(1 + exp(−z_h ⟨a_h, x⟩)) + (ridge/2) ‖x‖² .
/// (problems::LogisticFunction uses the SUM convention; the mean makes
/// the learning rate independent of m, the SGD convention.)
struct Dataset {
  la::CsrMatrix design;      ///< m×n
  std::vector<int> labels;   ///< m entries in {−1, +1}
  double ridge = 0.1;

  std::size_t samples() const { return design.rows(); }
  std::size_t features() const { return design.cols(); }

  /// Rows owned by worker `w` of `workers` (balanced contiguous shards).
  la::BlockRange shard(std::size_t w, std::size_t workers) const {
    return la::Partition::balanced(samples(), workers).range(w);
  }
};

/// Deterministic synthetic instance: the problems/ logistic generator
/// (separable hyperplane + label noise), repackaged row-major for SGD.
/// Same (cfg, seed) => bit-identical dataset in every process.
Dataset make_synthetic_dataset(const problems::LogisticConfig& cfg,
                               std::uint64_t seed);

}  // namespace asyncit::train
