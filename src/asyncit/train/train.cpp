#include "asyncit/train/train.hpp"

#include <memory>
#include <thread>

#include "asyncit/obs/metrics.hpp"
#include "asyncit/obs/trace_recorder.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/support/timer.hpp"
#include "asyncit/train/psgd.hpp"
#include "asyncit/transport/inproc.hpp"

namespace asyncit::train {

namespace {

/// Gate-wait bound while a pump() made no progress — the same latency /
/// CPU trade as net::Peer's kMaxGateWait.
constexpr double kMaxGateWait = 1e-3;

/// Drives one role to completion on the calling thread.
template <typename Role>
void drive(Role& role, transport::Endpoint& ep) {
  while (!role.finished()) {
    const std::uint64_t seen = ep.activity();
    if (!role.pump()) ep.wait_for_activity(seen, kMaxGateWait);
  }
}

void arm_obs(const TrainOptions& options) {
  if (options.obs.trace_level == obs::TraceLevel::kOff) return;
  obs::TraceConfig tc;
  tc.level = options.obs.trace_level;
  tc.ring_capacity = options.obs.trace_ring_capacity;
  obs::TraceRecorder::instance().enable(tc);
  obs::MetricsRegistry::instance().reset();
}

void disarm_obs(const TrainOptions& options, TrainResult& result) {
  if (options.obs.trace_level == obs::TraceLevel::kOff) return;
  obs::TraceRecorder::instance().disable();
  const obs::RecorderStats os = obs::TraceRecorder::instance().stats();
  result.obs_events_recorded = os.recorded;
  result.obs_events_dropped = os.dropped;
}

std::uint64_t epochs_of(std::uint64_t steps, std::size_t batch,
                        std::size_t shard_rows) {
  return shard_rows == 0 ? 0 : steps * batch / shard_rows;
}

void fill_endpoint_stats(const transport::Endpoint& ep, TrainResult& r) {
  r.messages_sent += ep.sent();
  r.messages_dropped += ep.dropped();
  r.messages_delivered += ep.delivered();
}

}  // namespace

TrainResult run_training(const Dataset& data, const la::Vector& x0,
                         const TrainOptions& options) {
  ASYNCIT_CHECK(options.chaos.delivery.min_latency >= 0.0 &&
                options.chaos.delivery.max_latency >=
                    options.chaos.delivery.min_latency);
  ASYNCIT_CHECK(options.chaos.delivery.drop_prob >= 0.0 &&
                options.chaos.delivery.drop_prob < 1.0);
  transport::InprocTransport transport(options.workers + 1,
                                       options.chaos.delivery, options.seed);
  return run_training(data, x0, options, transport);
}

TrainResult run_training(const Dataset& data, const la::Vector& x0,
                         const TrainOptions& options,
                         transport::Transport& transport) {
  const std::size_t W = options.workers;
  ASYNCIT_CHECK(W >= 1);
  ASYNCIT_CHECK(x0.size() == data.features());
  ASYNCIT_CHECK(data.samples() >= W);
  ASYNCIT_CHECK(options.sgd.batch_size >= 1);
  ASYNCIT_CHECK(transport.world() == W + 1);
  ASYNCIT_CHECK(transport.local_ranks().size() == W + 1);

  arm_obs(options);

  WallTimer timer;
  PsgdContext ctx;
  ctx.data = &data;
  ctx.options = &options;
  ctx.clock = &timer;

  PsgdServer server(ctx, x0, transport.endpoint(0));
  std::vector<std::unique_ptr<PsgdWorker>> workers;
  workers.reserve(W);
  for (std::size_t w = 0; w < W; ++w)
    workers.push_back(std::make_unique<PsgdWorker>(
        ctx, w, x0, transport.endpoint(static_cast<std::uint32_t>(w + 1))));

  std::vector<std::thread> threads;
  threads.reserve(W);
  for (std::size_t w = 0; w < W; ++w)
    threads.emplace_back([&workers, &transport, w] {
      drive(*workers[w],
            transport.endpoint(static_cast<std::uint32_t>(w + 1)));
    });
  // The server is the orchestrator thread's role, mirroring the monitor
  // loop of run_message_passing.
  drive(server, transport.endpoint(0));
  for (std::thread& th : threads) th.join();

  TrainResult result;
  result.wall_seconds = timer.seconds();
  disarm_obs(options, result);

  result.x = server.model();
  result.converged = server.target_reached();
  result.final_loss = dataset_loss(data, result.x);
  result.final_accuracy = dataset_accuracy(data, result.x);
  result.rounds = server.rounds();
  result.versions = server.versions();
  result.deltas_applied = server.deltas_applied();
  result.examples_processed = server.examples_processed();
  result.examples_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.examples_processed) /
                result.wall_seconds
          : 0.0;
  result.peers_stopped = server.workers_stopped();
  result.frames_rejected = server.frames_rejected();
  result.steering_decisions = server.steering_decisions();
  result.staleness_at_exit = server.staleness_bound();
  result.steps_per_worker.reserve(W);
  result.epochs = ~std::uint64_t{0};
  for (std::size_t w = 0; w < W; ++w) {
    result.steps_per_worker.push_back(workers[w]->steps());
    result.frames_rejected += workers[w]->frames_rejected();
    result.epochs = std::min(
        result.epochs, epochs_of(workers[w]->steps(),
                                 options.sgd.batch_size,
                                 data.shard(w, W).size()));
  }
  for (std::uint32_t r = 0; r <= W; ++r)
    fill_endpoint_stats(transport.endpoint(r), result);
  result.bad_frames = transport.bad_frames();
  return result;
}

TrainResult run_training_node(const Dataset& data, const la::Vector& x0,
                              const TrainOptions& options,
                              transport::Endpoint& endpoint) {
  WallTimer timer;
  return run_training_node(data, x0, options, endpoint, timer);
}

TrainResult run_training_node(const Dataset& data, const la::Vector& x0,
                              const TrainOptions& options,
                              transport::Endpoint& endpoint,
                              const WallTimer& clock) {
  const std::size_t W = options.workers;
  const std::uint32_t rank = endpoint.rank();
  ASYNCIT_CHECK(W >= 1 && rank <= W);
  ASYNCIT_CHECK(x0.size() == data.features());
  ASYNCIT_CHECK(data.samples() >= W);

  arm_obs(options);

  PsgdContext ctx;
  ctx.data = &data;
  ctx.options = &options;
  ctx.clock = &clock;

  TrainResult result;
  if (rank == 0) {
    PsgdServer server(ctx, x0, endpoint);
    drive(server, endpoint);
    result.wall_seconds = clock.seconds();
    result.x = server.model();
    result.converged = server.target_reached();
    result.rounds = server.rounds();
    result.versions = server.versions();
    result.deltas_applied = server.deltas_applied();
    result.examples_processed = server.examples_processed();
    result.peers_stopped = server.workers_stopped();
    result.frames_rejected = server.frames_rejected();
    result.steering_decisions = server.steering_decisions();
    result.staleness_at_exit = server.staleness_bound();
    // rounds() is the high-water min worker clock, so the threaded-run
    // epoch definition (slowest worker's completed passes) carries over.
    result.epochs = epochs_of(server.rounds(), options.sgd.batch_size,
                              data.shard(0, W).size());
  } else {
    PsgdWorker worker(ctx, rank - 1, x0, endpoint);
    drive(worker, endpoint);
    result.wall_seconds = clock.seconds();
    result.x = worker.model();
    // A server stop frame means the run ended on the server's criterion
    // (target accuracy or its wall budget), not this rank's own budget.
    result.converged = worker.stopped_by_server();
    result.steps_per_worker.push_back(worker.steps());
    result.examples_processed = worker.examples_processed();
    result.frames_rejected = worker.frames_rejected();
    result.staleness_at_exit = worker.steered_bound();
    result.epochs = epochs_of(worker.steps(), options.sgd.batch_size,
                              data.shard(rank - 1, W).size());
  }
  result.examples_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.examples_processed) /
                result.wall_seconds
          : 0.0;
  // Every rank rebuilds the dataset, so every rank can report full-train
  // metrics of the model it ended with.
  result.final_loss = dataset_loss(data, result.x);
  result.final_accuracy = dataset_accuracy(data, result.x);
  fill_endpoint_stats(endpoint, result);
  disarm_obs(options, result);
  return result;
}

}  // namespace asyncit::train
