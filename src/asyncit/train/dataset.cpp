#include "asyncit/train/dataset.hpp"

#include <cmath>

#include "asyncit/problems/logistic.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::train {

namespace {

/// Minimum |cos(a_h, truth)| a kept row must clear. The solve-side
/// generator labels rows by the SIGN of the ground-truth margin, which
/// leaves a heavy mass of rows arbitrarily close to the hyperplane —
/// those rows pin train accuracy at ~0.93 no matter how the optimizer
/// runs. A margin gap makes the instance γ-separable, so any iterate
/// whose direction is within the gap of the truth classifies every
/// un-flipped row correctly (accuracy ceiling = 1 − label_noise).
constexpr double kMarginGap = 0.05;

/// Oversampling factor: ~25% of rows fall inside the gap, so 4× leaves
/// a wide determinism-safe cushion before the count check can fire.
constexpr std::size_t kOversample = 4;

}  // namespace

Dataset make_synthetic_dataset(const problems::LogisticConfig& cfg,
                               std::uint64_t seed) {
  problems::LogisticConfig wide = cfg;
  wide.samples = kOversample * cfg.samples;
  Rng rng(seed);
  problems::SyntheticLogistic synth =
      problems::make_synthetic_logistic(wide, rng);
  ASYNCIT_CHECK(synth.logistic != nullptr);
  const la::CsrMatrix& a = synth.logistic->design();
  const std::vector<int>& labels = synth.logistic->labels();

  double truth_sq = 0.0;
  for (const double v : synth.ground_truth) truth_sq += v * v;
  const double truth_norm = std::sqrt(truth_sq);
  ASYNCIT_CHECK(truth_norm > 0.0);

  // Keep the first cfg.samples rows outside the margin gap. Selection
  // uses the PRE-noise ground-truth margin, so label noise still lands
  // where the config asked for it (kept rows far from the boundary).
  Dataset d;
  d.labels.reserve(cfg.samples);
  d.ridge = cfg.ridge;
  std::vector<la::Triplet> kept;
  std::uint32_t out_row = 0;
  for (std::size_t h = 0; h < wide.samples && out_row < cfg.samples; ++h) {
    const std::span<const std::uint32_t> cols = a.row_cols(h);
    const std::span<const double> vals = a.row_values(h);
    double row_sq = 0.0;
    for (const double v : vals) row_sq += v * v;
    const double margin = a.row_dot(h, synth.ground_truth);
    if (row_sq == 0.0 ||
        std::abs(margin) < kMarginGap * std::sqrt(row_sq) * truth_norm)
      continue;
    for (std::size_t k = 0; k < cols.size(); ++k)
      kept.push_back({out_row, cols[k], vals[k]});
    d.labels.push_back(labels[h]);
    ++out_row;
  }
  ASYNCIT_CHECK_MSG(out_row == cfg.samples,
                    "margin-gap selection starved; raise kOversample");
  d.design =
      la::CsrMatrix::from_triplets(cfg.samples, cfg.features, std::move(kept));
  return d;
}

}  // namespace asyncit::train
