#include "asyncit/train/sgd.hpp"

#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::train {

namespace {

double sigmoid(double t) {
  return t >= 0.0 ? 1.0 / (1.0 + std::exp(-t))
                  : std::exp(t) / (1.0 + std::exp(t));
}

/// log(1 + exp(t)) without overflow.
double log1pexp(double t) {
  return t > 0.0 ? t + std::log1p(std::exp(-t)) : std::log1p(std::exp(t));
}

}  // namespace

DeltaSpan sgd_minibatch_delta(const Dataset& data, la::BlockRange shard,
                              std::size_t batch_size, double learning_rate,
                              std::span<const double> x, Rng& rng,
                              std::span<double> delta) {
  const std::size_t n = data.features();
  ASYNCIT_CHECK(x.size() == n && delta.size() == n);
  ASYNCIT_CHECK(batch_size >= 1 && shard.size() >= 1);
  for (double& d : delta) d = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch_size);
  for (std::size_t s = 0; s < batch_size; ++s) {
    const std::size_t h = shard.begin + rng.uniform_index(shard.size());
    const double z = static_cast<double>(data.labels[h]);
    const double margin = z * data.design.row_dot(h, x);
    // dℓ/dx = −z σ(−z⟨a,x⟩) a_h, averaged over the batch.
    const double coeff = -z * sigmoid(-margin) * inv_batch;
    const std::span<const std::uint32_t> cols = data.design.row_cols(h);
    const std::span<const double> vals = data.design.row_values(h);
    for (std::size_t k = 0; k < cols.size(); ++k)
      delta[cols[k]] += coeff * vals[k];
  }
  // delta = −lr (g_batch + ridge x); fused so the scratch is written once.
  for (std::size_t i = 0; i < n; ++i)
    delta[i] = -learning_rate * (delta[i] + data.ridge * x[i]);
  // Nonzero support — at a zeros start (or ridge = 0) the batch touches a
  // strict sub-range and the frame ships only that. Entries outside the
  // support are exactly 0.0, so dropping them is bit-identical.
  std::size_t lo = 0;
  while (lo < n && delta[lo] == 0.0) ++lo;
  if (lo == n) return {0, 0};
  std::size_t hi = n;
  while (delta[hi - 1] == 0.0) --hi;
  return {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi - lo)};
}

double dataset_loss(const Dataset& data, std::span<const double> x) {
  const std::size_t m = data.samples();
  double sum = 0.0;
  for (std::size_t h = 0; h < m; ++h) {
    const double z = static_cast<double>(data.labels[h]);
    sum += log1pexp(-z * data.design.row_dot(h, x));
  }
  double sq = 0.0;
  for (const double xi : x) sq += xi * xi;
  return sum / static_cast<double>(m) + 0.5 * data.ridge * sq;
}

double dataset_accuracy(const Dataset& data, std::span<const double> x) {
  const std::size_t m = data.samples();
  std::size_t correct = 0;
  for (std::size_t h = 0; h < m; ++h) {
    const double score = data.design.row_dot(h, x);
    const int predicted = score >= 0.0 ? 1 : -1;
    correct += predicted == data.labels[h];
  }
  return static_cast<double>(correct) / static_cast<double>(m);
}

}  // namespace asyncit::train
