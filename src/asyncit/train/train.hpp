// Entry points of the parameter-server training mode.
//
// run_training / run_training_node mirror net::run_message_passing /
// net::run_node exactly: the first overload spawns every rank of the run
// as a thread over the seeded in-process backend, the Transport overload
// runs the same threads over any backend hosting all ranks locally, and
// run_training_node drives ONE rank per process over a caller-supplied
// Endpoint (tools/asyncit_node.cpp + scripts/launch_cluster.py).
//
// Topology: rank 0 is the parameter SERVER, ranks 1..workers are data
// WORKERS; world = workers + 1. Workers compute minibatch gradient
// deltas over disjoint row shards of the dataset and ship them as
// partial-block value frames; the server folds them into the model under
// one of three coordination disciplines (train/psgd.hpp) and publishes
// parameter versions back. transport::, chaos, and membership-era
// elastic TCP run unchanged underneath — a delta frame is
// indistinguishable from a flexible-communication partial block on the
// wire.
#pragma once

#include <cstdint>
#include <vector>

#include "asyncit/net/mp_runtime.hpp"
#include "asyncit/support/timer.hpp"
#include "asyncit/train/dataset.hpp"

namespace asyncit::transport {
class Endpoint;
class Transport;
}  // namespace asyncit::transport

namespace asyncit::train {

/// Server aggregation / worker gating discipline (the yxtj/PSGD
/// Master::{bsp,tap,ssp}Process trio; DESIGN.md §9).
enum class Discipline {
  kBsp,  ///< barrier: all deltas per round, averaged (factorDelta 1/W)
  kTap,  ///< totally asynchronous parallel: any delta advances (factor 1)
  kSsp,  ///< stale synchronous: min worker clock gates, bound `staleness`
};

/// The optimizer + discipline knobs (the train-side analogue of
/// net::SolveOptions). Aggregate-initializable.
struct SgdOptions {
  Discipline discipline = Discipline::kTap;
  double learning_rate = 0.5;
  std::size_t batch_size = 16;
  /// SSP clock-gap bound in steps (kSsp only; kBsp behaves as 0).
  std::uint64_t staleness = 2;
  /// Auditor-fed adaptive staleness (kSsp only; obs/steering.hpp): the
  /// server steers the SspClock bound from the measured clock gap of
  /// arriving deltas; `staleness` becomes the initial bound, and
  /// published params frames carry the live bound to the workers'
  /// self-gate (wire mapping in train/psgd.hpp).
  obs::SteeringOptions adaptive;

  /// Per-worker step budget in epochs: each worker runs
  /// ceil(max_epochs * shard_rows / batch_size) minibatch steps.
  std::uint64_t max_epochs = 50;
  double max_seconds = 20.0;
  /// Stop as soon as a server eval reaches this train accuracy
  /// (0 disables; the budgets above still apply).
  double target_accuracy = 0.0;
  /// Server eval cadence: every N applied deltas (kTap/kSsp) or every N
  /// completed rounds (kBsp) the server computes full-train loss +
  /// accuracy (allocation-free scalar sweep).
  std::uint64_t eval_every = 8;
};

/// Options for run_training / run_training_node — the same shape as
/// net::MpOptions: topology at the top, concern-grouped sub-structs
/// below (chaos drives only the in-process overload; obs arms the global
/// recorder exactly like the solve runtimes).
struct TrainOptions {
  std::size_t workers = 3;  ///< worker ranks; world = workers + 1
  std::uint64_t seed = 1;

  SgdOptions sgd;
  net::ChaosOptions chaos;
  net::ObsOptions obs;
};

struct TrainResult {
  /// Final model: the server's authoritative iterate (threaded runs and
  /// node-mode rank 0) or the worker's local copy (node-mode workers).
  la::Vector x;
  double wall_seconds = 0.0;
  /// target_accuracy was set and reached (server side; node-mode workers
  /// report whether the server's stop frame ended their run).
  bool converged = false;
  double final_loss = -1.0;
  double final_accuracy = -1.0;

  std::uint64_t rounds = 0;          ///< server rounds (min worker clock)
  std::uint64_t versions = 0;        ///< parameter versions published
  std::uint64_t deltas_applied = 0;  ///< delta frames folded into x
  std::uint64_t examples_processed = 0;  ///< Σ batch sizes folded in
  double examples_per_sec = 0.0;
  /// Completed passes over the (sharded) dataset: min worker clock
  /// converted to epochs.
  std::uint64_t epochs = 0;
  /// Minibatch steps per worker (threaded runs: all workers; node mode:
  /// one entry for a worker rank, empty on the server).
  std::vector<std::uint64_t> steps_per_worker;

  // ---- transport statistics (same schema as net::MpResult) ----
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t bad_frames = 0;
  /// Workers whose stop frame the server saw (threaded/server ranks).
  std::uint64_t peers_stopped = 0;

  std::uint64_t obs_events_recorded = 0;
  std::uint64_t obs_events_dropped = 0;

  /// Adaptive-staleness steering (SgdOptions::adaptive): decisions taken
  /// by the server's controller (traced as kSteering) and the bound at
  /// exit. Server-side ranks report the controller's view; node-mode
  /// workers report the newest bound a params frame carried to them
  /// (0 until one arrives). With steering off, decisions is 0 and the
  /// server's exit bound is sgd.staleness.
  std::uint64_t steering_decisions = 0;
  std::uint64_t staleness_at_exit = 0;
};

/// Threaded training over the seeded in-process backend
/// (options.chaos.delivery + options.seed configure its channels).
/// Requires workers >= 1, x0.size() == data.features(), and at least one
/// dataset row per worker shard.
TrainResult run_training(const Dataset& data, const la::Vector& x0,
                         const TrainOptions& options);

/// Same, over a caller-supplied transport hosting every rank of the run
/// in this process (transport.world() == options.workers + 1).
TrainResult run_training(const Dataset& data, const la::Vector& x0,
                         const TrainOptions& options,
                         transport::Transport& transport);

/// One rank per process: drives endpoint.rank()'s role (0 = server,
/// r >= 1 = worker r-1) until that rank's own stopping criterion or a
/// server stop frame. The caller owns the transport and should flush()
/// it after returning (stop frames must drain before teardown) — the
/// same contract as net::run_node.
TrainResult run_training_node(const Dataset& data, const la::Vector& x0,
                              const TrainOptions& options,
                              transport::Endpoint& endpoint);

/// Same, reading time from `clock` instead of starting a wall timer —
/// the simnet::run_world hook that puts the SGD budgets (max_seconds,
/// gate timeouts) on virtual time. The clock must read 0 at (or before)
/// the call and only move forward.
TrainResult run_training_node(const Dataset& data, const la::Vector& x0,
                              const TrainOptions& options,
                              transport::Endpoint& endpoint,
                              const WallTimer& clock);

}  // namespace asyncit::train
