#include "asyncit/solvers/arock.hpp"

#include "asyncit/model/delay_models.hpp"
#include "asyncit/model/steering.hpp"
#include "asyncit/operators/krasnoselskii.hpp"
#include "asyncit/operators/prox_gradient.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::solvers {

ARockSummary solve_arock(const problems::CompositeProblem& p,
                         const ARockOptions& options) {
  ASYNCIT_CHECK(p.f && p.g);
  const double gamma =
      options.gamma > 0.0 ? options.gamma : p.suggested_gamma();
  const la::Partition partition = la::Partition::scalar(p.dim());
  const op::ForwardBackwardOperator fb(*p.f, *p.g, gamma, partition);
  const op::KrasnoselskiiMannOperator km(fb, options.eta);

  // Reference: the FB fixed point is the minimizer; KM shares it.
  op::Workspace ws;
  const la::Vector x_star =
      op::picard_solve(fb, la::zeros(p.dim()), 200000, 1e-13, ws);

  auto steering = model::make_random_subset_steering(p.dim(), 1);
  auto delays = options.delay_bound == 0
                    ? model::make_no_delay()
                    : model::make_uniform_delay(options.delay_bound);
  engine::ModelEngineOptions opt;
  opt.max_steps = options.max_steps;
  opt.tol = options.tol;
  opt.x_star = x_star;
  opt.record_error_every = 64;
  opt.seed = options.seed;
  auto run = engine::run_model_engine(km, *steering, *delays,
                                      la::zeros(p.dim()), opt);

  ARockSummary s;
  s.x = std::move(run.x);
  s.converged = run.converged;
  s.steps = run.steps;
  s.macro_iterations = run.macro_boundaries.size() - 1;
  s.epochs = run.epoch_boundaries.size() - 1;
  s.error_to_reference = la::dist_inf(s.x, x_star);
  return s;
}

}  // namespace asyncit::solvers
