// Convergence-rate analysis of recorded error histories.
//
// Fits the empirical geometric rate of an error sequence (least squares
// on the log-error curve) and compares per-step and per-macro-iteration
// views — the quantitative backbone of the rate-vs-delay bench (a5) and
// of EXPERIMENTS.md's "measured rate" columns.
#pragma once

#include <utility>
#include <vector>

#include "asyncit/model/history.hpp"

namespace asyncit::solvers {

struct RateFit {
  double per_step = 0.0;   ///< fitted geometric factor per step (0 if n<2)
  double per_macro = 0.0;  ///< fitted factor per macro-iteration
  std::size_t samples = 0;
  /// Steps needed to reduce the error by 10x at the fitted per-step rate
  /// (infinite -> 0 samples or rate >= 1).
  double steps_per_decade = 0.0;
};

/// Fits err(j) ~ C * rate^j on the samples with err > floor; macro rate
/// uses the macro boundaries to convert steps to macro counts.
RateFit fit_rate(
    const std::vector<std::pair<model::Step, double>>& error_history,
    const std::vector<model::Step>& macro_boundaries,
    double floor = 1e-14);

}  // namespace asyncit::solvers
