// ARock-style asynchronous coordinate updates (Peng, Xu, Yan, Yin — the
// paper's reference [32]): Krasnoselskii–Mann damped coordinate updates of
// the forward-backward operator with uniformly random steering, executed
// on the exact model engine with a configurable delay model.
//
//   x_i <- x_i + eta * ( T_i(x̂) − x̂_i ),   i uniform at random,
//
// with x̂ a delayed (inconsistent-read) iterate. This is the modern
// async-coordinate-update baseline the paper situates itself against.
#pragma once

#include "asyncit/engine/model_engine.hpp"
#include "asyncit/problems/composite.hpp"

namespace asyncit::solvers {

struct ARockOptions {
  double eta = 0.5;           ///< KM damping in (0, 1]
  double gamma = 0.0;         ///< step; 0 = problem default
  model::Step max_steps = 200000;
  double tol = 1e-9;
  /// Delay bound of the simulated inconsistent reads.
  model::Step delay_bound = 8;
  std::uint64_t seed = 1;
};

struct ARockSummary {
  la::Vector x;
  bool converged = false;
  model::Step steps = 0;
  std::size_t macro_iterations = 0;
  std::size_t epochs = 0;
  double error_to_reference = -1.0;
};

ARockSummary solve_arock(const problems::CompositeProblem& p,
                         const ARockOptions& options);

}  // namespace asyncit::solvers
