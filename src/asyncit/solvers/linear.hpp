// Solvers for linear fixed-point problems (asynchronous Jacobi / chaotic
// relaxation) and the obstacle problem (asynchronous projected relaxation),
// on the threaded runtime.
#pragma once

#include <optional>

#include "asyncit/problems/linear_system.hpp"
#include "asyncit/problems/obstacle.hpp"
#include "asyncit/runtime/executors.hpp"

namespace asyncit::solvers {

struct LinearSolveOptions {
  std::size_t workers = 2;
  std::size_t blocks = 0;  ///< 0 = one per row
  double tol = 1e-9;
  std::uint64_t max_updates = 5000000;
  double max_seconds = 20.0;
  std::vector<double> worker_slowdown;
  std::optional<la::Vector> reference;
  std::uint64_t seed = 1;
};

struct LinearSolveSummary {
  la::Vector x;
  bool converged = false;
  double wall_seconds = 0.0;
  std::uint64_t updates = 0;
  double residual_inf = 0.0;  ///< ‖A x − b‖_inf
};

LinearSolveSummary solve_jacobi_async(const problems::LinearSystem& sys,
                                      const LinearSolveOptions& options);
LinearSolveSummary solve_jacobi_sync(const problems::LinearSystem& sys,
                                     const LinearSolveOptions& options);

struct ObstacleSolveSummary {
  la::Vector u;
  bool converged = false;
  double wall_seconds = 0.0;
  std::uint64_t updates = 0;
  double feasibility_violation = 0.0;
  double complementarity = 0.0;
  std::size_t contact_points = 0;
};

ObstacleSolveSummary solve_obstacle_async(const problems::ObstacleProblem& p,
                                          const LinearSolveOptions& options);

}  // namespace asyncit::solvers
