// High-level solvers for the composite problem (4) — the public API most
// users want. Wraps the threaded runtime (wall-clock asynchronous vs
// synchronous execution) around the Definition-4 backward-forward operator
// (or the classic forward-backward baseline).
#pragma once

#include <optional>

#include "asyncit/problems/composite.hpp"
#include "asyncit/runtime/executors.hpp"

namespace asyncit::solvers {

struct ProxGradOptions {
  /// Step size; 0 selects the problem's 2/(mu+L).
  double gamma = 0.0;
  std::size_t workers = 2;
  /// Number of blocks the iterate is partitioned into; 0 = one block per
  /// coordinate.
  std::size_t blocks = 0;
  /// Definition 4 operator (prox first, then gradient at the prox point);
  /// false = classic forward-backward.
  bool use_backward_forward = true;
  std::size_t inner_steps = 1;
  bool flexible = false;  ///< publish partial updates (flexible comm)
  double tol = 1e-8;
  std::uint64_t max_updates = 2000000;
  double max_seconds = 20.0;
  std::vector<double> worker_slowdown;  ///< heterogeneity injection
  /// Known minimizer for oracle stopping; if absent it is computed by a
  /// high-precision sequential solve first (excluded from timing).
  std::optional<la::Vector> reference;
  std::uint64_t seed = 1;
};

struct SolveSummary {
  la::Vector x;                ///< the minimizer estimate
  double objective = 0.0;      ///< f(x) + g(x)
  bool converged = false;
  double wall_seconds = 0.0;
  std::uint64_t updates = 0;   ///< block updates executed
  double error_to_reference = -1.0;  ///< max-norm distance to reference
};

/// Totally asynchronous (Hogwild-over-blocks) solve.
SolveSummary solve_prox_gradient_async(const problems::CompositeProblem& p,
                                       const ProxGradOptions& options);

/// Barrier-synchronized baseline on the same operator.
SolveSummary solve_prox_gradient_sync(const problems::CompositeProblem& p,
                                      const ProxGradOptions& options);

/// Sequential high-precision solve (the reference).
SolveSummary solve_prox_gradient_sequential(
    const problems::CompositeProblem& p, double tol = 1e-12,
    std::size_t max_iters = 200000);

}  // namespace asyncit::solvers
