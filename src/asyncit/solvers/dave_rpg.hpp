// DAve-PG-style distributed averaged proximal gradient — a compact
// implementation of the delay-tolerant algorithm of Mishchenko, Iutzeler &
// Malick (SIAM J. Optim. 2020 — the paper's reference [30]), used as the
// epoch-sequence baseline for bench/c9_baselines and c3_macro_vs_epoch.
//
// Data-parallel decomposition: f = Σ_w f_w (sample shards on p machines),
// g separable. The master holds u = (1/p) Σ_w z_w; machine w, activated
// asynchronously with a stale copy u_stale = u(j − d_w):
//
//   x_w   = prox_{γ,g}(u_stale)
//   z_w⁺  = x_w − γ·p·∇f_w(x_w)
//   u    += (z_w⁺ − z_w)/p ,   z_w <- z_w⁺ .
//
// At the fixed point u* = x* − γ∇f(x*) with x* = prox_{γ,g}(u*): the
// minimizer of Σf_w + g. Machine activations and staleness follow a
// steering/delay model, and the run reports both the epoch sequence
// (Mishchenko et al.) and the macro-iteration sequence (Definition 2) so
// the two meta-iteration notions can be compared on identical executions.
#pragma once

#include <memory>
#include <vector>

#include "asyncit/model/epoch.hpp"
#include "asyncit/model/macro_iteration.hpp"
#include "asyncit/operators/prox.hpp"
#include "asyncit/operators/smooth.hpp"
#include "asyncit/problems/lasso.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::solvers {

struct DaveRpgOptions {
  double gamma = 0.0;          ///< 0 = 2/(mu+L) of the SUM function
  model::Step max_steps = 100000;
  double tol = 1e-9;
  model::Step delay_bound = 4;  ///< staleness of the u copy machines read
  std::uint64_t seed = 1;
};

struct DaveRpgSummary {
  la::Vector x;  ///< minimizer estimate prox(u)
  bool converged = false;
  model::Step steps = 0;  ///< machine activations
  std::vector<model::Step> epoch_boundaries;
  std::vector<model::Step> macro_boundaries;
  double error_to_reference = -1.0;
  std::vector<std::pair<model::Step, double>> error_history;
};

/// Shards: f_w with Σ_w f_w = f (see split_least_squares). The reference
/// minimizer (for stopping) must be supplied by the caller.
DaveRpgSummary solve_dave_rpg(
    const std::vector<std::shared_ptr<op::SmoothFunction>>& shards,
    const op::ProxOperator& g, const la::Vector& x_star, double sum_mu,
    double sum_lipschitz, const DaveRpgOptions& options);

/// Splits a least-squares problem into `shards` row-shards whose sum is
/// the original function (ridge split evenly).
std::vector<std::shared_ptr<op::SmoothFunction>> split_least_squares(
    const problems::LeastSquaresFunction& f, std::size_t shards);

}  // namespace asyncit::solvers
