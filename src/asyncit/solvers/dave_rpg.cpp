#include "asyncit/solvers/dave_rpg.hpp"

#include <algorithm>
#include <deque>

#include "asyncit/support/check.hpp"

namespace asyncit::solvers {

DaveRpgSummary solve_dave_rpg(
    const std::vector<std::shared_ptr<op::SmoothFunction>>& shards,
    const op::ProxOperator& g, const la::Vector& x_star, double sum_mu,
    double sum_lipschitz, const DaveRpgOptions& options) {
  ASYNCIT_CHECK(!shards.empty());
  const std::size_t p = shards.size();
  const std::size_t n = shards[0]->dim();
  for (const auto& s : shards) ASYNCIT_CHECK(s && s->dim() == n);
  ASYNCIT_CHECK(x_star.size() == n);
  ASYNCIT_CHECK(0.0 < sum_mu && sum_mu <= sum_lipschitz);

  const double gamma = options.gamma > 0.0
                           ? options.gamma
                           : 2.0 / (sum_mu + sum_lipschitz);
  Rng rng(options.seed);

  // master average u and per-machine contributions z_w
  la::Vector u(n, 0.0);
  std::vector<la::Vector> z(p, la::Vector(n, 0.0));
  // ring of past master iterates for stale reads
  std::deque<la::Vector> u_history{u};

  model::EpochTracker epochs(p);
  model::MacroIterationTracker macro(p);

  DaveRpgSummary out;
  la::Vector x_w(n), grad(n);
  const double weight = 1.0 / static_cast<double>(p);

  for (model::Step j = 1; j <= options.max_steps; ++j) {
    const auto w = static_cast<std::size_t>(rng.uniform_index(p));
    // staleness: read u from up to delay_bound activations ago
    const model::Step d = options.delay_bound == 0
                              ? 0
                              : rng.uniform_index(
                                    std::min<model::Step>(options.delay_bound,
                                                          j - 1) +
                                    1);
    const la::Vector& u_stale =
        u_history[u_history.size() - 1 - static_cast<std::size_t>(d)];
    const model::Step label = j - 1 - d;

    // x_w = prox(u_stale); z_w+ = x_w - gamma*p*grad f_w(x_w)
    g.apply(u_stale, gamma, x_w);
    shards[w]->gradient(x_w, grad);
    for (std::size_t c = 0; c < n; ++c) {
      const double z_new =
          x_w[c] - gamma * static_cast<double>(p) * grad[c];
      u[c] += weight * (z_new - z[w][c]);
      z[w][c] = z_new;
    }

    u_history.push_back(u);
    if (u_history.size() > options.delay_bound + 2)
      u_history.pop_front();

    epochs.observe(j, static_cast<model::MachineId>(w));
    macro.observe(j,
                  std::vector<la::BlockId>{static_cast<la::BlockId>(w)},
                  label);

    if (j % 25 == 0 || j == options.max_steps) {
      g.apply(u, gamma, x_w);
      const double err = la::dist_inf(x_w, x_star);
      out.error_history.emplace_back(j, err);
      out.steps = j;
      if (err < options.tol) {
        out.converged = true;
        break;
      }
    }
    out.steps = j;
  }

  g.apply(u, gamma, x_w);
  out.x = x_w;
  out.error_to_reference = la::dist_inf(out.x, x_star);
  out.epoch_boundaries = epochs.boundaries();
  out.macro_boundaries = macro.boundaries();
  return out;
}

std::vector<std::shared_ptr<op::SmoothFunction>> split_least_squares(
    const problems::LeastSquaresFunction& f, std::size_t shards) {
  ASYNCIT_CHECK(shards >= 1);
  const la::CsrMatrix& a = f.design();
  const la::Vector& y = f.targets();
  const std::size_t m = a.rows();
  ASYNCIT_CHECK(shards <= m);
  std::vector<std::shared_ptr<op::SmoothFunction>> out;
  const std::size_t base = m / shards, extra = m % shards;
  std::size_t row = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t count = base + (s < extra ? 1 : 0);
    std::vector<la::Triplet> triplets;
    la::Vector ys(count);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t r = row + k;
      const auto cols = a.row_cols(r);
      const auto vals = a.row_values(r);
      for (std::size_t t = 0; t < cols.size(); ++t)
        triplets.push_back({static_cast<std::uint32_t>(k), cols[t],
                            vals[t]});
      ys[k] = y[r];
    }
    row += count;
    out.push_back(std::make_shared<problems::LeastSquaresFunction>(
        la::CsrMatrix::from_triplets(count, a.cols(), std::move(triplets)),
        std::move(ys), f.mu() / static_cast<double>(shards)));
  }
  return out;
}

}  // namespace asyncit::solvers
