#include "asyncit/solvers/convergence.hpp"

#include <cmath>

#include "asyncit/support/stats.hpp"

namespace asyncit::solvers {

RateFit fit_rate(
    const std::vector<std::pair<model::Step, double>>& error_history,
    const std::vector<model::Step>& macro_boundaries, double floor) {
  RateFit fit;
  std::vector<double> steps, logs, macros;
  std::size_t k = 0;
  for (const auto& [j, err] : error_history) {
    if (err <= floor) continue;
    while (k + 1 < macro_boundaries.size() && macro_boundaries[k + 1] <= j)
      ++k;
    steps.push_back(static_cast<double>(j));
    macros.push_back(static_cast<double>(k));
    logs.push_back(std::log(err));
  }
  fit.samples = steps.size();
  if (fit.samples < 2) return fit;
  fit.per_step = std::exp(ls_slope(steps, logs));
  // macro counts can be constant over the sampled window (e.g. one huge
  // macro-iteration): guard the degenerate fit.
  const bool macro_varies = macros.front() != macros.back();
  fit.per_macro = macro_varies ? std::exp(ls_slope(macros, logs)) : 0.0;
  if (fit.per_step > 0.0 && fit.per_step < 1.0)
    fit.steps_per_decade = std::log(0.1) / std::log(fit.per_step);
  return fit;
}

}  // namespace asyncit::solvers
