#include "asyncit/solvers/network_flow_solver.hpp"

#include "asyncit/operators/operator.hpp"
#include "asyncit/support/timer.hpp"

namespace asyncit::solvers {

namespace {
NetworkFlowSummary summarize(const problems::NetworkFlowProblem& net,
                             la::Vector prices, bool converged,
                             double seconds, std::uint64_t updates) {
  NetworkFlowSummary s;
  s.flows = net.flows(prices);
  s.max_excess = net.max_excess(prices);
  s.primal_cost = net.primal_cost(s.flows);
  s.dual_value = net.dual_value(prices);
  s.prices = std::move(prices);
  s.converged = converged;
  s.wall_seconds = seconds;
  s.updates = updates;
  return s;
}
}  // namespace

NetworkFlowSummary solve_network_flow_async(
    const problems::NetworkFlowProblem& net,
    const NetworkFlowOptions& options) {
  problems::NetworkFlowDualOperator relax(net);
  // reference prices for oracle stopping
  la::Vector ref = op::picard_solve(relax, la::zeros(net.num_nodes()),
                                    20000, 1e-11);
  rt::RuntimeOptions ropt;
  ropt.workers = options.workers;
  ropt.worker_slowdown = options.worker_slowdown;
  ropt.tol = options.tol;
  ropt.max_updates = options.max_updates;
  ropt.max_seconds = options.max_seconds;
  ropt.seed = options.seed;
  ropt.x_star = std::move(ref);
  auto run = rt::run_async_threads(relax, la::zeros(net.num_nodes()), ropt);
  return summarize(net, std::move(run.x), run.converged, run.wall_seconds,
                   run.total_updates);
}

NetworkFlowSummary solve_network_flow_sequential(
    const problems::NetworkFlowProblem& net, double tol,
    std::size_t max_sweeps) {
  WallTimer timer;
  la::Vector p(net.num_nodes(), 0.0);
  std::uint64_t updates = 0;
  bool converged = false;
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    // Gauss-Seidel relaxation sweep (node 0 pinned as reference).
    for (std::size_t i = 1; i < net.num_nodes(); ++i) {
      p[i] = net.relax_node(i, p);
      ++updates;
    }
    if (net.max_excess(p) < tol) {
      converged = true;
      break;
    }
  }
  return summarize(net, std::move(p), converged, timer.seconds(), updates);
}

}  // namespace asyncit::solvers
