#include "asyncit/solvers/linear.hpp"

#include "asyncit/operators/jacobi.hpp"
#include "asyncit/operators/projected_jacobi.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::solvers {

namespace {
rt::RuntimeOptions to_runtime(const LinearSolveOptions& o,
                              la::Vector reference) {
  rt::RuntimeOptions r;
  r.workers = o.workers;
  r.worker_slowdown = o.worker_slowdown;
  r.tol = o.tol;
  r.max_updates = o.max_updates;
  r.max_seconds = o.max_seconds;
  r.seed = o.seed;
  r.x_star = std::move(reference);
  return r;
}
}  // namespace

LinearSolveSummary solve_jacobi_async(const problems::LinearSystem& sys,
                                      const LinearSolveOptions& options) {
  const std::size_t blocks = options.blocks == 0 ? sys.dim() : options.blocks;
  op::JacobiOperator jac(sys.a, sys.b,
                         la::Partition::balanced(sys.dim(), blocks));
  op::Workspace ws;
  la::Vector ref = options.reference.has_value()
                       ? *options.reference
                       : op::picard_solve(jac, la::zeros(sys.dim()), 200000,
                                          1e-13, ws);
  auto run = rt::run_async_threads(jac, la::zeros(sys.dim()),
                                   to_runtime(options, std::move(ref)));
  LinearSolveSummary s;
  s.x = std::move(run.x);
  s.converged = run.converged;
  s.wall_seconds = run.wall_seconds;
  s.updates = run.total_updates;
  la::Vector ax(sys.dim());
  sys.a.matvec(s.x, ax);
  s.residual_inf = la::dist_inf(ax, sys.b);
  return s;
}

LinearSolveSummary solve_jacobi_sync(const problems::LinearSystem& sys,
                                     const LinearSolveOptions& options) {
  const std::size_t blocks = options.blocks == 0 ? sys.dim() : options.blocks;
  op::JacobiOperator jac(sys.a, sys.b,
                         la::Partition::balanced(sys.dim(), blocks));
  op::Workspace ws;
  la::Vector ref = options.reference.has_value()
                       ? *options.reference
                       : op::picard_solve(jac, la::zeros(sys.dim()), 200000,
                                          1e-13, ws);
  auto run = rt::run_sync_threads(jac, la::zeros(sys.dim()),
                                  to_runtime(options, std::move(ref)));
  LinearSolveSummary s;
  s.x = std::move(run.x);
  s.converged = run.converged;
  s.wall_seconds = run.wall_seconds;
  s.updates = run.total_updates;
  la::Vector ax(sys.dim());
  sys.a.matvec(s.x, ax);
  s.residual_inf = la::dist_inf(ax, sys.b);
  return s;
}

ObstacleSolveSummary solve_obstacle_async(const problems::ObstacleProblem& p,
                                          const LinearSolveOptions& options) {
  const std::size_t blocks = options.blocks == 0 ? p.dim() : options.blocks;
  auto proj = p.make_operator(la::Partition::balanced(p.dim(), blocks));
  la::Vector ref = options.reference.has_value()
                       ? *options.reference
                       : p.reference_solution(200000, 1e-12);
  auto run = rt::run_async_threads(*proj, la::zeros(p.dim()),
                                   to_runtime(options, std::move(ref)));
  ObstacleSolveSummary s;
  s.u = std::move(run.x);
  s.converged = run.converged;
  s.wall_seconds = run.wall_seconds;
  s.updates = run.total_updates;
  s.feasibility_violation = p.feasibility_violation(s.u);
  s.complementarity = p.complementarity_residual(s.u);
  s.contact_points = p.contact_count(s.u);
  return s;
}

}  // namespace asyncit::solvers
