// Asynchronous relaxation solver for convex separable network flow — the
// distributed asynchronous relaxation method of Bertsekas & El Baz (the
// paper's reference [6]) on the threaded runtime, plus a sequential
// Gauss-Seidel reference.
#pragma once

#include "asyncit/problems/network_flow.hpp"
#include "asyncit/runtime/executors.hpp"

namespace asyncit::solvers {

struct NetworkFlowOptions {
  std::size_t workers = 2;
  double tol = 1e-7;       ///< target max |node excess|
  std::uint64_t max_updates = 2000000;
  double max_seconds = 20.0;
  std::vector<double> worker_slowdown;
  std::uint64_t seed = 1;
};

struct NetworkFlowSummary {
  la::Vector prices;
  la::Vector flows;
  bool converged = false;
  double wall_seconds = 0.0;
  std::uint64_t updates = 0;
  double max_excess = 0.0;    ///< primal feasibility residual
  double primal_cost = 0.0;
  double dual_value = 0.0;
};

NetworkFlowSummary solve_network_flow_async(
    const problems::NetworkFlowProblem& net,
    const NetworkFlowOptions& options);

/// Sequential single-node relaxation sweeps (the reference).
NetworkFlowSummary solve_network_flow_sequential(
    const problems::NetworkFlowProblem& net, double tol = 1e-9,
    std::size_t max_sweeps = 20000);

}  // namespace asyncit::solvers
