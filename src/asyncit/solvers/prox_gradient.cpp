#include "asyncit/solvers/prox_gradient.hpp"

#include "asyncit/operators/prox_gradient.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/support/timer.hpp"

namespace asyncit::solvers {

namespace {

struct Prepared {
  la::Partition partition;
  double gamma;
  la::Vector reference_iterate;  // fixed point of the chosen operator
  la::Vector reference_solution;  // minimizer
};

/// Builds the partition/step and (if needed) the reference fixed point for
/// oracle stopping. The reference solve is sequential and excluded from
/// reported wall time.
Prepared prepare(const problems::CompositeProblem& p,
                 const ProxGradOptions& options,
                 const op::BlockOperator& iteration_op,
                 const op::BackwardForwardOperator* bf) {
  Prepared prep{la::Partition::scalar(1), 0.0, {}, {}};
  prep.gamma = options.gamma > 0.0 ? options.gamma : p.suggested_gamma();
  prep.partition = iteration_op.partition();
  if (options.reference.has_value()) {
    prep.reference_solution = *options.reference;
    // the iterate-space reference: for BF, x̄ with prox(x̄) = solution is
    // x̄ = solution - gamma * grad f(solution)
    if (bf != nullptr) {
      la::Vector grad(p.dim());
      p.f->gradient(prep.reference_solution, grad);
      prep.reference_iterate = prep.reference_solution;
      la::axpy(-prep.gamma, grad, prep.reference_iterate);
    } else {
      prep.reference_iterate = prep.reference_solution;
    }
  } else {
    op::Workspace ws;
    prep.reference_iterate =
        op::picard_solve(iteration_op, la::zeros(p.dim()), 200000, 1e-13, ws);
    prep.reference_solution =
        bf != nullptr ? bf->solution_from_fixed_point(prep.reference_iterate)
                      : prep.reference_iterate;
  }
  return prep;
}

SolveSummary summarize(const problems::CompositeProblem& p,
                       const op::BackwardForwardOperator* bf,
                       const Prepared& prep, rt::RuntimeResult run) {
  SolveSummary s;
  s.x = bf != nullptr ? bf->solution_from_fixed_point(run.x)
                      : std::move(run.x);
  s.objective = p.objective(s.x);
  s.converged = run.converged;
  s.wall_seconds = run.wall_seconds;
  s.updates = run.total_updates;
  s.error_to_reference = la::dist_inf(s.x, prep.reference_solution);
  return s;
}

}  // namespace

SolveSummary solve_prox_gradient_async(const problems::CompositeProblem& p,
                                       const ProxGradOptions& options) {
  ASYNCIT_CHECK(p.f && p.g);
  const std::size_t blocks = options.blocks == 0 ? p.dim() : options.blocks;
  const la::Partition partition = la::Partition::balanced(p.dim(), blocks);
  const double gamma =
      options.gamma > 0.0 ? options.gamma : p.suggested_gamma();

  rt::RuntimeOptions ropt;
  ropt.workers = options.workers;
  ropt.worker_slowdown = options.worker_slowdown;
  ropt.inner_steps = options.inner_steps;
  ropt.publish_partials = options.flexible;
  ropt.tol = options.tol;
  ropt.max_updates = options.max_updates;
  ropt.max_seconds = options.max_seconds;
  ropt.seed = options.seed;

  if (options.use_backward_forward) {
    op::BackwardForwardOperator bf(*p.f, *p.g, gamma, partition);
    const Prepared prep = prepare(p, options, bf, &bf);
    ropt.x_star = prep.reference_iterate;
    return summarize(p, &bf, prep,
                     rt::run_async_threads(bf, la::zeros(p.dim()), ropt));
  }
  op::ForwardBackwardOperator fb(*p.f, *p.g, gamma, partition);
  const Prepared prep = prepare(p, options, fb, nullptr);
  ropt.x_star = prep.reference_iterate;
  return summarize(p, nullptr, prep,
                   rt::run_async_threads(fb, la::zeros(p.dim()), ropt));
}

SolveSummary solve_prox_gradient_sync(const problems::CompositeProblem& p,
                                      const ProxGradOptions& options) {
  ASYNCIT_CHECK(p.f && p.g);
  const std::size_t blocks = options.blocks == 0 ? p.dim() : options.blocks;
  const la::Partition partition = la::Partition::balanced(p.dim(), blocks);
  const double gamma =
      options.gamma > 0.0 ? options.gamma : p.suggested_gamma();

  rt::RuntimeOptions ropt;
  ropt.workers = options.workers;
  ropt.worker_slowdown = options.worker_slowdown;
  ropt.tol = options.tol;
  ropt.max_updates = options.max_updates;
  ropt.max_seconds = options.max_seconds;
  ropt.seed = options.seed;

  if (options.use_backward_forward) {
    op::BackwardForwardOperator bf(*p.f, *p.g, gamma, partition);
    const Prepared prep = prepare(p, options, bf, &bf);
    ropt.x_star = prep.reference_iterate;
    return summarize(p, &bf, prep,
                     rt::run_sync_threads(bf, la::zeros(p.dim()), ropt));
  }
  op::ForwardBackwardOperator fb(*p.f, *p.g, gamma, partition);
  const Prepared prep = prepare(p, options, fb, nullptr);
  ropt.x_star = prep.reference_iterate;
  return summarize(p, nullptr, prep,
                   rt::run_sync_threads(fb, la::zeros(p.dim()), ropt));
}

SolveSummary solve_prox_gradient_sequential(
    const problems::CompositeProblem& p, double tol, std::size_t max_iters) {
  ASYNCIT_CHECK(p.f && p.g);
  WallTimer timer;
  const op::ForwardBackwardOperator fb(
      *p.f, *p.g, p.suggested_gamma(), la::Partition::balanced(p.dim(), 1));
  op::Workspace ws;
  SolveSummary s;
  s.x = op::picard_solve(fb, la::zeros(p.dim()), max_iters, tol, ws);
  s.wall_seconds = timer.seconds();
  s.objective = p.objective(s.x);
  s.converged = op::fixed_point_residual(fb, s.x, ws) < tol * 10.0;
  s.error_to_reference = 0.0;
  return s;
}

}  // namespace asyncit::solvers
