// Umbrella header for the asyncit library.
//
// asyncit is a reproduction of:
//   D. El-Baz, "On Parallel or Distributed Asynchronous Iterations with
//   Unbounded Delays and Possible Out of Order Messages or Flexible
//   Communication for Convex Optimization Problems and Machine Learning",
//   IPDPSW 2022 (arXiv:2210.04626).
//
// Layer map (bottom-up):
//   support/   deterministic RNG, stats, timers, tables
//   linalg/    vectors, CSR, partitions, weighted max norms
//   model/     Definition 1 objects: steering S, delays L, traces,
//              macro-iterations (Def. 2), epochs, box levels, auditors
//   operators/ fixed-point operators: Jacobi, gradient, prox library,
//              the Definition-4 backward-forward operator, KM averaging
//   problems/  linear systems, quadratics, lasso, logistic, convex
//              network flow, obstacle problem, PageRank, generators
//   engine/    exact sequential executor of Definitions 1 and 3
//   sim/       discrete-event distributed simulator (+ termination
//              detection) and the synchronous BSP baseline
//   runtime/   real threaded shared-memory executors
//   membership/ SWIM-style gossip membership + failure detection for
//              elastic ranks (join/leave/crash mid-solve) over the
//              transport control-frame path
//   transport/ pluggable wire transports: in-process mailbox channels,
//              TCP sockets (loopback/LAN, multi-process), and the chaos
//              delay/reorder/drop decorator; pooled zero-alloc messaging
//   net/       message-passing runtime: real threads (or processes — see
//              net/node_runtime.hpp) exchanging step-tagged block values
//              through a transport with injected latency / reordering /
//              loss (BSP, SSP, async)
//   solvers/   the public solve_* facade + ARock / DAve-RPG baselines
//   trace/     event logs, ASCII Gantt (Fig. 1 / Fig. 2), CSV
#pragma once

#include "asyncit/engine/auditors.hpp"
#include "asyncit/engine/model_engine.hpp"
#include "asyncit/linalg/norms.hpp"
#include "asyncit/linalg/simd_dispatch.hpp"
#include "asyncit/model/admissibility.hpp"
#include "asyncit/model/box_level.hpp"
#include "asyncit/model/delay_models.hpp"
#include "asyncit/model/epoch.hpp"
#include "asyncit/model/macro_iteration.hpp"
#include "asyncit/model/steering.hpp"
#include "asyncit/membership/membership.hpp"
#include "asyncit/membership/swim.hpp"
#include "asyncit/net/channel.hpp"
#include "asyncit/net/mp_runtime.hpp"
#include "asyncit/net/node_runtime.hpp"
#include "asyncit/net/peer.hpp"
#include "asyncit/operators/contraction.hpp"
#include "asyncit/operators/gradient.hpp"
#include "asyncit/operators/jacobi.hpp"
#include "asyncit/operators/krasnoselskii.hpp"
#include "asyncit/operators/projected_jacobi.hpp"
#include "asyncit/operators/prox.hpp"
#include "asyncit/operators/prox_gradient.hpp"
#include "asyncit/operators/workspace.hpp"
#include "asyncit/problems/composite.hpp"
#include "asyncit/problems/lasso.hpp"
#include "asyncit/problems/linear_system.hpp"
#include "asyncit/problems/logistic.hpp"
#include "asyncit/problems/markov.hpp"
#include "asyncit/problems/network_flow.hpp"
#include "asyncit/problems/obstacle.hpp"
#include "asyncit/problems/quadratic.hpp"
#include "asyncit/problems/synthetic.hpp"
#include "asyncit/runtime/executors.hpp"
#include "asyncit/sim/sim_engine.hpp"
#include "asyncit/solvers/arock.hpp"
#include "asyncit/solvers/dave_rpg.hpp"
#include "asyncit/solvers/linear.hpp"
#include "asyncit/solvers/network_flow_solver.hpp"
#include "asyncit/solvers/prox_gradient.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/trace/csv.hpp"
#include "asyncit/trace/gantt.hpp"
#include "asyncit/transport/chaos.hpp"
#include "asyncit/transport/inproc.hpp"
#include "asyncit/transport/tcp.hpp"
#include "asyncit/transport/transport.hpp"
#include "asyncit/transport/wire.hpp"
