#include "asyncit/engine/component_history.hpp"

#include <algorithm>

#include "asyncit/support/check.hpp"

namespace asyncit::engine {

ComponentHistory::ComponentHistory(const la::Partition& partition,
                                   std::span<const double> x0)
    : partition_(partition), per_block_(partition.num_blocks()) {
  ASYNCIT_CHECK(x0.size() == partition_.dim());
  for (la::BlockId b = 0; b < partition_.num_blocks(); ++b) {
    const auto span = partition_.block_span(x0, b);
    per_block_[b].push_back(
        Entry{0, la::Vector(span.begin(), span.end()), {}});
  }
}

void ComponentHistory::record(la::BlockId b, model::Step j,
                              std::span<const double> value,
                              std::vector<la::Vector> partials) {
  ASYNCIT_CHECK(b < per_block_.size());
  auto& entries = per_block_[b];
  ASYNCIT_CHECK_MSG(entries.empty() || entries.back().step < j,
                    "updates of a block must have increasing steps");
  ASYNCIT_CHECK(value.size() == partition_.range(b).size());
  for (const auto& p : partials) ASYNCIT_CHECK(p.size() == value.size());
  entries.push_back(Entry{j, la::Vector(value.begin(), value.end()),
                          std::move(partials)});
}

std::span<const double> ComponentHistory::value_at(la::BlockId b,
                                                   model::Step label) const {
  ASYNCIT_CHECK(b < per_block_.size());
  const auto& entries = per_block_[b];
  // Last entry with step <= label.
  auto it = std::upper_bound(entries.begin(), entries.end(), label,
                             [](model::Step l, const Entry& e) {
                               return l < e.step;
                             });
  ASYNCIT_CHECK_MSG(it != entries.begin(),
                    "history pruned past label " << label << " of block "
                                                 << b);
  --it;
  return {it->value.data(), it->value.size()};
}

const ComponentHistory::Entry* ComponentHistory::latest_update_in(
    la::BlockId b, model::Step after, model::Step up_to) const {
  ASYNCIT_CHECK(b < per_block_.size());
  const auto& entries = per_block_[b];
  auto it = std::upper_bound(entries.begin(), entries.end(), up_to,
                             [](model::Step l, const Entry& e) {
                               return l < e.step;
                             });
  if (it == entries.begin()) return nullptr;
  --it;
  if (it->step <= after) return nullptr;  // nothing newer than `after`
  return &*it;
}

void ComponentHistory::prune(model::Step cutoff) {
  for (auto& entries : per_block_) {
    // Keep the newest entry with step <= cutoff (it defines the value for
    // labels in [cutoff, next update)), drop everything older.
    while (entries.size() >= 2 && entries[1].step <= cutoff)
      entries.pop_front();
  }
}

std::size_t ComponentHistory::total_entries() const {
  std::size_t total = 0;
  for (const auto& entries : per_block_) total += entries.size();
  return total;
}

}  // namespace asyncit::engine
