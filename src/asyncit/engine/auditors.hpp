// Post-run auditors for the paper's quantitative statements.
//
// Theorem 1:  for all j >= j_k,
//
//   ‖x(j) − x*‖²  <=  (1 − ρ)^k · max_i ‖x_i(0) − x_i*‖² ,    ρ = γ·mu.
//
// audit_theorem1 replays a ModelEngineResult's error history against the
// bound: for every recorded error sample at step j it determines the
// number k of macro-iterations completed by j and checks the squared
// weighted max-norm error against (1−ρ)^k · E0². The report carries the
// worst observed ratio so tests can assert `holds` and benches can print
// the margin.
#pragma once

#include <vector>

#include "asyncit/engine/model_engine.hpp"

namespace asyncit::engine {

struct Theorem1Row {
  model::Step j;       ///< step of the error sample
  std::size_t k;       ///< macro-iterations completed by step j
  double error_sq;     ///< ‖x(j) − x*‖²_u
  double bound;        ///< (1−ρ)^k · E0²
  double ratio;        ///< error_sq / bound (0 when bound underflows)
};

struct Theorem1Report {
  double rho = 0.0;
  double initial_error_sq = 0.0;  ///< E0²
  double worst_ratio = 0.0;
  bool holds = false;             ///< worst_ratio <= 1 + tolerance
  std::vector<Theorem1Row> rows;  ///< one row per audited sample
};

/// Requires the result to have been produced with x_star set.
/// `tolerance` absorbs floating-point slack in the ratio test.
Theorem1Report audit_theorem1(const ModelEngineResult& result, double rho,
                              double tolerance = 1e-9);

/// Empirical per-macro-iteration contraction rate: the geometric mean of
/// successive error ratios at macro boundaries (the measured counterpart
/// of Theorem 1's (1−ρ)). Returns 0 if fewer than 2 boundaries have
/// nonzero error.
double measured_macro_rate(const ModelEngineResult& result);

}  // namespace asyncit::engine
