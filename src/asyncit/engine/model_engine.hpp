// ModelEngine — the exact, sequential executor of Definitions 1 and 3.
//
// Given an operator F (or its approximation G), a steering policy S, a
// delay model L and a start vector x(0), the engine produces the iterate
// sequence {x(j)} of the paper verbatim:
//
//   x_i(j) = G_i( x̃_1(j), …, x̃_m(j) )   if i ∈ S_j,
//   x_i(j) = x_i(j−1)                    otherwise,
//
// where x̃_h(j) is x_h(l_h(j)) in the plain asynchronous case, or — with
// flexible communication enabled — a *partial update* of a later updating
// phase of h that has already been published (Definition 3, Fig. 2).
//
// The engine simultaneously drives the macro-iteration tracker
// (Definition 2), the epoch tracker (Mishchenko et al.), the schedule
// trace for admissibility audits, the weighted-max-norm error history
// against a known solution, and the live audit of the flexible-
// communication norm constraint (3). It is deterministic given the seed.
//
// This layer is the ground truth for all claims about the *mathematics*
// of asynchronous iterations; wall-clock behaviour lives in sim/ and
// runtime/.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "asyncit/engine/component_history.hpp"
#include "asyncit/linalg/norms.hpp"
#include "asyncit/model/delay_models.hpp"
#include "asyncit/model/epoch.hpp"
#include "asyncit/model/history.hpp"
#include "asyncit/model/macro_iteration.hpp"
#include "asyncit/model/steering.hpp"
#include "asyncit/operators/operator.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::engine {

struct ModelEngineOptions {
  model::Step max_steps = 100000;

  /// Convergence tolerance. With a known solution (x_star) this bounds the
  /// weighted max-norm error; otherwise the engine applies the macro-
  /// iteration stopping rule of ref [15]: stop at a macro boundary when no
  /// update inside the completed macro-iteration moved its block by more
  /// than tol (in the weighted block norm).
  double tol = 1e-10;

  /// Flexible communication (Definition 3): each updating phase performs
  /// `inner_steps` applications of the block operator; with
  /// `publish_partials` the intermediate iterates become visible to other
  /// blocks before the phase completes (the hatched arrows of Fig. 2).
  std::size_t inner_steps = 1;
  bool publish_partials = false;
  /// Probability that a read actually consumes an available partial.
  double flexible_read_prob = 1.0;

  /// Updating blocks read their own component fresh (label j-1), as a real
  /// processor reading its own memory would. Set false to exercise the
  /// fully general model.
  bool fresh_own_component = true;

  /// Label recording granularity for the returned trace.
  model::LabelRecording recording = model::LabelRecording::kMinOnly;

  /// Known solution: enables error tracking, Theorem-1 auditing and the
  /// live audit of norm constraint (3).
  std::optional<la::Vector> x_star;
  /// Record ‖x(j) − x*‖_u every this many steps (1 = every step).
  model::Step record_error_every = 1;
  /// Audit constraint (3) on every read when x_star is known.
  bool audit_flexible_constraint = false;

  /// Block -> machine assignment for epoch tracking; empty = one machine
  /// per block.
  std::vector<model::MachineId> machine_of_block;

  /// Weights of the max norm (empty = unit weights).
  la::Vector norm_weights;

  std::uint64_t seed = 1;
};

struct ModelEngineResult {
  la::Vector x;                       ///< final iterate x(J)
  model::Step steps = 0;              ///< executed steps J
  bool converged = false;

  model::ScheduleTrace trace;         ///< recorded (S, L) schedule
  std::vector<model::Step> macro_boundaries;  ///< j_0=0, j_1, …
  std::vector<model::Step> epoch_boundaries;  ///< k_0=0, k_1, …

  /// (step, ‖x(step) − x*‖_u) samples; empty without x_star.
  std::vector<std::pair<model::Step, double>> error_history;
  /// ‖x(j_k) − x*‖_u at each macro boundary (aligned with
  /// macro_boundaries[1..]).
  std::vector<double> error_at_macro;
  /// E0 = max_i ‖x_i(0) − x_i*‖_i / u_i (the RHS constant of Theorem 1).
  double initial_error = 0.0;

  /// Flexible-communication statistics.
  std::size_t flexible_reads = 0;          ///< reads that consumed a partial
  std::size_t constraint_checks = 0;       ///< audited reads
  std::size_t constraint_violations = 0;   ///< audited reads violating (3)
  double worst_constraint_ratio = 0.0;     ///< max LHS/RHS over audits

  /// Per-block update counts.
  std::vector<std::size_t> updates_per_block;

  ModelEngineResult(std::size_t num_blocks, model::LabelRecording rec)
      : trace(num_blocks, rec) {}
};

/// Runs the asynchronous iteration (G, x0, S, L). `steering` and `delays`
/// are consumed statefully (pass fresh instances per run for
/// reproducibility).
ModelEngineResult run_model_engine(const op::BlockOperator& op,
                                   model::SteeringPolicy& steering,
                                   model::DelayModel& delays,
                                   const la::Vector& x0,
                                   const ModelEngineOptions& options);

}  // namespace asyncit::engine
