// Per-component value history with label lookup.
//
// Definition 1 makes updates read component i "at label l_i(j)": the value
// x_i had after step l_i(j). A component's value only changes when it is
// updated, so the history stores, per block, the sparse list of (step,
// value) updates (plus the step-0 initial value) and answers label queries
// by binary search for the last update at or before the label.
//
// For flexible communication (Definition 3) each update entry can also
// carry the inner-iteration trajectory ("partial updates", the hatched
// arrows of Fig. 2), which readers may consume before the final value is
// published.
//
// Histories are pruned: entries strictly older than a cutoff are dropped
// except the newest one at or before the cutoff (it still answers queries
// for labels >= cutoff). Engines derive the cutoff from the delay model's
// max_lookback, so memory stays bounded even on million-step runs.
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/linalg/vector_ops.hpp"
#include "asyncit/model/history.hpp"

namespace asyncit::engine {

class ComponentHistory {
 public:
  struct Entry {
    model::Step step;
    la::Vector value;                  ///< final block value after the update
    std::vector<la::Vector> partials;  ///< inner iterates y^1..y^{s-1}
  };

  ComponentHistory(const la::Partition& partition,
                   std::span<const double> x0);

  /// Records the final value (and optional partial trajectory) of block b
  /// updated at step j. Steps per block must be strictly increasing.
  void record(la::BlockId b, model::Step j, std::span<const double> value,
              std::vector<la::Vector> partials = {});

  /// Value of block b as of step `label` (last update at or before it).
  std::span<const double> value_at(la::BlockId b, model::Step label) const;

  /// Latest update of block b with step in (after, up_to], or nullptr.
  const Entry* latest_update_in(la::BlockId b, model::Step after,
                                model::Step up_to) const;

  /// Drops entries with step < cutoff, keeping per block the newest entry
  /// at or before the cutoff.
  void prune(model::Step cutoff);

  std::size_t total_entries() const;

 private:
  const la::Partition& partition_;
  std::vector<std::deque<Entry>> per_block_;
};

}  // namespace asyncit::engine
