#include "asyncit/engine/model_engine.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::engine {

namespace {

/// Removes duplicates from S_j while preserving first-occurrence order.
void dedupe(std::vector<la::BlockId>& s) {
  std::vector<la::BlockId> out;
  out.reserve(s.size());
  for (la::BlockId b : s)
    if (std::find(out.begin(), out.end(), b) == out.end()) out.push_back(b);
  s = std::move(out);
}

}  // namespace

ModelEngineResult run_model_engine(const op::BlockOperator& op,
                                   model::SteeringPolicy& steering,
                                   model::DelayModel& delays,
                                   const la::Vector& x0,
                                   const ModelEngineOptions& options) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  const std::size_t n = partition.dim();
  ASYNCIT_CHECK(x0.size() == n);
  ASYNCIT_CHECK(steering.num_blocks() == m);
  ASYNCIT_CHECK(options.inner_steps >= 1);
  ASYNCIT_CHECK(options.max_steps >= 1);

  la::WeightedMaxNorm norm =
      options.norm_weights.empty()
          ? la::WeightedMaxNorm(partition)
          : la::WeightedMaxNorm(partition, options.norm_weights);

  std::vector<model::MachineId> machine_of_block = options.machine_of_block;
  if (machine_of_block.empty()) {
    machine_of_block.resize(m);
    for (std::size_t b = 0; b < m; ++b)
      machine_of_block[b] = static_cast<model::MachineId>(b);
  }
  ASYNCIT_CHECK(machine_of_block.size() == m);
  model::MachineId num_machines = 0;
  for (model::MachineId mb : machine_of_block)
    num_machines = std::max<model::MachineId>(num_machines, mb + 1);

  Rng rng(options.seed);
  ModelEngineResult result(m, options.recording);
  result.updates_per_block.assign(m, 0);

  la::Vector current = x0;
  ComponentHistory history(partition, current);
  model::MacroIterationTracker macro(m);
  model::EpochTracker epoch(num_machines);

  const bool track_error = options.x_star.has_value();
  const la::Vector* x_star = track_error ? &*options.x_star : nullptr;
  if (track_error) {
    ASYNCIT_CHECK(x_star->size() == n);
    double e0 = 0.0;
    for (la::BlockId b = 0; b < m; ++b)
      e0 = std::max(e0, norm.block_distance(current, *x_star, b));
    result.initial_error = e0;
  }

  // Scratch buffers reused across steps.
  op::Workspace ws;             // operator scratch (steady state: no alloc)
  la::Vector read_vec(n);       // x̃(j)
  la::Vector label_vec;         // x(l(j)) — only materialized for audits
  if (options.audit_flexible_constraint && track_error) label_vec.resize(n);
  std::vector<model::Step> labels(m);
  la::Vector new_block;         // updated block value
  la::Vector inner_buf;

  double max_change_in_macro = 0.0;
  bool converged = false;

  for (model::Step j = 1; j <= options.max_steps; ++j) {
    std::vector<la::BlockId> s = steering.next(j, rng);
    dedupe(s);
    ASYNCIT_CHECK_MSG(!s.empty(), "steering produced an empty S_j");

    // --- Labels (condition a enforced by the delay-model contract). ---
    for (la::BlockId h = 0; h < m; ++h) {
      labels[h] = delays.label(h, j, rng);
      ASYNCIT_CHECK_MSG(labels[h] <= j - 1,
                        "delay model violated condition a) at step " << j);
    }
    if (options.fresh_own_component)
      for (la::BlockId i : s) labels[i] = j - 1;
    model::Step l_min = labels[0];
    for (la::BlockId h = 1; h < m; ++h) l_min = std::min(l_min, labels[h]);

    // --- Build the read vector x̃(j). ---
    const bool flexible = options.publish_partials && options.inner_steps > 1;
    for (la::BlockId h = 0; h < m; ++h) {
      const la::BlockRange r = partition.range(h);
      std::span<const double> value = history.value_at(h, labels[h]);
      if (flexible && rng.bernoulli(options.flexible_read_prob)) {
        // A partial update of a phase newer than the label may already
        // have been published (hatched arrow of Fig. 2): consume the most
        // recent one.
        const ComponentHistory::Entry* e =
            history.latest_update_in(h, labels[h], j - 1);
        if (e != nullptr && !e->partials.empty()) {
          const la::Vector& p = e->partials.back();
          value = {p.data(), p.size()};
          ++result.flexible_reads;
        }
      }
      std::copy(value.begin(), value.end(), read_vec.begin() + r.begin);
    }

    // --- Audit norm constraint (3) of Definition 3. ---
    if (options.audit_flexible_constraint && track_error) {
      for (la::BlockId h = 0; h < m; ++h) {
        const la::BlockRange r = partition.range(h);
        const auto value = history.value_at(h, labels[h]);
        std::copy(value.begin(), value.end(), label_vec.begin() + r.begin);
      }
      const double rhs = norm.distance(label_vec, *x_star);
      for (la::BlockId h = 0; h < m; ++h) {
        const double lhs = norm.block_distance(read_vec, *x_star, h);
        ++result.constraint_checks;
        if (rhs > 0.0) {
          const double ratio = lhs / rhs;
          result.worst_constraint_ratio =
              std::max(result.worst_constraint_ratio, ratio);
          if (ratio > 1.0 + 1e-9) ++result.constraint_violations;
        }
      }
    }

    // --- Updating phases for every i in S_j. ---
    for (la::BlockId i : s) {
      const la::BlockRange r = partition.range(i);
      new_block.assign(r.size(), 0.0);
      std::vector<la::Vector> partials;
      if (options.inner_steps == 1) {
        op.apply_block(i, read_vec, new_block, ws);
      } else {
        // Inner iterations: the phase repeatedly applies the block map to
        // its own component while others stay frozen at x̃ — this is the
        // iterative process generating the approximate operator G of
        // Definition 3 / Remark 2.
        inner_buf.assign(read_vec.begin() + static_cast<std::ptrdiff_t>(r.begin),
                         read_vec.begin() + static_cast<std::ptrdiff_t>(r.end));
        for (std::size_t t = 0; t < options.inner_steps; ++t) {
          op.apply_block(i, read_vec, new_block, ws);
          std::copy(new_block.begin(), new_block.end(),
                    read_vec.begin() + static_cast<std::ptrdiff_t>(r.begin));
          if (options.publish_partials && t + 1 < options.inner_steps)
            partials.push_back(new_block);
        }
        // Restore x̃ for the other blocks updated in this same step.
        std::copy(inner_buf.begin(), inner_buf.end(),
                  read_vec.begin() + static_cast<std::ptrdiff_t>(r.begin));
      }

      // Track the displacement for the macro-residual stopping rule.
      double change = 0.0;
      for (std::size_t c = 0; c < r.size(); ++c) {
        const double d = new_block[c] - current[r.begin + c];
        change += d * d;
      }
      change = std::sqrt(change) / norm.weights()[i];
      max_change_in_macro = std::max(max_change_in_macro, change);

      std::copy(new_block.begin(), new_block.end(),
                current.begin() + static_cast<std::ptrdiff_t>(r.begin));
      history.record(i, j, new_block, std::move(partials));
      ++result.updates_per_block[i];
    }

    // --- Bookkeeping: trace, macro-iterations, epochs. ---
    const model::MachineId machine = machine_of_block[s.front()];
    result.trace.record(s, l_min,
                        options.recording == model::LabelRecording::kFull
                            ? labels
                            : std::vector<model::Step>{},
                        machine);
    const bool macro_completed = macro.observe(j, s, l_min);
    epoch.observe(j, machine);

    double err = -1.0;
    if (track_error &&
        (j % options.record_error_every == 0 || macro_completed)) {
      err = norm.distance(current, *x_star);
      result.error_history.emplace_back(j, err);
    }
    if (macro_completed) {
      if (track_error) result.error_at_macro.push_back(err);
      if (!track_error && max_change_in_macro < options.tol) {
        converged = true;  // macro-iteration stopping rule (ref [15])
      }
      max_change_in_macro = 0.0;
    }
    if (track_error && err >= 0.0 && err < options.tol) converged = true;

    result.steps = j;
    if (converged) break;

    // --- Prune value history beyond the reachable lookback window. ---
    const model::Step lookback = delays.max_lookback(j + 1);
    if (j > lookback + 2) history.prune(j - lookback - 2);
  }

  result.converged = converged;
  result.x = std::move(current);
  result.macro_boundaries = macro.boundaries();
  result.epoch_boundaries = epoch.boundaries();
  return result;
}

}  // namespace asyncit::engine
