#include "asyncit/engine/auditors.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::engine {

Theorem1Report audit_theorem1(const ModelEngineResult& result, double rho,
                              double tolerance) {
  ASYNCIT_CHECK_MSG(!result.error_history.empty(),
                    "audit requires an error history (run with x_star)");
  ASYNCIT_CHECK(rho > 0.0 && rho < 1.0);

  Theorem1Report report;
  report.rho = rho;
  report.initial_error_sq = result.initial_error * result.initial_error;

  // macro_boundaries = {0, j_1, j_2, ...}; k(j) = #boundaries (beyond j_0)
  // at or before j.
  const auto& bounds = result.macro_boundaries;
  std::size_t k = 0;

  for (const auto& [j, err] : result.error_history) {
    while (k + 1 < bounds.size() && bounds[k + 1] <= j) ++k;
    Theorem1Row row;
    row.j = j;
    row.k = k;
    row.error_sq = err * err;
    row.bound = std::pow(1.0 - rho, static_cast<double>(k)) *
                report.initial_error_sq;
    row.ratio = row.bound > 1e-300 ? row.error_sq / row.bound : 0.0;
    report.worst_ratio = std::max(report.worst_ratio, row.ratio);
    report.rows.push_back(row);
  }
  report.holds = report.worst_ratio <= 1.0 + tolerance;
  return report;
}

double measured_macro_rate(const ModelEngineResult& result) {
  const auto& errs = result.error_at_macro;
  double log_sum = 0.0;
  std::size_t count = 0;
  double prev = result.initial_error;
  for (double e : errs) {
    if (prev > 1e-300 && e > 1e-300) {
      log_sum += std::log(e / prev);
      ++count;
    }
    prev = e;
  }
  if (count == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(count));
}

}  // namespace asyncit::engine
