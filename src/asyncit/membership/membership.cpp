#include "asyncit/membership/membership.hpp"

#include <algorithm>

#include "asyncit/support/check.hpp"

namespace asyncit::membership {

namespace {

/// Retransmission budget per gossip update: ~3 log2(world) sends reach
/// every member w.h.p. (the SWIM dissemination bound).
std::size_t budget_for(std::size_t world) {
  std::size_t log2w = 1;
  while ((std::size_t{1} << log2w) < world) ++log2w;
  return 3 * log2w;
}

bool in_live_view(MemberState s) {
  return s == MemberState::kAlive || s == MemberState::kSuspect;
}

}  // namespace

MembershipTable::MembershipTable(
    std::uint32_t self, std::size_t world, double suspicion_timeout,
    const std::vector<std::uint32_t>& initial_alive,
    std::uint64_t incarnation)
    : self_(self),
      suspicion_timeout_(suspicion_timeout),
      members_(world),
      gossip_budget_(budget_for(world)) {
  ASYNCIT_CHECK(world >= 1 && self < world);
  ASYNCIT_CHECK(suspicion_timeout > 0.0);
  if (initial_alive.empty()) {
    for (Record& r : members_) r.state = MemberState::kAlive;
  } else {
    for (const std::uint32_t r : initial_alive) {
      ASYNCIT_CHECK(r < world);
      members_[r].state = MemberState::kAlive;
    }
  }
  members_[self_].state = MemberState::kAlive;
  members_[self_].incarnation = incarnation;
  rebuild_live();
}

MemberState MembershipTable::state(std::uint32_t rank) const {
  ASYNCIT_CHECK(rank < members_.size());
  return members_[rank].state;
}

std::uint64_t MembershipTable::incarnation(std::uint32_t rank) const {
  ASYNCIT_CHECK(rank < members_.size());
  return members_[rank].incarnation;
}

void MembershipTable::rebuild_live() {
  live_.clear();
  for (std::uint32_t r = 0; r < members_.size(); ++r)
    if (in_live_view(members_[r].state)) live_.push_back(r);
}

void MembershipTable::enqueue_gossip(const MembershipUpdate& u) {
  for (QueuedUpdate& q : gossip_) {
    if (q.update.rank == u.rank) {
      q.update = u;  // supersede: only the newest claim is worth spreading
      q.remaining = gossip_budget_;
      return;
    }
  }
  gossip_.push_back({u, gossip_budget_});
}

void MembershipTable::transition(std::uint32_t rank, MemberState state,
                                 std::uint64_t incarnation, double now,
                                 bool urgent) {
  Record& rec = members_[rank];
  const MemberState prev = rec.state;
  rec.state = state;
  rec.incarnation = incarnation;
  if (state == MemberState::kSuspect)
    rec.suspect_deadline = now + suspicion_timeout_;
  if (in_live_view(prev) != in_live_view(state)) {
    rebuild_live();
    ++epoch_;
    if (in_live_view(state)) {
      events_.push_back({EventKind::kJoined, rank, incarnation});
      ++stats_.joins_observed;
    } else {
      events_.push_back({EventKind::kDied, rank, incarnation});
      ++stats_.deaths_observed;
    }
  } else if (state == MemberState::kSuspect && prev != MemberState::kSuspect) {
    events_.push_back({EventKind::kSuspected, rank, incarnation});
    ++stats_.suspicions;
  }
  enqueue_gossip({rank, state, incarnation});
  if (urgent) urgent_pending_ = true;
}

bool MembershipTable::apply(const MembershipUpdate& u, double now) {
  if (u.rank >= members_.size() || u.state == MemberState::kUnknown) {
    ++stats_.control_rejected;
    return false;
  }
  Record& rec = members_[u.rank];

  if (u.rank == self_) {
    // Never accept our own demotion: refute by outbidding the claim. The
    // bumped alive supersedes the suspicion/death everywhere it spread —
    // and it is also how a restarted rank reclaims a slot the survivors
    // still hold as dead@i (its stale alive@0 loses, it hears dead@i
    // about itself, and rejoins as alive@i+1).
    if (u.state != MemberState::kAlive && u.incarnation >= rec.incarnation) {
      rec.incarnation = u.incarnation + 1;
      ++stats_.refutations;
      // No queue entry needed: the own alive entry heads every
      // collect_gossip() payload, so the refutation spreads on the next
      // frame to anyone — urgently, via a dedicated broadcast.
      urgent_pending_ = true;
      return true;
    }
    return false;
  }

  // SWIM precedence. A slot never heard from (kUnknown) accepts any
  // first claim — that is what lets a spare's alive@0 join at all.
  bool wins = false;
  if (rec.state == MemberState::kUnknown) {
    wins = true;
  } else {
    switch (u.state) {
      case MemberState::kAlive:
        wins = u.incarnation > rec.incarnation;
        break;
      case MemberState::kSuspect:
        // A suspicion can never resurrect the dead — only a bumped
        // alive (a genuine rejoin) does that.
        wins = rec.state == MemberState::kAlive
                   ? u.incarnation >= rec.incarnation
                   : rec.state == MemberState::kSuspect &&
                         u.incarnation > rec.incarnation;
        break;
      case MemberState::kDead:
        wins = rec.state != MemberState::kDead &&
               u.incarnation >= rec.incarnation;
        break;
      case MemberState::kUnknown:
        break;
    }
  }
  if (!wins || (u.state == rec.state && u.incarnation == rec.incarnation))
    return false;

  const bool urgent = u.state != MemberState::kSuspect;
  transition(u.rank, u.state, u.incarnation, now, urgent);
  return true;
}

void MembershipTable::suspect(std::uint32_t rank, double now) {
  ASYNCIT_CHECK(rank < members_.size() && rank != self_);
  Record& rec = members_[rank];
  if (rec.state != MemberState::kAlive) return;
  transition(rank, MemberState::kSuspect, rec.incarnation, now,
             /*urgent=*/true);
}

void MembershipTable::leave(std::uint32_t rank, double now) {
  ASYNCIT_CHECK(rank < members_.size() && rank != self_);
  Record& rec = members_[rank];
  if (rec.state == MemberState::kDead) return;
  transition(rank, MemberState::kDead, rec.incarnation, now,
             /*urgent=*/true);
}

void MembershipTable::tick(double now) {
  for (std::uint32_t r = 0; r < members_.size(); ++r) {
    Record& rec = members_[r];
    if (rec.state == MemberState::kSuspect && now >= rec.suspect_deadline)
      transition(r, MemberState::kDead, rec.incarnation, now,
                 /*urgent=*/true);
  }
}

void MembershipTable::drain_events(std::vector<Event>& out) {
  out.insert(out.end(), events_.begin(), events_.end());
  events_.clear();
}

void MembershipTable::collect_gossip(std::size_t max, std::uint32_t dst,
                                     std::vector<MembershipUpdate>& out) {
  out.clear();
  // Our own entry first: the standing heartbeat that announces joins and
  // keeps refutations flowing even when the queue has drained.
  out.push_back({self_, MemberState::kAlive, members_[self_].incarnation});
  // The destination's entry when we hold it suspect/dead: a live
  // destination must learn it is being demoted, or it can never refute.
  if (dst < members_.size() && dst != self_) {
    const Record& rec = members_[dst];
    if (rec.state == MemberState::kSuspect || rec.state == MemberState::kDead)
      out.push_back({dst, rec.state, rec.incarnation});
  }
  // Then the queue, freshest budget first (newest claims spread fastest).
  std::stable_sort(gossip_.begin(), gossip_.end(),
                   [](const QueuedUpdate& a, const QueuedUpdate& b) {
                     return a.remaining > b.remaining;
                   });
  std::size_t taken = 0;
  for (QueuedUpdate& q : gossip_) {
    if (taken >= max) break;
    if (q.update.rank == self_ || q.update.rank == dst) continue;  // already in
    out.push_back(q.update);
    ASYNCIT_CHECK(q.remaining > 0);
    --q.remaining;
    ++taken;
  }
  std::erase_if(gossip_,
                [](const QueuedUpdate& q) { return q.remaining == 0; });
}

}  // namespace asyncit::membership
