#include "asyncit/membership/swim.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::membership {

namespace {

/// How many live peers an urgent update is broadcast to directly (the
/// gossip piggyback carries it everywhere else).
constexpr std::size_t kUrgentFanout = 3;

/// A proxy probe nobody answered is forgotten after this many ping
/// timeouts (the requester has long since moved to suspicion).
constexpr double kProxyExpiryFactor = 4.0;

bool integral_in(double v, double max_inclusive) {
  return v >= 0.0 && v <= max_inclusive && v == std::floor(v);
}

}  // namespace

void encode_gossip(const std::vector<MembershipUpdate>& updates,
                   std::vector<double>& out) {
  out.clear();
  out.reserve(updates.size() * 3);
  for (const MembershipUpdate& u : updates) {
    out.push_back(static_cast<double>(u.rank));
    out.push_back(static_cast<double>(static_cast<std::uint8_t>(u.state)));
    out.push_back(static_cast<double>(u.incarnation));
  }
}

bool decode_gossip(const std::vector<double>& payload, std::size_t world,
                   std::vector<MembershipUpdate>& out) {
  out.clear();
  if (payload.size() % 3 != 0) return false;
  out.reserve(payload.size() / 3);
  for (std::size_t i = 0; i < payload.size(); i += 3) {
    const double rank = payload[i];
    const double state = payload[i + 1];
    // Incarnations stay exactly representable far beyond any realistic
    // churn count (2^53); reject anything outside that band.
    const double inc = payload[i + 2];
    if (!integral_in(rank, static_cast<double>(world) - 1.0) ||
        !integral_in(state, 2.0) || !integral_in(inc, 9.0e15)) {
      out.clear();
      return false;
    }
    out.push_back({static_cast<std::uint32_t>(rank),
                   static_cast<MemberState>(static_cast<std::uint8_t>(state)),
                   static_cast<std::uint64_t>(inc)});
  }
  return true;
}

SwimAgent::SwimAgent(std::uint32_t self, std::size_t world,
                     const Options& options, std::uint64_t seed,
                     std::uint64_t incarnation)
    : table_(self, world, options.suspicion_timeout, options.initial_alive,
             incarnation),
      options_(options),
      // Decorrelate from the problem/chaos streams AND from the other
      // ranks (probe order must differ per rank or everyone pings the
      // same victim in lockstep).
      rng_(seed ^ (0x5157494dULL + self)),
      last_contact_(world, 0.0) {
  ASYNCIT_CHECK(options.ping_period > 0.0);
  ASYNCIT_CHECK(options.ping_timeout > 0.0);
  ASYNCIT_CHECK(options.suspicion_timeout >= options.ping_timeout);
}

void SwimAgent::push_frame(std::uint32_t dst, net::MsgKind kind,
                           std::uint32_t target, std::uint64_t seq) {
  ControlFrame f;
  f.dst = dst;
  f.kind = kind;
  f.target = target;
  f.seq = seq;
  table_.collect_gossip(options_.max_piggyback, dst, gossip_scratch_);
  encode_gossip(gossip_scratch_, f.payload);
  outbox_.push_back(std::move(f));
  Stats& s = table_.stats();
  switch (kind) {
    case net::MsgKind::kPing: ++s.pings_sent; break;
    case net::MsgKind::kAck: ++s.acks_sent; break;
    case net::MsgKind::kPingReq: ++s.ping_reqs_sent; break;
    case net::MsgKind::kMembershipUpdate: ++s.gossip_frames_sent; break;
    default: break;
  }
}

void SwimAgent::heard_from(std::uint32_t src, double now) {
  if (src < last_contact_.size()) last_contact_[src] = now;
}

void SwimAgent::on_frame(const net::Message& m, double now) {
  heard_from(m.src, now);
  if (!decode_gossip(m.value, table_.world(), decode_scratch_)) {
    ++table_.stats().control_rejected;
    return;
  }
  for (const MembershipUpdate& u : decode_scratch_) table_.apply(u, now);

  switch (m.kind) {
    case net::MsgKind::kPing:
      // Answer with our own rank as the target so direct and forwarded
      // acks look identical to the prober.
      push_frame(m.src, net::MsgKind::kAck, table_.self(), m.tag);
      break;
    case net::MsgKind::kAck: {
      ++table_.stats().acks_received;
      const std::uint32_t target = m.block;
      std::erase_if(probes_, [&](const Probe& p) {
        return p.target == target && p.seq == m.tag;
      });
      heard_from(target, now);
      // A proxy ping we issued for someone else: forward the good news.
      for (std::size_t i = 0; i < proxies_.size(); ++i) {
        const ProxyProbe& px = proxies_[i];
        if (px.target == target && px.proxy_seq == m.tag) {
          push_frame(px.requester, net::MsgKind::kAck, target,
                     px.requester_seq);
          proxies_.erase(proxies_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      break;
    }
    case net::MsgKind::kPingReq: {
      const std::uint32_t target = m.block;
      if (target >= table_.world() || target == table_.self()) {
        ++table_.stats().control_rejected;
        break;
      }
      const std::uint64_t proxy_seq = ++seq_;
      proxies_.push_back({m.src, m.tag, target, proxy_seq, now});
      push_frame(target, net::MsgKind::kPing, target, proxy_seq);
      break;
    }
    case net::MsgKind::kMembershipUpdate:
      break;  // pure gossip carrier, already applied above
    default:
      ++table_.stats().control_rejected;  // kValue/kStop never route here
      break;
  }
}

std::uint32_t SwimAgent::next_probe_target(double now) {
  const std::vector<std::uint32_t>& live = table_.live_ranks();
  const std::uint32_t self = table_.self();
  const auto world = static_cast<std::uint32_t>(table_.world());
  if (live.size() <= 1) return world;  // nobody else to probe
  for (std::size_t attempts = 0; attempts < live.size() + 1; ++attempts) {
    if (probe_cursor_ >= probe_order_.size() ||
        probe_epoch_ != table_.epoch()) {
      probe_order_.assign(live.begin(), live.end());
      std::erase(probe_order_, self);
      rng_.shuffle(probe_order_);
      probe_cursor_ = 0;
      probe_epoch_ = table_.epoch();
      if (probe_order_.empty()) return world;
    }
    const std::uint32_t candidate = probe_order_[probe_cursor_++];
    if (table_.state(candidate) == MemberState::kDead) continue;
    // Data traffic within the last period already proves liveness; save
    // the probe for the quiet members (unless the full cadence is on).
    if (!options_.probe_busy_members &&
        now - last_contact_[candidate] < options_.ping_period &&
        table_.state(candidate) == MemberState::kAlive)
      continue;
    return candidate;
  }
  return world;
}

void SwimAgent::broadcast_update(double now) {
  (void)now;
  const std::vector<std::uint32_t>& live = table_.live_ranks();
  std::size_t sent = 0;
  // live_ranks is sorted; start at a random offset so repeated urgent
  // broadcasts from many ranks do not all converge on the low ranks.
  const std::size_t n = live.size();
  const std::size_t start = n ? rng_.uniform_index(n) : 0;
  for (std::size_t i = 0; i < n && sent < kUrgentFanout; ++i) {
    const std::uint32_t dst = live[(start + i) % n];
    if (dst == table_.self()) continue;
    push_frame(dst, net::MsgKind::kMembershipUpdate, dst, 0);
    ++sent;
  }
}

void SwimAgent::tick(double now) {
  table_.tick(now);

  // Escalate unanswered probes: indirect after one timeout, suspicion
  // after two.
  for (std::size_t i = 0; i < probes_.size();) {
    Probe& p = probes_[i];
    if (table_.state(p.target) == MemberState::kDead) {
      probes_.erase(probes_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (!p.indirect_sent && now - p.sent_at >= options_.ping_timeout) {
      p.indirect_sent = true;
      const std::vector<std::uint32_t>& live = table_.live_ranks();
      std::size_t sent = 0;
      const std::size_t n = live.size();
      const std::size_t start = n ? rng_.uniform_index(n) : 0;
      for (std::size_t k = 0; k < n && sent < options_.ping_req_fanout;
           ++k) {
        const std::uint32_t helper = live[(start + k) % n];
        if (helper == table_.self() || helper == p.target) continue;
        push_frame(helper, net::MsgKind::kPingReq, p.target, p.seq);
        ++sent;
      }
    }
    if (now - p.sent_at >= 2.0 * options_.ping_timeout) {
      table_.suspect(p.target, now);
      probes_.erase(probes_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
  std::erase_if(proxies_, [&](const ProxyProbe& px) {
    return now - px.started >= kProxyExpiryFactor * options_.ping_timeout;
  });

  // Next probe.
  if (now >= next_ping_at_) {
    // Catch up without bursting when the peer was busy computing.
    next_ping_at_ = std::max(next_ping_at_ + options_.ping_period,
                             now + 0.5 * options_.ping_period);
    const std::uint32_t target = next_probe_target(now);
    if (target < table_.world()) {
      const std::uint64_t seq = ++seq_;
      probes_.push_back({target, seq, now, false});
      push_frame(target, net::MsgKind::kPing, target, seq);
    }
  }

  if (table_.urgent_pending()) {
    table_.clear_urgent();
    broadcast_update(now);
  }
}

}  // namespace asyncit::membership
