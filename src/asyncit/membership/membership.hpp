// SWIM-style membership: who is in the computation RIGHT NOW.
//
// net::run_node used to freeze the world in the launch config: every rank
// that would ever participate had to be alive at rendezvous and stay alive
// to the end. The paper's totally asynchronous convergence theory (Thm. 1
// regime: unbounded delays, out-of-order messages) demands much less — a
// component only has to be updated *eventually* by *someone* — so the set
// of workers is allowed to change mid-solve. membership/ supplies the
// machinery: a failure detector and gossip-disseminated membership table
// in the style of SWIM (Das, Gupta, Motivala, DSN 2002), riding the
// existing control-frame path of the transport layer (MsgKind::kPing /
// kAck / kPingReq / kMembershipUpdate next to kStop).
//
// This header holds the DETERMINISTIC core: the per-member state machine
// and the piggyback gossip buffer. It owns no clock and no I/O — every
// input carries an explicit `now`, so the suspect→dead life cycle and the
// incarnation precedence rules are unit-testable without threads or
// sockets (tests/membership_test.cpp). The probing protocol that feeds it
// lives in membership/swim.hpp.
//
// State machine (per world slot, incarnation numbers break ties exactly as
// in SWIM):
//
//   kUnknown  configured slot that has never been heard from (a spare
//             rank the launcher may start later). Not part of the live
//             view; any update about it applies.
//   kAlive    member of the live view. alive@i overrides alive/suspect@j
//             iff i > j and dead@j iff i > j (that is how a dead rank —
//             or a never-started spare — (re)joins).
//   kSuspect  probed and unresponsive, grace period running. suspect@i
//             overrides alive@j iff i >= j and suspect@j iff i > j. A
//             suspicion about THIS rank is refuted by bumping the own
//             incarnation past it and gossiping the new alive.
//   kDead     suspicion expired (or a kStop announced a deliberate
//             leave). dead@i overrides alive/suspect@j iff i >= j.
//
// Every local state change is queued for piggyback dissemination with a
// bounded retransmission budget (O(log world) sends per update), SWIM's
// infection-style broadcast: updates ride the control frames that flow
// anyway instead of needing a broadcast primitive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asyncit::membership {

enum class MemberState : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,
  kDead = 2,
  kUnknown = 3,  ///< never heard from; not a wire state (local only)
};

/// The gossip unit: one rank's disseminated state. Travels 3 doubles wide
/// in control-frame payloads (see swim.hpp for the encoding).
struct MembershipUpdate {
  std::uint32_t rank = 0;
  MemberState state = MemberState::kAlive;
  std::uint64_t incarnation = 0;
};

/// What the runtime reacts to (block re-assignment, snapshot sends).
enum class EventKind : std::uint8_t {
  kJoined,     ///< entered the live view (first join or rejoin)
  kSuspected,  ///< grace period started (still in the live view)
  kDied,       ///< left the live view (suspicion expired or kStop leave)
};

struct Event {
  EventKind kind;
  std::uint32_t rank;
  std::uint64_t incarnation;
};

/// Knobs for the table AND the swim detector (one struct so MpOptions
/// carries a single `membership` field).
struct Options {
  bool enabled = false;

  /// Probe cadence: one direct ping per period, round-robin over a
  /// shuffled order of the other live members (SWIM's randomized
  /// round-robin gives deterministic worst-case detection time).
  double ping_period = 0.05;
  /// No direct ack within this window -> indirect probe through
  /// ping_req_fanout helpers; no ack at all within 2x -> suspect.
  double ping_timeout = 0.15;
  /// Suspect grace period before the slot is declared dead. This is the
  /// false-positive knob: chaos-injected delay below this bound must
  /// never kill anyone (pinned by membership_test).
  double suspicion_timeout = 1.0;
  std::size_t ping_req_fanout = 2;
  /// Max piggybacked gossip entries per control frame (the own entry is
  /// always included on top).
  std::size_t max_piggyback = 6;
  /// Probe members even when their data traffic already proves liveness
  /// (the full SWIM cadence). Default off: every received value frame is
  /// a free heartbeat, so the detector pings only QUIET links — a member
  /// goes unprobed exactly while it demonstrably does not need probing.
  /// Tests measuring detector behaviour under load turn this on.
  bool probe_busy_members = false;

  /// Ranks present at launch (the startup rendezvous set). Empty = every
  /// configured slot. A slot not listed starts kUnknown and may join
  /// later (scripts/launch_cluster.py --churn marks such spares `late`).
  std::vector<std::uint32_t> initial_alive;
};

/// Detector/dissemination counters, merged into net::MpResult so
/// launch_cluster.py can aggregate and assert on them (one schema — see
/// the asyncit-node/1 JSON in tools/asyncit_node.cpp).
struct Stats {
  std::uint64_t pings_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t ping_reqs_sent = 0;
  std::uint64_t gossip_frames_sent = 0;  ///< dedicated kMembershipUpdate
  std::uint64_t suspicions = 0;          ///< local + gossip-learned
  std::uint64_t deaths_observed = 0;
  std::uint64_t joins_observed = 0;
  std::uint64_t refutations = 0;         ///< own incarnation bumps
  std::uint64_t control_rejected = 0;    ///< malformed control frames

  Stats& operator+=(const Stats& o) {
    pings_sent += o.pings_sent;
    acks_sent += o.acks_sent;
    acks_received += o.acks_received;
    ping_reqs_sent += o.ping_reqs_sent;
    gossip_frames_sent += o.gossip_frames_sent;
    suspicions += o.suspicions;
    deaths_observed += o.deaths_observed;
    joins_observed += o.joins_observed;
    refutations += o.refutations;
    control_rejected += o.control_rejected;
    return *this;
  }
};

class MembershipTable {
 public:
  /// `self` starts kAlive at incarnation `incarnation`; `initial_alive`
  /// (empty = all) start kAlive at 0; every other slot starts kUnknown.
  /// `suspicion_timeout` is the suspect grace period (Options field).
  MembershipTable(std::uint32_t self, std::size_t world,
                  double suspicion_timeout,
                  const std::vector<std::uint32_t>& initial_alive,
                  std::uint64_t incarnation = 0);

  std::uint32_t self() const { return self_; }
  std::size_t world() const { return members_.size(); }
  MemberState state(std::uint32_t rank) const;
  std::uint64_t incarnation(std::uint32_t rank) const;

  /// Applies one received gossip update under the SWIM precedence rules.
  /// An update claiming THIS rank suspect/dead is refuted instead:
  /// the own incarnation jumps past it and the refutation is queued for
  /// gossip. Returns true when any state changed.
  bool apply(const MembershipUpdate& u, double now);

  /// Local failure-detector verdict: start (or keep) the suspicion
  /// grace period for `rank`. No-op unless the slot is currently alive.
  void suspect(std::uint32_t rank, double now);

  /// Deliberate leave (a kStop control frame): straight to dead at the
  /// member's current incarnation, gossiped like any death.
  void leave(std::uint32_t rank, double now);

  /// Expires overdue suspicions to dead. Call often (cheap when idle).
  void tick(double now);

  /// Sorted live view (kAlive + kSuspect — a suspect still owns its
  /// blocks until the grace period expires). Always contains self.
  const std::vector<std::uint32_t>& live_ranks() const { return live_; }
  /// Bumped whenever the live view changes — the runtime re-runs block
  /// assignment when it observes a new epoch.
  std::uint64_t epoch() const { return epoch_; }

  /// Moves accumulated events into `out` (appended).
  void drain_events(std::vector<Event>& out);

  /// Fills `out` (cleared first) with this frame's piggyback: the own
  /// alive entry, the entry about `dst` when it is suspect/dead (so a
  /// suspected-but-alive destination learns it must refute), then up to
  /// `max` queued updates by remaining retransmission budget.
  void collect_gossip(std::size_t max, std::uint32_t dst,
                      std::vector<MembershipUpdate>& out);

  /// True when a state change since the last collect deserves a
  /// dedicated kMembershipUpdate broadcast (death/join/refutation —
  /// piggyback alone would disseminate too slowly for re-assignment).
  bool urgent_pending() const { return urgent_pending_; }
  void clear_urgent() { urgent_pending_ = false; }

  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

 private:
  struct Record {
    MemberState state = MemberState::kUnknown;
    std::uint64_t incarnation = 0;
    double suspect_deadline = 0.0;  ///< valid while kSuspect
  };

  /// Commits a state transition: record, live view, events, gossip queue.
  void transition(std::uint32_t rank, MemberState state,
                  std::uint64_t incarnation, double now, bool urgent);
  void rebuild_live();
  void enqueue_gossip(const MembershipUpdate& u);

  std::uint32_t self_;
  double suspicion_timeout_;
  std::vector<Record> members_;
  std::vector<std::uint32_t> live_;  ///< sorted, includes self
  std::uint64_t epoch_ = 0;
  std::vector<Event> events_;

  /// Piggyback queue: updates still owed transmissions. Replaced when a
  /// newer update about the same rank supersedes them.
  struct QueuedUpdate {
    MembershipUpdate update;
    std::size_t remaining;
  };
  std::vector<QueuedUpdate> gossip_;
  std::size_t gossip_budget_;  ///< transmissions per update (~3 log2 w)
  bool urgent_pending_ = false;

  Stats stats_;
};

}  // namespace asyncit::membership
