// The SWIM probing protocol over the transport control-frame path.
//
// SwimAgent turns the deterministic MembershipTable into a live failure
// detector. It owns NO thread and NO socket: the single peer thread that
// drives a transport::Endpoint calls on_frame() for every received
// control message and tick() from its service loop, then drains outbox()
// and puts each ControlFrame on the wire itself (net::Peer does exactly
// this in Peer::service_membership). That keeps the endpoint threading
// contract intact and makes the whole protocol schedulable in tests.
//
// Probe cycle (one per Options::ping_period, randomized round-robin over
// the other live members):
//
//   kPing(seq)            direct probe; the receiver answers kAck(seq)
//                         with its own rank in the target field.
//   kPingReq(seq,target)  after ping_timeout without the direct ack, ask
//                         ping_req_fanout helpers to probe target for us;
//                         a helper pings with a proxy sequence number and
//                         forwards the ack back as kAck(seq,target).
//   suspect               no direct or indirect ack within
//                         2 x ping_timeout: the table starts the
//                         suspicion grace period (gossiped); the target
//                         refutes by incarnation bump if it is alive.
//
// Dissemination: every control frame carries a piggyback payload of
// membership updates (MembershipTable::collect_gossip); state changes the
// runtime must react to quickly (death, join, refutation) additionally
// trigger a dedicated kMembershipUpdate broadcast to a few live peers.
//
// Wire mapping (no new frame layout — control frames reuse the value
// header): header.kind selects the protocol verb, header.block carries
// the TARGET RANK, header.tag the probe sequence number, and the payload
// doubles encode the gossip entries 3-wide (rank, state, incarnation).
#pragma once

#include <cstdint>
#include <vector>

#include "asyncit/membership/membership.hpp"
#include "asyncit/net/channel.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::membership {

/// One outgoing control message, ready for Endpoint::send. The payload is
/// already encoded (gossip entries, 3 doubles each).
struct ControlFrame {
  std::uint32_t dst = 0;
  net::MsgKind kind = net::MsgKind::kPing;
  std::uint32_t target = 0;  ///< -> MessageHeader::block
  std::uint64_t seq = 0;     ///< -> MessageHeader::tag
  std::vector<double> payload;
};

/// Encodes `updates` into `out` (cleared first; 3 doubles per entry).
void encode_gossip(const std::vector<MembershipUpdate>& updates,
                   std::vector<double>& out);

/// Decodes a control-frame payload. Returns false (and leaves `out`
/// empty) when the payload is malformed: wrong arity, non-integral
/// fields, rank out of range, or a state outside the wire set.
bool decode_gossip(const std::vector<double>& payload, std::size_t world,
                   std::vector<MembershipUpdate>& out);

class SwimAgent {
 public:
  /// `incarnation` seeds the own slot (a restarted rank may pass its
  /// previous incarnation + 1; refutation self-heals either way).
  SwimAgent(std::uint32_t self, std::size_t world, const Options& options,
            std::uint64_t seed, std::uint64_t incarnation = 0);

  MembershipTable& table() { return table_; }
  const MembershipTable& table() const { return table_; }
  const Options& options() const { return options_; }

  /// Handles one received control frame (kind in {kPing, kAck, kPingReq,
  /// kMembershipUpdate}): applies its gossip, answers pings, matches
  /// acks, services indirect probe requests. Replies land in outbox().
  void on_frame(const net::Message& m, double now);

  /// Liveness evidence from ANY received frame (value frames included):
  /// refreshes the contact clock so the prober skips members whose data
  /// traffic already proves them alive this period.
  void heard_from(std::uint32_t src, double now);

  /// Periodic driver: expires suspicions, fires the next probe, escalates
  /// unanswered probes, emits urgent membership broadcasts. Rate-limited
  /// internally — call as often as convenient.
  void tick(double now);

  /// Outgoing control frames. The caller sends each one and clears the
  /// vector (buffers are recycled internally across frames).
  std::vector<ControlFrame>& outbox() { return outbox_; }

  /// Moves accumulated table events into `out` (appended).
  void drain_events(std::vector<Event>& out) { table_.drain_events(out); }

  const Stats& stats() const { return table_.stats(); }

 private:
  struct Probe {
    std::uint32_t target;
    std::uint64_t seq;
    double sent_at;
    bool indirect_sent;
  };
  /// An indirect probe we are servicing for someone else: our proxy ping
  /// to `target` with `proxy_seq`, owed back to `requester` as
  /// kAck(requester_seq, target).
  struct ProxyProbe {
    std::uint32_t requester;
    std::uint64_t requester_seq;
    std::uint32_t target;
    std::uint64_t proxy_seq;
    double started;
  };

  void push_frame(std::uint32_t dst, net::MsgKind kind, std::uint32_t target,
                  std::uint64_t seq);
  /// Next round-robin probe target (reshuffles when the cycle or the
  /// live view changes); world-sentinel when nobody else is live.
  std::uint32_t next_probe_target(double now);
  void broadcast_update(double now);

  MembershipTable table_;
  Options options_;
  Rng rng_;
  std::vector<ControlFrame> outbox_;

  std::vector<std::uint32_t> probe_order_;  ///< shuffled live members
  std::size_t probe_cursor_ = 0;
  std::uint64_t probe_epoch_ = 0;  ///< table epoch the order was built at

  std::vector<Probe> probes_;
  std::vector<ProxyProbe> proxies_;
  std::vector<double> last_contact_;  ///< per rank, seconds
  std::uint64_t seq_ = 0;
  double next_ping_at_ = 0.0;

  // scratch (reused; keeps the control path allocation-light)
  std::vector<MembershipUpdate> gossip_scratch_;
  std::vector<MembershipUpdate> decode_scratch_;
};

}  // namespace asyncit::membership
