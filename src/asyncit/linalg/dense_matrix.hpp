// Row-major dense matrix.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "asyncit/linalg/vector_ops.hpp"

namespace asyncit::la {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  /// y = A x
  void matvec(std::span<const double> x, std::span<double> y) const;
  Vector matvec(std::span<const double> x) const;
  /// y = A^T x
  void matvec_transpose(std::span<const double> x, std::span<double> y) const;
  Vector matvec_transpose(std::span<const double> x) const;

  /// Gram matrix A^T A (used for Lipschitz constants of least squares).
  DenseMatrix gram() const;

  /// Identity.
  static DenseMatrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Largest eigenvalue of a symmetric PSD matrix via power iteration.
/// `iters` power steps from a deterministic start vector.
double power_method_lmax(const DenseMatrix& a, int iters = 200);

}  // namespace asyncit::la
