// Dense vector kernels.
//
// Vectors are plain std::vector<double>; all kernels are free functions so
// they compose with spans coming from block stores and atomic snapshots.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace asyncit::la {

using Vector = std::vector<double>;

Vector zeros(std::size_t n);
Vector constant(std::size_t n, double v);

double dot(std::span<const double> a, std::span<const double> b);
/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
/// x *= alpha
void scale(double alpha, std::span<double> x);
/// out = a - b
Vector sub(std::span<const double> a, std::span<const double> b);
/// out = a + b
Vector add(std::span<const double> a, std::span<const double> b);

double norm2(std::span<const double> x);
double norm2_sq(std::span<const double> x);
double norm1(std::span<const double> x);
double norm_inf(std::span<const double> x);

/// ||a - b||_2
double dist2(std::span<const double> a, std::span<const double> b);
/// ||a - b||_inf
double dist_inf(std::span<const double> a, std::span<const double> b);

}  // namespace asyncit::la
