// Block partition of the iterate vector.
//
// Definition 1 of the paper updates *components* of the iterate vector; in
// practice a "component" x_i is a block of contiguous coordinates owned by
// one processor. Partition maps between coordinate space (size n) and block
// space (size num_blocks). The scalar case is n blocks of size 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace asyncit::la {

using BlockId = std::uint32_t;

struct BlockRange {
  std::size_t begin;  ///< first coordinate
  std::size_t end;    ///< one past last coordinate
  std::size_t size() const { return end - begin; }
};

class Partition {
 public:
  Partition() = default;

  /// n blocks of size 1 (the scalar component model).
  static Partition scalar(std::size_t n);

  /// `blocks` contiguous blocks of near-equal size covering n coordinates.
  /// Requires 1 <= blocks <= n; earlier blocks get the remainder.
  static Partition balanced(std::size_t n, std::size_t blocks);

  /// Explicit block sizes (must sum to n > 0 with all sizes > 0).
  static Partition from_sizes(const std::vector<std::size_t>& sizes);

  std::size_t dim() const { return dim_; }
  std::size_t num_blocks() const { return ranges_.size(); }
  /// Largest block size (scratch sizing for per-block work buffers).
  std::size_t max_block_size() const { return max_block_size_; }

  BlockRange range(BlockId b) const;
  BlockId block_of(std::size_t coordinate) const;

  /// The sub-span of x corresponding to block b.
  std::span<const double> block_span(std::span<const double> x,
                                     BlockId b) const;
  std::span<double> block_span(std::span<double> x, BlockId b) const;

  bool operator==(const Partition& other) const = default;

 private:
  std::size_t dim_ = 0;
  std::size_t max_block_size_ = 0;
  std::vector<BlockRange> ranges_;
  std::vector<BlockId> coord_to_block_;
};

/// Contiguous near-even assignment of `num_blocks` blocks to `workers`
/// owners (earlier workers get the remainder). The ownership scheme shared
/// by the threaded executors (rt::) and the message-passing runtime (net::).
/// Requires 1 <= workers <= num_blocks.
std::vector<std::vector<BlockId>> assign_blocks_contiguous(
    std::size_t num_blocks, std::size_t workers);

}  // namespace asyncit::la
