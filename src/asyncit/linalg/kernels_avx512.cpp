// The AVX-512 backend's translation unit — the ONLY object compiled with
// -mavx512f -mavx512vl (see the per-source properties in CMakeLists.txt).
// It builds on any x86-64 host; whether it RUNS is cpuid's call at
// startup (simd_dispatch.cpp).
#include "asyncit/linalg/kernels_avx512.hpp"

namespace asyncit::la::simd {

#if defined(ASYNCIT_SIMD_AVX512_COMPILED)
const KernelTable* avx512_table() { return &avx512::kTable; }
#else
const KernelTable* avx512_table() { return nullptr; }
#endif

}  // namespace asyncit::la::simd
