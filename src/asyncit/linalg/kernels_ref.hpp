// Naive reference kernels — the exact loop shapes the optimized kernels in
// kernels.hpp replaced (single accumulator, per-element index arithmetic,
// branchy diagonal handling).
//
// They exist for two reasons:
//  * tests/kernels_test.cpp pins EVERY dispatch level of the kernel façade
//    (linalg/simd_dispatch.hpp: scalar/AVX2/AVX-512/NEON) against them on
//    random inputs — these loops are the semantics ORACLE of the
//    FP-reassociation contract, and the parity tolerance is the spec; and
//  * bench/micro_kernels.cpp measures the optimized-vs-naive gap and
//    records it in BENCH_kernels.json, which scripts/check_bench.py tracks
//    run over run.
//
// Do not "improve" these: their value is being a faithful, boring baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace asyncit::la::ref {

inline double dot(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t k = 0; k < n; ++k) s += a[k] * b[k];
  return s;
}

inline double sparse_dot(const double* vals, const std::uint32_t* cols,
                         std::size_t n, const double* x) {
  double s = 0.0;
  for (std::size_t k = 0; k < n; ++k) s += vals[k] * x[cols[k]];
  return s;
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) y[k] += alpha * x[k];
}

inline double sq_dist(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double d = a[k] - b[k];
    s += d * d;
  }
  return s;
}

/// Pre-PR CSR matvec: per-row loop indexing row_ptr bounds each iteration.
inline void csr_matvec(std::span<const std::size_t> row_ptr,
                       std::span<const std::uint32_t> col_idx,
                       std::span<const double> values,
                       std::span<const double> x, std::span<double> y) {
  const std::size_t rows = y.size();
  for (std::size_t r = 0; r < rows; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      s += values[k] * x[col_idx[k]];
    y[r] = s;
  }
}

/// Pre-PR Jacobi block update: branch on the diagonal inside the inner
/// loop, one division per row.
inline void jacobi_rows(std::span<const std::size_t> row_ptr,
                        std::span<const std::uint32_t> col_idx,
                        std::span<const double> values,
                        std::span<const double> rhs,
                        std::span<const double> diag, std::size_t begin,
                        std::size_t end, std::span<const double> x,
                        std::span<double> out) {
  for (std::size_t row = begin; row < end; ++row) {
    double s = rhs[row];
    for (std::size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      if (col_idx[k] == row) continue;
      s -= values[k] * x[col_idx[k]];
    }
    out[row - begin] = s / diag[row];
  }
}

}  // namespace asyncit::la::ref
