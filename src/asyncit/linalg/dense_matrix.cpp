#include "asyncit/linalg/dense_matrix.hpp"

#include <cmath>

#include "asyncit/linalg/kernels.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::la {

void DenseMatrix::matvec(std::span<const double> x,
                         std::span<double> y) const {
  ASYNCIT_CHECK(x.size() == cols_ && y.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    y[r] = kern::dot(data_.data() + r * cols_, x.data(), cols_);
}

Vector DenseMatrix::matvec(std::span<const double> x) const {
  Vector y(rows_);
  matvec(x, y);
  return y;
}

void DenseMatrix::matvec_transpose(std::span<const double> x,
                                   std::span<double> y) const {
  ASYNCIT_CHECK(x.size() == rows_ && y.size() == cols_);
  for (double& v : y) v = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    kern::axpy(x[r], data_.data() + r * cols_, y.data(), cols_);
}

Vector DenseMatrix::matvec_transpose(std::span<const double> x) const {
  Vector y(cols_);
  matvec_transpose(x, y);
  return y;
}

DenseMatrix DenseMatrix::gram() const {
  DenseMatrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = data_.data() + r * cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double ai = a[i];
      if (ai == 0.0) continue;
      kern::axpy(ai, a, &g(i, 0), cols_);
    }
  }
  return g;
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double power_method_lmax(const DenseMatrix& a, int iters) {
  ASYNCIT_CHECK(a.rows() == a.cols());
  ASYNCIT_CHECK(a.rows() > 0);
  const std::size_t n = a.rows();
  Vector v(n);
  // Deterministic, not axis-aligned start.
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 1.0 + 0.1 * std::sin(static_cast<double>(i + 1));
  Vector w(n);
  for (int it = 0; it < iters; ++it) {
    a.matvec(v, w);
    const double nrm = norm2(w);
    if (nrm == 0.0) return 0.0;
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / nrm;
  }
  // One Rayleigh quotient for accuracy.
  a.matvec(v, w);
  return dot(v, w);
}

}  // namespace asyncit::la
