// The NEON backend's translation unit. AdvSIMD is baseline on aarch64, so
// no per-TU flags are needed — the guard in kernels_neon.hpp keeps this
// object empty everywhere else.
#include "asyncit/linalg/kernels_neon.hpp"

namespace asyncit::la::simd {

#if defined(ASYNCIT_SIMD_NEON_COMPILED)
const KernelTable* neon_table() { return &neon::kTable; }
#else
const KernelTable* neon_table() { return nullptr; }
#endif

}  // namespace asyncit::la::simd
