// AVX2 + FMA dispatch backend: 256-bit (4-wide) double kernels.
//
// This header carries DECLARATIONS only (no intrinsics), so it is safe to
// include from any translation unit; the definitions live exclusively in
// kernels_avx2.cpp, which CMake compiles with -mavx2 -mfma on x86-64 —
// per-TU ISA flags mean the object BUILDS on any x86-64 host while the
// runtime (simd_dispatch.cpp) only installs it when cpuid reports
// AVX2+FMA.
//
// The functions are deliberately NON-inline: the AVX-512 backend reuses
// the sparse kernels below (see kernels_avx512.hpp), and an inline
// definition would be re-emitted by the AVX-512 TU with EVEX encodings —
// the linker's COMDAT selection could then hand the avx2 dispatch table
// AVX-512-encoded code, a SIGILL on any AVX2-only CPU. One out-of-line
// definition in the one ISA-clean TU removes that failure mode.
//
// Implementation shape (see kernels_avx2.cpp): multiple independent
// vector accumulators to break the FP add dependency chain, scalar
// remainder loops (AVX2 has no cheap lane masking for doubles — the
// masked-tail variant lives in the AVX-512 backend), and the horizontal
// reduction at the end is one more summation order, covered by the parity
// tolerance (kernels_ref.hpp is the oracle).
//
// The sparse column indirection deliberately does NOT use vgatherdpd:
// on the wide installed base of Downfall-mitigated parts (Skylake through
// Ice Lake server cores, most cloud VMs) the microcoded gather is several
// times SLOWER than scalar loads. Instead each x lane is fetched with
// vbroadcastsd (a pure load uop) and lanes are combined with vblendpd
// (any-port). That construction is never pathological: it ties the scalar
// backend on narrow cores and wins on wide ones, whatever the microcode.
#pragma once

#include <cstddef>
#include <cstdint>

namespace asyncit::la::simd::avx2 {

double dot(const double* a, const double* b, std::size_t n);
double gather_dot(const double* vals, const std::uint32_t* cols,
                  std::size_t n, const double* x);
void axpy(double alpha, const double* x, double* y, std::size_t n);
double sq_dist(const double* a, const double* b, std::size_t n);
double sq_norm(const double* a, std::size_t n);
void matvec_rows(const std::size_t* row_ptr, const std::uint32_t* cols,
                 const double* vals, std::size_t begin, std::size_t end,
                 const double* x, double* y);
void jacobi_rows(const std::size_t* row_ptr, const std::uint32_t* cols,
                 const double* vals, const double* rhs,
                 const double* inv_diag, std::size_t begin, std::size_t end,
                 const double* x, double* out);

}  // namespace asyncit::la::simd::avx2
