#include "asyncit/linalg/partition.hpp"

#include <algorithm>

#include "asyncit/support/check.hpp"

namespace asyncit::la {

Partition Partition::scalar(std::size_t n) {
  ASYNCIT_CHECK(n > 0);
  return balanced(n, n);
}

Partition Partition::balanced(std::size_t n, std::size_t blocks) {
  ASYNCIT_CHECK(blocks >= 1 && blocks <= n);
  const std::size_t base = n / blocks;
  const std::size_t extra = n % blocks;
  std::vector<std::size_t> sizes(blocks, base);
  for (std::size_t b = 0; b < extra; ++b) ++sizes[b];
  return from_sizes(sizes);
}

Partition Partition::from_sizes(const std::vector<std::size_t>& sizes) {
  ASYNCIT_CHECK(!sizes.empty());
  Partition p;
  std::size_t begin = 0;
  p.ranges_.reserve(sizes.size());
  for (std::size_t s : sizes) {
    ASYNCIT_CHECK(s > 0);
    p.ranges_.push_back({begin, begin + s});
    begin += s;
    p.max_block_size_ = std::max(p.max_block_size_, s);
  }
  p.dim_ = begin;
  p.coord_to_block_.resize(p.dim_);
  for (BlockId b = 0; b < p.ranges_.size(); ++b)
    for (std::size_t c = p.ranges_[b].begin; c < p.ranges_[b].end; ++c)
      p.coord_to_block_[c] = b;
  return p;
}

BlockRange Partition::range(BlockId b) const {
  ASYNCIT_CHECK(b < ranges_.size());
  return ranges_[b];
}

BlockId Partition::block_of(std::size_t coordinate) const {
  ASYNCIT_CHECK(coordinate < dim_);
  return coord_to_block_[coordinate];
}

std::span<const double> Partition::block_span(std::span<const double> x,
                                              BlockId b) const {
  ASYNCIT_CHECK(x.size() == dim_);
  const BlockRange r = range(b);
  return x.subspan(r.begin, r.size());
}

std::span<double> Partition::block_span(std::span<double> x,
                                        BlockId b) const {
  ASYNCIT_CHECK(x.size() == dim_);
  const BlockRange r = range(b);
  return x.subspan(r.begin, r.size());
}

std::vector<std::vector<BlockId>> assign_blocks_contiguous(
    std::size_t num_blocks, std::size_t workers) {
  ASYNCIT_CHECK(workers >= 1 && workers <= num_blocks);
  std::vector<std::vector<BlockId>> owned(workers);
  const std::size_t base = num_blocks / workers;
  const std::size_t extra = num_blocks % workers;
  BlockId b = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t count = base + (w < extra ? 1 : 0);
    for (std::size_t k = 0; k < count; ++k) owned[w].push_back(b++);
  }
  return owned;
}

}  // namespace asyncit::la
