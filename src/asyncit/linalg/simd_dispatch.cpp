// Runtime dispatch resolution: capability detection, the ASYNCIT_SIMD
// override, and the one global table installation. See simd_dispatch.hpp
// for the selection contract.
#include "asyncit/linalg/simd_dispatch.hpp"

#include <cstdlib>

#include "asyncit/linalg/kernels_scalar.hpp"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace asyncit::la::simd {

namespace detail {
// Constant-initialized (no static-init-order hazard): any kernel call that
// happens before the startup resolver below runs goes through the scalar
// table, which is correct on every host.
constinit std::atomic<const KernelTable*> g_active{&scalar::kTable};
}  // namespace detail

namespace {

std::atomic<std::uint64_t> g_resolutions{0};

const KernelTable* table_for(Level level) {
  switch (level) {
    case Level::kScalar: return scalar_table();
    case Level::kAvx2: return avx2_table();
    case Level::kAvx512: return avx512_table();
    case Level::kNeon: return neon_table();
  }
  return nullptr;
}

/// Does the CPU we are running on execute this level's instructions?
/// (Whether the backend was COMPILED is a separate question — table_for.)
bool cpu_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
    case Level::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      if (level == Level::kAvx2)
        return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
      // F alone is not enough: the backend uses VL mask operations and a
      // 256-bit FMA sparse path. Every non-Phi AVX-512 part has all of
      // these.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Level::kNeon:
#if defined(__aarch64__)
#if defined(__linux__)
      return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
      return true;  // AdvSIMD is baseline aarch64
#endif
#else
      return false;
#endif
  }
  return false;
}

void install(const KernelTable* table) {
  detail::g_active.store(table, std::memory_order_relaxed);
  g_resolutions.fetch_add(1, std::memory_order_relaxed);
}

// Resolve once before main() so every executor starts on the best level.
// (Code running during OTHER TUs' static initialization may still see the
// scalar table — correct, just not yet vectorized.)
const bool g_startup_resolved = [] {
  dispatch();
  return true;
}();

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
    case Level::kNeon: return "neon";
  }
  return "?";
}

bool parse_level(std::string_view name, Level& out) {
  for (std::size_t i = 0; i < kNumLevels; ++i) {
    const Level level = static_cast<Level>(i);
    if (name == to_string(level)) {
      out = level;
      return true;
    }
  }
  return false;
}

const KernelTable* scalar_table() { return &scalar::kTable; }

bool supported(Level level) {
  return table_for(level) != nullptr && cpu_supports(level);
}

Level best_supported() {
  for (const Level level : {Level::kAvx512, Level::kAvx2, Level::kNeon})
    if (supported(level)) return level;
  return Level::kScalar;
}

std::vector<Level> supported_levels() {
  std::vector<Level> levels;
  for (std::size_t i = 0; i < kNumLevels; ++i)
    if (supported(static_cast<Level>(i)))
      levels.push_back(static_cast<Level>(i));
  return levels;
}

Level dispatch() {
  Level level = best_supported();
  if (const char* env = std::getenv("ASYNCIT_SIMD")) {
    Level requested;
    // Unknown names and unsupported levels both fall back to the detected
    // best: a CI matrix can export ASYNCIT_SIMD=avx512 on every runner
    // and the ones without AVX-512 still run, just at their own best.
    if (parse_level(env, requested) && supported(requested))
      level = requested;
  }
  install(table_for(level));
  return level;
}

bool force(Level level) {
  if (!supported(level)) return false;
  install(table_for(level));
  return true;
}

Level active_level() {
  return detail::g_active.load(std::memory_order_relaxed)->level;
}

std::uint64_t resolutions() {
  return g_resolutions.load(std::memory_order_relaxed);
}

}  // namespace asyncit::la::simd
