// The AVX2 backend's definitions — the ONLY object compiled with
// -mavx2 -mfma (see the per-source properties in CMakeLists.txt), so the
// vector code cannot leak into TUs that must run on pre-AVX2 hardware.
// The AVX-512 table also points at the sparse kernels defined here (short
// CSR rows gain nothing from 512-bit accumulators); keeping these
// definitions out-of-line in this one ISA-clean TU is what guarantees the
// avx2 dispatch level never executes an EVEX-encoded instruction — see
// the header for the COMDAT hazard this avoids.
#include "asyncit/linalg/kernels_avx2.hpp"

#include "asyncit/linalg/simd_dispatch.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#define ASYNCIT_SIMD_AVX2_COMPILED 1

#include <immintrin.h>

#if defined(__GNUC__) && !defined(__clang__)
// GCC implements several unmasked AVX/AVX2 intrinsics in terms of
// _mm256_undefined_*() and flags the deliberately-uninitialized source at
// every always_inline site (GCC PR 105593). The kernels below initialize
// every accumulator; suppress the header false positive for this backend
// TU only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace asyncit::la::simd::avx2 {

namespace {

/// Four x lanes fetched through the column indices with broadcast loads
/// and blends — see the header comment for why this beats vgatherdpd.
inline __m256d gather4(const double* x, const std::uint32_t* c) {
  const __m256d v0 = _mm256_broadcast_sd(x + c[0]);
  const __m256d v1 = _mm256_broadcast_sd(x + c[1]);
  const __m256d v2 = _mm256_broadcast_sd(x + c[2]);
  const __m256d v3 = _mm256_broadcast_sd(x + c[3]);
  return _mm256_blend_pd(_mm256_blend_pd(v0, v1, 0b0010),
                         _mm256_blend_pd(v2, v3, 0b1000), 0b1100);
}

/// Sum of the four lanes (pairwise: (l0+l2) + (l1+l3)).
inline double hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

}  // namespace

double dot(const double* a, const double* b, std::size_t n) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  __m256d s2 = _mm256_setzero_pd(), s3 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 16 <= n; k += 16) {
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + k), _mm256_loadu_pd(b + k), s0);
    s1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + k + 4),
                         _mm256_loadu_pd(b + k + 4), s1);
    s2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + k + 8),
                         _mm256_loadu_pd(b + k + 8), s2);
    s3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + k + 12),
                         _mm256_loadu_pd(b + k + 12), s3);
  }
  for (; k + 4 <= n; k += 4)
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + k), _mm256_loadu_pd(b + k), s0);
  double s = hsum(_mm256_add_pd(_mm256_add_pd(s0, s1), _mm256_add_pd(s2, s3)));
  for (; k < n; ++k) s += a[k] * b[k];
  return s;
}

double gather_dot(const double* vals, const std::uint32_t* cols,
                  std::size_t n, const double* x) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + k), gather4(x, cols + k), s0);
    s1 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + k + 4),
                         gather4(x, cols + k + 4), s1);
  }
  for (; k + 4 <= n; k += 4)
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + k), gather4(x, cols + k), s0);
  double s = hsum(_mm256_add_pd(s0, s1));
  for (; k < n; ++k) s += vals[k] * x[cols[k]];
  return s;
}

void axpy(double alpha, const double* x, double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm256_storeu_pd(
        y + k, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + k),
                               _mm256_loadu_pd(y + k)));
    _mm256_storeu_pd(
        y + k + 4, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + k + 4),
                                   _mm256_loadu_pd(y + k + 4)));
  }
  for (; k + 4 <= n; k += 4)
    _mm256_storeu_pd(
        y + k, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + k),
                               _mm256_loadu_pd(y + k)));
  for (; k < n; ++k) y[k] += alpha * x[k];
}

double sq_dist(const double* a, const double* b, std::size_t n) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + k), _mm256_loadu_pd(b + k));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + k + 4), _mm256_loadu_pd(b + k + 4));
    s0 = _mm256_fmadd_pd(d0, d0, s0);
    s1 = _mm256_fmadd_pd(d1, d1, s1);
  }
  for (; k + 4 <= n; k += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + k), _mm256_loadu_pd(b + k));
    s0 = _mm256_fmadd_pd(d, d, s0);
  }
  double s = hsum(_mm256_add_pd(s0, s1));
  for (; k < n; ++k) {
    const double d = a[k] - b[k];
    s += d * d;
  }
  return s;
}

double sq_norm(const double* a, std::size_t n) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256d v0 = _mm256_loadu_pd(a + k);
    const __m256d v1 = _mm256_loadu_pd(a + k + 4);
    s0 = _mm256_fmadd_pd(v0, v0, s0);
    s1 = _mm256_fmadd_pd(v1, v1, s1);
  }
  for (; k + 4 <= n; k += 4) {
    const __m256d v = _mm256_loadu_pd(a + k);
    s0 = _mm256_fmadd_pd(v, v, s0);
  }
  double s = hsum(_mm256_add_pd(s0, s1));
  for (; k < n; ++k) s += a[k] * a[k];
  return s;
}

void matvec_rows(const std::size_t* row_ptr, const std::uint32_t* cols,
                 const double* vals, std::size_t begin, std::size_t end,
                 const double* x, double* y) {
  std::size_t k = row_ptr[begin];
  for (std::size_t r = begin; r < end; ++r) {
    const std::size_t k_end = row_ptr[r + 1];
    y[r - begin] = gather_dot(vals + k, cols + k, k_end - k, x);
    k = k_end;
  }
}

void jacobi_rows(const std::size_t* row_ptr, const std::uint32_t* cols,
                 const double* vals, const double* rhs,
                 const double* inv_diag, std::size_t begin, std::size_t end,
                 const double* x, double* out) {
  std::size_t k = row_ptr[begin];
  for (std::size_t r = begin; r < end; ++r) {
    const std::size_t k_end = row_ptr[r + 1];
    const double s = gather_dot(vals + k, cols + k, k_end - k, x);
    out[r - begin] = (rhs[r] - s) * inv_diag[r] + x[r];
    k = k_end;
  }
}

}  // namespace asyncit::la::simd::avx2

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // __AVX2__ && __FMA__

namespace asyncit::la::simd {

#if defined(ASYNCIT_SIMD_AVX2_COMPILED)
namespace {
constexpr KernelTable kAvx2Table = {
    Level::kAvx2,   &avx2::dot,     &avx2::gather_dot,  &avx2::axpy,
    &avx2::sq_dist, &avx2::sq_norm, &avx2::matvec_rows, &avx2::jacobi_rows,
};
}  // namespace
const KernelTable* avx2_table() { return &kAvx2Table; }
#else
// Foreign architecture (or a toolchain without the flags): the backend is
// not compiled in; dispatch treats a null table as "unsupported".
const KernelTable* avx2_table() { return nullptr; }
#endif

}  // namespace asyncit::la::simd
