// Compressed sparse row matrix with a triplet builder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "asyncit/linalg/vector_ops.hpp"

namespace asyncit::la {

struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicate (row,col) entries are summed.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// y = A x
  void matvec(std::span<const double> x, std::span<double> y) const;
  Vector matvec(std::span<const double> x) const;
  /// y = A^T x
  void matvec_transpose(std::span<const double> x, std::span<double> y) const;
  Vector matvec_transpose(std::span<const double> x) const;

  /// Row-range matvec: y[r - begin] = (A x)_r for r in [begin, end).
  /// The block-granular kernel the asynchronous executors hit per update.
  void matvec_rows(std::size_t begin, std::size_t end,
                   std::span<const double> x, std::span<double> y) const;

  /// Fused Jacobi row-range kernel:
  ///   out[r - begin] = (rhs[r] − A.row(r)·x) · inv_diag[r] + x[r]
  /// which equals the point-Jacobi update (rhs[r] − Σ_{k≠r} a_rk x_k)/a_rr
  /// when inv_diag[r] = 1/a_rr — the diagonal term is handled
  /// algebraically instead of with a per-element branch.
  void jacobi_rows(std::size_t begin, std::size_t end,
                   std::span<const double> rhs,
                   std::span<const double> inv_diag,
                   std::span<const double> x, std::span<double> out) const;

  /// Dot product of row r with x.
  double row_dot(std::size_t r, std::span<const double> x) const;

  /// Entry (r, c); O(log nnz_row) lookup; 0 if absent.
  double at(std::size_t r, std::size_t c) const;

  /// Diagonal (requires square).
  Vector diagonal() const;

  /// Row range accessors for iteration.
  std::span<const std::uint32_t> row_cols(std::size_t r) const;
  std::span<const double> row_values(std::size_t r) const;

  /// Raw CSR arrays (reference kernels and tests; prefer the typed
  /// kernels above for compute).
  std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  std::span<const std::uint32_t> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

/// Largest eigenvalue of A^T A (squared spectral norm of A) via power
/// iteration on v -> A^T (A v). Deterministic start vector.
double gram_spectral_norm(const CsrMatrix& a, int iters = 200);

}  // namespace asyncit::la
