// Runtime SIMD dispatch for the hot-path kernels.
//
// The level-1 primitives and the fused CSR row kernels exist in one
// implementation per instruction set (kernels_scalar.hpp, kernels_avx2.hpp,
// kernels_avx512.hpp, kernels_neon.hpp). This layer picks ONE of them at
// startup and installs its function pointers in a single global table; the
// façade in kernels.hpp reads that table with a relaxed atomic pointer
// load, so the steady state pays one indirect call per kernel — no per-call
// branching, no allocation, and no re-resolution (pinned by
// tests/alloc_test.cpp via the resolutions() hook).
//
// Selection order (dispatch()):
//   1. The ASYNCIT_SIMD environment variable, when set to
//      scalar|avx2|avx512|neon AND that level is supported on this host.
//      An unknown value or an unsupported level falls back cleanly to the
//      auto-detected best — a test matrix can force every level on every
//      runner without per-ISA job conditions.
//   2. Otherwise the best supported level: avx512 > avx2 > scalar on
//      x86-64 (cpuid via __builtin_cpu_supports; avx512 requires F+VL,
//      avx2 requires AVX2+FMA), neon > scalar on aarch64
//      (getauxval(AT_HWCAP) & HWCAP_ASIMD), scalar everywhere else.
//
// Per-ISA objects are compiled with per-TU flags (see CMakeLists.txt), so
// the AVX-512 backend BUILDS on any x86-64 host and only RUNS when cpuid
// says it may; a backend that is not compiled in reports a null table and
// is simply not supported at runtime.
//
// FP-reassociation contract: every backend is a valid summation order for
// the same mathematical expression. kernels_ref.hpp remains the semantics
// oracle; the parity tolerance of tests/kernels_test.cpp is the spec.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace asyncit::la::simd {

enum class Level : std::uint8_t { kScalar = 0, kAvx2, kAvx512, kNeon };
inline constexpr std::size_t kNumLevels = 4;

/// Stable lowercase names, also the ASYNCIT_SIMD vocabulary.
const char* to_string(Level level);
/// Parses a level name; returns false (out untouched) on unknown input.
bool parse_level(std::string_view name, Level& out);

/// The per-ISA kernel surface. One immutable instance per backend; the
/// active one is swapped in wholesale so callers never observe a mix.
struct KernelTable {
  Level level;

  /// sum_k a[k] * b[k]
  double (*dot)(const double* a, const double* b, std::size_t n);
  /// Sparse gather dot: sum_k vals[k] * x[cols[k]]
  double (*gather_dot)(const double* vals, const std::uint32_t* cols,
                       std::size_t n, const double* x);
  /// y[k] += alpha * x[k]
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  /// sum_k (a[k] - b[k])^2
  double (*sq_dist)(const double* a, const double* b, std::size_t n);
  /// sum_k a[k]^2
  double (*sq_norm)(const double* a, std::size_t n);
  /// Fused CSR row-range matvec: y[r - begin] = sum_k vals[k] x[cols[k]]
  /// over row r's [row_ptr[r], row_ptr[r+1]) range — the row loop and the
  /// gather dot live in the SAME ISA unit so there is no per-row
  /// indirection.
  void (*matvec_rows)(const std::size_t* row_ptr, const std::uint32_t* cols,
                      const double* vals, std::size_t begin, std::size_t end,
                      const double* x, double* y);
  /// Fused CSR Jacobi row range:
  ///   out[r - begin] = (rhs[r] - row_r . x) * inv_diag[r] + x[r].
  void (*jacobi_rows)(const std::size_t* row_ptr, const std::uint32_t* cols,
                      const double* vals, const double* rhs,
                      const double* inv_diag, std::size_t begin,
                      std::size_t end, const double* x, double* out);
};

/// Backend tables. scalar_table() is always non-null; the others are null
/// when their TU was compiled on a foreign architecture (the runtime
/// additionally gates on cpuid/hwcaps before installing them).
const KernelTable* scalar_table();
const KernelTable* avx2_table();
const KernelTable* avx512_table();
const KernelTable* neon_table();

/// Compiled in AND executable on this host.
bool supported(Level level);
/// Highest supported level (detection order above).
Level best_supported();
/// Every supported level, lowest first (always starts with kScalar).
std::vector<Level> supported_levels();

/// Resolves the level (ASYNCIT_SIMD override, then detection) and installs
/// its table. Runs once automatically before main(); callable again by
/// tests. Returns the installed level.
Level dispatch();
/// Test hook: installs `level` if supported and returns true; otherwise
/// leaves the active table untouched and returns false.
bool force(Level level);
/// The level whose table is currently installed.
Level active_level();
/// Number of table installations so far (startup dispatch() counts one).
/// alloc_test pins that steady-state kernel calls never bump this.
std::uint64_t resolutions();

namespace detail {
// Relaxed atomic pointer — a plain load on every target we compile for.
// Constant-initialized to the scalar table, so kernels called from other
// TUs' static initializers (before the startup dispatch()) are already
// correct instead of racing the resolver.
extern std::atomic<const KernelTable*> g_active;
}  // namespace detail

/// The active kernel table (what kernels.hpp routes through).
inline const KernelTable& kernels() {
  return *detail::g_active.load(std::memory_order_relaxed);
}

}  // namespace asyncit::la::simd
