// Scalar dispatch backend: the 4-way-unrolled pointer-based kernels that
// used to live directly in kernels.hpp, plus the fused CSR row kernels.
//
// This is the portable floor of the dispatch ladder (simd_dispatch.hpp)
// and the build-time fallback on architectures without a vector backend:
//
//  * 4-way unrolled with FOUR independent accumulators. Strict IEEE
//    semantics forbid the compiler from reassociating a single-accumulator
//    reduction (s += a[k]*b[k] is a serial dependency chain of FP adds, at
//    ~4 cycles each); splitting the sum across independent registers is a
//    reassociation we are allowed to do at the source level.
//  * pointer-based CSR traversal: one (value, column) stream walked with
//    local pointers instead of re-indexing row_ptr[r] bounds through the
//    containing object each iteration.
//  * branchless: diagonal handling in the Jacobi kernel is algebraic
//    (subtract the full row dot, add the diagonal term back) instead of a
//    per-element `if (col == row)` test that defeats unrolling.
//
// NOTE on floating point: unrolling changes the summation ORDER, so
// results may differ from kernels_ref.hpp by rounding (not by magnitude).
// Every dispatch level is a valid summation order; the parity tolerance of
// tests/kernels_test.cpp is the spec.
#pragma once

#include <cstddef>
#include <cstdint>

#include "asyncit/linalg/simd_dispatch.hpp"

namespace asyncit::la::simd::scalar {

/// sum_k a[k] * b[k]
inline double dot(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    s0 += a[k] * b[k];
    s1 += a[k + 1] * b[k + 1];
    s2 += a[k + 2] * b[k + 2];
    s3 += a[k + 3] * b[k + 3];
  }
  for (; k < n; ++k) s0 += a[k] * b[k];
  return (s0 + s1) + (s2 + s3);
}

/// Sparse gather dot: sum_k vals[k] * x[cols[k]]
inline double gather_dot(const double* vals, const std::uint32_t* cols,
                         std::size_t n, const double* x) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    s0 += vals[k] * x[cols[k]];
    s1 += vals[k + 1] * x[cols[k + 1]];
    s2 += vals[k + 2] * x[cols[k + 2]];
    s3 += vals[k + 3] * x[cols[k + 3]];
  }
  for (; k < n; ++k) s0 += vals[k] * x[cols[k]];
  return (s0 + s1) + (s2 + s3);
}

/// y[k] += alpha * x[k]
inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    y[k] += alpha * x[k];
    y[k + 1] += alpha * x[k + 1];
    y[k + 2] += alpha * x[k + 2];
    y[k + 3] += alpha * x[k + 3];
  }
  for (; k < n; ++k) y[k] += alpha * x[k];
}

/// sum_k (a[k] - b[k])^2
inline double sq_dist(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const double d0 = a[k] - b[k];
    const double d1 = a[k + 1] - b[k + 1];
    const double d2 = a[k + 2] - b[k + 2];
    const double d3 = a[k + 3] - b[k + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; k < n; ++k) {
    const double d = a[k] - b[k];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

/// sum_k a[k]^2
inline double sq_norm(const double* a, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    s0 += a[k] * a[k];
    s1 += a[k + 1] * a[k + 1];
    s2 += a[k + 2] * a[k + 2];
    s3 += a[k + 3] * a[k + 3];
  }
  for (; k < n; ++k) s0 += a[k] * a[k];
  return (s0 + s1) + (s2 + s3);
}

/// y[r - begin] = (A x)_r for r in [begin, end); the gather dot is inlined
/// into the row loop (same ISA unit: no per-row indirect call).
inline void matvec_rows(const std::size_t* row_ptr, const std::uint32_t* cols,
                        const double* vals, std::size_t begin, std::size_t end,
                        const double* x, double* y) {
  std::size_t k = row_ptr[begin];
  for (std::size_t r = begin; r < end; ++r) {
    const std::size_t k_end = row_ptr[r + 1];
    y[r - begin] = gather_dot(vals + k, cols + k, k_end - k, x);
    k = k_end;
  }
}

/// out[r - begin] = (rhs[r] - row_r . x) * inv_diag[r] + x[r]
/// which equals the point-Jacobi update (rhs_r - sum_{k!=r} a_rk x_k)/a_rr
/// when inv_diag[r] = 1/a_rr — the diagonal term is handled algebraically
/// instead of with a per-element branch.
inline void jacobi_rows(const std::size_t* row_ptr, const std::uint32_t* cols,
                        const double* vals, const double* rhs,
                        const double* inv_diag, std::size_t begin,
                        std::size_t end, const double* x, double* out) {
  std::size_t k = row_ptr[begin];
  for (std::size_t r = begin; r < end; ++r) {
    const std::size_t k_end = row_ptr[r + 1];
    const double s = gather_dot(vals + k, cols + k, k_end - k, x);
    out[r - begin] = (rhs[r] - s) * inv_diag[r] + x[r];
    k = k_end;
  }
}

inline constexpr KernelTable kTable = {
    Level::kScalar, &dot,     &gather_dot,   &axpy,
    &sq_dist,       &sq_norm, &matvec_rows,  &jacobi_rows,
};

}  // namespace asyncit::la::simd::scalar
