#include "asyncit/linalg/csr_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/linalg/kernels.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::la {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets) {
  for (const auto& t : triplets) {
    ASYNCIT_CHECK_MSG(t.row < rows && t.col < cols,
                      "triplet (" << t.row << "," << t.col
                                  << ") out of bounds for " << rows << "x"
                                  << cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    m.row_ptr_[r] = m.values_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      const std::uint32_t c = triplets[i].col;
      double v = 0.0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
  }
  m.row_ptr_[rows] = m.values_.size();
  return m;
}

void CsrMatrix::matvec(std::span<const double> x, std::span<double> y) const {
  ASYNCIT_CHECK(x.size() == cols_ && y.size() == rows_);
  matvec_rows(0, rows_, x, y);
}

void CsrMatrix::matvec_rows(std::size_t begin, std::size_t end,
                            std::span<const double> x,
                            std::span<double> y) const {
  ASYNCIT_CHECK(begin <= end && end <= rows_);
  ASYNCIT_CHECK(x.size() == cols_ && y.size() == end - begin);
  if (begin == end) return;
  // Fused row kernel from the active dispatch level: the row loop and the
  // gather dot live in the same ISA unit (one indirect call per RANGE, not
  // per row).
  kern::matvec_rows(row_ptr_.data(), col_idx_.data(), values_.data(), begin,
                    end, x.data(), y.data());
}

void CsrMatrix::jacobi_rows(std::size_t begin, std::size_t end,
                            std::span<const double> rhs,
                            std::span<const double> inv_diag,
                            std::span<const double> x,
                            std::span<double> out) const {
  ASYNCIT_CHECK(rows_ == cols_);  // the identity reads x at the row index
  ASYNCIT_CHECK(begin <= end && end <= rows_);
  ASYNCIT_CHECK(rhs.size() == rows_ && inv_diag.size() == rows_);
  ASYNCIT_CHECK(x.size() == cols_ && out.size() == end - begin);
  if (begin == end) return;
  // Full row dot (diagonal included), then add the diagonal term back:
  //   (rhs − Σ_{k≠r} a_rk x_k)/a_rr = (rhs − row·x)/a_rr + x_r.
  // Fused per ISA like matvec_rows above.
  kern::jacobi_rows(row_ptr_.data(), col_idx_.data(), values_.data(),
                    rhs.data(), inv_diag.data(), begin, end, x.data(),
                    out.data());
}

Vector CsrMatrix::matvec(std::span<const double> x) const {
  Vector y(rows_);
  matvec(x, y);
  return y;
}

void CsrMatrix::matvec_transpose(std::span<const double> x,
                                 std::span<double> y) const {
  ASYNCIT_CHECK(x.size() == rows_ && y.size() == cols_);
  for (double& v : y) v = 0.0;
  const double* vals = values_.data();
  const std::uint32_t* cols = col_idx_.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const std::size_t k = row_ptr_[r];
    kern::sparse_axpy(xr, vals + k, cols + k, row_ptr_[r + 1] - k, y.data());
  }
}

Vector CsrMatrix::matvec_transpose(std::span<const double> x) const {
  Vector y(cols_);
  matvec_transpose(x, y);
  return y;
}

double CsrMatrix::row_dot(std::size_t r, std::span<const double> x) const {
  ASYNCIT_CHECK(r < rows_ && x.size() == cols_);
  const std::size_t k = row_ptr_[r];
  return kern::sparse_dot(values_.data() + k, col_idx_.data() + k,
                          row_ptr_[r + 1] - k, x.data());
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  ASYNCIT_CHECK(r < rows_ && c < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(c));
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::diagonal() const {
  ASYNCIT_CHECK(rows_ == cols_);
  Vector d(rows_);
  for (std::size_t r = 0; r < rows_; ++r) d[r] = at(r, r);
  return d;
}

std::span<const std::uint32_t> CsrMatrix::row_cols(std::size_t r) const {
  ASYNCIT_CHECK(r < rows_);
  return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::span<const double> CsrMatrix::row_values(std::size_t r) const {
  ASYNCIT_CHECK(r < rows_);
  return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

double gram_spectral_norm(const CsrMatrix& a, int iters) {
  ASYNCIT_CHECK(a.cols() > 0);
  Vector v(a.cols());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 1.0 + 0.1 * std::sin(static_cast<double>(i + 1));
  Vector av(a.rows()), atav(a.cols());
  double lambda = 0.0;
  for (int it = 0; it < iters; ++it) {
    a.matvec(v, av);
    a.matvec_transpose(av, atav);
    const double nrm = norm2(atav);
    if (nrm == 0.0) return 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = atav[i] / nrm;
    lambda = nrm;
  }
  return lambda;
}

}  // namespace asyncit::la
