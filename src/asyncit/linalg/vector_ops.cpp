#include "asyncit/linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/linalg/kernels.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::la {

Vector zeros(std::size_t n) { return Vector(n, 0.0); }

Vector constant(std::size_t n, double v) { return Vector(n, v); }

double dot(std::span<const double> a, std::span<const double> b) {
  ASYNCIT_CHECK(a.size() == b.size());
  return kern::dot(a.data(), b.data(), a.size());
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  ASYNCIT_CHECK(x.size() == y.size());
  kern::axpy(alpha, x.data(), y.data(), x.size());
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

Vector sub(std::span<const double> a, std::span<const double> b) {
  ASYNCIT_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  ASYNCIT_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

double norm2_sq(std::span<const double> x) {
  return kern::sq_norm(x.data(), x.size());
}

double norm2(std::span<const double> x) { return std::sqrt(norm2_sq(x)); }

double norm1(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += std::abs(v);
  return s;
}

double norm_inf(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s = std::max(s, std::abs(v));
  return s;
}

double dist2(std::span<const double> a, std::span<const double> b) {
  ASYNCIT_CHECK(a.size() == b.size());
  return std::sqrt(kern::sq_dist(a.data(), b.data(), a.size()));
}

double dist_inf(std::span<const double> a, std::span<const double> b) {
  ASYNCIT_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s = std::max(s, std::abs(a[i] - b[i]));
  return s;
}

}  // namespace asyncit::la
