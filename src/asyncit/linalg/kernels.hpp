// Hot-path kernel façade: the tight inner loops shared by the linalg
// containers and the block operators, routed through the runtime SIMD
// dispatch layer.
//
// Every executor layer (engine/, sim/, runtime/, net/) funnels its
// per-update work through these few entry points. The actual loop bodies
// live in one backend per instruction set —
//
//   kernels_scalar.hpp   4-way unrolled portable floor (always built)
//   kernels_avx2.hpp     4-wide AVX2+FMA; CSR indirection via
//                        broadcast+blend, deliberately NO vgatherdpd
//   kernels_avx512.hpp   8-wide AVX-512 with masked remainders
//   kernels_neon.hpp     2-wide aarch64 AdvSIMD
//
// — and simd_dispatch.hpp installs exactly one of them at startup
// (cpuid / getauxval detection, ASYNCIT_SIMD env override). Each wrapper
// below is a single indirect call through the installed table: no per-call
// branching, no allocation, no re-resolution (pinned by
// tests/alloc_test.cpp).
//
// NOTE on floating point: every backend reorders the summation relative
// to the naive loops (unrolling, vector lanes, horizontal reductions), so
// results may differ from kernels_ref.hpp by rounding — not by magnitude.
// kernels_ref.hpp is the semantics oracle; the relative-error tolerance of
// the ISA-sweep parity suite in tests/kernels_test.cpp is the spec. All
// consumers in this repo are fixed-point iterations that converge to
// tolerances far above that parity band.
#pragma once

#include <cstddef>
#include <cstdint>

#include "asyncit/linalg/simd_dispatch.hpp"

namespace asyncit::la::kern {

/// sum_k a[k] * b[k]
inline double dot(const double* a, const double* b, std::size_t n) {
  return simd::kernels().dot(a, b, n);
}

/// Sparse gather dot: sum_k vals[k] * x[cols[k]]
inline double sparse_dot(const double* vals, const std::uint32_t* cols,
                         std::size_t n, const double* x) {
  return simd::kernels().gather_dot(vals, cols, n, x);
}

/// y[k] += alpha * x[k]
inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  simd::kernels().axpy(alpha, x, y, n);
}

/// Sparse scatter axpy: y[cols[k]] += alpha * vals[k]
inline void sparse_axpy(double alpha, const double* vals,
                        const std::uint32_t* cols, std::size_t n, double* y) {
  // Deliberately scalar at every dispatch level: scatter targets may alias
  // (duplicate columns inside a vector window would reorder
  // read-modify-writes), so this loop is not legal to widen.
  for (std::size_t k = 0; k < n; ++k) y[cols[k]] += alpha * vals[k];
}

/// sum_k (a[k] - b[k])^2
inline double sq_dist(const double* a, const double* b, std::size_t n) {
  return simd::kernels().sq_dist(a, b, n);
}

/// sum_k a[k]^2
inline double sq_norm(const double* a, std::size_t n) {
  return simd::kernels().sq_norm(a, n);
}

/// Fused CSR row-range matvec (row loop + gather dot in one ISA unit):
/// y[r - begin] = (A x)_r for r in [begin, end).
inline void matvec_rows(const std::size_t* row_ptr, const std::uint32_t* cols,
                        const double* vals, std::size_t begin, std::size_t end,
                        const double* x, double* y) {
  simd::kernels().matvec_rows(row_ptr, cols, vals, begin, end, x, y);
}

/// Fused CSR Jacobi row range:
/// out[r - begin] = (rhs[r] - row_r . x) * inv_diag[r] + x[r].
inline void jacobi_rows(const std::size_t* row_ptr, const std::uint32_t* cols,
                        const double* vals, const double* rhs,
                        const double* inv_diag, std::size_t begin,
                        std::size_t end, const double* x, double* out) {
  simd::kernels().jacobi_rows(row_ptr, cols, vals, rhs, inv_diag, begin, end,
                              x, out);
}

}  // namespace asyncit::la::kern
