// Hot-path scalar kernels: tight pointer-based inner loops shared by the
// linalg containers and the block operators.
//
// Every executor layer (engine/, sim/, runtime/, net/) funnels its
// per-update work through these few loops, so they are written the way a
// hand-tuned BLAS level-1 would be:
//
//  * 4-way unrolled with FOUR independent accumulators. Strict IEEE
//    semantics forbid the compiler from reassociating a single-accumulator
//    reduction (s += a[k]*b[k] is a serial dependency chain of FP adds, at
//    ~4 cycles each); splitting the sum across independent registers is a
//    reassociation we are allowed to do at the source level, and it is
//    where the measured speedup of bench/micro_kernels comes from.
//  * pointer-based CSR traversal: one (value, column) stream walked with
//    local pointers instead of re-indexing row_ptr_[r] bounds through the
//    containing object each iteration.
//  * branchless: diagonal handling in the Jacobi kernel is algebraic
//    (subtract the full row dot, add the diagonal term back) instead of a
//    per-element `if (col == row)` test that defeats unrolling.
//
// The naive counterparts these replaced live on in kernels_ref.hpp; the
// parity tests (tests/kernels_test.cpp) pin optimized == reference to a few
// ULPs on random inputs, and bench/micro_kernels measures the gap.
//
// NOTE on floating point: unrolling changes the summation ORDER, so results
// may differ from the reference by rounding (not by magnitude). All
// consumers in this repo are fixed-point iterations that converge to
// tolerances far above 1e-12 relative error.
#pragma once

#include <cstddef>
#include <cstdint>

namespace asyncit::la::kern {

/// sum_k a[k] * b[k]
inline double dot(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    s0 += a[k] * b[k];
    s1 += a[k + 1] * b[k + 1];
    s2 += a[k + 2] * b[k + 2];
    s3 += a[k + 3] * b[k + 3];
  }
  for (; k < n; ++k) s0 += a[k] * b[k];
  return (s0 + s1) + (s2 + s3);
}

/// Sparse gather dot: sum_k vals[k] * x[cols[k]]
inline double sparse_dot(const double* vals, const std::uint32_t* cols,
                         std::size_t n, const double* x) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    s0 += vals[k] * x[cols[k]];
    s1 += vals[k + 1] * x[cols[k + 1]];
    s2 += vals[k + 2] * x[cols[k + 2]];
    s3 += vals[k + 3] * x[cols[k + 3]];
  }
  for (; k < n; ++k) s0 += vals[k] * x[cols[k]];
  return (s0 + s1) + (s2 + s3);
}

/// y[k] += alpha * x[k]
inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    y[k] += alpha * x[k];
    y[k + 1] += alpha * x[k + 1];
    y[k + 2] += alpha * x[k + 2];
    y[k + 3] += alpha * x[k + 3];
  }
  for (; k < n; ++k) y[k] += alpha * x[k];
}

/// Sparse scatter axpy: y[cols[k]] += alpha * vals[k]
inline void sparse_axpy(double alpha, const double* vals,
                        const std::uint32_t* cols, std::size_t n, double* y) {
  // No unroll: scatter targets may alias (duplicate columns across the
  // unroll window would reorder read-modify-writes).
  for (std::size_t k = 0; k < n; ++k) y[cols[k]] += alpha * vals[k];
}

/// sum_k (a[k] - b[k])^2
inline double sq_dist(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const double d0 = a[k] - b[k];
    const double d1 = a[k + 1] - b[k + 1];
    const double d2 = a[k + 2] - b[k + 2];
    const double d3 = a[k + 3] - b[k + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; k < n; ++k) {
    const double d = a[k] - b[k];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

/// sum_k a[k]^2
inline double sq_norm(const double* a, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    s0 += a[k] * a[k];
    s1 += a[k + 1] * a[k + 1];
    s2 += a[k + 2] * a[k + 2];
    s3 += a[k + 3] * a[k + 3];
  }
  for (; k < n; ++k) s0 += a[k] * a[k];
  return (s0 + s1) + (s2 + s3);
}

}  // namespace asyncit::la::kern
