#include "asyncit/linalg/norms.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::la {

WeightedMaxNorm::WeightedMaxNorm(Partition partition)
    : partition_(std::move(partition)),
      weights_(partition_.num_blocks(), 1.0) {}

WeightedMaxNorm::WeightedMaxNorm(Partition partition, Vector weights)
    : partition_(std::move(partition)), weights_(std::move(weights)) {
  ASYNCIT_CHECK(weights_.size() == partition_.num_blocks());
  for (double w : weights_) ASYNCIT_CHECK(w > 0.0);
}

double WeightedMaxNorm::operator()(std::span<const double> x) const {
  double best = 0.0;
  for (BlockId b = 0; b < partition_.num_blocks(); ++b)
    best = std::max(best, block_norm(x, b));
  return best;
}

double WeightedMaxNorm::distance(std::span<const double> x,
                                 std::span<const double> y) const {
  double best = 0.0;
  for (BlockId b = 0; b < partition_.num_blocks(); ++b)
    best = std::max(best, block_distance(x, y, b));
  return best;
}

double WeightedMaxNorm::block_norm(std::span<const double> x,
                                   BlockId b) const {
  return norm2(partition_.block_span(x, b)) / weights_[b];
}

double WeightedMaxNorm::block_distance(std::span<const double> x,
                                       std::span<const double> y,
                                       BlockId b) const {
  ASYNCIT_CHECK(x.size() == y.size());
  const BlockRange r = partition_.range(b);
  double s = 0.0;
  for (std::size_t c = r.begin; c < r.end; ++c) {
    const double d = x[c] - y[c];
    s += d * d;
  }
  return std::sqrt(s) / weights_[b];
}

}  // namespace asyncit::la
