// Weighted block-maximum norms.
//
// Asynchronous convergence theory (Chazan–Miranker, Baudet, El Tarazi,
// Bertsekas) is stated in weighted maximum norms
//     ‖x‖_u = max_i ‖x_i‖_i / u_i ,  u_i > 0,
// where ‖·‖_i is a norm on the i-th block. This is exactly the norm of the
// flexible-communication constraint (3) in the paper. We use the Euclidean
// norm inside blocks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/linalg/vector_ops.hpp"

namespace asyncit::la {

class WeightedMaxNorm {
 public:
  /// Unit weights over the given partition.
  explicit WeightedMaxNorm(Partition partition);
  /// Explicit positive weights, one per block.
  WeightedMaxNorm(Partition partition, Vector weights);

  const Partition& partition() const { return partition_; }
  const Vector& weights() const { return weights_; }

  /// ‖x‖_u
  double operator()(std::span<const double> x) const;

  /// ‖x − y‖_u
  double distance(std::span<const double> x, std::span<const double> y) const;

  /// Per-block weighted norm ‖x_b‖ / u_b.
  double block_norm(std::span<const double> x, BlockId b) const;
  double block_distance(std::span<const double> x, std::span<const double> y,
                        BlockId b) const;

 private:
  Partition partition_;
  Vector weights_;
};

}  // namespace asyncit::la
