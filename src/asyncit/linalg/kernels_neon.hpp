// NEON (aarch64 Advanced SIMD) dispatch backend: 128-bit (2-wide) double
// kernels.
//
// Only "live" inside kernels_neon.cpp on aarch64 builds — AdvSIMD is part
// of the baseline aarch64 ABI, so no per-TU flags are needed; the runtime
// still confirms via getauxval(AT_HWCAP) & HWCAP_ASIMD before installing
// (simd_dispatch.cpp). On every other architecture the guard compiles this
// header away.
//
// The 2-wide registers give less headroom than AVX, so the unroll is
// deeper (4 accumulators = 8 elements per iteration) to cover the FMA
// latency. NEON has no gather: the sparse column indirection loads lanes
// individually, which still pairs the multiplies and keeps the accumulator
// structure identical to the other backends.
#pragma once

#include "asyncit/linalg/simd_dispatch.hpp"

#if defined(__aarch64__)
#define ASYNCIT_SIMD_NEON_COMPILED 1

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

namespace asyncit::la::simd::neon {

inline double hsum4(float64x2_t s0, float64x2_t s1, float64x2_t s2,
                    float64x2_t s3) {
  return vaddvq_f64(vaddq_f64(vaddq_f64(s0, s1), vaddq_f64(s2, s3)));
}

/// Two x lanes fetched through the column indices.
inline float64x2_t gather2(const double* x, const std::uint32_t* cols) {
  float64x2_t v = vdupq_n_f64(x[cols[0]]);
  return vsetq_lane_f64(x[cols[1]], v, 1);
}

inline double dot(const double* a, const double* b, std::size_t n) {
  float64x2_t s0 = vdupq_n_f64(0.0), s1 = vdupq_n_f64(0.0);
  float64x2_t s2 = vdupq_n_f64(0.0), s3 = vdupq_n_f64(0.0);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    s0 = vfmaq_f64(s0, vld1q_f64(a + k), vld1q_f64(b + k));
    s1 = vfmaq_f64(s1, vld1q_f64(a + k + 2), vld1q_f64(b + k + 2));
    s2 = vfmaq_f64(s2, vld1q_f64(a + k + 4), vld1q_f64(b + k + 4));
    s3 = vfmaq_f64(s3, vld1q_f64(a + k + 6), vld1q_f64(b + k + 6));
  }
  for (; k + 2 <= n; k += 2)
    s0 = vfmaq_f64(s0, vld1q_f64(a + k), vld1q_f64(b + k));
  double s = hsum4(s0, s1, s2, s3);
  for (; k < n; ++k) s += a[k] * b[k];
  return s;
}

inline double gather_dot(const double* vals, const std::uint32_t* cols,
                         std::size_t n, const double* x) {
  float64x2_t s0 = vdupq_n_f64(0.0), s1 = vdupq_n_f64(0.0);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    s0 = vfmaq_f64(s0, vld1q_f64(vals + k), gather2(x, cols + k));
    s1 = vfmaq_f64(s1, vld1q_f64(vals + k + 2), gather2(x, cols + k + 2));
  }
  for (; k + 2 <= n; k += 2)
    s0 = vfmaq_f64(s0, vld1q_f64(vals + k), gather2(x, cols + k));
  double s = vaddvq_f64(vaddq_f64(s0, s1));
  for (; k < n; ++k) s += vals[k] * x[cols[k]];
  return s;
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  const float64x2_t av = vdupq_n_f64(alpha);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    vst1q_f64(y + k, vfmaq_f64(vld1q_f64(y + k), av, vld1q_f64(x + k)));
    vst1q_f64(y + k + 2,
              vfmaq_f64(vld1q_f64(y + k + 2), av, vld1q_f64(x + k + 2)));
  }
  for (; k + 2 <= n; k += 2)
    vst1q_f64(y + k, vfmaq_f64(vld1q_f64(y + k), av, vld1q_f64(x + k)));
  for (; k < n; ++k) y[k] += alpha * x[k];
}

inline double sq_dist(const double* a, const double* b, std::size_t n) {
  float64x2_t s0 = vdupq_n_f64(0.0), s1 = vdupq_n_f64(0.0);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const float64x2_t d0 = vsubq_f64(vld1q_f64(a + k), vld1q_f64(b + k));
    const float64x2_t d1 =
        vsubq_f64(vld1q_f64(a + k + 2), vld1q_f64(b + k + 2));
    s0 = vfmaq_f64(s0, d0, d0);
    s1 = vfmaq_f64(s1, d1, d1);
  }
  for (; k + 2 <= n; k += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(a + k), vld1q_f64(b + k));
    s0 = vfmaq_f64(s0, d, d);
  }
  double s = vaddvq_f64(vaddq_f64(s0, s1));
  for (; k < n; ++k) {
    const double d = a[k] - b[k];
    s += d * d;
  }
  return s;
}

inline double sq_norm(const double* a, std::size_t n) {
  float64x2_t s0 = vdupq_n_f64(0.0), s1 = vdupq_n_f64(0.0);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const float64x2_t v0 = vld1q_f64(a + k);
    const float64x2_t v1 = vld1q_f64(a + k + 2);
    s0 = vfmaq_f64(s0, v0, v0);
    s1 = vfmaq_f64(s1, v1, v1);
  }
  for (; k + 2 <= n; k += 2) {
    const float64x2_t v = vld1q_f64(a + k);
    s0 = vfmaq_f64(s0, v, v);
  }
  double s = vaddvq_f64(vaddq_f64(s0, s1));
  for (; k < n; ++k) s += a[k] * a[k];
  return s;
}

inline void matvec_rows(const std::size_t* row_ptr, const std::uint32_t* cols,
                        const double* vals, std::size_t begin, std::size_t end,
                        const double* x, double* y) {
  std::size_t k = row_ptr[begin];
  for (std::size_t r = begin; r < end; ++r) {
    const std::size_t k_end = row_ptr[r + 1];
    y[r - begin] = gather_dot(vals + k, cols + k, k_end - k, x);
    k = k_end;
  }
}

inline void jacobi_rows(const std::size_t* row_ptr, const std::uint32_t* cols,
                        const double* vals, const double* rhs,
                        const double* inv_diag, std::size_t begin,
                        std::size_t end, const double* x, double* out) {
  std::size_t k = row_ptr[begin];
  for (std::size_t r = begin; r < end; ++r) {
    const std::size_t k_end = row_ptr[r + 1];
    const double s = gather_dot(vals + k, cols + k, k_end - k, x);
    out[r - begin] = (rhs[r] - s) * inv_diag[r] + x[r];
    k = k_end;
  }
}

inline constexpr KernelTable kTable = {
    Level::kNeon,   &dot,     &gather_dot,  &axpy,
    &sq_dist,       &sq_norm, &matvec_rows, &jacobi_rows,
};

}  // namespace asyncit::la::simd::neon

#endif  // __aarch64__
