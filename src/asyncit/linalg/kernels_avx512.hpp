// AVX-512 dispatch backend: 512-bit (8-wide) double kernels with masked
// remainders.
//
// Only "live" inside kernels_avx512.cpp, which CMake compiles with
// -mavx512f -mavx512vl on x86-64 (per-TU ISA flags: the object builds on
// any x86-64 host; simd_dispatch.cpp installs it only when cpuid reports
// AVX512F+VL — VL covers the 256-bit mask operations, and is present on
// every server/desktop AVX-512 part).
//
// Unlike the AVX2 backend, the dense kernels handle remainders with lane
// masks instead of scalar loops: a masked load zeroes the inactive lanes
// (0 * 0 contributes nothing to an FMA accumulator) and never touches
// memory past n — so a length-1 vector and a length-1000 vector run the
// same code path. The sparse kernels (gather_dot and the fused row
// kernels) are not redefined here at all: short CSR rows gain nothing
// from 512-bit accumulators, so the table points straight at the AVX2
// backend's broadcast+blend implementations (see kernels_avx2.hpp for
// why there is deliberately no vgatherdpd) — which are OUT-OF-LINE
// definitions living only in kernels_avx2.cpp, so they are guaranteed
// VEX-encoded whatever flags this TU uses — while dot/axpy/sq_dist/
// sq_norm run full width. The horizontal reduction is one more summation
// order, covered by the parity tolerance.
#pragma once

#include "asyncit/linalg/kernels_avx2.hpp"
#include "asyncit/linalg/simd_dispatch.hpp"

#if defined(__AVX512F__) && defined(__AVX512VL__) && defined(__AVX2__) && \
    defined(__FMA__)
#define ASYNCIT_SIMD_AVX512_COMPILED 1

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#if defined(__GNUC__) && !defined(__clang__)
// GCC implements its unmasked AVX-512 intrinsics in terms of
// _mm512_undefined_pd() and flags the deliberately-uninitialized source at
// every always_inline site (GCC PR 105593). The kernels below initialize
// every accumulator; suppress the header false positive for this backend
// TU only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace asyncit::la::simd::avx512 {

/// Lane mask for the final `rem` (< 8) elements.
inline __mmask8 tail_mask(std::size_t rem) {
  return static_cast<__mmask8>((1u << rem) - 1u);
}

/// Sum of the eight lanes. Hand-rolled instead of _mm512_reduce_add_pd,
/// whose header implementation extracts the high half through the same
/// undefined-source pattern as the gathers (GCC PR 105593).
inline double hsum(__m512d v) {
  const __m256d lo = _mm512_castpd512_pd256(v);
  const __m256d hi =
      _mm512_castpd512_pd256(_mm512_shuffle_f64x2(v, v, 0xEE));
  const __m256d s4 = _mm256_add_pd(lo, hi);
  __m128d l = _mm256_castpd256_pd128(s4);
  l = _mm_add_pd(l, _mm256_extractf128_pd(s4, 1));
  return _mm_cvtsd_f64(_mm_add_sd(l, _mm_unpackhi_pd(l, l)));
}

inline double dot(const double* a, const double* b, std::size_t n) {
  __m512d s0 = _mm512_setzero_pd(), s1 = _mm512_setzero_pd();
  __m512d s2 = _mm512_setzero_pd(), s3 = _mm512_setzero_pd();
  std::size_t k = 0;
  for (; k + 32 <= n; k += 32) {
    s0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + k), _mm512_loadu_pd(b + k), s0);
    s1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + k + 8),
                         _mm512_loadu_pd(b + k + 8), s1);
    s2 = _mm512_fmadd_pd(_mm512_loadu_pd(a + k + 16),
                         _mm512_loadu_pd(b + k + 16), s2);
    s3 = _mm512_fmadd_pd(_mm512_loadu_pd(a + k + 24),
                         _mm512_loadu_pd(b + k + 24), s3);
  }
  for (; k + 8 <= n; k += 8)
    s0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + k), _mm512_loadu_pd(b + k), s0);
  if (k < n) {
    const __mmask8 m = tail_mask(n - k);
    s1 = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(m, a + k),
                         _mm512_maskz_loadu_pd(m, b + k), s1);
  }
  return hsum(_mm512_add_pd(_mm512_add_pd(s0, s1), _mm512_add_pd(s2, s3)));
}

inline void axpy(double alpha, const double* x, double* y, std::size_t n) {
  const __m512d av = _mm512_set1_pd(alpha);
  std::size_t k = 0;
  for (; k + 16 <= n; k += 16) {
    _mm512_storeu_pd(y + k, _mm512_fmadd_pd(av, _mm512_loadu_pd(x + k),
                                            _mm512_loadu_pd(y + k)));
    _mm512_storeu_pd(y + k + 8,
                     _mm512_fmadd_pd(av, _mm512_loadu_pd(x + k + 8),
                                     _mm512_loadu_pd(y + k + 8)));
  }
  for (; k + 8 <= n; k += 8)
    _mm512_storeu_pd(y + k, _mm512_fmadd_pd(av, _mm512_loadu_pd(x + k),
                                            _mm512_loadu_pd(y + k)));
  if (k < n) {
    const __mmask8 m = tail_mask(n - k);
    _mm512_mask_storeu_pd(
        y + k, m,
        _mm512_fmadd_pd(av, _mm512_maskz_loadu_pd(m, x + k),
                        _mm512_maskz_loadu_pd(m, y + k)));
  }
}

inline double sq_dist(const double* a, const double* b, std::size_t n) {
  __m512d s0 = _mm512_setzero_pd(), s1 = _mm512_setzero_pd();
  std::size_t k = 0;
  for (; k + 16 <= n; k += 16) {
    const __m512d d0 =
        _mm512_sub_pd(_mm512_loadu_pd(a + k), _mm512_loadu_pd(b + k));
    const __m512d d1 =
        _mm512_sub_pd(_mm512_loadu_pd(a + k + 8), _mm512_loadu_pd(b + k + 8));
    s0 = _mm512_fmadd_pd(d0, d0, s0);
    s1 = _mm512_fmadd_pd(d1, d1, s1);
  }
  for (; k + 8 <= n; k += 8) {
    const __m512d d =
        _mm512_sub_pd(_mm512_loadu_pd(a + k), _mm512_loadu_pd(b + k));
    s0 = _mm512_fmadd_pd(d, d, s0);
  }
  if (k < n) {
    const __mmask8 m = tail_mask(n - k);
    const __m512d d = _mm512_sub_pd(_mm512_maskz_loadu_pd(m, a + k),
                                    _mm512_maskz_loadu_pd(m, b + k));
    s1 = _mm512_fmadd_pd(d, d, s1);
  }
  return hsum(_mm512_add_pd(s0, s1));
}

inline double sq_norm(const double* a, std::size_t n) {
  __m512d s0 = _mm512_setzero_pd(), s1 = _mm512_setzero_pd();
  std::size_t k = 0;
  for (; k + 16 <= n; k += 16) {
    const __m512d v0 = _mm512_loadu_pd(a + k);
    const __m512d v1 = _mm512_loadu_pd(a + k + 8);
    s0 = _mm512_fmadd_pd(v0, v0, s0);
    s1 = _mm512_fmadd_pd(v1, v1, s1);
  }
  for (; k + 8 <= n; k += 8) {
    const __m512d v = _mm512_loadu_pd(a + k);
    s0 = _mm512_fmadd_pd(v, v, s0);
  }
  if (k < n) {
    const __m512d v = _mm512_maskz_loadu_pd(tail_mask(n - k), a + k);
    s1 = _mm512_fmadd_pd(v, v, s1);
  }
  return hsum(_mm512_add_pd(s0, s1));
}

// The sparse kernels come from the AVX2 backend unchanged (out-of-line
// VEX-encoded definitions in kernels_avx2.cpp; nothing 512-bit to gain on
// short rows) — one implementation to maintain, and the parity suite
// exercises it at both levels.
inline constexpr KernelTable kTable = {
    Level::kAvx512,    &dot,     &avx2::gather_dot,  &axpy,
    &sq_dist,          &sq_norm, &avx2::matvec_rows, &avx2::jacobi_rows,
};

}  // namespace asyncit::la::simd::avx512

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // __AVX512F__ && __AVX512VL__
