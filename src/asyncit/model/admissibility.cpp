#include "asyncit/model/admissibility.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "asyncit/support/check.hpp"

namespace asyncit::model {

ConditionAReport audit_condition_a(const ScheduleTrace& trace) {
  ConditionAReport rep;
  for (Step j = 1; j <= trace.steps(); ++j) {
    const StepRecord& r = trace.step(j);
    if (r.l_min > j - 1) rep.holds = false;
    for (Step l : r.labels)
      if (l > j - 1) rep.holds = false;
  }
  return rep;
}

ConditionBReport audit_condition_b(const ScheduleTrace& trace) {
  ConditionBReport rep;
  const Step n = trace.steps();
  if (n < 4) return rep;
  const Step quarter = n / 4;
  for (int q = 0; q < 4; ++q) {
    const Step begin = 1 + static_cast<Step>(q) * quarter;
    const Step end = (q == 3) ? n : begin + quarter - 1;
    Step lo = std::numeric_limits<Step>::max();
    for (Step j = begin; j <= end; ++j)
      lo = std::min(lo, trace.step(j).l_min);
    rep.quarter_min_labels.push_back(lo);
  }
  rep.diverging = true;
  for (std::size_t q = 1; q < rep.quarter_min_labels.size(); ++q)
    if (rep.quarter_min_labels[q] <= rep.quarter_min_labels[q - 1])
      rep.diverging = false;
  rep.final_min_label = rep.quarter_min_labels.back();
  return rep;
}

ConditionCReport audit_condition_c(const ScheduleTrace& trace) {
  ConditionCReport rep;
  const std::size_t m = trace.num_blocks();
  rep.occurrences.assign(m, 0);
  rep.max_gap.assign(m, 0);
  std::vector<Step> last_seen(m, 0);
  for (Step j = 1; j <= trace.steps(); ++j) {
    for (la::BlockId b : trace.step(j).updated) {
      ++rep.occurrences[b];
      rep.max_gap[b] = std::max(rep.max_gap[b], j - last_seen[b]);
      last_seen[b] = j;
    }
  }
  // Trailing gap (block never updated again) also counts.
  for (la::BlockId b = 0; b < m; ++b)
    rep.max_gap[b] = std::max(rep.max_gap[b], trace.steps() - last_seen[b]);
  rep.fair = std::all_of(rep.occurrences.begin(), rep.occurrences.end(),
                         [](std::size_t c) { return c >= 2; });
  return rep;
}

ConditionDReport audit_condition_d(const ScheduleTrace& trace) {
  ConditionDReport rep;
  double sum = 0.0;
  std::size_t count = 0;
  for (Step j = 1; j <= trace.steps(); ++j) {
    const Step d = j - trace.step(j).l_min;
    if (d > rep.b_min) {
      rep.b_min = d;
      rep.at_step = j;
    }
    sum += static_cast<double>(d);
    ++count;
  }
  rep.mean = count ? sum / static_cast<double>(count) : 0.0;
  return rep;
}

std::string audit_summary(const ScheduleTrace& trace) {
  const auto a = audit_condition_a(trace);
  const auto b = audit_condition_b(trace);
  const auto c = audit_condition_c(trace);
  const auto d = audit_condition_d(trace);
  std::ostringstream os;
  os << "condition a) " << (a.holds ? "holds" : "VIOLATED")
     << "; condition b) labels " << (b.diverging ? "diverging" : "NOT diverging")
     << " (quarter minima:";
  for (Step q : b.quarter_min_labels) os << ' ' << q;
  os << "); condition c) " << (c.fair ? "fair" : "UNFAIR");
  Step worst_gap = 0;
  for (Step g : c.max_gap) worst_gap = std::max(worst_gap, g);
  os << " (worst update gap " << worst_gap << ")";
  os << "; condition d) max delay " << d.b_min << " (mean "
     << d.mean << ") over " << trace.steps() << " steps";
  return os.str();
}

}  // namespace asyncit::model
