#include "asyncit/model/box_level.hpp"

#include <algorithm>

#include "asyncit/support/check.hpp"

namespace asyncit::model {

BoxLevelTracker::BoxLevelTracker(std::size_t num_blocks)
    : m_(num_blocks), history_(num_blocks) {
  ASYNCIT_CHECK(m_ > 0);
  for (auto& h : history_) h.emplace_back(0, 0);
}

void BoxLevelTracker::observe(Step j, std::span<const la::BlockId> updated,
                              std::span<const Step> labels) {
  ASYNCIT_CHECK(labels.size() == m_);
  // Level of the read data: the weakest box among all components at their
  // labels.
  std::size_t data_level = level_at(0, labels[0]);
  for (la::BlockId h = 1; h < m_; ++h)
    data_level = std::min(data_level, level_at(h, labels[h]));
  const std::size_t new_level = data_level + 1;
  for (la::BlockId i : updated) {
    ASYNCIT_CHECK(i < m_);
    ASYNCIT_CHECK(history_[i].back().first < j);
    // An update REPLACES the block's value: its level can go down (stale
    // data overwriting a deep-box value — the out-of-order hazard).
    history_[i].emplace_back(j, new_level);
  }
}

std::size_t BoxLevelTracker::min_level() const {
  std::size_t lvl = history_[0].back().second;
  for (la::BlockId h = 1; h < m_; ++h)
    lvl = std::min(lvl, history_[h].back().second);
  return lvl;
}

std::vector<std::size_t> BoxLevelTracker::current_levels() const {
  std::vector<std::size_t> out(m_);
  for (la::BlockId h = 0; h < m_; ++h) out[h] = history_[h].back().second;
  return out;
}

std::size_t BoxLevelTracker::level_at(la::BlockId h, Step label) const {
  ASYNCIT_CHECK(h < m_);
  const auto& hist = history_[h];
  auto it = std::upper_bound(
      hist.begin(), hist.end(), label,
      [](Step l, const std::pair<Step, std::size_t>& e) {
        return l < e.first;
      });
  ASYNCIT_CHECK(it != hist.begin());
  --it;
  return it->second;
}

std::vector<std::size_t> box_levels(const ScheduleTrace& trace) {
  ASYNCIT_CHECK_MSG(trace.recording() == LabelRecording::kFull,
                    "box levels need full label tuples");
  BoxLevelTracker tracker(trace.num_blocks());
  std::vector<std::size_t> out;
  out.reserve(trace.steps());
  for (Step j = 1; j <= trace.steps(); ++j) {
    const StepRecord& r = trace.step(j);
    tracker.observe(j, r.updated, r.labels);
    out.push_back(tracker.min_level());
  }
  return out;
}

}  // namespace asyncit::model
