#include "asyncit/model/delay_models.hpp"

#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::model {

namespace {

class NoDelay final : public DelayModel {
 public:
  Step label(la::BlockId, Step j, Rng&) override {
    ASYNCIT_CHECK(j >= 1);
    return j - 1;
  }
  Step max_lookback(Step) const override { return 1; }
  std::string name() const override { return "no-delay"; }
};

class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Step d) : d_(d) {}
  Step label(la::BlockId, Step j, Rng&) override {
    ASYNCIT_CHECK(j >= 1);
    const Step base = j - 1;
    return base > d_ ? base - d_ : 0;
  }
  Step max_lookback(Step) const override { return d_ + 1; }
  std::string name() const override {
    return "constant-" + std::to_string(d_);
  }

 private:
  Step d_;
};

class UniformDelay final : public DelayModel {
 public:
  explicit UniformDelay(Step b) : b_(b) {}
  Step label(la::BlockId, Step j, Rng& rng) override {
    ASYNCIT_CHECK(j >= 1);
    const Step cap = std::min<Step>(b_, j - 1);
    const Step d = cap == 0 ? 0 : rng.uniform_index(cap + 1);
    return j - 1 - d;
  }
  Step max_lookback(Step) const override { return b_ + 1; }
  std::string name() const override {
    return "uniform-" + std::to_string(b_);
  }

 private:
  Step b_;
};

class BaudetSqrtDelay final : public DelayModel {
 public:
  Step label(la::BlockId, Step j, Rng&) override {
    ASYNCIT_CHECK(j >= 1);
    const Step d = static_cast<Step>(
        std::ceil(std::sqrt(static_cast<double>(j))));
    return d >= j ? 0 : j - d;
  }
  Step max_lookback(Step j) const override {
    return static_cast<Step>(
               std::ceil(std::sqrt(static_cast<double>(j + 1)))) +
           2;
  }
  std::string name() const override { return "baudet-sqrt"; }
};

class LogDelay final : public DelayModel {
 public:
  Step label(la::BlockId, Step j, Rng&) override {
    ASYNCIT_CHECK(j >= 1);
    const Step d = static_cast<Step>(
        std::floor(std::log2(static_cast<double>(j) + 1.0)));
    const Step base = j - 1;
    return base > d ? base - d : 0;
  }
  Step max_lookback(Step j) const override {
    return static_cast<Step>(
               std::floor(std::log2(static_cast<double>(j) + 2.0))) +
           2;
  }
  std::string name() const override { return "log"; }
};

class HalfDelay final : public DelayModel {
 public:
  Step label(la::BlockId, Step j, Rng&) override {
    ASYNCIT_CHECK(j >= 1);
    return j / 2;  // <= j-1 for j >= 1; delay ≈ j/2, unbounded
  }
  Step max_lookback(Step j) const override { return j / 2 + 2; }
  std::string name() const override { return "half"; }
};

// Even steps read almost-fresh data; odd steps read data delayed by
// ~[b/2, b]. Consecutive labels therefore decrease roughly every second
// step: a deliberately strong out-of-order pattern.
class OutOfOrderDelay final : public DelayModel {
 public:
  explicit OutOfOrderDelay(Step b) : b_(b) { ASYNCIT_CHECK(b_ >= 2); }
  Step label(la::BlockId, Step j, Rng& rng) override {
    ASYNCIT_CHECK(j >= 1);
    Step d;
    if (j % 2 == 0) {
      d = rng.uniform_index(b_ / 4 + 1);  // fresh
    } else {
      d = b_ / 2 + rng.uniform_index(b_ - b_ / 2 + 1);  // stale
    }
    const Step base = j - 1;
    return base > d ? base - d : 0;
  }
  Step max_lookback(Step) const override { return b_ + 1; }
  std::string name() const override {
    return "out-of-order-" + std::to_string(b_);
  }

 private:
  Step b_;
};

class FrozenDelay final : public DelayModel {
 public:
  Step label(la::BlockId, Step, Rng&) override { return 0; }
  Step max_lookback(Step j) const override { return j + 1; }
  bool admissible() const override { return false; }
  std::string name() const override { return "frozen(INADMISSIBLE)"; }
};

}  // namespace

std::unique_ptr<DelayModel> make_no_delay() {
  return std::make_unique<NoDelay>();
}
std::unique_ptr<DelayModel> make_constant_delay(Step d) {
  return std::make_unique<ConstantDelay>(d);
}
std::unique_ptr<DelayModel> make_uniform_delay(Step bound) {
  return std::make_unique<UniformDelay>(bound);
}
std::unique_ptr<DelayModel> make_baudet_sqrt_delay() {
  return std::make_unique<BaudetSqrtDelay>();
}
std::unique_ptr<DelayModel> make_log_delay() {
  return std::make_unique<LogDelay>();
}
std::unique_ptr<DelayModel> make_half_delay() {
  return std::make_unique<HalfDelay>();
}
std::unique_ptr<DelayModel> make_out_of_order_delay(Step bound) {
  return std::make_unique<OutOfOrderDelay>(bound);
}
std::unique_ptr<DelayModel> make_frozen_delay() {
  return std::make_unique<FrozenDelay>();
}

}  // namespace asyncit::model
