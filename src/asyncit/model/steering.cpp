#include "asyncit/model/steering.hpp"

#include <algorithm>
#include <numeric>

#include "asyncit/support/check.hpp"

namespace asyncit::model {

namespace {

class AllBlocksSteering final : public SteeringPolicy {
 public:
  explicit AllBlocksSteering(std::size_t m) : m_(m) {
    ASYNCIT_CHECK(m_ > 0);
    all_.resize(m_);
    std::iota(all_.begin(), all_.end(), la::BlockId{0});
  }
  std::vector<la::BlockId> next(Step, Rng&) override { return all_; }
  std::string name() const override { return "all-blocks"; }
  std::size_t num_blocks() const override { return m_; }

 private:
  std::size_t m_;
  std::vector<la::BlockId> all_;
};

class CyclicSteering final : public SteeringPolicy {
 public:
  explicit CyclicSteering(std::size_t m) : m_(m) { ASYNCIT_CHECK(m_ > 0); }
  std::vector<la::BlockId> next(Step j, Rng&) override {
    return {static_cast<la::BlockId>((j - 1) % m_)};
  }
  std::string name() const override { return "cyclic"; }
  std::size_t num_blocks() const override { return m_; }

 private:
  std::size_t m_;
};

class RandomSubsetSteering final : public SteeringPolicy {
 public:
  RandomSubsetSteering(std::size_t m, std::size_t k) : m_(m), k_(k) {
    ASYNCIT_CHECK(m_ > 0 && k_ >= 1 && k_ <= m_);
  }
  std::vector<la::BlockId> next(Step, Rng& rng) override {
    // Partial Fisher–Yates over a scratch identity permutation.
    std::vector<la::BlockId> scratch(m_);
    std::iota(scratch.begin(), scratch.end(), la::BlockId{0});
    std::vector<la::BlockId> out;
    out.reserve(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      const std::size_t r =
          i + static_cast<std::size_t>(rng.uniform_index(m_ - i));
      std::swap(scratch[i], scratch[r]);
      out.push_back(scratch[i]);
    }
    return out;
  }
  std::string name() const override {
    return "random-subset-" + std::to_string(k_);
  }
  std::size_t num_blocks() const override { return m_; }

 private:
  std::size_t m_;
  std::size_t k_;
};

class WeightedRandomSteering final : public SteeringPolicy {
 public:
  explicit WeightedRandomSteering(std::vector<double> weights)
      : weights_(std::move(weights)) {
    ASYNCIT_CHECK(!weights_.empty());
    cumulative_.resize(weights_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      ASYNCIT_CHECK_MSG(weights_[i] > 0.0,
                        "all steering weights must be positive, otherwise "
                        "condition c) fails");
      acc += weights_[i];
      cumulative_[i] = acc;
    }
  }
  std::vector<la::BlockId> next(Step, Rng& rng) override {
    const double u = rng.uniform(0.0, cumulative_.back());
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(it - cumulative_.begin()),
        cumulative_.size() - 1);
    return {static_cast<la::BlockId>(idx)};
  }
  std::string name() const override { return "weighted-random"; }
  std::size_t num_blocks() const override { return weights_.size(); }

 private:
  std::vector<double> weights_;
  std::vector<double> cumulative_;
};

class StarvingSteering final : public SteeringPolicy {
 public:
  StarvingSteering(std::size_t m, la::BlockId victim)
      : m_(m), victim_(victim) {
    ASYNCIT_CHECK(m_ >= 2);
    ASYNCIT_CHECK(victim_ < m_);
  }
  std::vector<la::BlockId> next(Step j, Rng&) override {
    if ((j & (j - 1)) == 0) return {victim_};  // j is a power of two
    // Round-robin over the other m-1 blocks.
    la::BlockId b = static_cast<la::BlockId>(others_counter_++ % (m_ - 1));
    if (b >= victim_) ++b;
    return {b};
  }
  std::string name() const override { return "starving"; }
  std::size_t num_blocks() const override { return m_; }

 private:
  std::size_t m_;
  la::BlockId victim_;
  std::size_t others_counter_ = 0;
};

}  // namespace

std::unique_ptr<SteeringPolicy> make_all_blocks_steering(std::size_t m) {
  return std::make_unique<AllBlocksSteering>(m);
}
std::unique_ptr<SteeringPolicy> make_cyclic_steering(std::size_t m) {
  return std::make_unique<CyclicSteering>(m);
}
std::unique_ptr<SteeringPolicy> make_random_subset_steering(std::size_t m,
                                                            std::size_t k) {
  return std::make_unique<RandomSubsetSteering>(m, k);
}
std::unique_ptr<SteeringPolicy> make_weighted_random_steering(
    std::vector<double> weights) {
  return std::make_unique<WeightedRandomSteering>(std::move(weights));
}
std::unique_ptr<SteeringPolicy> make_starving_steering(std::size_t m,
                                                       la::BlockId victim) {
  return std::make_unique<StarvingSteering>(m, victim);
}

}  // namespace asyncit::model
