#include "asyncit/model/epoch.hpp"

#include "asyncit/support/check.hpp"

namespace asyncit::model {

EpochTracker::EpochTracker(std::size_t num_machines)
    : machines_(num_machines), boundaries_{0}, updates_(num_machines, 0) {
  ASYNCIT_CHECK(machines_ > 0);
}

bool EpochTracker::observe(Step j, MachineId machine) {
  ASYNCIT_CHECK(j == last_step_ + 1);
  ASYNCIT_CHECK(machine < machines_);
  last_step_ = j;

  if (++updates_[machine] == 2) ++satisfied_;
  if (satisfied_ == machines_) {
    boundaries_.push_back(j);
    updates_.assign(machines_, 0);
    satisfied_ = 0;
    return true;
  }
  return false;
}

std::vector<Step> epoch_boundaries(const ScheduleTrace& trace,
                                   std::size_t num_machines) {
  EpochTracker tracker(num_machines);
  for (Step j = 1; j <= trace.steps(); ++j)
    tracker.observe(j, trace.step(j).machine);
  return tracker.boundaries();
}

}  // namespace asyncit::model
