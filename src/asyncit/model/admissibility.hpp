// Auditors for the admissibility conditions of Definitions 1 and the
// bounded-delay condition d) of Chazan–Miranker/Miellou, evaluated on a
// recorded finite trace.
//
// Conditions a) and the structural parts are checked exactly. Conditions
// b) and c) are asymptotic statements ("delays eventually become stale
// only boundedly", "every component keeps being updated"), which a finite
// trace can only witness, not prove; the auditors therefore report finite-
// horizon diagnostics with documented pass criteria:
//
//  * condition b): split the trace into quarters; the minimum label in
//    each quarter must be strictly increasing, and the final quarter's
//    minimum label must exceed half its starting step for admissible
//    divergence. A frozen label (l ≡ 0) fails immediately.
//  * condition c): every block must appear in S_j at least twice, and the
//    largest gap between consecutive occurrences must be finite (reported);
//    "pass" means every block occurs in the last half of the trace at
//    least once OR its largest observed gap pattern is consistent with
//    power-of-two style fairness (last gap <= trace length).
//  * condition d): reports the smallest uniform bound b_min on observed
//    delays j - l_i(j); `bounded_within(b)` answers whether the trace is
//    consistent with chaotic relaxation with bound b.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "asyncit/model/history.hpp"

namespace asyncit::model {

struct ConditionAReport {
  bool holds = true;  // labels <= j-1 (enforced at record time, re-checked)
};

struct ConditionBReport {
  std::vector<Step> quarter_min_labels;  // min l(j) per quarter of trace
  bool diverging = false;                // quarter minima strictly increase
  Step final_min_label = 0;              // min l(j) over last quarter
};

struct ConditionCReport {
  std::vector<std::size_t> occurrences;  // per block, |{j : i in S_j}|
  std::vector<Step> max_gap;             // per block, largest update gap
  bool fair = false;                     // every block occurs >= 2 times
};

struct ConditionDReport {
  Step b_min = 0;      // smallest uniform delay bound seen in the trace
  double mean = 0.0;   // mean observed delay j - l(j)
  Step at_step = 0;    // step where the max delay occurred
};

ConditionAReport audit_condition_a(const ScheduleTrace& trace);
ConditionBReport audit_condition_b(const ScheduleTrace& trace);
ConditionCReport audit_condition_c(const ScheduleTrace& trace);
ConditionDReport audit_condition_d(const ScheduleTrace& trace);

/// One-line human-readable verdict across all conditions.
std::string audit_summary(const ScheduleTrace& trace);

}  // namespace asyncit::model
