// Box-level tracker — an executable form of the nested level-set ("box")
// argument behind Bertsekas's General Convergence Theorem (paper §III).
//
// For a contraction F with factor α and fixed point x*, define box k as
// { x : ‖x − x*‖_u ≤ α^k E0 }. Every update of block i whose read data
// lies (componentwise) in boxes of level >= k lands block i in box k+1:
//
//   level_i(after update at j) = 1 + min_h level_h( at label l_h(j) ).
//
// The *certified* global level at step j is min_i level_i(j), and
//
//   ‖x(j) − x*‖_u  <=  α^{min_level(j)} · E0
//
// holds for ANY admissible schedule — including out-of-order messages,
// where a stale update can legitimately LOWER a block's level (the
// Definition-2 macro-iteration count, which the paper's Theorem 1 uses,
// implicitly assumes labels do not regress below past boundaries; this
// tracker is the sound generalization and coincides with the macro count
// on monotone-label schedules).
//
// Requires full label tuples (LabelRecording::kFull-style information).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "asyncit/model/history.hpp"

namespace asyncit::model {

class BoxLevelTracker {
 public:
  explicit BoxLevelTracker(std::size_t num_blocks);

  /// Observes step j (in order) updating `updated` with the full label
  /// tuple `labels` (size = num_blocks).
  void observe(Step j, std::span<const la::BlockId> updated,
               std::span<const Step> labels);

  /// Certified global box level after the last observed step.
  std::size_t min_level() const;

  /// Current level of each block.
  std::vector<std::size_t> current_levels() const;

  /// Level block h had as of step `label`.
  std::size_t level_at(la::BlockId h, Step label) const;

 private:
  std::size_t m_;
  /// Per block: (step, level) history; starts with (0, 0).
  std::vector<std::vector<std::pair<Step, std::size_t>>> history_;
};

/// Runs the tracker over a full-label trace and returns the certified
/// level after each step.
std::vector<std::size_t> box_levels(const ScheduleTrace& trace);

}  // namespace asyncit::model
