// Delay / label models: generators of the sequence L = {(l_1(j),…,l_m(j))}.
//
// A delay model answers "when an update at step j reads component i, which
// past step's value does it see?" — the label l_i(j) <= j-1 of Definition 1.
// Models provided:
//
//   * NoDelay         — l_i(j) = j-1; a synchronous-memory execution.
//   * ConstantDelay   — l_i(j) = max(0, j-1-d); bounded, monotone
//                       (the Chazan–Miranker / Miellou chaotic setting,
//                       condition d) with b = d+1).
//   * UniformDelay    — l_i(j) = j-1-U{0..min(b,j-1)}; bounded but
//                       non-monotone (mild out-of-order behaviour).
//   * BaudetSqrt      — l_i(j) = j - ceil(sqrt(j)): the paper's in-text
//                       example (P2's k-th update takes k time units ⇒
//                       delay grows like sqrt(j)); UNBOUNDED delays, yet
//                       condition b) holds since j - sqrt(j) → ∞.
//   * LogDelay        — l_i(j) = max(0, j-1-floor(log2(j+1))); unbounded
//                       but very slowly growing.
//   * HalfDelay       — l_i(j) = floor(j/2); adversarially large unbounded
//                       delays (d_i(j) ≈ j/2), still admissible.
//   * OutOfOrder      — alternates small and large random delays so that
//                       labels are strongly non-monotone: the trace-level
//                       model of out-of-order message delivery.
//   * Frozen          — l_i(j) = 0 forever: INADMISSIBLE (violates
//                       condition b); used to test the auditors and to
//                       demonstrate divergence.
//
// All models may be wrapped per-component via PerComponentDelay.
#pragma once

#include <memory>
#include <string>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/model/history.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::model {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Label l_i(j) for component i read by an update at step j >= 1.
  /// Must return a value in [0, j-1].
  virtual Step label(la::BlockId i, Step j, Rng& rng) = 0;

  /// An upper bound on j - l_i(j) at step j, used by engines to size value
  /// history windows. Must be >= the largest delay the model can emit at
  /// step j.
  virtual Step max_lookback(Step j) const = 0;

  /// True if the model satisfies condition b) (lim_j l_i(j) = ∞).
  virtual bool admissible() const { return true; }

  virtual std::string name() const = 0;
};

std::unique_ptr<DelayModel> make_no_delay();
std::unique_ptr<DelayModel> make_constant_delay(Step d);
std::unique_ptr<DelayModel> make_uniform_delay(Step bound);
std::unique_ptr<DelayModel> make_baudet_sqrt_delay();
std::unique_ptr<DelayModel> make_log_delay();
std::unique_ptr<DelayModel> make_half_delay();
std::unique_ptr<DelayModel> make_out_of_order_delay(Step bound);
std::unique_ptr<DelayModel> make_frozen_delay();  // inadmissible!

}  // namespace asyncit::model
