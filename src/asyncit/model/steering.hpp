// Steering policies: generators of the sequence S = {S_j} of Definition 1.
//
// S_j is the set of components updated at step j. Different policies model
// different parallel/distributed execution styles:
//   * AllBlocks          — synchronous Jacobi-style sweeps;
//   * Cyclic             — one component per step, round robin
//                          (Gauss–Seidel-like serialization);
//   * RandomSubset       — k distinct random components per step;
//   * WeightedRandom     — one component, sampled with weights (models
//                          heterogeneous processor speeds);
//   * Starving           — one designated component updated only at steps
//                          that are powers of two: still infinitely often
//                          (condition c holds) but with unbounded gaps —
//                          the stress case for macro-iteration analysis.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/model/history.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::model {

class SteeringPolicy {
 public:
  virtual ~SteeringPolicy() = default;
  /// Produces S_j (nonempty, deduplicated, within [0, num_blocks)).
  virtual std::vector<la::BlockId> next(Step j, Rng& rng) = 0;
  virtual std::string name() const = 0;
  virtual std::size_t num_blocks() const = 0;
};

std::unique_ptr<SteeringPolicy> make_all_blocks_steering(
    std::size_t num_blocks);
std::unique_ptr<SteeringPolicy> make_cyclic_steering(std::size_t num_blocks);
std::unique_ptr<SteeringPolicy> make_random_subset_steering(
    std::size_t num_blocks, std::size_t subset_size);
std::unique_ptr<SteeringPolicy> make_weighted_random_steering(
    std::vector<double> weights);
/// `victim` is updated exactly at steps 1, 2, 4, 8, ... (powers of two);
/// all other steps round-robin over the remaining blocks.
std::unique_ptr<SteeringPolicy> make_starving_steering(
    std::size_t num_blocks, la::BlockId victim);

}  // namespace asyncit::model
