// Executable form of Definition 1's bookkeeping: the steering sequence S,
// the label sequence L, and the recorded trace of a run.
//
// Step j = 0 is the initial vector x(0); updates happen at steps j >= 1.
// An update at step j of the components in S_j reads component i at label
// l_i(j) <= j - 1 (condition a). The trace stores, per step, the updated
// set, the minimum label l(j) = min_h l_h(j) (all that Definition 2 needs),
// optionally the full label tuple (for out-of-order analysis), and the
// machine that performed the update (for epoch analysis).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "asyncit/linalg/partition.hpp"

namespace asyncit::model {

using Step = std::uint64_t;
using MachineId = std::uint32_t;

struct StepRecord {
  std::vector<la::BlockId> updated;  ///< S_j
  Step l_min = 0;                    ///< l(j) = min_h l_h(j)
  std::vector<Step> labels;          ///< full tuple (empty if not recorded)
  MachineId machine = 0;             ///< performer (epoch analysis)
};

enum class LabelRecording {
  kMinOnly,  ///< store only l(j) — O(1) per step
  kFull,     ///< store the whole tuple l_1(j)..l_m(j) — O(m) per step
};

/// Recorded schedule of a finite asynchronous run.
class ScheduleTrace {
 public:
  ScheduleTrace(std::size_t num_blocks, LabelRecording recording)
      : num_blocks_(num_blocks), recording_(recording) {}

  std::size_t num_blocks() const { return num_blocks_; }
  LabelRecording recording() const { return recording_; }

  /// Appends the record for step j = steps()+1.
  void record(std::vector<la::BlockId> updated, Step l_min,
              std::vector<Step> labels, MachineId machine);

  /// Number of recorded steps; step j corresponds to index j-1.
  Step steps() const { return static_cast<Step>(records_.size()); }
  const StepRecord& step(Step j) const;
  const std::vector<StepRecord>& records() const { return records_; }

  /// Delay of component i at step j: d_i(j) = j - l_i(j). Requires full
  /// label recording.
  Step delay(la::BlockId i, Step j) const;

  /// Count of label inversions for component i: pairs of consecutive steps
  /// j < j' with l_i(j') < l_i(j). A positive count is the trace-level
  /// signature of out-of-order messages. Requires full recording.
  std::size_t label_inversions(la::BlockId i) const;
  /// Sum over all components.
  std::size_t total_label_inversions() const;

  /// Label inversions WITHIN each machine's own subsequence of steps —
  /// the quantity whose vanishing is the monotone-label premise of the
  /// epoch analysis (Miellou's monotone l_i; Mishchenko et al. §III).
  /// A machine's reads regress only when messages genuinely arrive out of
  /// order (non-FIFO channels with last-arrival-wins overwrite). Requires
  /// full recording.
  std::size_t per_machine_label_inversions() const;

 private:
  std::size_t num_blocks_;
  LabelRecording recording_;
  std::vector<StepRecord> records_;
};

}  // namespace asyncit::model
