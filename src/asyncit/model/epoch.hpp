// Epoch sequence tracker — the meta-iteration of Mishchenko, Iutzeler &
// Malick (SIAM J. Optim. 30(1), 2020), quoted in Section III of the paper:
//
//   k_0 = 0,
//   k_{m+1} = min_k { each machine made at least two updates on {k_m,…,k} }.
//
// The paper argues epochs are LESS general than macro-iterations: the
// epoch analysis assumes per-machine monotone labels (each machine's reads
// get fresher over time), which out-of-order message delivery violates,
// while Definition 2 only needs l(r) >= j_k. This tracker exists so the
// two sequences can be measured side by side (bench/c3_macro_vs_epoch).
#pragma once

#include <cstddef>
#include <vector>

#include "asyncit/model/history.hpp"

namespace asyncit::model {

class EpochTracker {
 public:
  explicit EpochTracker(std::size_t num_machines);

  /// Observes that update step j was performed by `machine`.
  /// Returns true iff an epoch boundary k_{m+1} = j was created.
  bool observe(Step j, MachineId machine);

  std::size_t count() const { return boundaries_.size() - 1; }
  const std::vector<Step>& boundaries() const { return boundaries_; }

 private:
  std::size_t machines_;
  std::vector<Step> boundaries_;       // starts as {0}
  std::vector<std::size_t> updates_;   // per machine, in current epoch
  std::size_t satisfied_ = 0;          // machines with >= 2 updates
  Step last_step_ = 0;
};

/// Boundaries for a recorded trace (machine ids from StepRecord::machine).
std::vector<Step> epoch_boundaries(const ScheduleTrace& trace,
                                   std::size_t num_machines);

}  // namespace asyncit::model
