#include "asyncit/model/history.hpp"

#include "asyncit/support/check.hpp"

namespace asyncit::model {

void ScheduleTrace::record(std::vector<la::BlockId> updated, Step l_min,
                           std::vector<Step> labels, MachineId machine) {
  const Step j = steps() + 1;
  ASYNCIT_CHECK_MSG(!updated.empty(), "S_j must be nonempty (Definition 1)");
  for (la::BlockId b : updated) ASYNCIT_CHECK(b < num_blocks_);
  ASYNCIT_CHECK_MSG(l_min <= j - 1, "condition a): l(j) <= j-1 violated");
  if (recording_ == LabelRecording::kFull) {
    ASYNCIT_CHECK(labels.size() == num_blocks_);
    Step computed_min = labels[0];
    for (Step l : labels) {
      ASYNCIT_CHECK_MSG(l <= j - 1, "condition a): l_i(j) <= j-1 violated");
      if (l < computed_min) computed_min = l;
    }
    ASYNCIT_CHECK(computed_min == l_min);
  } else {
    labels.clear();
  }
  records_.push_back(
      StepRecord{std::move(updated), l_min, std::move(labels), machine});
}

const StepRecord& ScheduleTrace::step(Step j) const {
  ASYNCIT_CHECK(j >= 1 && j <= steps());
  return records_[static_cast<std::size_t>(j - 1)];
}

Step ScheduleTrace::delay(la::BlockId i, Step j) const {
  ASYNCIT_CHECK(recording_ == LabelRecording::kFull);
  const StepRecord& r = step(j);
  ASYNCIT_CHECK(i < num_blocks_);
  return j - r.labels[i];
}

std::size_t ScheduleTrace::label_inversions(la::BlockId i) const {
  ASYNCIT_CHECK(recording_ == LabelRecording::kFull);
  ASYNCIT_CHECK(i < num_blocks_);
  std::size_t inversions = 0;
  for (std::size_t k = 1; k < records_.size(); ++k)
    if (records_[k].labels[i] < records_[k - 1].labels[i]) ++inversions;
  return inversions;
}

std::size_t ScheduleTrace::total_label_inversions() const {
  std::size_t total = 0;
  for (la::BlockId i = 0; i < num_blocks_; ++i)
    total += label_inversions(i);
  return total;
}

std::size_t ScheduleTrace::per_machine_label_inversions() const {
  ASYNCIT_CHECK(recording_ == LabelRecording::kFull);
  // last seen label tuple per machine
  std::vector<std::vector<Step>> last;
  std::size_t inversions = 0;
  for (const StepRecord& rec : records_) {
    if (rec.machine >= last.size()) last.resize(rec.machine + 1);
    auto& prev = last[rec.machine];
    if (prev.empty()) {
      prev = rec.labels;
      continue;
    }
    for (std::size_t h = 0; h < num_blocks_; ++h)
      if (rec.labels[h] < prev[h]) ++inversions;
    prev = rec.labels;
  }
  return inversions;
}

}  // namespace asyncit::model
