// Macro-iteration sequence tracker — Definition 2 of the paper.
//
//   j_0 = 0,
//   j_{k+1} = min_j { ∪_{r : j_k ≤ l(r) ≤ r ≤ j} S_r = {1,…,m} },
//
// with l(r) = min_h l_h(r). In words: macro-iteration k+1 completes at the
// first step j by which every component has been updated at least once
// using only values labelled at or after the previous boundary j_k. Every
// update at step j ≥ j_{k+1} is then guaranteed to use values with labels
// ≥ j_k: the sequence of iterates contracts box-by-box (Bertsekas's General
// Convergence Theorem), which is what Theorem 1's (1-ρ)^k rate counts.
//
// The tracker is online: feed it each step's (S_j, l(j)) in order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "asyncit/model/history.hpp"

namespace asyncit::model {

class MacroIterationTracker {
 public:
  explicit MacroIterationTracker(std::size_t num_blocks);

  /// Observes step j (must be called with j = 1, 2, … in order).
  /// Returns true iff a macro-iteration boundary j_{k+1} = j was created.
  bool observe(Step j, std::span<const la::BlockId> updated, Step l_min);

  /// Completed macro-iterations k (= boundaries().size() - 1).
  std::size_t count() const { return boundaries_.size() - 1; }

  /// j_0 = 0, j_1, j_2, … (j_0 always present).
  const std::vector<Step>& boundaries() const { return boundaries_; }

  /// Macro-iteration index k(j) such that j_k <= j < j_{k+1} for the last
  /// observed step; equals count() for steps past the last boundary.
  std::size_t index_of_last_step() const;

  /// Blocks not yet covered in the current (incomplete) macro-iteration.
  std::size_t uncovered() const { return m_ - covered_count_; }

 private:
  std::size_t m_;
  std::vector<Step> boundaries_;  // starts as {0}
  std::vector<bool> covered_;
  std::size_t covered_count_ = 0;
  Step last_step_ = 0;
};

/// Convenience: computes all boundaries of a recorded trace.
std::vector<Step> macro_boundaries(const ScheduleTrace& trace);

}  // namespace asyncit::model
