#include "asyncit/model/macro_iteration.hpp"

#include "asyncit/support/check.hpp"

namespace asyncit::model {

MacroIterationTracker::MacroIterationTracker(std::size_t num_blocks)
    : m_(num_blocks), boundaries_{0}, covered_(num_blocks, false) {
  ASYNCIT_CHECK(m_ > 0);
}

bool MacroIterationTracker::observe(Step j,
                                    std::span<const la::BlockId> updated,
                                    Step l_min) {
  ASYNCIT_CHECK_MSG(j == last_step_ + 1,
                    "steps must be observed in order; expected "
                        << (last_step_ + 1) << " got " << j);
  ASYNCIT_CHECK(l_min <= j - 1);
  last_step_ = j;

  const Step j_k = boundaries_.back();
  // Definition 2 counts updates r with l(r) >= j_k: the update used no
  // value older than the previous boundary.
  if (l_min >= j_k) {
    for (la::BlockId b : updated) {
      ASYNCIT_CHECK(b < m_);
      if (!covered_[b]) {
        covered_[b] = true;
        ++covered_count_;
      }
    }
  }
  if (covered_count_ == m_) {
    boundaries_.push_back(j);
    covered_.assign(m_, false);
    covered_count_ = 0;
    return true;
  }
  return false;
}

std::size_t MacroIterationTracker::index_of_last_step() const {
  return count();
}

std::vector<Step> macro_boundaries(const ScheduleTrace& trace) {
  MacroIterationTracker tracker(trace.num_blocks());
  for (Step j = 1; j <= trace.steps(); ++j) {
    const StepRecord& r = trace.step(j);
    tracker.observe(j, r.updated, r.l_min);
  }
  return tracker.boundaries();
}

}  // namespace asyncit::model
