// Execution trace of a simulated distributed run: updating phases and
// messages in virtual time. This is the data behind the paper's Figure 1
// (asynchronous iterations: rectangles = updating phases labelled by
// iteration number, arrows = communications) and Figure 2 (flexible
// communication: hatched arrows = partial updates sent mid-phase).
#pragma once

#include <cstdint>
#include <vector>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/model/history.hpp"

namespace asyncit::trace {

struct PhaseEvent {
  std::uint32_t processor = 0;
  la::BlockId block = 0;
  double t_start = 0.0;
  double t_end = 0.0;
  model::Step step = 0;  ///< global iteration number assigned at completion
};

struct MessageEvent {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  la::BlockId block = 0;
  bool partial = false;   ///< mid-phase partial update (hatched arrow)
  bool dropped = false;   ///< transient fault: message lost in transit
  double t_send = 0.0;
  double t_arrive = 0.0;  ///< meaningless when dropped
  model::Step tag = 0;    ///< production step of the payload
};

class EventLog {
 public:
  void add_phase(PhaseEvent e) { phases_.push_back(e); }
  void add_message(MessageEvent e) { messages_.push_back(e); }

  const std::vector<PhaseEvent>& phases() const { return phases_; }
  const std::vector<MessageEvent>& messages() const { return messages_; }

  double end_time() const;
  std::uint32_t num_processors() const;

 private:
  std::vector<PhaseEvent> phases_;
  std::vector<MessageEvent> messages_;
};

}  // namespace asyncit::trace
