#include "asyncit/trace/event_log.hpp"

#include <algorithm>

namespace asyncit::trace {

double EventLog::end_time() const {
  double t = 0.0;
  for (const auto& p : phases_) t = std::max(t, p.t_end);
  for (const auto& m : messages_)
    if (!m.dropped) t = std::max(t, m.t_arrive);
  return t;
}

std::uint32_t EventLog::num_processors() const {
  std::uint32_t n = 0;
  for (const auto& p : phases_) n = std::max(n, p.processor + 1);
  for (const auto& m : messages_)
    n = std::max({n, m.src + 1, m.dst + 1});
  return n;
}

}  // namespace asyncit::trace
