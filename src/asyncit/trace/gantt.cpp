#include "asyncit/trace/gantt.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "asyncit/support/check.hpp"

namespace asyncit::trace {

std::string render_gantt(const EventLog& log, const GanttOptions& options) {
  ASYNCIT_CHECK(options.width >= 20);
  const double t_end = log.end_time();
  const std::uint32_t procs = log.num_processors();
  std::ostringstream os;
  if (t_end <= 0.0 || procs == 0) return "(empty trace)\n";

  const double scale = static_cast<double>(options.width) / t_end;
  auto col = [&](double t) {
    return std::min(options.width - 1,
                    static_cast<std::size_t>(t * scale));
  };

  os << "time 0";
  os << std::string(options.width > 12 ? options.width - 12 : 1, ' ');
  os << std::fixed << std::setprecision(1) << t_end << "\n";

  for (std::uint32_t p = 0; p < procs; ++p) {
    std::string lane(options.width, ' ');
    for (const auto& phase : log.phases()) {
      if (phase.processor != p) continue;
      const std::size_t c0 = col(phase.t_start);
      const std::size_t c1 = std::max(col(phase.t_end), c0 + 1);
      for (std::size_t c = c0; c <= c1 && c < options.width; ++c)
        lane[c] = '=';
      if (c0 < options.width) lane[c0] = '[';
      if (c1 < options.width) lane[c1] = ']';
      // stamp the iteration number inside the rectangle if it fits
      const std::string label = std::to_string(phase.step);
      if (c1 > c0 + label.size()) {
        const std::size_t mid = c0 + 1 + (c1 - c0 - 1 - label.size()) / 2;
        for (std::size_t k = 0; k < label.size(); ++k)
          if (mid + k < options.width) lane[mid + k] = label[k];
      }
    }
    os << "P" << p << " |" << lane << "\n";
  }

  if (options.show_messages && !log.messages().empty()) {
    os << "\nmessages (-- full update, ~~ partial update/hatched, "
          "x dropped):\n";
    std::size_t shown = 0;
    for (const auto& m : log.messages()) {
      if (options.max_messages && shown >= options.max_messages) {
        os << "  ... (" << log.messages().size() - shown
           << " more messages)\n";
        break;
      }
      ++shown;
      os << "  t=" << std::fixed << std::setprecision(2) << std::setw(8)
         << m.t_send;
      if (m.dropped)
        os << "  x DROPPED x  ";
      else
        os << " -> t=" << std::setw(8) << m.t_arrive << "  ";
      os << "P" << m.src << ' ' << (m.partial ? "~~" : "--") << 'x'
         << m.block << '(';
      if (m.partial)
        os << '.';
      else
        os << m.tag;
      os << ')' << (m.partial ? "~~" : "--") << "> P" << m.dst << "\n";
    }
  }
  return os.str();
}

}  // namespace asyncit::trace
