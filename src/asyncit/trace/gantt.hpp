// ASCII Gantt rendering of an EventLog — regenerates the paper's Figure 1
// and Figure 2 from measured traces.
//
// Output shape (one lane per processor, time left to right):
//
//   P0 |[=1==][==3===][=5=]...
//   P1 |[===2====][====4====]...
//        ^ updating phases labelled with their iteration number
//
//   messages:
//     t=1.00 -> t=1.40   P0 --x0(1)--> P1      (full update, plain arrow)
//     t=2.10 -> t=2.60   P1 ~~x1(.)~~> P0      (partial update, "hatched")
#pragma once

#include <string>

#include "asyncit/trace/event_log.hpp"

namespace asyncit::trace {

struct GanttOptions {
  std::size_t width = 100;        ///< character columns for the time axis
  std::size_t max_messages = 40;  ///< message table rows (0 = all)
  bool show_messages = true;
};

std::string render_gantt(const EventLog& log, const GanttOptions& options);

}  // namespace asyncit::trace
