// CSV mirroring of benchmark tables (written when ASYNCIT_BENCH_CSV is set
// in the environment; see DESIGN.md §5).
#pragma once

#include <string>

#include "asyncit/support/table.hpp"

namespace asyncit::trace {

/// Serializes a TextTable as CSV.
std::string to_csv(const TextTable& table);

/// Writes `table` to `<name>.csv` in the current directory iff the
/// ASYNCIT_BENCH_CSV environment variable is nonempty. Returns the path
/// written, or an empty string when disabled.
std::string maybe_write_csv(const TextTable& table, const std::string& name);

}  // namespace asyncit::trace
