#include "asyncit/trace/csv.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace asyncit::trace {

namespace {
std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string to_csv(const TextTable& table) {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(table.header());
  for (const auto& row : table.row_data()) emit(row);
  return os.str();
}

std::string maybe_write_csv(const TextTable& table, const std::string& name) {
  const char* flag = std::getenv("ASYNCIT_BENCH_CSV");
  if (flag == nullptr || *flag == '\0') return {};
  const std::string path = name + ".csv";
  std::ofstream out(path);
  if (!out) return {};
  out << to_csv(table);
  return path;
}

}  // namespace asyncit::trace
