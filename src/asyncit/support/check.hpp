// Lightweight precondition / invariant checking.
//
// ASYNCIT_CHECK is always on (the library is a research instrument; silent
// contract violations cost far more than a branch). Failures throw
// asyncit::CheckError so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace asyncit {

/// Thrown when a runtime contract (precondition, invariant) is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "ASYNCIT_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace asyncit

#define ASYNCIT_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::asyncit::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define ASYNCIT_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream os_;                                            \
      os_ << msg;                                                        \
      ::asyncit::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                      os_.str());                        \
    }                                                                    \
  } while (false)
