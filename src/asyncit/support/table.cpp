#include "asyncit/support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "asyncit/support/check.hpp"

namespace asyncit {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ASYNCIT_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  ASYNCIT_CHECK_MSG(row.size() == header_.size(),
                    "row arity " << row.size() << " != header arity "
                                 << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace asyncit
