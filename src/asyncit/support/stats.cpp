#include "asyncit/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double q) {
  ASYNCIT_CHECK(!sample.empty());
  ASYNCIT_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double ls_slope(const std::vector<double>& x, const std::vector<double>& y) {
  ASYNCIT_CHECK(x.size() == y.size());
  ASYNCIT_CHECK(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  ASYNCIT_CHECK(denom != 0.0);
  return (n * sxy - sx * sy) / denom;
}

}  // namespace asyncit
