#include "asyncit/support/rng.hpp"

#include <cmath>
#include <numbers>

#include "asyncit/support/check.hpp"

namespace asyncit {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
    state_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ASYNCIT_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ASYNCIT_CHECK(n > 0);
  // Lemire-style rejection-free-enough bounded draw; bias is negligible for
  // the ranges used here, but we still reject to keep tests exact.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  // Box–Muller; discard the second value for statelessness.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
  ASYNCIT_CHECK(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::pareto(double xm, double alpha) {
  ASYNCIT_CHECK(xm > 0.0 && alpha > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::split() {
  Rng child;
  child.state_ = {next(), next(), next(), next()};
  if (child.state_[0] == 0 && child.state_[1] == 0 && child.state_[2] == 0 &&
      child.state_[3] == 0)
    child.state_[0] = 1;
  return child;
}

}  // namespace asyncit
