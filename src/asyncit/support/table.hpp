// Aligned plain-text tables for benchmark output.
//
// Every bench binary prints its results as one of these (the paper-style
// "rows/series"), and can optionally mirror them to CSV via trace/csv.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace asyncit {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);
  static std::string sci(double v, int precision = 3);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

  /// Renders with column alignment and a separator under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace asyncit
