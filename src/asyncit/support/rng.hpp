// Deterministic pseudo-random number generation.
//
// Everything in asyncit that needs randomness takes an explicit Rng&; there
// is no hidden global state, so every experiment is reproducible from its
// seed. The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 so that nearby seeds give independent streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace asyncit {

/// xoshiro256** PRNG with splitmix64 seeding. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box–Muller (no cached spare: stateless per call
  /// pair, slightly wasteful, entirely deterministic).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Exponential with given rate (> 0).
  double exponential(double rate);
  /// Pareto (heavy tail) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// An independent child stream (for per-worker RNGs).
  Rng split();

  /// Fisher–Yates shuffle of a vector of indices.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace asyncit
