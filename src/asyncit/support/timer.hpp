// Wall-clock timing for benchmarks.
#pragma once

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#define ASYNCIT_HAS_THREAD_CPU_CLOCK 1
#endif

namespace asyncit {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  virtual ~WallTimer() = default;

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset. Virtual so a run
  /// clock can be substituted wholesale: simnet::SimClock overrides this
  /// with virtual time, turning every wall-clock budget (solve
  /// max_seconds, gate timeouts) into a deterministic virtual budget.
  /// One indirect call per read is noise next to the clock_gettime
  /// underneath.
  virtual double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// CPU time consumed by the CALLING thread (not wall time). Used by the
/// threaded executors to pace voluntary yields: on an oversubscribed
/// machine, wall time advances while a thread is descheduled, so a
/// wall-clock yield cadence collapses into yielding at every check; CPU
/// time only advances while the thread actually runs. Falls back to wall
/// time on platforms without a per-thread CPU clock.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  /// CPU seconds this thread has consumed since construction / reset.
  double seconds() const { return now() - start_; }

 private:
  static double now() {
#ifdef ASYNCIT_HAS_THREAD_CPU_CLOCK
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
#else
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
#endif
  }
  double start_;
};

}  // namespace asyncit
