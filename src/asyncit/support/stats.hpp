// Small statistics helpers used by benchmarks and auditors.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace asyncit {

/// Streaming mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a stored sample (linear interpolation between
/// order statistics). q in [0, 1].
double percentile(std::vector<double> sample, double q);

/// Least-squares slope of y against x (used to fit convergence rates on
/// log-scale residual histories).
double ls_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace asyncit
