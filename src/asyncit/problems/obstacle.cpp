#include "asyncit/problems/obstacle.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/problems/linear_system.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::problems {

ObstacleProblem::ObstacleProblem(std::size_t n, double load,
                                 double obstacle_height,
                                 double obstacle_sharpness)
    : n_(n) {
  ASYNCIT_CHECK(n_ >= 4);
  LinearSystem sys = make_laplacian_2d_system(n_, n_, 0.0, load);
  a_ = std::move(sys.a);
  b_ = std::move(sys.b);
  psi_.resize(dim());
  const double h = 1.0 / static_cast<double>(n_ + 1);
  for (std::size_t iy = 0; iy < n_; ++iy) {
    for (std::size_t ix = 0; ix < n_; ++ix) {
      const double x = static_cast<double>(ix + 1) * h;
      const double y = static_cast<double>(iy + 1) * h;
      const double r2 = (x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5);
      psi_[iy * n_ + ix] = obstacle_height - obstacle_sharpness * r2;
    }
  }
}

std::unique_ptr<op::ProjectedJacobiOperator> ObstacleProblem::make_operator(
    la::Partition partition) const {
  return std::make_unique<op::ProjectedJacobiOperator>(a_, b_, psi_,
                                                       std::move(partition));
}

la::Vector ObstacleProblem::reference_solution(std::size_t max_sweeps,
                                               double tol) const {
  // Projected Gauss–Seidel: in-place sweeps, each point uses the freshest
  // neighbour values — converges ~2x faster than Jacobi and is exactly
  // sequential, which is what a reference needs.
  la::Vector u(dim(), 0.0);
  const la::Vector diag = a_.diagonal();
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double max_change = 0.0;
    for (std::size_t i = 0; i < dim(); ++i) {
      const auto cols = a_.row_cols(i);
      const auto vals = a_.row_values(i);
      double s = b_[i];
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] == i) continue;
        s -= vals[k] * u[cols[k]];
      }
      const double candidate = std::max(psi_[i], s / diag[i]);
      max_change = std::max(max_change, std::abs(candidate - u[i]));
      u[i] = candidate;
    }
    if (max_change < tol) break;
  }
  return u;
}

double ObstacleProblem::feasibility_violation(
    std::span<const double> u) const {
  ASYNCIT_CHECK(u.size() == dim());
  double worst = 0.0;
  for (std::size_t i = 0; i < dim(); ++i)
    worst = std::max(worst, psi_[i] - u[i]);
  return std::max(worst, 0.0);
}

double ObstacleProblem::complementarity_residual(
    std::span<const double> u) const {
  ASYNCIT_CHECK(u.size() == dim());
  la::Vector au(dim());
  a_.matvec(u, au);
  double worst = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    const double residual = au[i] - b_[i];     // >= 0 at solution
    const double slack = u[i] - psi_[i];       // >= 0 at solution
    worst = std::max(worst, std::abs(std::min(residual, slack)));
  }
  return worst;
}

std::size_t ObstacleProblem::contact_count(std::span<const double> u,
                                           double tol) const {
  ASYNCIT_CHECK(u.size() == dim());
  std::size_t count = 0;
  for (std::size_t i = 0; i < dim(); ++i)
    if (u[i] - psi_[i] < tol) ++count;
  return count;
}

}  // namespace asyncit::problems
