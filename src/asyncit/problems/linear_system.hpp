// Linear fixed-point substrates: A x = b with Jacobi-contractive A.
//
// These are the problems of the chaotic-relaxation lineage (Chazan &
// Miranker, Rosenfeld, Miellou — refs [12][13][14] of the paper): strictly
// diagonally dominant systems, for which the point-Jacobi operator is a
// max-norm contraction and totally asynchronous iterations provably
// converge.
#pragma once

#include <cstddef>

#include "asyncit/linalg/csr_matrix.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::problems {

struct LinearSystem {
  la::CsrMatrix a;
  la::Vector b;

  std::size_t dim() const { return a.rows(); }
};

/// Random sparse strictly diagonally dominant system.
/// `dominance` > 1 is the ratio |a_ii| / Σ_{k≠i}|a_ik| (Jacobi contraction
/// factor is then <= 1/dominance). `off_diagonals_per_row` are placed at
/// random columns.
LinearSystem make_diagonally_dominant_system(std::size_t n,
                                             std::size_t off_diagonals_per_row,
                                             double dominance, Rng& rng);

/// 1-D Poisson (tridiagonal [-1, 2+shift, -1]) with random rhs; shift > 0
/// makes Jacobi strictly contracting in max norm.
LinearSystem make_tridiagonal_system(std::size_t n, double shift, Rng& rng);

/// 2-D 5-point Laplacian on an interior grid of nx*ny points with mesh
/// width h = 1/(nx+1): A = (4+shift) I - adjacency; rhs from f ≡ const.
LinearSystem make_laplacian_2d_system(std::size_t nx, std::size_t ny,
                                      double shift, double f_value);

}  // namespace asyncit::problems
