#include "asyncit/problems/markov.hpp"

#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::problems {

PageRankProblem::PageRankProblem(la::CsrMatrix pt, double damping)
    : pt_(std::move(pt)), damping_(damping) {
  ASYNCIT_CHECK(pt_.rows() == pt_.cols());
  ASYNCIT_CHECK(damping_ > 0.0 && damping_ < 1.0);
  teleport_.assign(dim(), 1.0 / static_cast<double>(dim()));
}

double PageRankProblem::residual(std::span<const double> x) const {
  ASYNCIT_CHECK(x.size() == dim());
  la::Vector tx(dim());
  pt_.matvec(x, tx);
  double worst = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    const double fx = damping_ * tx[i] + (1.0 - damping_) * teleport_[i];
    worst = std::max(worst, std::abs(fx - x[i]));
  }
  return worst;
}

la::Vector PageRankProblem::reference_solution(std::size_t max_iters,
                                               double tol) const {
  la::Vector x(teleport_);
  la::Vector tx(dim());
  for (std::size_t it = 0; it < max_iters; ++it) {
    pt_.matvec(x, tx);
    double change = 0.0;
    for (std::size_t i = 0; i < dim(); ++i) {
      const double next = damping_ * tx[i] + (1.0 - damping_) * teleport_[i];
      change = std::max(change, std::abs(next - x[i]));
      x[i] = next;
    }
    if (change < tol) break;
  }
  return x;
}

PageRankOperator::PageRankOperator(const PageRankProblem& problem)
    : problem_(problem), partition_(la::Partition::scalar(problem.dim())) {}

void PageRankOperator::apply_block(la::BlockId blk, std::span<const double> x,
                                   std::span<double> out,
                                   op::Workspace&) const {
  ASYNCIT_CHECK(out.size() == 1);
  out[0] = problem_.damping() * problem_.pt().row_dot(blk, x) +
           (1.0 - problem_.damping()) * problem_.teleport()[blk];
}

PageRankProblem make_random_web(std::size_t n, double avg_out_degree,
                                double damping, Rng& rng) {
  ASYNCIT_CHECK(n >= 2);
  ASYNCIT_CHECK(avg_out_degree >= 1.0);
  // out_links[i] = targets of node i
  std::vector<std::vector<std::uint32_t>> out_links(n);
  const double p_link = avg_out_degree / static_cast<double>(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t k = 0; k < n; ++k) {
      if (k != i && rng.bernoulli(p_link)) out_links[i].push_back(k);
    }
    if (out_links[i].empty()) {
      std::uint32_t k = i;
      while (k == i) k = static_cast<std::uint32_t>(rng.uniform_index(n));
      out_links[i].push_back(k);
    }
  }
  // Pᵀ[target][source] = 1 / outdeg(source)
  std::vector<la::Triplet> triplets;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double w = 1.0 / static_cast<double>(out_links[i].size());
    for (std::uint32_t target : out_links[i])
      triplets.push_back({target, i, w});
  }
  return PageRankProblem(la::CsrMatrix::from_triplets(n, n,
                                                      std::move(triplets)),
                         damping);
}

}  // namespace asyncit::problems
