// Markov systems / PageRank — the "Markov systems" application family the
// paper's Section III cites for macro-iteration based convergence proofs.
//
// Stationary-distribution fixed point with damping (PageRank form):
//
//   x = α Pᵀ x + (1 − α) v ,       α ∈ (0, 1),
//
// with P row-stochastic and v a probability vector. The affine operator
// T(x) = α Pᵀ x + (1−α) v contracts with factor α in the weighted maximum
// norm ‖·‖_u whose weights u are the stationary solution itself
// (Pᵀ u = u at α→1), the classic asynchronous-iterations norm for Markov
// chains. Totally asynchronous iterations therefore converge; tests verify
// the measured contraction factor against α.
#pragma once

#include <cstddef>
#include <memory>

#include "asyncit/linalg/csr_matrix.hpp"
#include "asyncit/operators/operator.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::problems {

class PageRankProblem {
 public:
  /// pt: Pᵀ (columns of P as CSR rows: row i lists in-links of i);
  /// damping α in (0,1); uniform teleport vector.
  PageRankProblem(la::CsrMatrix pt, double damping);

  std::size_t dim() const { return pt_.rows(); }
  double damping() const { return damping_; }
  const la::CsrMatrix& pt() const { return pt_; }
  const la::Vector& teleport() const { return teleport_; }

  /// ‖x − (αPᵀx + (1−α)v)‖_inf.
  double residual(std::span<const double> x) const;

  /// High-precision stationary vector by (synchronous) power iteration.
  la::Vector reference_solution(std::size_t max_iters = 100000,
                                double tol = 1e-14) const;

 private:
  la::CsrMatrix pt_;
  double damping_;
  la::Vector teleport_;
};

/// The PageRank fixed-point map as a BlockOperator (scalar blocks):
/// F_i(x) = α (Pᵀ x)_i + (1 − α) v_i.
class PageRankOperator final : public op::BlockOperator {
 public:
  explicit PageRankOperator(const PageRankProblem& problem);

  const la::Partition& partition() const override { return partition_; }
  using op::BlockOperator::apply_block;
  void apply_block(la::BlockId blk, std::span<const double> x,
                   std::span<double> out, op::Workspace& ws) const override;
  std::string name() const override { return "pagerank"; }

 private:
  const PageRankProblem& problem_;
  la::Partition partition_;
};

/// Random web-like graph: each node links to ~avg_out_degree random
/// targets (at least one); returns Pᵀ with uniform out-link weights.
PageRankProblem make_random_web(std::size_t n, double avg_out_degree,
                                double damping, Rng& rng);

}  // namespace asyncit::problems
