#include "asyncit/problems/composite.hpp"

#include "asyncit/linalg/partition.hpp"
#include "asyncit/operators/prox_gradient.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::problems {

la::Vector CompositeProblem::reference_minimizer(std::size_t max_iters,
                                                 double tol) const {
  ASYNCIT_CHECK(f && g);
  const op::ForwardBackwardOperator fb(*f, *g, suggested_gamma(),
                                       la::Partition::balanced(dim(), 1));
  return op::picard_solve(fb, la::zeros(dim()), max_iters, tol);
}

}  // namespace asyncit::problems
