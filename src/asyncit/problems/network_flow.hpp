// Convex separable network flow — the application domain of the paper's
// references [6] (Bertsekas & El Baz, distributed asynchronous relaxation)
// and [8] (asynchronous gradient methods for convex separable network
// flow).
//
// Primal problem on a directed graph G = (N, A):
//
//   min  Σ_{e∈A} ( (a_e/2) x_e² + c_e x_e )     a_e > 0
//   s.t. Σ_{e out of i} x_e − Σ_{e into i} x_e = s_i   (flow balance)
//        0 ≤ x_e ≤ cap_e ,
//
// with balanced supplies Σ_i s_i = 0. Strict convexity makes the dual
// differentiable; relaxation (coordinate ascent) on node prices p solves
// it: node i's update sets p_i so that its flow excess
//
//   g_i(p) = s_i + inflow_i(x(p)) − outflow_i(x(p))
//
// vanishes, where x_e(p) = clamp( (p_tail − p_head − c_e)/a_e , 0, cap_e )
// is the price-optimal arc flow. g_i is continuous, piecewise linear and
// non-increasing in p_i, so the single-node problem is a 1-D monotone
// root-find (closed-form per linear piece; we bisect). Node 0 is the
// reference node: its price is pinned to 0 to make the fixed point unique.
//
// This is exactly the operator the paper's asynchronous theory was built
// for: updates in arbitrary order with stale prices still converge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/operators/operator.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::problems {

struct Arc {
  std::uint32_t tail;
  std::uint32_t head;
  double quad;  ///< a_e > 0
  double lin;   ///< c_e
  double cap;   ///< capacity > 0
};

class NetworkFlowProblem {
 public:
  NetworkFlowProblem(std::size_t num_nodes, std::vector<Arc> arcs,
                     la::Vector supplies);

  std::size_t num_nodes() const { return supplies_.size(); }
  std::size_t num_arcs() const { return arcs_.size(); }
  const std::vector<Arc>& arcs() const { return arcs_; }
  const la::Vector& supplies() const { return supplies_; }

  /// Price-optimal flow on arc e.
  double arc_flow(std::size_t e, std::span<const double> prices) const;
  /// All arc flows.
  la::Vector flows(std::span<const double> prices) const;

  /// g_i(p): supply + inflow − outflow at node i under price-optimal flows.
  double excess(std::size_t node, std::span<const double> prices) const;
  /// max_i |g_i(p)| — the primal feasibility residual.
  double max_excess(std::span<const double> prices) const;

  /// Σ_e (a_e/2) x_e² + c_e x_e.
  double primal_cost(std::span<const double> flows) const;
  /// Dual functional q(p) (concave; equals primal cost at optimality).
  double dual_value(std::span<const double> prices) const;

  /// Solves g_i(p_i) = 0 for node i holding other prices fixed (the
  /// Bertsekas–El Baz relaxation step). Returns the new price.
  double relax_node(std::size_t node, std::span<const double> prices,
                    double tol = 1e-12) const;

  /// Arcs incident to a node: (arc index, +1 if outgoing, -1 if incoming).
  struct Incidence {
    std::uint32_t arc;
    int direction;
  };
  const std::vector<Incidence>& incidence(std::size_t node) const;

 private:
  std::vector<Arc> arcs_;
  la::Vector supplies_;
  std::vector<std::vector<Incidence>> incidence_;
};

/// Dual relaxation as a BlockOperator: one scalar block per node;
/// F_i(p) = relax_node(i, p) for i >= 1, F_0(p) = 0 (reference node).
class NetworkFlowDualOperator final : public op::BlockOperator {
 public:
  explicit NetworkFlowDualOperator(const NetworkFlowProblem& problem);

  const la::Partition& partition() const override { return partition_; }
  using op::BlockOperator::apply_block;
  void apply_block(la::BlockId blk, std::span<const double> x,
                   std::span<double> out, op::Workspace& ws) const override;
  std::string name() const override { return "network-flow-relaxation"; }

 private:
  const NetworkFlowProblem& problem_;
  la::Partition partition_;
};

/// Connected random network: spanning tree + `extra_arcs` random arcs;
/// supplies are the divergence of a random within-capacity flow, so the
/// instance is always feasible.
NetworkFlowProblem make_random_network(std::size_t num_nodes,
                                       std::size_t extra_arcs, Rng& rng);

/// Grid transportation network: rows×cols nodes, arcs right and down (and
/// a closing return path), random feasible supplies.
NetworkFlowProblem make_grid_network(std::size_t rows, std::size_t cols,
                                     Rng& rng);

}  // namespace asyncit::problems
