// The composite optimization problem of Section V:
//
//     min_{x ∈ R^n}  f(x) + g(x)                              (4)
//
// bundled with everything the solvers and auditors need: shared ownership
// of f and g, the admissible step range, objective evaluation, and a
// high-precision reference minimizer for error measurements.
#pragma once

#include <memory>
#include <string>

#include "asyncit/operators/prox.hpp"
#include "asyncit/operators/smooth.hpp"

namespace asyncit::problems {

struct CompositeProblem {
  std::shared_ptr<const op::SmoothFunction> f;
  std::shared_ptr<const op::ProxOperator> g;
  std::string name;

  std::size_t dim() const { return f->dim(); }

  /// Right end of the paper's admissible step range (0, 2/(mu+L)].
  double suggested_gamma() const { return f->suggested_step(); }

  /// f(x) + g(x).
  double objective(std::span<const double> x) const {
    return f->value(x) + g->value(x);
  }

  /// High-precision minimizer via sequential forward-backward iterations
  /// (Picard on the classic prox-gradient map). Deterministic.
  la::Vector reference_minimizer(std::size_t max_iters = 200000,
                                 double tol = 1e-13) const;
};

}  // namespace asyncit::problems
