#include "asyncit/problems/logistic.hpp"

#include <cmath>

#include "asyncit/problems/lasso.hpp"  // transpose()
#include "asyncit/support/check.hpp"

namespace asyncit::problems {

namespace {
/// Numerically stable log(1 + exp(t)).
double log1pexp(double t) {
  if (t > 35.0) return t;
  if (t < -35.0) return 0.0;
  return std::log1p(std::exp(t));
}

/// Logistic sigmoid 1 / (1 + exp(-t)).
double sigmoid(double t) {
  if (t >= 0.0) {
    const double e = std::exp(-t);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(t);
  return e / (1.0 + e);
}
}  // namespace

LogisticFunction::LogisticFunction(la::CsrMatrix a, std::vector<int> labels,
                                   double ridge)
    : a_(std::move(a)), labels_(std::move(labels)), ridge_(ridge) {
  ASYNCIT_CHECK(a_.rows() == labels_.size());
  ASYNCIT_CHECK_MSG(ridge_ > 0.0,
                    "ridge must be positive: Section V assumes mu > 0");
  for (int z : labels_) ASYNCIT_CHECK(z == -1 || z == 1);
  at_ = transpose(a_);
  // Hessian is A' D A + ridge I with D = diag(sigma(1-sigma)) <= 1/4.
  l_ = 0.25 * la::gram_spectral_norm(a_) + ridge_;
}

double LogisticFunction::value(std::span<const double> x) const {
  ASYNCIT_CHECK(x.size() == dim());
  double s = 0.0;
  for (std::size_t h = 0; h < a_.rows(); ++h)
    s += log1pexp(-static_cast<double>(labels_[h]) * a_.row_dot(h, x));
  return s + 0.5 * ridge_ * la::norm2_sq(x);
}

void LogisticFunction::gradient(std::span<const double> x,
                                std::span<double> g) const {
  ASYNCIT_CHECK(x.size() == dim() && g.size() == dim());
  // s_h = -z_h * sigmoid(-z_h m_h)
  la::Vector s(a_.rows());
  for (std::size_t h = 0; h < a_.rows(); ++h) {
    const double z = static_cast<double>(labels_[h]);
    s[h] = -z * sigmoid(-z * a_.row_dot(h, x));
  }
  a_.matvec_transpose(s, g);
  for (std::size_t c = 0; c < g.size(); ++c) g[c] += ridge_ * x[c];
}

double LogisticFunction::partial(std::size_t coord,
                                 std::span<const double> x) const {
  ASYNCIT_CHECK(coord < dim());
  const auto rows = at_.row_cols(coord);
  const auto vals = at_.row_values(coord);
  double s = 0.0;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const std::size_t h = rows[k];
    const double z = static_cast<double>(labels_[h]);
    s += vals[k] * (-z * sigmoid(-z * a_.row_dot(h, x)));
  }
  return s + ridge_ * x[coord];
}

void LogisticFunction::partial_block(std::size_t begin, std::size_t end,
                                     std::span<const double> x,
                                     std::span<double> out) const {
  ASYNCIT_CHECK(begin <= end && end <= dim());
  ASYNCIT_CHECK(out.size() == end - begin);
  la::Vector s(a_.rows());
  for (std::size_t h = 0; h < a_.rows(); ++h) {
    const double z = static_cast<double>(labels_[h]);
    s[h] = -z * sigmoid(-z * a_.row_dot(h, x));
  }
  for (std::size_t c = begin; c < end; ++c)
    out[c - begin] = at_.row_dot(c, s) + ridge_ * x[c];
}

double LogisticFunction::accuracy(std::span<const double> x) const {
  ASYNCIT_CHECK(x.size() == dim());
  std::size_t correct = 0;
  for (std::size_t h = 0; h < a_.rows(); ++h) {
    const double margin = a_.row_dot(h, x);
    const int predicted = margin >= 0.0 ? 1 : -1;
    if (predicted == labels_[h]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(a_.rows());
}

}  // namespace asyncit::problems
