// L2-regularized logistic regression (binary classification):
//
//   f(x) = Σ_h log(1 + exp(−z_h ⟨a_h, x⟩))  +  (ridge/2) ‖x‖² ,
//
// labels z_h ∈ {−1, +1}; optional g(x) = λ‖x‖₁ turns it into sparse
// logistic regression. This is the paper's Section V "learn parameters x
// of the model p(y, x) so that p(y_h, x) matches the target z_h" with the
// logistic loss as h.
#pragma once

#include <memory>

#include "asyncit/linalg/csr_matrix.hpp"
#include "asyncit/operators/smooth.hpp"

namespace asyncit::problems {

class LogisticFunction final : public op::SmoothFunction {
 public:
  /// a: m×n design; labels: m entries in {−1, +1}; ridge > 0.
  LogisticFunction(la::CsrMatrix a, std::vector<int> labels, double ridge);

  std::size_t dim() const override { return at_.rows(); }
  double value(std::span<const double> x) const override;
  void gradient(std::span<const double> x,
                std::span<double> g) const override;
  double partial(std::size_t coord, std::span<const double> x) const override;
  void partial_block(std::size_t begin, std::size_t end,
                     std::span<const double> x,
                     std::span<double> out) const override;
  double mu() const override { return ridge_; }
  double lipschitz() const override { return l_; }
  std::string name() const override { return "logistic"; }

  const la::CsrMatrix& design() const { return a_; }
  const std::vector<int>& labels() const { return labels_; }
  std::size_t samples() const { return a_.rows(); }

  /// Fraction of samples classified correctly by sign(⟨a_h, x⟩).
  double accuracy(std::span<const double> x) const;

 private:
  la::CsrMatrix a_;
  la::CsrMatrix at_;
  std::vector<int> labels_;
  double ridge_;
  double l_;
};

}  // namespace asyncit::problems
