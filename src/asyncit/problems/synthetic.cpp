#include "asyncit/problems/synthetic.hpp"

#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::problems {

la::CsrMatrix make_design_matrix(std::size_t m, std::size_t n, double density,
                                 Rng& rng) {
  ASYNCIT_CHECK(m >= 1 && n >= 1);
  ASYNCIT_CHECK(density > 0.0 && density <= 1.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(m));
  std::vector<la::Triplet> triplets;
  for (std::uint32_t r = 0; r < m; ++r) {
    bool placed = false;
    for (std::uint32_t c = 0; c < n; ++c) {
      if (rng.bernoulli(density)) {
        triplets.push_back({r, c, rng.normal() * scale});
        placed = true;
      }
    }
    if (!placed) {
      const auto c = static_cast<std::uint32_t>(rng.uniform_index(n));
      triplets.push_back({r, c, rng.normal() * scale});
    }
  }
  // Ensure no dead column (a never-observed feature would make that
  // coordinate's update trivially x_c -> prox(x_c), still fine, but dead
  // columns make accuracy/recovery metrics meaningless).
  std::vector<bool> seen(n, false);
  for (const auto& t : triplets) seen[t.col] = true;
  for (std::uint32_t c = 0; c < n; ++c) {
    if (!seen[c]) {
      const auto r = static_cast<std::uint32_t>(rng.uniform_index(m));
      triplets.push_back({r, c, rng.normal() * scale});
    }
  }
  return la::CsrMatrix::from_triplets(m, n, std::move(triplets));
}

SyntheticLasso make_synthetic_lasso(const LassoConfig& cfg, Rng& rng) {
  ASYNCIT_CHECK(cfg.support <= cfg.features);
  la::CsrMatrix a = make_design_matrix(cfg.samples, cfg.features,
                                       cfg.density, rng);

  la::Vector truth(cfg.features, 0.0);
  for (std::size_t k = 0; k < cfg.support; ++k) {
    std::size_t c = rng.uniform_index(cfg.features);
    while (truth[c] != 0.0) c = rng.uniform_index(cfg.features);
    truth[c] = rng.bernoulli(0.5) ? rng.uniform(0.5, 2.0)
                                  : -rng.uniform(0.5, 2.0);
  }

  la::Vector y(cfg.samples);
  a.matvec(truth, y);
  for (auto& v : y) v += cfg.noise * rng.normal();

  SyntheticLasso out;
  out.ground_truth = truth;
  out.problem.f = std::make_shared<LeastSquaresFunction>(std::move(a),
                                                         std::move(y),
                                                         cfg.ridge);
  out.problem.g = cfg.lambda1 > 0.0
                      ? std::shared_ptr<const op::ProxOperator>(
                            op::make_l1_prox(cfg.lambda1))
                      : std::shared_ptr<const op::ProxOperator>(
                            op::make_zero_prox());
  out.problem.name = cfg.lambda1 > 0.0 ? "lasso" : "ridge";
  return out;
}

SyntheticLogistic make_synthetic_logistic(const LogisticConfig& cfg,
                                          Rng& rng) {
  la::CsrMatrix a = make_design_matrix(cfg.samples, cfg.features,
                                       cfg.density, rng);

  la::Vector truth(cfg.features);
  for (auto& v : truth) v = cfg.separation * rng.normal();

  std::vector<int> labels(cfg.samples);
  la::Vector margins(cfg.samples);
  a.matvec(truth, margins);
  for (std::size_t h = 0; h < cfg.samples; ++h) {
    labels[h] = margins[h] >= 0.0 ? 1 : -1;
    if (rng.bernoulli(cfg.label_noise)) labels[h] = -labels[h];
  }

  SyntheticLogistic out;
  out.ground_truth = truth;
  auto logistic = std::make_shared<LogisticFunction>(std::move(a),
                                                     std::move(labels),
                                                     cfg.ridge);
  out.logistic = logistic.get();
  out.problem.f = std::move(logistic);
  out.problem.g = cfg.lambda1 > 0.0
                      ? std::shared_ptr<const op::ProxOperator>(
                            op::make_l1_prox(cfg.lambda1))
                      : std::shared_ptr<const op::ProxOperator>(
                            op::make_zero_prox());
  out.problem.name = "logistic";
  return out;
}

}  // namespace asyncit::problems
