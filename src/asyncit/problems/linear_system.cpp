#include "asyncit/problems/linear_system.hpp"

#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::problems {

LinearSystem make_diagonally_dominant_system(std::size_t n,
                                             std::size_t off_diagonals_per_row,
                                             double dominance, Rng& rng) {
  ASYNCIT_CHECK(n >= 2);
  ASYNCIT_CHECK(off_diagonals_per_row >= 1 && off_diagonals_per_row < n);
  ASYNCIT_CHECK_MSG(dominance > 1.0,
                    "dominance must exceed 1 for a Jacobi contraction");
  std::vector<la::Triplet> triplets;
  triplets.reserve(n * (off_diagonals_per_row + 1));
  for (std::uint32_t row = 0; row < n; ++row) {
    double off_sum = 0.0;
    for (std::size_t k = 0; k < off_diagonals_per_row; ++k) {
      std::uint32_t col = row;
      while (col == row)
        col = static_cast<std::uint32_t>(rng.uniform_index(n));
      const double v = rng.uniform(-1.0, 1.0);
      off_sum += std::abs(v);
      triplets.push_back({row, col, v});
    }
    // Diagonal dominates the *sum* of magnitudes of this row's off-diagonal
    // entries (duplicates merge by addition, which can only shrink the sum).
    triplets.push_back({row, row, dominance * off_sum + 1e-3});
  }
  LinearSystem sys;
  sys.a = la::CsrMatrix::from_triplets(n, n, std::move(triplets));
  sys.b.resize(n);
  for (auto& v : sys.b) v = rng.uniform(-1.0, 1.0);
  return sys;
}

LinearSystem make_tridiagonal_system(std::size_t n, double shift, Rng& rng) {
  ASYNCIT_CHECK(n >= 2);
  ASYNCIT_CHECK(shift > 0.0);
  std::vector<la::Triplet> triplets;
  triplets.reserve(3 * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, 2.0 + shift});
    if (i > 0) triplets.push_back({i, i - 1, -1.0});
    if (i + 1 < n) triplets.push_back({i, i + 1, -1.0});
  }
  LinearSystem sys;
  sys.a = la::CsrMatrix::from_triplets(n, n, std::move(triplets));
  sys.b.resize(n);
  for (auto& v : sys.b) v = rng.uniform(-1.0, 1.0);
  return sys;
}

LinearSystem make_laplacian_2d_system(std::size_t nx, std::size_t ny,
                                      double shift, double f_value) {
  ASYNCIT_CHECK(nx >= 2 && ny >= 2);
  ASYNCIT_CHECK(shift >= 0.0);
  const std::size_t n = nx * ny;
  const double h = 1.0 / static_cast<double>(nx + 1);
  auto id = [nx](std::size_t ix, std::size_t iy) {
    return static_cast<std::uint32_t>(iy * nx + ix);
  };
  std::vector<la::Triplet> triplets;
  triplets.reserve(5 * n);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::uint32_t r = id(ix, iy);
      triplets.push_back({r, r, 4.0 + shift});
      if (ix > 0) triplets.push_back({r, id(ix - 1, iy), -1.0});
      if (ix + 1 < nx) triplets.push_back({r, id(ix + 1, iy), -1.0});
      if (iy > 0) triplets.push_back({r, id(ix, iy - 1), -1.0});
      if (iy + 1 < ny) triplets.push_back({r, id(ix, iy + 1), -1.0});
    }
  }
  LinearSystem sys;
  sys.a = la::CsrMatrix::from_triplets(n, n, std::move(triplets));
  sys.b.assign(n, f_value * h * h);
  return sys;
}

}  // namespace asyncit::problems
