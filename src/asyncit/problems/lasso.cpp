#include "asyncit/problems/lasso.hpp"

#include "asyncit/support/check.hpp"

namespace asyncit::problems {

la::CsrMatrix transpose(const la::CsrMatrix& a) {
  std::vector<la::Triplet> triplets;
  triplets.reserve(a.nnz());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      triplets.push_back({cols[k], static_cast<std::uint32_t>(r), vals[k]});
  }
  return la::CsrMatrix::from_triplets(a.cols(), a.rows(),
                                      std::move(triplets));
}

LeastSquaresFunction::LeastSquaresFunction(la::CsrMatrix a, la::Vector y,
                                           double ridge)
    : a_(std::move(a)), y_(std::move(y)), ridge_(ridge) {
  ASYNCIT_CHECK(a_.rows() == y_.size());
  ASYNCIT_CHECK_MSG(ridge_ > 0.0,
                    "ridge must be positive: Section V assumes mu > 0");
  at_ = transpose(a_);
  l_ = la::gram_spectral_norm(a_) + ridge_;
}

double LeastSquaresFunction::value(std::span<const double> x) const {
  ASYNCIT_CHECK(x.size() == dim());
  la::Vector r(a_.rows());
  a_.matvec(x, r);
  double s = 0.0;
  for (std::size_t h = 0; h < r.size(); ++h) {
    const double d = r[h] - y_[h];
    s += d * d;
  }
  return 0.5 * s + 0.5 * ridge_ * la::norm2_sq(x);
}

void LeastSquaresFunction::gradient(std::span<const double> x,
                                    std::span<double> g) const {
  ASYNCIT_CHECK(x.size() == dim() && g.size() == dim());
  la::Vector r(a_.rows());
  a_.matvec(x, r);
  for (std::size_t h = 0; h < r.size(); ++h) r[h] -= y_[h];
  a_.matvec_transpose(r, g);
  for (std::size_t c = 0; c < g.size(); ++c) g[c] += ridge_ * x[c];
}

double LeastSquaresFunction::partial(std::size_t coord,
                                     std::span<const double> x) const {
  ASYNCIT_CHECK(coord < dim());
  // residual restricted to the samples that touch this coordinate
  const auto rows = at_.row_cols(coord);   // sample indices
  const auto vals = at_.row_values(coord);  // A[h, coord]
  double s = 0.0;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const std::size_t h = rows[k];
    s += vals[k] * (a_.row_dot(h, x) - y_[h]);
  }
  return s + ridge_ * x[coord];
}

void LeastSquaresFunction::partial_block(std::size_t begin, std::size_t end,
                                         std::span<const double> x,
                                         std::span<double> out) const {
  ASYNCIT_CHECK(begin <= end && end <= dim());
  ASYNCIT_CHECK(out.size() == end - begin);
  // One residual pass for the whole block, then column dots.
  la::Vector r(a_.rows());
  a_.matvec(x, r);
  for (std::size_t h = 0; h < r.size(); ++h) r[h] -= y_[h];
  for (std::size_t c = begin; c < end; ++c)
    out[c - begin] = at_.row_dot(c, r) + ridge_ * x[c];
}

}  // namespace asyncit::problems
