// Synthetic data generators for the ML instances of problem (4).
//
// The paper's experiments ran on testbeds we do not have; these generators
// produce datasets with *controlled conditioning* (mu and L enter Theorem
// 1's rate explicitly), which is precisely what makes the bound auditable.
// See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstddef>

#include "asyncit/problems/composite.hpp"
#include "asyncit/problems/lasso.hpp"
#include "asyncit/problems/logistic.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::problems {

struct LassoConfig {
  std::size_t samples = 200;       ///< m
  std::size_t features = 100;      ///< n
  double density = 0.2;            ///< nonzero fraction of the design
  std::size_t support = 10;        ///< nonzeros in the ground truth
  double noise = 0.01;             ///< observation noise stddev
  double ridge = 0.1;              ///< strong convexity mu
  double lambda1 = 0.05;           ///< l1 weight (0 => ridge regression)
};

struct SyntheticLasso {
  CompositeProblem problem;
  la::Vector ground_truth;
};

SyntheticLasso make_synthetic_lasso(const LassoConfig& cfg, Rng& rng);

struct LogisticConfig {
  std::size_t samples = 400;
  std::size_t features = 80;
  double density = 0.25;
  double separation = 2.0;  ///< margin scale of the true hyperplane
  double label_noise = 0.05;
  double ridge = 0.1;
  double lambda1 = 0.0;
};

struct SyntheticLogistic {
  CompositeProblem problem;
  la::Vector ground_truth;
  /// Borrowed view of the concrete function (owned by problem.f) for
  /// accuracy reporting.
  const LogisticFunction* logistic = nullptr;
};

SyntheticLogistic make_synthetic_logistic(const LogisticConfig& cfg,
                                          Rng& rng);

/// Random sparse design matrix with ~density*m*n N(0, 1/sqrt(m)) entries
/// (at least one entry per row and per column so no variable is dead).
la::CsrMatrix make_design_matrix(std::size_t m, std::size_t n, double density,
                                 Rng& rng);

}  // namespace asyncit::problems
