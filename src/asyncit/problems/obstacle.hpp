// The discrete obstacle problem — the numerical-simulation workload of the
// paper's reference [26] (asynchronous relaxation on the IBM SP4 with
// several data-exchange frequencies).
//
// Membrane u on the unit square, zero boundary, load f, obstacle psi:
//
//   u >= psi,   A u >= b,   (A u − b)ᵀ (u − psi) = 0   (complementarity)
//
// with A the 5-point Laplacian and b = h² f. The projected Jacobi operator
//   F_i(u) = max( psi_i, (Σ_neighbors u + b_i) / 4 )
// is a max-norm contraction-like monotone map; asynchronous projected
// relaxation converges from any start (El Tarazi / Bertsekas theory).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "asyncit/linalg/csr_matrix.hpp"
#include "asyncit/operators/projected_jacobi.hpp"

namespace asyncit::problems {

class ObstacleProblem {
 public:
  /// Interior grid n×n on the unit square; load f(x,y) (constant
  /// `load` < 0 pulls the membrane down); obstacle
  /// psi(x,y) = height − sharpness·((x−½)² + (y−½)²) (a dome centred in
  /// the square; choose height < 0 so the contact set is a disc).
  ObstacleProblem(std::size_t n, double load, double obstacle_height,
                  double obstacle_sharpness);

  std::size_t grid() const { return n_; }
  std::size_t dim() const { return n_ * n_; }
  const la::CsrMatrix& laplacian() const { return a_; }
  const la::Vector& rhs() const { return b_; }
  const la::Vector& obstacle() const { return psi_; }

  /// Projected Jacobi operator over the given partition.
  std::unique_ptr<op::ProjectedJacobiOperator> make_operator(
      la::Partition partition) const;

  /// High-precision reference via sequential projected Gauss–Seidel.
  la::Vector reference_solution(std::size_t max_sweeps = 200000,
                                double tol = 1e-12) const;

  /// max_i max( psi_i − u_i, 0 ): feasibility violation.
  double feasibility_violation(std::span<const double> u) const;
  /// max_i | min( (A u − b)_i, u_i − psi_i ) |: complementarity residual.
  double complementarity_residual(std::span<const double> u) const;
  /// Number of contact points (u_i within tol of psi_i).
  std::size_t contact_count(std::span<const double> u,
                            double tol = 1e-6) const;

 private:
  std::size_t n_;
  la::CsrMatrix a_;
  la::Vector b_;
  la::Vector psi_;
};

}  // namespace asyncit::problems
