// Regularized least squares (the workhorse ML instance of problem (4)):
//
//   f(x) = 1/2 ‖A x − y‖²  +  (ridge/2) ‖x‖² ,    g(x) = λ ‖x‖₁ .
//
// ridge > 0 makes f strongly convex with mu >= ridge (exactly ridge when
// A has a nontrivial null space), matching the paper's mu-strong-convexity
// hypothesis; λ = 0 + ridge > 0 gives ridge regression, λ > 0 the elastic-
// net-style sparse learner used throughout the benches.
#pragma once

#include <memory>

#include "asyncit/linalg/csr_matrix.hpp"
#include "asyncit/operators/smooth.hpp"

namespace asyncit::problems {

class LeastSquaresFunction final : public op::SmoothFunction {
 public:
  /// a: m×n design matrix; y: m targets; ridge >= 0.
  /// L is computed as λmax(A'A) + ridge by power iteration.
  LeastSquaresFunction(la::CsrMatrix a, la::Vector y, double ridge);

  std::size_t dim() const override { return at_.rows(); }
  double value(std::span<const double> x) const override;
  void gradient(std::span<const double> x,
                std::span<double> g) const override;
  double partial(std::size_t coord, std::span<const double> x) const override;
  void partial_block(std::size_t begin, std::size_t end,
                     std::span<const double> x,
                     std::span<double> out) const override;
  double mu() const override { return ridge_; }
  double lipschitz() const override { return l_; }
  std::string name() const override { return "least-squares"; }

  const la::CsrMatrix& design() const { return a_; }
  const la::Vector& targets() const { return y_; }
  std::size_t samples() const { return a_.rows(); }

 private:
  la::CsrMatrix a_;   // m×n
  la::CsrMatrix at_;  // n×m (explicit transpose for column dots)
  la::Vector y_;
  double ridge_;
  double l_;
};

/// Explicit transpose of a CSR matrix (shared by lasso and logistic).
la::CsrMatrix transpose(const la::CsrMatrix& a);

}  // namespace asyncit::problems
