#include "asyncit/problems/network_flow.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "asyncit/support/check.hpp"

namespace asyncit::problems {

NetworkFlowProblem::NetworkFlowProblem(std::size_t num_nodes,
                                       std::vector<Arc> arcs,
                                       la::Vector supplies)
    : arcs_(std::move(arcs)), supplies_(std::move(supplies)) {
  ASYNCIT_CHECK(supplies_.size() == num_nodes);
  ASYNCIT_CHECK(num_nodes >= 2);
  double total = 0.0;
  for (double s : supplies_) total += s;
  ASYNCIT_CHECK_MSG(std::abs(total) < 1e-9 * static_cast<double>(num_nodes),
                    "supplies must balance; total = " << total);
  incidence_.resize(num_nodes);
  for (std::uint32_t e = 0; e < arcs_.size(); ++e) {
    const Arc& a = arcs_[e];
    ASYNCIT_CHECK(a.tail < num_nodes && a.head < num_nodes);
    ASYNCIT_CHECK(a.tail != a.head);
    ASYNCIT_CHECK_MSG(a.quad > 0.0, "arc costs must be strictly convex");
    ASYNCIT_CHECK(a.cap > 0.0);
    incidence_[a.tail].push_back({e, +1});
    incidence_[a.head].push_back({e, -1});
  }
}

double NetworkFlowProblem::arc_flow(std::size_t e,
                                    std::span<const double> prices) const {
  ASYNCIT_CHECK(e < arcs_.size());
  ASYNCIT_CHECK(prices.size() == num_nodes());
  const Arc& a = arcs_[e];
  const double tension = prices[a.tail] - prices[a.head] - a.lin;
  return std::clamp(tension / a.quad, 0.0, a.cap);
}

la::Vector NetworkFlowProblem::flows(std::span<const double> prices) const {
  la::Vector x(num_arcs());
  for (std::size_t e = 0; e < num_arcs(); ++e) x[e] = arc_flow(e, prices);
  return x;
}

double NetworkFlowProblem::excess(std::size_t node,
                                  std::span<const double> prices) const {
  ASYNCIT_CHECK(node < num_nodes());
  double g = supplies_[node];
  for (const Incidence& inc : incidence_[node]) {
    const double x = arc_flow(inc.arc, prices);
    g -= static_cast<double>(inc.direction) * x;  // out reduces, in adds
  }
  return g;
}

double NetworkFlowProblem::max_excess(std::span<const double> prices) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < num_nodes(); ++i)
    worst = std::max(worst, std::abs(excess(i, prices)));
  return worst;
}

double NetworkFlowProblem::primal_cost(std::span<const double> flows) const {
  ASYNCIT_CHECK(flows.size() == num_arcs());
  double cost = 0.0;
  for (std::size_t e = 0; e < num_arcs(); ++e) {
    const Arc& a = arcs_[e];
    cost += 0.5 * a.quad * flows[e] * flows[e] + a.lin * flows[e];
  }
  return cost;
}

double NetworkFlowProblem::dual_value(std::span<const double> prices) const {
  ASYNCIT_CHECK(prices.size() == num_nodes());
  // q(p) = Σ_e min_{0<=x<=cap} [ f_e(x) − t_e x ] + Σ_i p_i s_i,
  // with tension t_e = p_tail − p_head − c_e folded into the minimand as
  // f_e(x) − (p_tail − p_head) x = (a/2)x² − t_e x.
  double q = 0.0;
  for (std::size_t e = 0; e < num_arcs(); ++e) {
    const Arc& a = arcs_[e];
    const double t = prices[a.tail] - prices[a.head] - a.lin;
    const double x = std::clamp(t / a.quad, 0.0, a.cap);
    q += 0.5 * a.quad * x * x - t * x;
  }
  for (std::size_t i = 0; i < num_nodes(); ++i)
    q += prices[i] * supplies_[i];
  return q;
}

double NetworkFlowProblem::relax_node(std::size_t node,
                                      std::span<const double> prices,
                                      double tol) const {
  ASYNCIT_CHECK(node < num_nodes());
  // g_i as a function of the candidate price; other prices fixed.
  la::Vector scratch(prices.begin(), prices.end());
  auto g = [&](double p) {
    scratch[node] = p;
    return excess(node, scratch);
  };

  double lo = prices[node];
  double hi = prices[node];
  double width = 1.0;
  // g is non-increasing in p_i. Find lo with g(lo) >= 0 and hi with
  // g(hi) <= 0. Feasible instances guarantee both exist.
  int guard = 0;
  while (g(lo) < 0.0) {
    lo -= width;
    width *= 2.0;
    ASYNCIT_CHECK_MSG(++guard < 200, "bracketing failed (infeasible node?)");
  }
  width = 1.0;
  guard = 0;
  while (g(hi) > 0.0) {
    hi += width;
    width *= 2.0;
    ASYNCIT_CHECK_MSG(++guard < 200, "bracketing failed (infeasible node?)");
  }
  // Bisection.
  for (int it = 0; it < 200 && hi - lo > tol; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (g(mid) >= 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

const std::vector<NetworkFlowProblem::Incidence>&
NetworkFlowProblem::incidence(std::size_t node) const {
  ASYNCIT_CHECK(node < num_nodes());
  return incidence_[node];
}

NetworkFlowDualOperator::NetworkFlowDualOperator(
    const NetworkFlowProblem& problem)
    : problem_(problem),
      partition_(la::Partition::scalar(problem.num_nodes())) {}

void NetworkFlowDualOperator::apply_block(la::BlockId blk,
                                          std::span<const double> x,
                                          std::span<double> out,
                                          op::Workspace&) const {
  ASYNCIT_CHECK(out.size() == 1);
  if (blk == 0) {
    out[0] = 0.0;  // reference node pins the dual's shift invariance
    return;
  }
  out[0] = problem_.relax_node(blk, x);
}

namespace {
la::Vector supplies_from_random_flow(std::size_t num_nodes,
                                     const std::vector<Arc>& arcs, Rng& rng) {
  la::Vector supplies(num_nodes, 0.0);
  for (const Arc& a : arcs) {
    // keep flows strictly inside capacity so single-node subproblems have
    // interior solutions
    const double x = rng.uniform(0.05, 0.95) * a.cap;
    supplies[a.tail] += x;   // tail must ship x out
    supplies[a.head] -= x;   // head absorbs x
  }
  return supplies;
}
}  // namespace

NetworkFlowProblem make_random_network(std::size_t num_nodes,
                                       std::size_t extra_arcs, Rng& rng) {
  ASYNCIT_CHECK(num_nodes >= 2);
  std::vector<Arc> arcs;
  arcs.reserve(num_nodes - 1 + extra_arcs);
  // Random spanning tree: connect node i to a random previous node.
  for (std::uint32_t i = 1; i < num_nodes; ++i) {
    const auto j = static_cast<std::uint32_t>(rng.uniform_index(i));
    Arc a;
    if (rng.bernoulli(0.5)) {
      a.tail = j;
      a.head = i;
    } else {
      a.tail = i;
      a.head = j;
    }
    a.quad = rng.uniform(0.5, 2.0);
    a.lin = rng.uniform(0.0, 1.0);
    a.cap = rng.uniform(2.0, 10.0);
    arcs.push_back(a);
  }
  for (std::size_t k = 0; k < extra_arcs; ++k) {
    Arc a;
    a.tail = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
    a.head = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
    if (a.tail == a.head) continue;
    a.quad = rng.uniform(0.5, 2.0);
    a.lin = rng.uniform(0.0, 1.0);
    a.cap = rng.uniform(2.0, 10.0);
    arcs.push_back(a);
  }
  la::Vector supplies = supplies_from_random_flow(num_nodes, arcs, rng);
  return NetworkFlowProblem(num_nodes, std::move(arcs), std::move(supplies));
}

NetworkFlowProblem make_grid_network(std::size_t rows, std::size_t cols,
                                     Rng& rng) {
  ASYNCIT_CHECK(rows >= 2 && cols >= 2);
  const std::size_t n = rows * cols;
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<std::uint32_t>(r * cols + c);
  };
  std::vector<Arc> arcs;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols)
        arcs.push_back({id(r, c), id(r, c + 1), rng.uniform(0.5, 2.0),
                        rng.uniform(0.0, 1.0), rng.uniform(2.0, 10.0)});
      if (r + 1 < rows)
        arcs.push_back({id(r, c), id(r + 1, c), rng.uniform(0.5, 2.0),
                        rng.uniform(0.0, 1.0), rng.uniform(2.0, 10.0)});
    }
  }
  // Return path from the sink corner back to the source corner so flow can
  // circulate.
  arcs.push_back({id(rows - 1, cols - 1), id(0, 0), 1.0, 0.0, 50.0});
  la::Vector supplies = supplies_from_random_flow(n, arcs, rng);
  return NetworkFlowProblem(n, std::move(arcs), std::move(supplies));
}

}  // namespace asyncit::problems
