// Smooth quadratic test functions with exact (mu, L).
//
// SeparableQuadratic is the cleanest instantiation of the paper's
// Section V hypotheses (f separable, L-smooth, mu-strongly convex): the
// gradient-type operator decouples coordinate-wise, is a max-norm
// contraction with factor exactly max(|1-γ a_i|), and its minimizer is
// known in closed form — so Theorem 1's bound can be audited exactly.
//
// SparseQuadratic f(x) = 1/2 x'Qx - b'x (Q sparse SPD) provides the
// coupled case: asynchronous convergence still holds when I - γQ is a
// max-norm contraction (generalized diagonal dominance).
#pragma once

#include <memory>

#include "asyncit/linalg/csr_matrix.hpp"
#include "asyncit/operators/smooth.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::problems {

/// f(x) = Σ_i (a_i/2)(x_i − c_i)², a_i ∈ [mu, L].
class SeparableQuadratic final : public op::SmoothFunction {
 public:
  SeparableQuadratic(la::Vector curvatures, la::Vector centers);

  std::size_t dim() const override { return a_.size(); }
  double value(std::span<const double> x) const override;
  void gradient(std::span<const double> x,
                std::span<double> g) const override;
  double partial(std::size_t coord, std::span<const double> x) const override;
  double mu() const override { return mu_; }
  double lipschitz() const override { return l_; }
  std::string name() const override { return "separable-quadratic"; }

  /// The exact minimizer (= centers).
  const la::Vector& minimizer() const { return c_; }
  const la::Vector& curvatures() const { return a_; }

 private:
  la::Vector a_;
  la::Vector c_;
  double mu_;
  double l_;
};

/// Curvatures log-uniform in [mu, L]; centers standard normal.
std::unique_ptr<SeparableQuadratic> make_separable_quadratic(
    std::size_t n, double mu, double lipschitz, Rng& rng);

/// f(x) = 1/2 x'Qx − b'x with Q sparse symmetric positive definite and
/// strictly diagonally dominant (so I − γQ is a max-norm contraction for
/// small γ). mu/L are the Gershgorin bounds (valid, not tight).
class SparseQuadratic final : public op::SmoothFunction {
 public:
  SparseQuadratic(la::CsrMatrix q, la::Vector b, double mu, double lipschitz);

  std::size_t dim() const override { return b_.size(); }
  double value(std::span<const double> x) const override;
  void gradient(std::span<const double> x,
                std::span<double> g) const override;
  double partial(std::size_t coord, std::span<const double> x) const override;
  void partial_block(std::size_t begin, std::size_t end,
                     std::span<const double> x,
                     std::span<double> out) const override;
  double mu() const override { return mu_; }
  double lipschitz() const override { return l_; }
  std::string name() const override { return "sparse-quadratic"; }

  const la::CsrMatrix& q() const { return q_; }
  const la::Vector& b() const { return b_; }

 private:
  la::CsrMatrix q_;
  la::Vector b_;
  double mu_;
  double l_;
};

std::unique_ptr<SparseQuadratic> make_sparse_quadratic(
    std::size_t n, std::size_t off_diagonals_per_row, double dominance,
    Rng& rng);

}  // namespace asyncit::problems
