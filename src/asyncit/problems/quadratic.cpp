#include "asyncit/problems/quadratic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "asyncit/support/check.hpp"

namespace asyncit::problems {

SeparableQuadratic::SeparableQuadratic(la::Vector curvatures,
                                       la::Vector centers)
    : a_(std::move(curvatures)), c_(std::move(centers)) {
  ASYNCIT_CHECK(!a_.empty());
  ASYNCIT_CHECK(a_.size() == c_.size());
  mu_ = a_[0];
  l_ = a_[0];
  for (double a : a_) {
    ASYNCIT_CHECK_MSG(a > 0.0, "curvatures must be positive");
    mu_ = std::min(mu_, a);
    l_ = std::max(l_, a);
  }
}

double SeparableQuadratic::value(std::span<const double> x) const {
  ASYNCIT_CHECK(x.size() == dim());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - c_[i];
    s += 0.5 * a_[i] * d * d;
  }
  return s;
}

void SeparableQuadratic::gradient(std::span<const double> x,
                                  std::span<double> g) const {
  ASYNCIT_CHECK(x.size() == dim() && g.size() == dim());
  for (std::size_t i = 0; i < x.size(); ++i) g[i] = a_[i] * (x[i] - c_[i]);
}

double SeparableQuadratic::partial(std::size_t coord,
                                   std::span<const double> x) const {
  ASYNCIT_CHECK(coord < dim());
  return a_[coord] * (x[coord] - c_[coord]);
}

std::unique_ptr<SeparableQuadratic> make_separable_quadratic(
    std::size_t n, double mu, double lipschitz, Rng& rng) {
  ASYNCIT_CHECK(n >= 1);
  ASYNCIT_CHECK(0.0 < mu && mu <= lipschitz);
  la::Vector a(n), c(n);
  const double log_mu = std::log(mu);
  const double log_l = std::log(lipschitz);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = std::exp(rng.uniform(log_mu, log_l));
    c[i] = rng.normal();
  }
  // Pin the extremes so mu and L are exact, not just bounds.
  if (n >= 2) {
    a[0] = mu;
    a[n - 1] = lipschitz;
  }
  return std::make_unique<SeparableQuadratic>(std::move(a), std::move(c));
}

SparseQuadratic::SparseQuadratic(la::CsrMatrix q, la::Vector b, double mu,
                                 double lipschitz)
    : q_(std::move(q)), b_(std::move(b)), mu_(mu), l_(lipschitz) {
  ASYNCIT_CHECK(q_.rows() == q_.cols());
  ASYNCIT_CHECK(q_.rows() == b_.size());
  ASYNCIT_CHECK(0.0 < mu_ && mu_ <= l_);
}

double SparseQuadratic::value(std::span<const double> x) const {
  ASYNCIT_CHECK(x.size() == dim());
  la::Vector qx(dim());
  q_.matvec(x, qx);
  return 0.5 * la::dot(x, qx) - la::dot(b_, x);
}

void SparseQuadratic::gradient(std::span<const double> x,
                               std::span<double> g) const {
  ASYNCIT_CHECK(x.size() == dim() && g.size() == dim());
  q_.matvec(x, g);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] -= b_[i];
}

double SparseQuadratic::partial(std::size_t coord,
                                std::span<const double> x) const {
  return q_.row_dot(coord, x) - b_[coord];
}

void SparseQuadratic::partial_block(std::size_t begin, std::size_t end,
                                    std::span<const double> x,
                                    std::span<double> out) const {
  ASYNCIT_CHECK(begin <= end && end <= dim());
  ASYNCIT_CHECK(out.size() == end - begin);
  for (std::size_t c = begin; c < end; ++c)
    out[c - begin] = q_.row_dot(c, x) - b_[c];
}

std::unique_ptr<SparseQuadratic> make_sparse_quadratic(
    std::size_t n, std::size_t off_diagonals_per_row, double dominance,
    Rng& rng) {
  ASYNCIT_CHECK(n >= 2);
  ASYNCIT_CHECK(dominance > 1.0);
  // Build symmetric strict diagonal dominance: place off-diagonal entries
  // (i, j) and (j, i) with the same value, then set the diagonal to
  // dominance * (row off-diagonal magnitude sum) + 1.
  std::vector<la::Triplet> triplets;
  la::Vector off_sums(n, 0.0);
  for (std::uint32_t row = 0; row < n; ++row) {
    for (std::size_t k = 0; k < off_diagonals_per_row; ++k) {
      std::uint32_t col = row;
      while (col == row)
        col = static_cast<std::uint32_t>(rng.uniform_index(n));
      const double v = rng.uniform(-0.5, 0.5);
      triplets.push_back({row, col, v});
      triplets.push_back({col, row, v});
      off_sums[row] += std::abs(v);
      off_sums[col] += std::abs(v);
    }
  }
  double diag_min = std::numeric_limits<double>::infinity();
  double diag_max = 0.0;
  double off_max = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double d = dominance * off_sums[i] + 1.0;
    triplets.push_back({i, i, d});
    diag_min = std::min(diag_min, d);
    diag_max = std::max(diag_max, d);
    off_max = std::max(off_max, off_sums[i]);
  }
  la::Vector b(n);
  for (auto& v : b) v = rng.normal();
  // Gershgorin: eigenvalues lie in [min(d_i - off_i), max(d_i + off_i)].
  double mu_lb = std::numeric_limits<double>::infinity();
  double l_ub = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double d = dominance * off_sums[i] + 1.0;
    mu_lb = std::min(mu_lb, d - off_sums[i]);
    l_ub = std::max(l_ub, d + off_sums[i]);
  }
  return std::make_unique<SparseQuadratic>(
      la::CsrMatrix::from_triplets(n, n, std::move(triplets)), std::move(b),
      mu_lb, l_ub);
}

}  // namespace asyncit::problems
