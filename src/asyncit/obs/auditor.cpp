#include "asyncit/obs/auditor.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

namespace asyncit::obs {

using model::Step;

std::string AdmissibilityReport::summary() const {
  std::ostringstream os;
  os << "condition a) " << (a_holds ? "holds" : "VIOLATED")
     << "; condition b) labels "
     << (b_diverging ? "diverging" : "NOT diverging") << " (quarter minima:";
  for (Step q : quarter_min_labels) os << ' ' << q;
  os << "); condition c) " << (c_fair ? "fair" : "UNFAIR")
     << " (worst update gap " << c_worst_gap << ")"
     << "; condition d) max delay " << d_bound << " (mean " << d_mean
     << ") over " << steps << " steps";
  return os.str();
}

OnlineAuditor::OnlineAuditor(std::size_t num_blocks,
                             std::size_t series_capacity)
    : series_capacity_(
          std::bit_ceil(series_capacity < 4 ? std::size_t{4} : series_capacity)),
      occurrences_(num_blocks, 0),
      last_seen_(num_blocks, 0),
      max_gap_(num_blocks, 0) {
  series_.reserve(series_capacity_);  // steady state never reallocates
}

void OnlineAuditor::record_step(std::span<const la::BlockId> updated,
                                Step l_min) {
  const Step j = ++steps_;
  if (l_min > j - 1) a_holds_ = false;

  // b) fold into the series (bucket = `stride_` consecutive steps).
  if (in_bucket_ == 0) {
    series_.push_back(l_min);
  } else {
    series_.back() = std::min(series_.back(), l_min);
  }
  if (++in_bucket_ == stride_) in_bucket_ = 0;
  if (series_.size() == series_capacity_ && in_bucket_ == 0) {
    // Pairwise-min compaction: halves the series, doubles the stride,
    // preserves every window minimum up to pair granularity.
    for (std::size_t k = 0; k < series_.size() / 2; ++k)
      series_[k] = std::min(series_[2 * k], series_[2 * k + 1]);
    series_.resize(series_.size() / 2);
    stride_ *= 2;
  }

  // c)
  for (la::BlockId b : updated) {
    ++occurrences_[b];
    max_gap_[b] = std::max(max_gap_[b], j - last_seen_[b]);
    last_seen_[b] = j;
  }

  // d)
  const Step d = l_min <= j ? j - l_min : 0;
  if (d > d_bound_) {
    d_bound_ = d;
    d_at_step_ = j;
  }
  d_sum_ += static_cast<double>(d);
}

AdmissibilityReport OnlineAuditor::report() const {
  AdmissibilityReport rep;
  rep.steps = steps_;
  rep.a_holds = a_holds_;

  // b) quarter minima over the (possibly compacted) series. With
  // stride_ == 1 this reproduces model::audit_condition_b exactly.
  const Step n = steps_;
  if (n >= 4) {
    const Step quarter = n / 4;
    for (int q = 0; q < 4; ++q) {
      const Step begin = 1 + static_cast<Step>(q) * quarter;
      const Step end = (q == 3) ? n : begin + quarter - 1;
      const std::size_t k_begin = static_cast<std::size_t>((begin - 1) / stride_);
      const std::size_t k_end =
          std::min(static_cast<std::size_t>((end - 1) / stride_),
                   series_.size() - 1);
      Step lo = std::numeric_limits<Step>::max();
      for (std::size_t k = k_begin; k <= k_end; ++k)
        lo = std::min(lo, series_[k]);
      rep.quarter_min_labels.push_back(lo);
    }
    rep.b_diverging = true;
    for (std::size_t q = 1; q < rep.quarter_min_labels.size(); ++q)
      if (rep.quarter_min_labels[q] <= rep.quarter_min_labels[q - 1])
        rep.b_diverging = false;
    rep.b_final_min_label = rep.quarter_min_labels.back();
  }

  // c) incremental gaps plus the trailing gap, as the offline auditor.
  rep.c_min_occurrences = std::numeric_limits<std::size_t>::max();
  for (std::size_t b = 0; b < occurrences_.size(); ++b) {
    const Step gap = std::max(max_gap_[b], steps_ - last_seen_[b]);
    rep.c_worst_gap = std::max(rep.c_worst_gap, gap);
    rep.c_min_occurrences = std::min(rep.c_min_occurrences, occurrences_[b]);
  }
  if (occurrences_.empty()) rep.c_min_occurrences = 0;
  rep.c_fair = std::all_of(occurrences_.begin(), occurrences_.end(),
                           [](std::size_t c) { return c >= 2; });

  // d)
  rep.d_bound = d_bound_;
  rep.d_at_step = d_at_step_;
  rep.d_mean = steps_ ? d_sum_ / static_cast<double>(steps_) : 0.0;
  return rep;
}

}  // namespace asyncit::obs
