#include "asyncit/obs/exporter.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "asyncit/obs/trace_recorder.hpp"

namespace asyncit::obs {

namespace {

/// Display lane (tid) per event family — one merged rank renders as a
/// process with stable, readably-named tracks.
int lane_of(EventType t) {
  switch (t) {
    case EventType::kBlockUpdate: return 0;
    case EventType::kFrameSend:
    case EventType::kFrameRecv:
    case EventType::kFrameReject:
    case EventType::kFrameDrop:
    case EventType::kInversion: return 1;
    case EventType::kQueueDepth:
    case EventType::kRedial: return 2;
    case EventType::kMembership:
    case EventType::kProbe: return 3;
    default: return 4;
  }
}

const char* lane_name(int lane) {
  switch (lane) {
    case 0: return "updates";
    case 1: return "frames";
    case 2: return "transport";
    case 3: return "membership";
    default: return "control";
  }
}

void append_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

std::size_t write_chrome_trace(std::ostream& os, std::vector<Event> events,
                               const ExportMeta& meta) {
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t_ns < b.t_ns; });

  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };

  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << meta.rank
     << ",\"tid\":0,\"args\":{\"name\":\"";
  append_escaped(os, meta.label.empty() ? "asyncit" : meta.label);
  os << "\"}}";
  for (int lane = 0; lane <= 4; ++lane) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << meta.rank
       << ",\"tid\":" << lane << ",\"args\":{\"name\":\"" << lane_name(lane)
       << "\"}}";
  }

  std::size_t emitted = 0;
  for (const Event& e : events) {
    const double ts_us = double(e.t_ns) * 1e-3;
    const int lane = lane_of(e.type);
    sep();
    ++emitted;
    if (e.type == EventType::kBlockUpdate) {
      const double dur_us = std::max(0.0, e.v * 1e6);
      os << "{\"name\":\"update b" << e.a << "\",\"ph\":\"X\",\"ts\":"
         << std::max(0.0, ts_us - dur_us) << ",\"dur\":" << dur_us
         << ",\"pid\":" << e.rank << ",\"tid\":" << lane
         << ",\"args\":{\"block\":" << e.a << ",\"tag\":" << e.b
         << ",\"partial\":" << unsigned(e.sub) << "}}";
    } else if (e.type == EventType::kQueueDepth) {
      os << "{\"name\":\"queue q" << unsigned(e.sub) << " peer" << e.a
         << "\",\"ph\":\"C\",\"ts\":" << ts_us << ",\"pid\":" << e.rank
         << ",\"tid\":" << lane << ",\"args\":{\"depth\":" << e.b << "}}";
    } else {
      os << "{\"name\":\"" << to_string(e.type) << "\",\"ph\":\"i\",\"s\":\"t\""
         << ",\"ts\":" << ts_us << ",\"pid\":" << e.rank << ",\"tid\":" << lane
         << ",\"args\":{\"sub\":" << unsigned(e.sub) << ",\"a\":" << e.a
         << ",\"b\":" << e.b << ",\"v\":" << e.v << "}}";
    }
  }

  os << "],\"otherData\":{\"schema\":\"asyncit-trace/"
     << (meta.windowed ? 2 : 1) << "\",\"rank\":" << meta.rank
     << ",\"epoch_realtime_ns\":" << meta.epoch_realtime_ns
     << ",\"events_dropped\":" << meta.events_dropped;
  if (meta.windowed)
    os << ",\"window_seq\":" << meta.window_seq
       << ",\"events_dropped_window\":" << meta.window_dropped;
  os << "}}";
  os << '\n';
  return emitted;
}

bool export_chrome_trace_file(const std::string& path,
                              const ExportMeta& meta) {
  std::ofstream os(path);
  if (!os) return false;
  std::vector<Event> events;
  TraceRecorder::instance().snapshot(&events);
  write_chrome_trace(os, std::move(events), meta);
  return bool(os);
}

}  // namespace asyncit::obs
