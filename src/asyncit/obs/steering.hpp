// Auditor-fed adaptive staleness steering (DESIGN.md §8).
//
// PR 6's OnlineAuditor measures the paper's delay bound (condition d:
// b_min = max_j (j - l(j))) on live runs but the bound was only
// *reported*. This controller closes the loop: the measured delay signal
// steers the SSP staleness bound of the gated runtimes — net::Peer's
// round gate and train::SspClock — so the bound tracks observed
// asynchrony instead of a static guess (the delay-adaptive schemes
// surveyed in PAPERS.md "Advances in Asynchronous Parallel and
// Distributed Optimization").
//
// Control law, deliberately boring: candidate = clamp(ceil(gain *
// signal), [min_bound, max_bound]). Raises apply IMMEDIATELY (a gate
// stall is live pain: the measured delay already exceeds what the bound
// tolerates); lowers apply only after `hold` consecutive lower
// candidates (hysteresis — one quiet window must not whipsaw the gate).
// Every decision — applied or held — is traced as a kSteering event, so
// a Perfetto timeline shows the bound's trajectory against the traffic
// that drove it.
//
// Determinism: decide() consumes only the caller-supplied signal, which
// the runtimes derive from virtual-clock-driven schedules under simnet —
// two identical worlds produce identical decision sequences (the replay
// test in tests/simnet_test.cpp pins this).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "asyncit/obs/events.hpp"
#include "asyncit/obs/trace_recorder.hpp"

namespace asyncit::obs {

/// Which runtime's bound a kSteering event describes (event sub =
/// 2*domain + applied; see the taxonomy in events.hpp).
enum class SteeringDomain : std::uint8_t {
  kNetSsp = 0,    ///< net::Peer round-gate slack
  kTrainSsp = 1,  ///< train::SspClock / worker admission bound
};

/// Adaptive-staleness knobs, nested in net::SolveOptions and
/// train::SgdOptions. Off by default; the static `staleness` option is
/// the initial bound when enabled.
struct SteeringOptions {
  bool enabled = false;
  /// Clamp range of the steered bound (rounds for net::, steps for
  /// train::). min_bound >= 1: bound 0 would degenerate SSP to BSP.
  std::uint64_t min_bound = 1;
  std::uint64_t max_bound = 8;
  /// candidate = ceil(gain * measured signal).
  double gain = 1.0;
  /// Consecutive lower candidates required before the bound drops.
  std::uint64_t hold = 3;
  /// Decision cadence, in the owner's progress unit (net:: local block
  /// updates; train:: applied deltas).
  std::uint64_t decide_every = 32;
};

class StalenessController {
 public:
  StalenessController(const SteeringOptions& options, std::uint64_t initial)
      : opt_(options),
        bound_(std::clamp(initial, options.min_bound, options.max_bound)) {}

  std::uint64_t bound() const { return bound_; }
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t changes() const { return changes_; }

  /// One steering decision from `signal` (the measured delay, in the
  /// bound's unit). Returns true when the bound changed. Always traced.
  bool decide(double signal, SteeringDomain domain) {
    ++decisions_;
    const double scaled = std::ceil(std::max(0.0, opt_.gain * signal));
    const std::uint64_t candidate =
        std::clamp(static_cast<std::uint64_t>(scaled), opt_.min_bound,
                   opt_.max_bound);
    bool applied = false;
    if (candidate > bound_) {
      bound_ = candidate;
      lower_streak_ = 0;
      applied = true;
    } else if (candidate < bound_) {
      if (++lower_streak_ >= opt_.hold) {
        bound_ = candidate;
        lower_streak_ = 0;
        applied = true;
      }
    } else {
      lower_streak_ = 0;
    }
    if (applied) ++changes_;
    record(EventType::kSteering,
           static_cast<std::uint8_t>(
               2 * static_cast<std::uint8_t>(domain) + (applied ? 1 : 0)),
           static_cast<std::uint32_t>(bound_), candidate, signal);
    return applied;
  }

 private:
  SteeringOptions opt_;
  std::uint64_t bound_;
  std::uint64_t lower_streak_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t changes_ = 0;
};

}  // namespace asyncit::obs
