#include "asyncit/obs/watchdog.hpp"

#include <chrono>
#include <iostream>

#include "asyncit/obs/metrics.hpp"
#include "asyncit/obs/streamer.hpp"
#include "asyncit/obs/trace_recorder.hpp"

namespace asyncit::obs {

Watchdog::Watchdog(double deadline_seconds, std::string label,
                   std::ostream* os)
    : label_(std::move(label)), os_(os ? os : &std::cerr) {
  record(EventType::kMarker, /*sub=*/1, /*a=*/0, /*b=*/0, deadline_seconds);
  thread_ = std::thread([this, deadline_seconds] {
    std::unique_lock<std::mutex> lock(mu_);
    const bool disarmed = cv_.wait_for(
        lock, std::chrono::duration<double>(deadline_seconds),
        [this] { return disarmed_; });
    if (disarmed) return;
    fired_ = true;
    lock.unlock();
    std::ostream& os = *os_;
    os << "\n==== obs::Watchdog [" << label_ << "] deadline ("
       << deadline_seconds << "s) overrun — flight recorder dump ====\n";
    // Single drain path (see streamer.hpp): when a streamer is live, the
    // overrun dump IS a streamed window — racing the rings directly here
    // would split events across consumers and double-attribute drops.
    // The legacy in-stream ring dump remains for streamer-less runs
    // (the wall-budget test canaries).
    if (TraceStreamer* streamer = TraceStreamer::active()) {
      const std::size_t n = streamer->flush_now();
      os << "streamed window flush: " << n << " events, "
         << streamer->windows_written() << " windows in "
         << streamer->config().dir << " (dropped so far "
         << streamer->dropped_seen() << ")\n";
    } else {
      TraceRecorder::instance().dump(os, /*max_per_ring=*/48);
    }
    os << "---- metrics ----\n"
       << MetricsRegistry::instance().to_json() << '\n'
       << "==== end watchdog dump [" << label_ << "] ====\n";
    os.flush();
  });
}

Watchdog::~Watchdog() { disarm(); }

void Watchdog::disarm() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (disarmed_) return;
    disarmed_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  record(EventType::kMarker, /*sub=*/2, /*a=*/fired_ ? 1u : 0u, 0, 0.0);
}

}  // namespace asyncit::obs
