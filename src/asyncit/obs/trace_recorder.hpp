// Alloc-free, lock-free event tracing (DESIGN.md §8).
//
// One process-wide TraceRecorder owns a registry of per-thread ring
// buffers. A thread's first record() claims a ring (allocating it, or
// reusing one released by a finished thread) — that claim is the ONLY
// heap activity; every subsequent record() is four relaxed atomic word
// stores plus one release bump of the ring head. alloc_test pins this:
// after warm-up, a full-tracing messaging round trip allocates nothing.
//
// Concurrency contract:
//  * exactly one writer per ring (the owning thread); rings are never
//    shared between concurrently-live threads.
//  * readers (snapshot/dump/stats) may run at any time from any thread;
//    they copy slot words relaxed, then discard any slot the writer may
//    have lapped while the copy was in flight (re-checking the head), so
//    a torn slot is never decoded.
//  * when the ring wraps over events never consumed by snapshot(), the
//    writer counts them in dropped() — loss is accounted, never silent.
//  * enable()/disable() only flip an atomic level and reset counters;
//    rings persist for the life of the process (registry is append-only
//    + free-list), so a long-lived service thread (e.g. a TCP writer)
//    holding its ring across run boundaries never dereferences freed
//    memory.
//
// Clocks: events are stamped with nanoseconds since enable() read from an
// injectable raw source — steady (monotonic) by default, or whatever
// set_trace_clock() installed (simnet::run_world installs virtual time,
// so Perfetto timelines and the admissibility auditor see simulated
// seconds). enable() also latches CLOCK_REALTIME, which the exporter
// writes as `epoch_realtime_ns` so tools/trace_merge.py can align the
// per-rank timelines of a multi-process run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "asyncit/obs/events.hpp"

namespace asyncit::obs {

enum class TraceLevel : int {
  kOff = 0,      ///< record() is a single relaxed load + branch
  kMetrics = 1,  ///< metrics registry live, event rings off
  kFull = 2,     ///< metrics + per-thread event rings
};

const char* to_string(TraceLevel level);
/// Parses "none"/"off", "metrics", "full" (asyncit_node config values).
bool parse_trace_level(const char* text, TraceLevel* out);

struct TraceConfig {
  TraceLevel level = TraceLevel::kFull;
  /// Per-thread ring capacity in events; rounded up to a power of two.
  /// 4096 events * 32 B = 128 KiB per instrumented thread.
  std::size_t ring_capacity = 4096;
  /// World rank stamped into every event (0 for in-process runs).
  std::uint16_t rank = 0;
};

/// Raw timestamp source for event stamping: absolute nanoseconds on any
/// monotone clock (enable() latches the then-current reading as t0, so
/// only differences matter). A plain function pointer — the hot path
/// must stay a load + indirect call with no std::function allocation.
using TraceClockFn = std::uint64_t (*)();

/// Installs `fn` as the recorder's raw clock; nullptr restores the
/// default steady clock. Takes effect immediately, but call it BEFORE
/// enable() at a run boundary — t0 is latched from the then-active
/// source, and timestamps across a mid-run swap would mix anchors.
/// simnet::run_world wraps a run with install/restore so sim traces
/// carry virtual time; the hang watchdog stays on real time regardless.
void set_trace_clock(TraceClockFn fn);
TraceClockFn trace_clock();

struct RecorderStats {
  std::uint64_t recorded = 0;  ///< events pushed since enable()
  std::uint64_t dropped = 0;   ///< events overwritten before any snapshot
  std::size_t rings = 0;       ///< rings written to since enable()
};

namespace detail {
/// Hot-path level word. Lives outside the singleton so the record()
/// fast path is a plain relaxed load with no static-init guard.
extern std::atomic<int> g_level;
class ThreadRing;
}  // namespace detail

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Arms the recorder: resets every registered ring and counter,
  /// latches the clock anchors, then publishes `config.level`. Call at
  /// a run boundary; racing record() calls land harmlessly in reset
  /// rings but their timestamps would mix anchors.
  void enable(const TraceConfig& config);
  /// Lowers the level to kOff. Rings keep their contents so the caller
  /// can still snapshot() the finished run.
  void disable();

  TraceLevel level() const {
    return static_cast<TraceLevel>(
        detail::g_level.load(std::memory_order_relaxed));
  }
  std::uint16_t rank() const { return rank_; }

  /// Monotonic nanoseconds since enable().
  std::uint64_t now_ns() const;
  /// CLOCK_REALTIME at enable(), for cross-process trace alignment.
  std::uint64_t epoch_realtime_ns() const { return epoch_realtime_ns_; }

  /// Copies every readable event from every ring into `out` (appended,
  /// per-ring order; callers sort by t_ns when they need one timeline)
  /// and advances the read cursors, so subsequently overwritten slots no
  /// longer count as drops. Returns the number of events appended.
  std::size_t snapshot(std::vector<Event>* out);

  RecorderStats stats() const;

  /// Human-readable dump of the newest `max_per_ring` events of every
  /// ring — the watchdog's flight recorder on a hung test. Does not
  /// advance read cursors.
  void dump(std::ostream& os, std::size_t max_per_ring = 32) const;

  /// Writer path; use the free record() helpers instead.
  void push(EventType type, std::uint8_t sub, std::uint32_t a,
            std::uint64_t b, double v);
  /// Writer path for timed phases: one clock read serves as both the
  /// event timestamp and the end of the phase, so a duration event costs
  /// two clock reads total (start + here) instead of three.
  void push_phase_end(EventType type, std::uint8_t sub, std::uint32_t a,
                      std::uint64_t b, std::uint64_t t0_ns);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  TraceRecorder();
  ~TraceRecorder();

  friend struct TlsRingHandle;
  detail::ThreadRing* claim_ring();
  void release_ring(detail::ThreadRing* ring);

  struct Impl;
  Impl* impl_;  ///< raw: the singleton lives until process exit

  std::uint16_t rank_ = 0;
  std::uint64_t t0_steady_ns_ = 0;
  std::uint64_t epoch_realtime_ns_ = 0;
};

inline bool tracing_full() {
  return detail::g_level.load(std::memory_order_relaxed) ==
         static_cast<int>(TraceLevel::kFull);
}
inline bool tracing_on() {
  return detail::g_level.load(std::memory_order_relaxed) !=
         static_cast<int>(TraceLevel::kOff);
}

/// The instrumentation entry point: free to call from any thread at any
/// time; compiles to a relaxed load + branch when tracing is off.
inline void record(EventType type, std::uint8_t sub, std::uint32_t a,
                   std::uint64_t b, double v) {
  if (!tracing_full()) return;
  TraceRecorder::instance().push(type, sub, a, b, v);
}
inline void record(EventType type, std::uint32_t a, std::uint64_t b,
                   double v) {
  record(type, 0, a, b, v);
}

/// Timed-phase helpers: call phase_start_ns() when tracing_full() holds,
/// pass the value to record_phase_end() — the event's v becomes the phase
/// duration in seconds, derived from the push's own timestamp (no third
/// clock read).
inline std::uint64_t phase_start_ns() {
  return TraceRecorder::instance().now_ns();
}
inline void record_phase_end(EventType type, std::uint8_t sub,
                             std::uint32_t a, std::uint64_t b,
                             std::uint64_t t0_ns) {
  if (!tracing_full()) return;
  TraceRecorder::instance().push_phase_end(type, sub, a, b, t0_ns);
}

}  // namespace asyncit::obs
