#include "asyncit/obs/streamer.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "asyncit/obs/exporter.hpp"
#include "asyncit/obs/metrics.hpp"
#include "asyncit/obs/trace_recorder.hpp"

namespace asyncit::obs {

namespace {

/// The process-wide active streamer. Plain atomic pointer: readers
/// (Watchdog, the node exporter) run on other threads, but lifetime is
/// scoped — the owner constructs the streamer before the run and
/// destroys it after every consumer is done.
std::atomic<TraceStreamer*> g_active{nullptr};

}  // namespace

TraceStreamer* TraceStreamer::active() {
  return g_active.load(std::memory_order_acquire);
}

TraceStreamer::TraceStreamer(const StreamerConfig& config) : config_(config) {
  g_active.store(this, std::memory_order_release);
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(run_mu_);
    for (;;) {
      cv_.wait_for(lock,
                   std::chrono::duration<double>(config_.interval_seconds),
                   [this] { return stopping_; });
      if (stopping_) return;  // stop() flushes once more after the join
      lock.unlock();
      flush_now();
      lock.lock();
    }
  });
}

TraceStreamer::~TraceStreamer() {
  stop();
  g_active.store(nullptr, std::memory_order_release);
}

void TraceStreamer::stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  flush_now();  // the final window: everything since the last period
}

std::string TraceStreamer::window_path(std::uint64_t seq) const {
  return config_.dir + "/rank_" + std::to_string(config_.rank) + ".window_" +
         std::to_string(seq) + ".trace.json";
}

std::size_t TraceStreamer::flush_now() {
  std::lock_guard<std::mutex> lock(flush_mu_);
  TraceRecorder& recorder = TraceRecorder::instance();

  events_.clear();
  recorder.snapshot(&events_);
  const std::uint64_t dropped_now = recorder.stats().dropped;
  // enable() resets the drop counters mid-stream when a runtime arms the
  // recorder after the streamer started; a cumulative reading below the
  // last one means "new run", not negative drops.
  if (dropped_now < last_dropped_) last_dropped_ = 0;
  const std::uint64_t window_dropped = dropped_now - last_dropped_;
  last_dropped_ = dropped_now;
  dropped_seen_.fetch_add(window_dropped, std::memory_order_relaxed);

  if (events_.empty() && window_dropped == 0) return 0;

  const std::uint64_t seq = next_seq_++;
  {
    std::ofstream os(window_path(seq));
    if (os) {
      ExportMeta meta;
      meta.rank = config_.rank;
      meta.epoch_realtime_ns = recorder.epoch_realtime_ns();
      meta.events_dropped = dropped_now;
      meta.label = config_.label;
      meta.windowed = true;
      meta.window_seq = seq;
      meta.window_dropped = window_dropped;
      write_chrome_trace(os, events_, meta);
    }
  }
  windows_written_.fetch_add(1, std::memory_order_relaxed);
  events_streamed_.fetch_add(events_.size(), std::memory_order_relaxed);

  // Rotation: bound the on-disk footprint to the newest max_windows
  // chunks. Sequences are only spent on written windows, so the file
  // max_windows behind this one is always the oldest survivor.
  if (config_.max_windows > 0 && seq >= config_.max_windows)
    std::remove(window_path(seq - config_.max_windows).c_str());

  if (config_.metrics) {
    std::ofstream os(config_.dir + "/rank_" + std::to_string(config_.rank) +
                         ".metrics.jsonl",
                     std::ios::app);
    if (os) os << MetricsRegistry::instance().to_json() << '\n';
  }
  return events_.size();
}

}  // namespace asyncit::obs
