// Named counters / gauges / log-spaced histograms (DESIGN.md §8).
//
// Generalizes net::DelayHistogram into a registry any layer can write
// to concurrently. Registration (the name lookup) takes a mutex and may
// allocate; the returned handles are stable for the registry's lifetime
// and their hot paths are single relaxed atomic RMWs — cache the handle
// once per thread/site, never re-look-up per event. reset() zeroes
// values in place (handles stay valid) at run boundaries.
//
// to_json() renders the same ordered-object style as the bench
// harness's `asyncit-bench/1` reports, under schema `asyncit-metrics/1`
// (the registry is a core-library citizen, so it carries its own tiny
// emitter instead of depending on bench/harness).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace asyncit::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-spaced histogram with atomic buckets — net::DelayHistogram's
/// layout (upper edges, last = +inf; quantile() returns the holding
/// bucket's upper edge) made safe for concurrent writers.
class Histogram {
 public:
  /// Edges span [lo, hi] log-spaced across `buckets` finite buckets,
  /// plus an overflow bucket. Defaults match net::DelayHistogram.
  explicit Histogram(double lo = 1e-6, double hi = 100.0,
                     std::size_t buckets = 48);

  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;
  double max() const { return max_.load(std::memory_order_relaxed); }
  /// Approximate quantile (upper edge of the bucket holding rank
  /// p*count); exact max for the overflow bucket.
  double quantile(double p) const;

  const std::vector<double>& edges() const { return edges_; }
  std::vector<std::uint64_t> counts() const;

  void reset();

 private:
  std::vector<double> edges_;
  std::deque<std::atomic<std::uint64_t>> counts_;  // deque: atomics can't move
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

class MetricsRegistry {
 public:
  /// Process-global registry used by the instrumented stack.
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Slow path (mutex + map); cache the result.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double lo = 1e-6,
                       double hi = 100.0);

  /// Zeroes every registered metric in place. Handles stay valid.
  void reset();

  /// Ordered snapshot, schema `asyncit-metrics/1`.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*> counter_index_;
  std::map<std::string, Gauge*> gauge_index_;
  std::map<std::string, Histogram*> histogram_index_;
};

}  // namespace asyncit::obs
