// Deadline watchdog with a flight-recorder dump (DESIGN.md §8).
//
// Arms a background thread that waits `deadline_seconds`; if disarm()
// (or destruction) doesn't happen first, it fires ONCE: prints a
// banner, dumps every TraceRecorder ring (newest events per thread,
// with drop counters) plus the metrics registry to the given stream,
// and keeps the process running so the enclosing test still fails with
// its own assertion — the dump turns a silent wall-budget overrun into
// a diagnosable timeline. Built for the pre-existing ChaosOverTcp
// wall-budget flake in net_test/transport_test (ROADMAP).
#pragma once

#include <atomic>
#include <condition_variable>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

namespace asyncit::obs {

class Watchdog {
 public:
  /// Arms immediately. `label` names the guarded section in the banner;
  /// `os` defaults to std::cerr when null.
  Watchdog(double deadline_seconds, std::string label,
           std::ostream* os = nullptr);
  ~Watchdog();  ///< disarms and joins

  void disarm();
  bool fired() const { return fired_; }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  std::string label_;
  std::ostream* os_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::atomic<bool> fired_{false};
  std::thread thread_;
};

}  // namespace asyncit::obs
