// Streaming trace windows: the flight recorder that survives a kill
// (DESIGN.md §8).
//
// PR 6 exported traces once, at exit — a killed or hung rank left
// nothing on disk. TraceStreamer runs a background flusher that
// periodically drains every registered TraceRecorder ring into rotating
// windowed Perfetto chunk files
//
//   <dir>/rank_<r>.window_<k>.trace.json   (schema asyncit-trace/2)
//
// and appends a rolling `asyncit-metrics/1` snapshot per flush to
// <dir>/rank_<r>.metrics.jsonl. Rotation keeps at most `max_windows`
// chunk files on disk (older windows are deleted), so a long run's
// telemetry footprint is bounded and a SIGKILLed rank leaves its last N
// windows behind — the churn_smoke artifact CI uploads.
//
// Drain discipline — the single-path rule: every consumer of the rings
// goes through flush_now(). Each flush snapshots the recorder (read
// cursors ADVANCE, so consecutive windows partition the event stream
// exactly: concatenating all windows reproduces what a single exit
// snapshot would have held, bit for bit) and attributes ring drops to
// the window via a cumulative-counter delta — so two racing consumers
// can never double-count events or drops. The Watchdog's overrun dump
// routes through the active streamer for exactly this reason
// (watchdog.cpp); tools/asyncit_node skips its one-shot exit export when
// a streamer ran, finishing with a last flush instead.
//
// Windows with no events and no drops are skipped (no file, no sequence
// bump): an idle rank does not churn empty files. tools/trace_merge.py
// stitches the surviving windows of every rank into one timeline,
// cross-checking window-drop accounting against the cumulative counter.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "asyncit/obs/events.hpp"

namespace asyncit::obs {

struct StreamerConfig {
  std::string dir;  ///< output directory (must already exist)
  std::uint16_t rank = 0;
  /// Flush period in wall seconds. Each period the flusher drains the
  /// rings into one window (if anything happened).
  double interval_seconds = 0.5;
  /// Rotation bound: at most this many window files per rank on disk
  /// (0 = keep everything).
  std::size_t max_windows = 8;
  std::string label;    ///< process_name in the chunk documents
  bool metrics = true;  ///< append metrics snapshots per flush
};

/// Background windowed flusher over the global TraceRecorder. One
/// instance per process; construction registers it as the process-wide
/// active streamer (Watchdog and the node exporter consult active()).
class TraceStreamer {
 public:
  explicit TraceStreamer(const StreamerConfig& config);
  ~TraceStreamer();  ///< stop() + unregister

  /// Final flush, then joins the flusher thread. Idempotent; the
  /// destructor calls it. The instance stays registered as active()
  /// until destruction so late consumers still route through it.
  void stop();

  /// Drains the recorder into the next window file now. Serialized
  /// against the periodic flusher (and any other caller) by an internal
  /// mutex — the single drain path. Returns the number of events
  /// written into the window (0 when the window was empty and skipped).
  std::size_t flush_now();

  const StreamerConfig& config() const { return config_; }
  std::uint64_t windows_written() const {
    return windows_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t events_streamed() const {
    return events_streamed_.load(std::memory_order_relaxed);
  }
  /// Cumulative recorder drops observed by the last flush (== the sum
  /// of every window's drop delta — the accounting the regression test
  /// in tests/obs_test.cpp pins against TraceRecorder::stats()).
  std::uint64_t dropped_seen() const {
    return dropped_seen_.load(std::memory_order_relaxed);
  }

  /// The process-wide active streamer, or nullptr. Registered in the
  /// constructor, cleared in the destructor.
  static TraceStreamer* active();

  TraceStreamer(const TraceStreamer&) = delete;
  TraceStreamer& operator=(const TraceStreamer&) = delete;

 private:
  std::string window_path(std::uint64_t seq) const;

  StreamerConfig config_;
  std::mutex flush_mu_;            ///< the single drain path
  std::vector<Event> events_;      ///< flush scratch (reused)
  std::uint64_t next_seq_ = 0;     ///< next window sequence number
  std::uint64_t last_dropped_ = 0; ///< cumulative drops at last flush

  std::atomic<std::uint64_t> windows_written_{0};
  std::atomic<std::uint64_t> events_streamed_{0};
  std::atomic<std::uint64_t> dropped_seen_{0};

  std::mutex run_mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace asyncit::obs
