// Chrome trace-event JSON exporter (DESIGN.md §8).
//
// Renders a snapshot of recorded events as a `{"traceEvents":[...]}`
// document loadable by Perfetto / chrome://tracing:
//
//  * block updates become duration ("X") slices (ts = start, dur = the
//    recorded phase duration);
//  * frame / membership / probe / stop / redial events become instants
//    ("i") with the decoded payload in "args";
//  * queue-depth samples become counter ("C") tracks per link.
//
// pid = world rank, tid = a per-(rank, source thread) lane, so a merged
// multi-rank trace shows one process group per rank. The document also
// carries "otherData" with the rank, the recorder's CLOCK_REALTIME
// enable anchor (`epoch_realtime_ns`) and drop counters — that anchor
// is what tools/trace_merge.py uses to shift per-rank monotonic
// timelines onto one cluster clock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "asyncit/obs/events.hpp"

namespace asyncit::obs {

struct ExportMeta {
  std::uint16_t rank = 0;
  std::uint64_t epoch_realtime_ns = 0;
  /// Cumulative recorder drops at write time (asyncit-trace/1), or at
  /// the end of this window (asyncit-trace/2).
  std::uint64_t events_dropped = 0;
  std::string label;  ///< process_name metadata (e.g. "asyncit_node r2")

  /// Windowed streaming chunks (obs/streamer.hpp): when set, the
  /// document carries schema `asyncit-trace/2` with the window sequence
  /// number and the drops attributed to THIS window (the delta since the
  /// previous flush; Σ window deltas == the cumulative counter, which
  /// tools/trace_merge.py cross-checks when stitching).
  bool windowed = false;
  std::uint64_t window_seq = 0;
  std::uint64_t window_dropped = 0;
};

/// Writes `events` (any order; sorted internally by t_ns) as one trace
/// document. Returns the number of traceEvents emitted.
std::size_t write_chrome_trace(std::ostream& os, std::vector<Event> events,
                               const ExportMeta& meta);

/// Convenience: snapshot the global TraceRecorder and write to `path`.
/// Returns false when the file cannot be opened.
bool export_chrome_trace_file(const std::string& path, const ExportMeta& meta);

}  // namespace asyncit::obs
