#include "asyncit/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace asyncit::obs {

namespace {
/// Atomic running-min via CAS (fetch_min for doubles doesn't exist).
void atomic_min(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void append_double(std::ostringstream* os, double v) {
  if (std::isfinite(v)) {
    *os << v;
  } else {
    *os << '"' << (v > 0 ? "inf" : (v < 0 ? "-inf" : "nan")) << '"';
  }
}
}  // namespace

// ------------------------------------------------------------- Histogram

Histogram::Histogram(double lo, double hi, std::size_t buckets) {
  edges_.reserve(buckets + 1);
  const double ratio = std::pow(hi / lo, 1.0 / double(buckets - 1));
  double e = lo;
  for (std::size_t i = 0; i < buckets; ++i, e *= ratio) edges_.push_back(e);
  edges_.push_back(std::numeric_limits<double>::infinity());
  counts_.resize(edges_.size());
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  const double d = std::max(0.0, value);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), d);
  counts_[static_cast<std::size_t>(it - edges_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(d, std::memory_order_relaxed);
  atomic_min(&min_, d);
  atomic_max(&max_, d);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n ? sum() / double(n) : 0.0;
}

double Histogram::min() const {
  const double m = min_.load(std::memory_order_relaxed);
  return std::isfinite(m) ? m : 0.0;
}

double Histogram::quantile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double rank = std::clamp(p, 0.0, 1.0) * double(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (double(seen) >= rank)
      return std::isinf(edges_[i]) ? max() : edges_[i];
  }
  return max();
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *it->second;
  counters_.emplace_back();
  counter_index_[name] = &counters_.back();
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back();
  gauge_index_[name] = &gauges_.back();
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return *it->second;
  histograms_.emplace_back(lo, hi);
  histogram_index_[name] = &histograms_.back();
  return histograms_.back();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.reset();
  for (auto& h : histograms_) h.reset();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"schema\":\"asyncit-metrics/1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counter_index_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauge_index_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":";
    append_double(&os, g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histogram_index_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"count\":" << h->count() << ",\"mean\":";
    append_double(&os, h->mean());
    os << ",\"min\":";
    append_double(&os, h->min());
    os << ",\"max\":";
    append_double(&os, h->max());
    os << ",\"p50\":";
    append_double(&os, h->quantile(0.50));
    os << ",\"p95\":";
    append_double(&os, h->quantile(0.95));
    os << ",\"p99\":";
    append_double(&os, h->quantile(0.99));
    os << '}';
  }
  os << "}}";
  return os.str();
}

}  // namespace asyncit::obs
