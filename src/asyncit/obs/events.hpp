// Typed POD event taxonomy of the observability layer (DESIGN.md §8).
//
// One fixed 32-byte record describes every occurrence the stack can
// report: block updates, frame traffic, membership transitions, probe
// rounds, stop decisions, queue-depth samples, transport link repair.
// The record is deliberately *untyped at the field level* — four 64-bit
// words whose meaning depends on `type` — so a single lock-free ring
// (obs/trace_recorder.hpp) can carry all of them with relaxed atomic
// word writes and zero steady-state allocations.
//
// Field conventions per type (a/b/v are the payload words; `sub` is a
// per-type discriminator; `rank` is the recording world rank):
//
//   kBlockUpdate     a=block        b=tag (production step)
//                    sub=0 full phase, 1 partial (flexible communication)
//                    v=phase duration seconds
//   kFrameSend       a=dst          b=tag  sub=MsgKind
//                    v=payload bytes (doubles * 8)
//   kFrameRecv       a=src          b=tag  sub=MsgKind
//                    v=measured delay seconds (post/arrival -> drain)
//   kFrameReject     a=src          b=block  sub=MsgKind  v=0
//                    (sub=0xFF: wire-invalid frame at a transport reader)
//   kFrameDrop       a=dst          b=queue depth at drop  sub=MsgKind
//                    v=0 (loss model / dead link / elastic overflow)
//   kInversion       a=block        b=tag lag (newest seen - arrived)
//                    sub=1 when the stale value was filtered  v=0
//   kMembership      a=subject rank b=incarnation
//                    sub=membership::EventKind  v=0
//   kProbe           a=target       b=sequence  sub=MsgKind (kPing /
//                    kPingReq / kAck)  v=0
//   kStopDecision    a=StopReason   b=own updates at decision  v=seconds
//   kQueueDepth      a=link peer    b=depth  sub=QueueKind  v=bytes
//   kRedial          a=dst          b=attempt outcome (1 ok, 0 fail)
//                    v=seconds (run clock at the attempt)
//   kMarker          free-form breadcrumb (watchdog arm/disarm, node
//                    start): a/b/v site-defined.
//   kTrainStep       PSGD training phases (train/):
//                    sub=0 worker minibatch step: a=worker clock,
//                          b=batch size, v=step duration seconds
//                    sub=1 server delta apply: a=source rank,
//                          b=parameter version after apply, v=factorDelta
//                    sub=2 server eval: a=server round (min worker
//                          clock), b=deltas applied, v=train accuracy
//   kSteering        adaptive-staleness decision (obs/steering.hpp):
//                    sub = 2*domain + applied, where domain is 0 for the
//                    net:: SSP round gate and 1 for the train:: SspClock,
//                    and applied is 1 when the bound changed (0 = held by
//                    clamping or hysteresis); a=bound after the decision,
//                    b=clamped candidate bound, v=measured delay signal
//                    the candidate was derived from
#pragma once

#include <cstdint>

namespace asyncit::obs {

enum class EventType : std::uint8_t {
  kNone = 0,  ///< an unwritten ring slot (never recorded explicitly)
  kBlockUpdate,
  kFrameSend,
  kFrameRecv,
  kFrameReject,
  kFrameDrop,
  kInversion,
  kMembership,
  kProbe,
  kStopDecision,
  kQueueDepth,
  kRedial,
  kMarker,
  kTrainStep,
  kSteering,
};
inline constexpr std::uint8_t kNumEventTypes = 15;

/// kStopDecision::a — why a rank (or the orchestrator) tripped the stop
/// flag. Mirrors every stop->store site in net:: so a trace shows not
/// just *when* a run ended but *whose* criterion ended it.
enum class StopReason : std::uint32_t {
  kWallBudget = 0,     ///< max_seconds exceeded
  kUpdateBudget = 1,   ///< max_updates exhausted
  kOracle = 2,         ///< weighted-max-norm distance below tol
  kDisplacement = 3,   ///< displacement rule + residual confirmation
  kPeerStop = 4,       ///< another rank's kStop frame ended a gated run
  kLiveViewDone = 5,   ///< everyone else stopped/died/never joined
};

/// kQueueDepth::sub — which queue the sample describes.
enum class QueueKind : std::uint8_t {
  kTcpWriter = 0,   ///< per-link TCP send queue (frames)
  kChaosHeld = 1,   ///< chaos receive-side maturity queue
  kInbox = 2,       ///< drained batch size at the peer
};

/// The 32-byte POD record. Stored in rings as four relaxed atomic words;
/// this is the decoded, reader-facing form.
struct Event {
  std::uint64_t t_ns = 0;   ///< monotonic ns since recorder enable
  EventType type = EventType::kNone;
  std::uint8_t sub = 0;     ///< per-type discriminator (see taxonomy)
  std::uint16_t rank = 0;   ///< recording world rank
  std::uint32_t a = 0;      ///< payload word (see taxonomy)
  std::uint64_t b = 0;
  double v = 0.0;
};

/// Human-readable event-type name (exporter phase names, watchdog dumps).
const char* to_string(EventType t);
const char* to_string(StopReason r);

}  // namespace asyncit::obs
