// Online admissibility auditor (DESIGN.md §8).
//
// Streams the (S_j, l(j)) schedule of a *live* run through the same
// condition a–d checks `model/admissibility.cpp` applies to a recorded
// ScheduleTrace, so a real TCP/churn run reports its measured delay
// bound, label divergence and fairness without retaining the schedule:
//
//  * a) l(j) <= j-1 and every fed label <= j-1, checked at record time;
//  * b) quarter minima of l(j) strictly increasing — needs the l(j)
//    series, kept in a fixed-capacity buffer that pairwise-min compacts
//    when full (minima are preserved under pairing, so quarter minima
//    stay exact up to the pair straddling a quarter boundary); below
//    the cap the series is verbatim and the report matches the offline
//    auditor bit-for-bit (the parity test in obs_test pins this);
//  * c) per-block occurrence counts and max update gap, including the
//    trailing gap, incremental;
//  * d) b_min = max_j (j - l(j)) with the arg step and the mean,
//    incremental.
//
// record_step() is O(|S_j| + num_blocks·0) — all state is preallocated
// at construction (the series buffer reserves its cap), so the steady
// state allocates nothing and the auditor can run inside the zero-alloc
// messaging path that alloc_test pins.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/model/history.hpp"

namespace asyncit::obs {

/// Flat snapshot of all four condition reports, shaped for JSON export.
struct AdmissibilityReport {
  model::Step steps = 0;
  bool a_holds = true;
  std::vector<model::Step> quarter_min_labels;  ///< empty when steps < 4
  bool b_diverging = false;
  model::Step b_final_min_label = 0;
  bool c_fair = false;
  std::size_t c_min_occurrences = 0;
  model::Step c_worst_gap = 0;
  model::Step d_bound = 0;     ///< b_min: max observed j - l(j)
  model::Step d_at_step = 0;
  double d_mean = 0.0;

  /// One-line verdict in audit_summary()'s format.
  std::string summary() const;
};

class OnlineAuditor {
 public:
  /// `series_capacity` bounds the retained l(j) series (power of two
  /// recommended); runs longer than it get pairwise-min compacted.
  explicit OnlineAuditor(std::size_t num_blocks,
                         std::size_t series_capacity = 1u << 16);

  /// Feeds step j = steps()+1 updating the blocks in `updated` with
  /// minimum read label `l_min`. Labels beyond l_min are optional — the
  /// live bridge only tracks the minimum, which is all Definition 2
  /// needs (model::LabelRecording::kMinOnly equivalent).
  void record_step(std::span<const la::BlockId> updated, model::Step l_min);

  model::Step steps() const { return steps_; }
  std::size_t num_blocks() const { return occurrences_.size(); }

  /// Condition d's running delay bound b_min = max_j (j - l(j)), O(1).
  /// The live signal the adaptive-staleness controller steers on
  /// (obs/steering.hpp) — no full report() needed on the hot path.
  model::Step d_bound() const { return d_bound_; }

  /// Finite-horizon report over everything recorded so far. Cheap
  /// enough to call repeatedly; does not mutate state.
  AdmissibilityReport report() const;

 private:
  model::Step steps_ = 0;
  bool a_holds_ = true;

  // b) retained l(j) series: series_[k] = min of actual steps
  // (k*stride_, (k+1)*stride_]; stride_ doubles at each compaction.
  std::vector<model::Step> series_;
  std::size_t series_capacity_;
  model::Step stride_ = 1;
  model::Step in_bucket_ = 0;  ///< steps folded into the open last bucket

  // c)
  std::vector<std::size_t> occurrences_;
  std::vector<model::Step> last_seen_;
  std::vector<model::Step> max_gap_;

  // d)
  model::Step d_bound_ = 0;
  model::Step d_at_step_ = 0;
  double d_sum_ = 0.0;
};

}  // namespace asyncit::obs
