#include "asyncit/obs/trace_recorder.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <mutex>
#include <ostream>
#include <string>

namespace asyncit::obs {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kNone: return "none";
    case EventType::kBlockUpdate: return "block_update";
    case EventType::kFrameSend: return "frame_send";
    case EventType::kFrameRecv: return "frame_recv";
    case EventType::kFrameReject: return "frame_reject";
    case EventType::kFrameDrop: return "frame_drop";
    case EventType::kInversion: return "inversion";
    case EventType::kMembership: return "membership";
    case EventType::kProbe: return "probe";
    case EventType::kStopDecision: return "stop_decision";
    case EventType::kQueueDepth: return "queue_depth";
    case EventType::kRedial: return "redial";
    case EventType::kMarker: return "marker";
    case EventType::kTrainStep: return "train_step";
    case EventType::kSteering: return "steering";
  }
  return "unknown";
}

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::kWallBudget: return "wall_budget";
    case StopReason::kUpdateBudget: return "update_budget";
    case StopReason::kOracle: return "oracle";
    case StopReason::kDisplacement: return "displacement";
    case StopReason::kPeerStop: return "peer_stop";
    case StopReason::kLiveViewDone: return "live_view_done";
  }
  return "unknown";
}

const char* to_string(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff: return "none";
    case TraceLevel::kMetrics: return "metrics";
    case TraceLevel::kFull: return "full";
  }
  return "unknown";
}

bool parse_trace_level(const char* text, TraceLevel* out) {
  const std::string s = text ? text : "";
  if (s == "none" || s == "off" || s == "0") {
    *out = TraceLevel::kOff;
  } else if (s == "metrics") {
    *out = TraceLevel::kMetrics;
  } else if (s == "full" || s == "trace") {
    *out = TraceLevel::kFull;
  } else {
    return false;
  }
  return true;
}

namespace detail {

std::atomic<int> g_level{0};

namespace {
constexpr std::size_t kWordsPerSlot = 4;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<TraceClockFn> g_clock{nullptr};

/// The injectable raw source: steady_clock unless set_trace_clock()
/// installed something (virtual time under simnet).
std::uint64_t raw_now_ns() {
  const TraceClockFn fn = g_clock.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : steady_now_ns();
}

std::uint64_t pack_meta(EventType type, std::uint8_t sub, std::uint16_t rank,
                        std::uint32_t a) {
  return (std::uint64_t(static_cast<std::uint8_t>(type)) << 56) |
         (std::uint64_t(sub) << 48) | (std::uint64_t(rank) << 32) |
         std::uint64_t(a);
}
}  // namespace

/// Single-writer / multi-reader event ring. Slots are four atomic words
/// so concurrent reads of a slot being rewritten are races only in the
/// benign "value may be torn" sense, and the reader's lap check (below)
/// discards every slot that could have been torn.
class ThreadRing {
 public:
  explicit ThreadRing(std::size_t capacity)
      : capacity_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(capacity_ - 1),
        words_(capacity_ * kWordsPerSlot) {}

  void push(std::uint64_t t_ns, EventType type, std::uint8_t sub,
            std::uint16_t rank, std::uint32_t a, std::uint64_t b, double v) {
    const std::uint64_t seq = head_.load(std::memory_order_relaxed);
    if (seq - read_head_.load(std::memory_order_relaxed) >= capacity_)
      dropped_.fetch_add(1, std::memory_order_relaxed);
    std::atomic<std::uint64_t>* slot = &words_[(seq & mask_) * kWordsPerSlot];
    slot[0].store(t_ns, std::memory_order_relaxed);
    slot[1].store(pack_meta(type, sub, rank, a), std::memory_order_relaxed);
    slot[2].store(b, std::memory_order_relaxed);
    slot[3].store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
    head_.store(seq + 1, std::memory_order_release);
  }

  /// Copies the readable window [read_from, head) — newest
  /// `capacity_ - 1` at most — validating against writer laps. The
  /// window is one short of capacity because a writer that has
  /// PUBLISHED head == s may already be rewriting slot (s & mask)
  /// before publishing s + 1: the slot `head - capacity_` is therefore
  /// never safely readable while the writer is live, and the lap check
  /// below must discard on >=, not >. When `advance` is set the read
  /// cursor moves to the head so those events stop counting as
  /// droppable. Returns events appended to `out`.
  std::size_t read(std::vector<Event>* out, bool advance,
                   std::size_t max_events = SIZE_MAX) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t begin = head > capacity_ - 1 ? head - (capacity_ - 1) : 0;
    if (advance) {
      // snapshot(): unread events only, so consecutive snapshots never
      // duplicate. dump() ignores the cursor — it wants the newest
      // window even if a snapshot already consumed it.
      begin = std::max(begin, read_head_.load(std::memory_order_relaxed));
    }
    if (head - begin > max_events) begin = head - max_events;
    std::size_t appended = 0;
    for (std::uint64_t seq = begin; seq < head; ++seq) {
      Event e;
      const std::atomic<std::uint64_t>* slot =
          &words_[(seq & mask_) * kWordsPerSlot];
      e.t_ns = slot[0].load(std::memory_order_relaxed);
      const std::uint64_t meta = slot[1].load(std::memory_order_relaxed);
      e.b = slot[2].load(std::memory_order_relaxed);
      e.v = std::bit_cast<double>(slot[3].load(std::memory_order_relaxed));
      e.type = static_cast<EventType>(meta >> 56);
      e.sub = static_cast<std::uint8_t>(meta >> 48);
      e.rank = static_cast<std::uint16_t>(meta >> 32);
      e.a = static_cast<std::uint32_t>(meta);
      // Lap check: the slot is reused by sequence seq + capacity_, and
      // the writer starts rewriting it as soon as head reaches that
      // value (the head store comes AFTER the slot stores), so any head
      // at or past seq + capacity_ means the copy above may be torn —
      // drop it rather than decode it. The acquire fence keeps the
      // relaxed slot loads from sinking below the re-check.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (head_.load(std::memory_order_relaxed) >= seq + capacity_) continue;
      if (static_cast<std::uint8_t>(e.type) == 0 ||
          static_cast<std::uint8_t>(e.type) >= kNumEventTypes)
        continue;
      out->push_back(e);
      ++appended;
    }
    if (advance) {
      // Never move the cursor backwards (enable() resets it to 0).
      std::uint64_t cur = read_head_.load(std::memory_order_relaxed);
      while (cur < head && !read_head_.compare_exchange_weak(
                               cur, head, std::memory_order_relaxed)) {
      }
    }
    return appended;
  }

  void reset() {
    head_.store(0, std::memory_order_relaxed);
    read_head_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  const std::uint64_t mask_;
  std::vector<std::atomic<std::uint64_t>> words_;
  std::atomic<std::uint64_t> head_{0};       ///< next sequence to write
  std::atomic<std::uint64_t> read_head_{0};  ///< first unconsumed sequence
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace detail

struct TraceRecorder::Impl {
  std::mutex mu;  ///< guards registry/free_list (claim/release/reset only)
  std::vector<detail::ThreadRing*> rings;  ///< append-only, leaked at exit
  std::vector<detail::ThreadRing*> free_list;
  std::size_t ring_capacity = 4096;
};

/// Thread-local ring claim. The destructor returns the ring to the
/// recorder's free list so a later thread can reuse it (its recorded
/// events stay in place and remain part of the run's history).
struct TlsRingHandle {
  detail::ThreadRing* ring = nullptr;
  ~TlsRingHandle() {
    if (ring) TraceRecorder::instance().release_ring(ring);
  }
};

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* recorder = new TraceRecorder();  // leaked: outlives
  return *recorder;                                      // late TLS dtors
}

TraceRecorder::TraceRecorder() : impl_(new Impl()) {}
TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::enable(const TraceConfig& config) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->ring_capacity = config.ring_capacity;
  for (detail::ThreadRing* ring : impl_->rings) ring->reset();
  rank_ = config.rank;
  t0_steady_ns_ = detail::raw_now_ns();
  epoch_realtime_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  detail::g_level.store(static_cast<int>(config.level),
                        std::memory_order_release);
}

void TraceRecorder::disable() {
  detail::g_level.store(static_cast<int>(TraceLevel::kOff),
                        std::memory_order_release);
}

std::uint64_t TraceRecorder::now_ns() const {
  return detail::raw_now_ns() - t0_steady_ns_;
}

void set_trace_clock(TraceClockFn fn) {
  detail::g_clock.store(fn, std::memory_order_relaxed);
}

TraceClockFn trace_clock() {
  return detail::g_clock.load(std::memory_order_relaxed);
}

detail::ThreadRing* TraceRecorder::claim_ring() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->free_list.empty()) {
    detail::ThreadRing* ring = impl_->free_list.back();
    impl_->free_list.pop_back();
    return ring;
  }
  auto* ring = new detail::ThreadRing(impl_->ring_capacity);
  impl_->rings.push_back(ring);
  return ring;
}

void TraceRecorder::release_ring(detail::ThreadRing* ring) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->free_list.push_back(ring);
}

void TraceRecorder::push(EventType type, std::uint8_t sub, std::uint32_t a,
                         std::uint64_t b, double v) {
  thread_local TlsRingHandle tls;
  if (tls.ring == nullptr) tls.ring = claim_ring();  // sole alloc site
  tls.ring->push(now_ns(), type, sub, rank_, a, b, v);
}

void TraceRecorder::push_phase_end(EventType type, std::uint8_t sub,
                                   std::uint32_t a, std::uint64_t b,
                                   std::uint64_t t0_ns) {
  thread_local TlsRingHandle tls;
  if (tls.ring == nullptr) tls.ring = claim_ring();
  const std::uint64_t now = now_ns();
  tls.ring->push(now, type, sub, rank_, a, b,
                 static_cast<double>(now - t0_ns) * 1e-9);
}

std::size_t TraceRecorder::snapshot(std::vector<Event>* out) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::size_t total = 0;
  for (detail::ThreadRing* ring : impl_->rings)
    total += ring->read(out, /*advance=*/true);
  return total;
}

RecorderStats TraceRecorder::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  RecorderStats s;
  for (const detail::ThreadRing* ring : impl_->rings) {
    const std::uint64_t n = ring->recorded();
    if (n == 0) continue;
    ++s.rings;
    s.recorded += n;
    s.dropped += ring->dropped();
  }
  return s;
}

void TraceRecorder::dump(std::ostream& os, std::size_t max_per_ring) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  os << "obs::TraceRecorder dump (" << impl_->rings.size() << " rings)\n";
  std::size_t index = 0;
  std::vector<Event> events;
  for (detail::ThreadRing* ring : impl_->rings) {
    events.clear();
    ring->read(&events, /*advance=*/false, max_per_ring);
    os << "  ring " << index++ << ": recorded=" << ring->recorded()
       << " dropped=" << ring->dropped() << '\n';
    for (const Event& e : events) {
      os << "    t=" << double(e.t_ns) * 1e-9 << "s " << to_string(e.type)
         << " sub=" << unsigned(e.sub) << " rank=" << e.rank << " a=" << e.a
         << " b=" << e.b << " v=" << e.v << '\n';
    }
  }
}

}  // namespace asyncit::obs
