// Projected Jacobi operator for the discrete obstacle problem:
//
//   F_i(u) = max( psi_i, [Jacobi sweep for A u = b]_i ) .
//
// With A the 5-point Laplacian this is the projected relaxation method the
// paper's reference [26] ran asynchronously on the IBM SP4; the projection
// onto {u >= psi} preserves the max-norm contraction of the underlying
// Jacobi operator (projections onto boxes are nonexpansive coordinatewise).
#pragma once

#include "asyncit/operators/jacobi.hpp"

namespace asyncit::op {

class ProjectedJacobiOperator final : public BlockOperator {
 public:
  ProjectedJacobiOperator(const la::CsrMatrix& a, la::Vector b,
                          la::Vector lower, la::Partition partition);

  const la::Partition& partition() const override {
    return jacobi_.partition();
  }
  using BlockOperator::apply_block;
  void apply_block(la::BlockId blk, std::span<const double> x,
                   std::span<double> out, Workspace& ws) const override;
  std::string name() const override { return "projected-jacobi"; }

  double contraction_bound() const { return jacobi_.contraction_bound(); }

 private:
  JacobiOperator jacobi_;
  la::Vector lower_;
};

}  // namespace asyncit::op
