#include "asyncit/operators/operator.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::op {

void BlockOperator::apply(std::span<const double> x,
                          std::span<double> y) const {
  ASYNCIT_CHECK(x.size() == dim() && y.size() == dim());
  for (la::BlockId b = 0; b < num_blocks(); ++b) {
    const la::BlockRange r = partition().range(b);
    apply_block(b, x, y.subspan(r.begin, r.size()));
  }
}

double fixed_point_residual(const BlockOperator& op,
                            std::span<const double> x) {
  la::Vector fx(op.dim());
  op.apply(x, fx);
  return la::dist_inf(fx, x);
}

double max_block_residual(const BlockOperator& op, std::span<const double> x) {
  ASYNCIT_CHECK(x.size() == op.dim());
  const la::Partition& partition = op.partition();
  la::Vector fb;  // one block at a time; no full-dim scratch needed
  double worst = 0.0;
  for (la::BlockId b = 0; b < op.num_blocks(); ++b) {
    const la::BlockRange r = partition.range(b);
    fb.resize(r.size());
    op.apply_block(b, x, fb);
    worst = std::max(worst, la::dist2(fb, x.subspan(r.begin, r.size())));
  }
  return worst;
}

la::Vector picard_solve(const BlockOperator& op, la::Vector x0,
                        std::size_t max_iters, double tol) {
  ASYNCIT_CHECK(x0.size() == op.dim());
  la::Vector x = std::move(x0);
  la::Vector y(x.size());
  for (std::size_t it = 0; it < max_iters; ++it) {
    op.apply(x, y);
    const double r = la::dist_inf(x, y);
    x.swap(y);
    if (r < tol) break;
  }
  return x;
}

}  // namespace asyncit::op
