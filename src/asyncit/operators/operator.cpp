#include "asyncit/operators/operator.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/linalg/kernels.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::op {

void BlockOperator::apply(std::span<const double> x, std::span<double> y,
                          Workspace& ws) const {
  ASYNCIT_CHECK(x.size() == dim() && y.size() == dim());
  for (la::BlockId b = 0; b < num_blocks(); ++b) {
    const la::BlockRange r = partition().range(b);
    apply_block(b, x, y.subspan(r.begin, r.size()), ws);
  }
}

double BlockOperator::apply_block_residual(la::BlockId b,
                                           std::span<const double> x,
                                           std::span<double> out,
                                           Workspace& ws) const {
  const la::BlockRange r = partition().range(b);
  apply_block(b, x, out, ws);
  return std::sqrt(
      la::kern::sq_dist(out.data(), x.data() + r.begin, r.size()));
}

double fixed_point_residual(const BlockOperator& op, std::span<const double> x,
                            Workspace& ws) {
  Scratch fx(ws, op.dim());
  op.apply(x, fx, ws);
  return la::dist_inf(fx.span(), x);
}

double max_block_residual(const BlockOperator& op, std::span<const double> x,
                          Workspace& ws) {
  ASYNCIT_CHECK(x.size() == op.dim());
  const la::Partition& partition = op.partition();
  Scratch fb(ws, partition.max_block_size());
  double worst = 0.0;
  for (la::BlockId b = 0; b < op.num_blocks(); ++b) {
    const la::BlockRange r = partition.range(b);
    worst = std::max(
        worst, op.apply_block_residual(b, x, fb.span().first(r.size()), ws));
  }
  return worst;
}

la::Vector picard_solve(const BlockOperator& op, la::Vector x0,
                        std::size_t max_iters, double tol, Workspace& ws) {
  ASYNCIT_CHECK(x0.size() == op.dim());
  la::Vector x = std::move(x0);
  Scratch y(ws, x.size());
  for (std::size_t it = 0; it < max_iters; ++it) {
    op.apply(x, y, ws);
    const double r = la::dist_inf(x, y.span());
    x.swap(y.vec());
    if (r < tol) break;
  }
  return x;
}

}  // namespace asyncit::op
