#include "asyncit/operators/prox_gradient.hpp"

#include "asyncit/support/check.hpp"

namespace asyncit::op {

BackwardForwardOperator::BackwardForwardOperator(const SmoothFunction& f,
                                                 const ProxOperator& g,
                                                 double gamma,
                                                 la::Partition partition)
    : f_(f), g_(g), gamma_(gamma), partition_(std::move(partition)) {
  ASYNCIT_CHECK(partition_.dim() == f_.dim());
  ASYNCIT_CHECK_MSG(gamma_ > 0.0 && gamma_ <= f.suggested_step() + 1e-15,
                    "Definition 4 requires gamma in (0, 2/(mu+L)]; got "
                        << gamma_ << " vs bound " << f.suggested_step());
}

void BackwardForwardOperator::apply_block(la::BlockId blk,
                                          std::span<const double> x,
                                          std::span<double> out,
                                          Workspace& ws) const {
  ASYNCIT_CHECK(x.size() == dim());
  // z = prox_{γ,g}(x): g is separable so this is a coordinate-wise pass;
  // the full z is needed because ∂f/∂x_i is evaluated AT z (Definition 4).
  Scratch z(ws, dim());
  g_.apply(x, gamma_, z);
  const la::BlockRange r = partition_.range(blk);
  ASYNCIT_CHECK(out.size() == r.size());
  f_.partial_block(r.begin, r.end, z, out);
  const double* zp = z.data();
  for (std::size_t c = r.begin; c < r.end; ++c)
    out[c - r.begin] = zp[c] - gamma_ * out[c - r.begin];
}

la::Vector BackwardForwardOperator::solution_from_fixed_point(
    std::span<const double> x_bar) const {
  la::Vector z(dim());
  g_.apply(x_bar, gamma_, z);
  return z;
}

ForwardBackwardOperator::ForwardBackwardOperator(const SmoothFunction& f,
                                                 const ProxOperator& g,
                                                 double gamma,
                                                 la::Partition partition)
    : f_(f), g_(g), gamma_(gamma), partition_(std::move(partition)) {
  ASYNCIT_CHECK(partition_.dim() == f_.dim());
  ASYNCIT_CHECK(gamma_ > 0.0);
}

void ForwardBackwardOperator::apply_block(la::BlockId blk,
                                          std::span<const double> x,
                                          std::span<double> out,
                                          Workspace&) const {
  ASYNCIT_CHECK(x.size() == dim());
  const la::BlockRange r = partition_.range(blk);
  ASYNCIT_CHECK(out.size() == r.size());
  f_.partial_block(r.begin, r.end, x, out);
  for (std::size_t c = r.begin; c < r.end; ++c) {
    const double step = x[c] - gamma_ * out[c - r.begin];
    out[c - r.begin] = g_.prox(c, step, gamma_);
  }
}

}  // namespace asyncit::op
