#include "asyncit/operators/workspace.hpp"

namespace asyncit::op {

la::Vector Workspace::acquire(std::size_t n) {
  if (!pool_.empty()) {
    // Prefer a parked buffer that already fits; otherwise grow the largest
    // one (so capacity concentrates in few buffers instead of fragmenting
    // across many that each eventually grow).
    std::size_t pick = 0;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i].capacity() >= n) {
        pick = i;
        break;
      }
      if (pool_[i].capacity() > pool_[pick].capacity()) pick = i;
    }
    la::Vector v = std::move(pool_[pick]);
    pool_[pick] = std::move(pool_.back());
    pool_.pop_back();
    v.resize(n);  // no-op on capacity when the buffer already fits
    return v;
  }
  return la::Vector(n);
}

void Workspace::release(la::Vector v) { pool_.push_back(std::move(v)); }

Workspace& thread_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace asyncit::op
