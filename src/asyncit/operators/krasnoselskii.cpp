#include "asyncit/operators/krasnoselskii.hpp"

#include "asyncit/support/check.hpp"

namespace asyncit::op {

KrasnoselskiiMannOperator::KrasnoselskiiMannOperator(
    const BlockOperator& inner, double eta)
    : inner_(inner), eta_(eta) {
  ASYNCIT_CHECK_MSG(eta_ > 0.0 && eta_ <= 1.0, "KM damping must be in (0,1]");
}

void KrasnoselskiiMannOperator::apply_block(la::BlockId blk,
                                            std::span<const double> x,
                                            std::span<double> out,
                                            Workspace& ws) const {
  inner_.apply_block(blk, x, out, ws);
  const la::BlockRange r = partition().range(blk);
  for (std::size_t c = 0; c < out.size(); ++c) {
    const double xi = x[r.begin + c];
    out[c] = xi + eta_ * (out[c] - xi);
  }
}

std::string KrasnoselskiiMannOperator::name() const {
  return "km(" + inner_.name() + ")";
}

}  // namespace asyncit::op
