// Empirical contraction analysis.
//
// The convergence of asynchronous iterations rests on F being a contraction
// in a weighted maximum norm (Section III of the paper: "monotonicity and
// continuity, or contraction"). These helpers measure the contraction
// factor of an operator around its fixed point, so tests can compare the
// measured factor against theory (e.g. Jacobi's diagonal-dominance bound,
// or 1 − γμ for gradient-type operators on separable problems).
#pragma once

#include "asyncit/linalg/norms.hpp"
#include "asyncit/operators/operator.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::op {

struct ContractionEstimate {
  double max_factor = 0.0;   ///< worst observed ‖F(x)−x*‖ / ‖x−x*‖
  double mean_factor = 0.0;  ///< mean over trials
};

/// Samples `trials` random points x = x* + r·direction with radius scales
/// in (0, radius], measures ‖F(x) − F(x*)‖_u / ‖x − x*‖_u.
ContractionEstimate estimate_contraction(const BlockOperator& op,
                                         std::span<const double> x_star,
                                         const la::WeightedMaxNorm& norm,
                                         Rng& rng, int trials = 64,
                                         double radius = 1.0);

}  // namespace asyncit::op
