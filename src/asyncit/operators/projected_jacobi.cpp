#include "asyncit/operators/projected_jacobi.hpp"

#include <algorithm>

#include "asyncit/support/check.hpp"

namespace asyncit::op {

ProjectedJacobiOperator::ProjectedJacobiOperator(const la::CsrMatrix& a,
                                                 la::Vector b,
                                                 la::Vector lower,
                                                 la::Partition partition)
    : jacobi_(a, std::move(b), std::move(partition)),
      lower_(std::move(lower)) {
  ASYNCIT_CHECK(lower_.size() == jacobi_.dim());
}

void ProjectedJacobiOperator::apply_block(la::BlockId blk,
                                          std::span<const double> x,
                                          std::span<double> out,
                                          Workspace& ws) const {
  jacobi_.apply_block(blk, x, out, ws);
  const la::BlockRange r = partition().range(blk);
  for (std::size_t c = 0; c < out.size(); ++c)
    out[c] = std::max(out[c], lower_[r.begin + c]);
}

}  // namespace asyncit::op
