#include "asyncit/operators/contraction.hpp"

#include <algorithm>

#include "asyncit/support/check.hpp"

namespace asyncit::op {

ContractionEstimate estimate_contraction(const BlockOperator& op,
                                         std::span<const double> x_star,
                                         const la::WeightedMaxNorm& norm,
                                         Rng& rng, int trials,
                                         double radius) {
  ASYNCIT_CHECK(x_star.size() == op.dim());
  ASYNCIT_CHECK(trials > 0 && radius > 0.0);

  la::Vector fstar(op.dim());
  op.apply(x_star, fstar);

  ContractionEstimate est;
  double sum = 0.0;
  la::Vector x(op.dim());
  la::Vector fx(op.dim());
  for (int t = 0; t < trials; ++t) {
    const double scale = radius * (static_cast<double>(t + 1) /
                                   static_cast<double>(trials));
    for (std::size_t c = 0; c < x.size(); ++c)
      x[c] = x_star[c] + scale * rng.normal();
    const double dx = norm.distance(x, x_star);
    if (dx == 0.0) continue;
    op.apply(x, fx);
    const double dfx = norm.distance(fx, fstar);
    const double factor = dfx / dx;
    est.max_factor = std::max(est.max_factor, factor);
    sum += factor;
  }
  est.mean_factor = sum / static_cast<double>(trials);
  return est;
}

}  // namespace asyncit::op
