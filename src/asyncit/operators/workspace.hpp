// Per-worker scratch-buffer pool for the operator hot path.
//
// Asynchronous executors apply block operators millions of times per run;
// before this layer existed every BackwardForward application allocated a
// full-dimension prox vector and every residual poll allocated monitor
// scratch — the allocator, not the arithmetic, dominated small-block
// updates. A Workspace recycles those buffers: each borrow takes a vector
// from the pool (capacity is kept across borrows), each return gives it
// back. After a warm-up pass touching every code path, the pool reaches
// the high-water mark of every buffer it serves and the steady state
// performs ZERO heap allocations (pinned by tests/alloc_test.cpp).
//
// Threading model: a Workspace is single-threaded by design — every
// executor owns one per worker thread (engine/sim are sequential and own
// one outright). Borrows nest freely: an operator that borrows scratch and
// then calls another operator with the same workspace is fine, because
// each borrow owns its vector until returned.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "asyncit/linalg/vector_ops.hpp"

namespace asyncit::op {

class Workspace {
 public:
  Workspace() { pool_.reserve(kPoolReserve); }

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Borrows a buffer of size n. Contents are UNSPECIFIED (stale data from
  /// a previous borrow) — treat as uninitialized. Prefer the RAII Scratch.
  la::Vector acquire(std::size_t n);

  /// Returns a buffer to the pool (capacity is retained).
  void release(la::Vector v);

  /// Buffers currently parked in the pool (diagnostics / tests).
  std::size_t pooled() const { return pool_.size(); }

 private:
  // Enough for the deepest borrow chain in the tree (operator scratch +
  // residual block + monitor snapshot + picard double-buffer) without the
  // pool vector itself reallocating.
  static constexpr std::size_t kPoolReserve = 8;
  std::vector<la::Vector> pool_;
};

/// RAII borrow: takes a buffer from the workspace for the current scope.
class Scratch {
 public:
  Scratch(Workspace& ws, std::size_t n) : ws_(ws), v_(ws.acquire(n)) {}
  ~Scratch() { ws_.release(std::move(v_)); }

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  std::span<double> span() { return v_; }
  std::span<const double> span() const { return v_; }
  operator std::span<double>() { return v_; }
  operator std::span<const double>() const { return v_; }

  double* data() { return v_.data(); }
  std::size_t size() const { return v_.size(); }
  la::Vector& vec() { return v_; }

 private:
  Workspace& ws_;
  la::Vector v_;
};

/// The calling thread's shared workspace — backs the convenience operator
/// overloads that don't take an explicit Workspace (tests, reference
/// solves, one-shot calls). Executors pass their own per-worker instance
/// instead so worker state stays private and warm.
Workspace& thread_workspace();

}  // namespace asyncit::op
