// Fixed-point operator interface.
//
// Everything asyncit iterates is an operator F : R^n -> R^n whose
// components are grouped into blocks by a Partition (Definition 1 updates
// "components"; a component here is a block). Implementations compute one
// block of F(x) at a time — exactly the unit of work an asynchronous
// processor performs during an updating phase.
#pragma once

#include <span>
#include <string>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/linalg/vector_ops.hpp"

namespace asyncit::op {

class BlockOperator {
 public:
  virtual ~BlockOperator() = default;

  virtual const la::Partition& partition() const = 0;
  std::size_t dim() const { return partition().dim(); }
  std::size_t num_blocks() const { return partition().num_blocks(); }

  /// Computes block b of F(x) into `out` (out.size() == block size).
  /// `x` is the full-dimension read view (possibly stale / mixed-label —
  /// the operator itself is oblivious to delays).
  virtual void apply_block(la::BlockId b, std::span<const double> x,
                           std::span<double> out) const = 0;

  /// Full application y = F(x). Default: loop over blocks.
  virtual void apply(std::span<const double> x, std::span<double> y) const;

  virtual std::string name() const = 0;
};

/// ‖F(x) − x‖_inf — the fixed-point residual.
double fixed_point_residual(const BlockOperator& op,
                            std::span<const double> x);

/// max_b ‖F_b(x) − x_b‖_2 — the per-block Euclidean fixed-point residual.
/// The certificate behind the displacement stopping rule of the threaded
/// and message-passing runtimes: for a contraction with factor α, a value
/// below tol implies ‖x − x*‖ ≤ tol / (1 − α).
double max_block_residual(const BlockOperator& op, std::span<const double> x);

/// Synchronous Picard iteration x <- F(x) until the fixed-point residual
/// drops below tol or max_iters is reached. Returns the final iterate.
/// Used to produce high-precision reference solutions for tests/benches.
la::Vector picard_solve(const BlockOperator& op, la::Vector x0,
                        std::size_t max_iters, double tol);

}  // namespace asyncit::op
