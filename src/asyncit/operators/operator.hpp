// Fixed-point operator interface.
//
// Everything asyncit iterates is an operator F : R^n -> R^n whose
// components are grouped into blocks by a Partition (Definition 1 updates
// "components"; a component here is a block). Implementations compute one
// block of F(x) at a time — exactly the unit of work an asynchronous
// processor performs during an updating phase.
//
// Every hot entry point takes an op::Workspace for scratch so that
// steady-state block updates perform no heap allocations (see
// workspace.hpp); the Workspace-less overloads are conveniences that use
// the calling thread's shared workspace.
#pragma once

#include <span>
#include <string>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/linalg/vector_ops.hpp"
#include "asyncit/operators/workspace.hpp"

namespace asyncit::op {

class BlockOperator {
 public:
  virtual ~BlockOperator() = default;

  virtual const la::Partition& partition() const = 0;
  std::size_t dim() const { return partition().dim(); }
  std::size_t num_blocks() const { return partition().num_blocks(); }

  /// Computes block b of F(x) into `out` (out.size() == block size).
  /// `x` is the full-dimension read view (possibly stale / mixed-label —
  /// the operator itself is oblivious to delays). `ws` provides scratch;
  /// implementations must not allocate in steady state.
  virtual void apply_block(la::BlockId b, std::span<const double> x,
                           std::span<double> out, Workspace& ws) const = 0;

  /// Convenience overload on the calling thread's shared workspace.
  void apply_block(la::BlockId b, std::span<const double> x,
                   std::span<double> out) const {
    apply_block(b, x, out, thread_workspace());
  }

  /// Fused update + residual: out = F_b(x), returns ‖F_b(x) − x_b‖_2 —
  /// the per-block displacement the stopping rules poll. Default computes
  /// apply_block then one pass over the (contiguous) block.
  virtual double apply_block_residual(la::BlockId b,
                                      std::span<const double> x,
                                      std::span<double> out,
                                      Workspace& ws) const;

  /// Full application y = F(x). Default: loop over blocks.
  virtual void apply(std::span<const double> x, std::span<double> y,
                     Workspace& ws) const;
  void apply(std::span<const double> x, std::span<double> y) const {
    apply(x, y, thread_workspace());
  }

  virtual std::string name() const = 0;
};

/// ‖F(x) − x‖_inf — the fixed-point residual.
double fixed_point_residual(const BlockOperator& op, std::span<const double> x,
                            Workspace& ws);
inline double fixed_point_residual(const BlockOperator& op,
                                   std::span<const double> x) {
  return fixed_point_residual(op, x, thread_workspace());
}

/// max_b ‖F_b(x) − x_b‖_2 — the per-block Euclidean fixed-point residual.
/// The certificate behind the displacement stopping rule of the threaded
/// and message-passing runtimes: for a contraction with factor α, a value
/// below tol implies ‖x − x*‖ ≤ tol / (1 − α).
double max_block_residual(const BlockOperator& op, std::span<const double> x,
                          Workspace& ws);
inline double max_block_residual(const BlockOperator& op,
                                 std::span<const double> x) {
  return max_block_residual(op, x, thread_workspace());
}

/// Synchronous Picard iteration x <- F(x) until the fixed-point residual
/// drops below tol or max_iters is reached. Returns the final iterate.
/// Used to produce high-precision reference solutions for tests/benches.
la::Vector picard_solve(const BlockOperator& op, la::Vector x0,
                        std::size_t max_iters, double tol, Workspace& ws);
inline la::Vector picard_solve(const BlockOperator& op, la::Vector x0,
                               std::size_t max_iters, double tol) {
  return picard_solve(op, std::move(x0), max_iters, tol, thread_workspace());
}

}  // namespace asyncit::op
