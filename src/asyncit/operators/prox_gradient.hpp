// Proximal gradient-type operators for the composite problem (4):
//     min_x f(x) + g(x),   f L-smooth mu-strongly convex, g l.s.c. convex.
//
// BackwardForwardOperator — Definition 4 of the paper, verbatim:
//
//   G_i(x) = [prox_{γ,g}(x)]_i − γ ∂f/∂x_i ( prox_{γ,g}(x) )
//
// i.e. prox FIRST, then a gradient step evaluated at the prox point. Its
// fixed point x̄ satisfies x̄ = z̄ − γ∇f(z̄) with z̄ = prox_{γ,g}(x̄), and z̄
// is then the minimizer of f + g (apply prox to both sides). Callers
// recover the solution as `solution_from_fixed_point`.
//
// ForwardBackwardOperator — the classic prox-gradient map
//
//   T_i(x) = prox_{γ,g_i}( x_i − γ ∂f/∂x_i(x) ),
//
// whose fixed point IS the minimizer; provided as the standard baseline
// (ARock and DAve-RPG iterate maps of this shape).
//
// Both are contractions for γ ∈ (0, 2/(mu+L)]: the gradient step contracts
// with factor (1 − γmu) at γ = 2/(mu+L), and the prox of a convex g is
// nonexpansive, so the composition in either order contracts with the same
// factor — the ρ = γ·mu of Theorem 1.
#pragma once

#include "asyncit/linalg/partition.hpp"
#include "asyncit/operators/operator.hpp"
#include "asyncit/operators/prox.hpp"
#include "asyncit/operators/smooth.hpp"

namespace asyncit::op {

class BackwardForwardOperator final : public BlockOperator {
 public:
  BackwardForwardOperator(const SmoothFunction& f, const ProxOperator& g,
                          double gamma, la::Partition partition);

  const la::Partition& partition() const override { return partition_; }
  using BlockOperator::apply_block;
  void apply_block(la::BlockId blk, std::span<const double> x,
                   std::span<double> out, Workspace& ws) const override;
  std::string name() const override { return "backward-forward(Def.4)"; }

  double gamma() const { return gamma_; }

  /// Maps a fixed point x̄ of G to the minimizer z̄ = prox_{γ,g}(x̄) of f+g.
  la::Vector solution_from_fixed_point(std::span<const double> x_bar) const;

  /// Theorem 1's contraction modulus ρ = γ·mu.
  double rho() const { return gamma_ * f_.mu(); }

 private:
  const SmoothFunction& f_;
  const ProxOperator& g_;
  double gamma_;
  la::Partition partition_;
};

class ForwardBackwardOperator final : public BlockOperator {
 public:
  ForwardBackwardOperator(const SmoothFunction& f, const ProxOperator& g,
                          double gamma, la::Partition partition);

  const la::Partition& partition() const override { return partition_; }
  using BlockOperator::apply_block;
  void apply_block(la::BlockId blk, std::span<const double> x,
                   std::span<double> out, Workspace& ws) const override;
  std::string name() const override { return "forward-backward"; }

  double gamma() const { return gamma_; }

 private:
  const SmoothFunction& f_;
  const ProxOperator& g_;
  double gamma_;
  la::Partition partition_;
};

}  // namespace asyncit::op
