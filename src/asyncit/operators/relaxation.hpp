// Relaxation-factor and scaled-gradient operators — the knobs the
// asynchronous relaxation literature turns around the basic iterations.
//
// SorJacobiOperator — weighted (damped / over-relaxed) Jacobi for A x = b:
//
//   F_i(x) = (1 − ω) x_i + ω ( b_i − Σ_{k≠i} a_ik x_k ) / a_ii .
//
// ω ∈ (0, 1) damps (more staleness tolerance), ω = 1 is plain Jacobi,
// ω > 1 over-relaxes (faster synchronous convergence but a smaller
// asynchronous safety margin — El Tarazi's classic trade-off; the
// ablation bench a1_relaxation_factor measures exactly this).
//
// ScaledGradientOperator — diagonally-preconditioned ("modified Newton",
// the single-step diagonal case of the paper's reference [25]) gradient
// iteration for smooth strongly convex f:
//
//   T_i(x) = x_i − γ_i ∂f/∂x_i(x) ,   γ_i = damping / h_i ,
//
// with h_i a positive per-coordinate curvature estimate (for quadratics,
// the Hessian diagonal). Per-coordinate steps equalize the contraction
// across coordinates, which is what makes badly-conditioned problems
// tractable asynchronously.
#pragma once

#include "asyncit/linalg/csr_matrix.hpp"
#include "asyncit/operators/jacobi.hpp"
#include "asyncit/operators/smooth.hpp"

namespace asyncit::op {

class SorJacobiOperator final : public BlockOperator {
 public:
  SorJacobiOperator(const la::CsrMatrix& a, la::Vector b, double omega,
                    la::Partition partition);

  const la::Partition& partition() const override {
    return jacobi_.partition();
  }
  using BlockOperator::apply_block;
  void apply_block(la::BlockId blk, std::span<const double> x,
                   std::span<double> out, Workspace& ws) const override;
  std::string name() const override;

  double omega() const { return omega_; }
  /// Max-norm contraction bound |1-ω| + ω·alpha_J with alpha_J the plain
  /// Jacobi bound; < 1 iff ω < 2 / (1 + alpha_J).
  double contraction_bound() const;
  /// Largest ω keeping the asynchronous contraction bound below one.
  double max_stable_omega() const;

 private:
  JacobiOperator jacobi_;
  double omega_;
};

class ScaledGradientOperator final : public BlockOperator {
 public:
  /// curvatures: positive per-coordinate h_i; damping in (0, 1] scales
  /// every step (damping = 1 takes the full diagonal-Newton step).
  ScaledGradientOperator(const SmoothFunction& f, la::Vector curvatures,
                         double damping, la::Partition partition);

  const la::Partition& partition() const override { return partition_; }
  using BlockOperator::apply_block;
  void apply_block(la::BlockId blk, std::span<const double> x,
                   std::span<double> out, Workspace& ws) const override;
  std::string name() const override { return "scaled-gradient"; }

  const la::Vector& steps() const { return steps_; }

 private:
  const SmoothFunction& f_;
  la::Vector steps_;  // gamma_i = damping / h_i
  la::Partition partition_;
};

}  // namespace asyncit::op
