// Interface for the smooth part f of the composite problem (4):
//     min_x f(x) + g(x),
// with f L-smooth and mu-strongly convex (Section V of the paper).
//
// Implementations must provide per-coordinate partial derivatives: the
// asynchronous operators update one block at a time and would waste O(n)
// work per coordinate with a full-gradient-only interface.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "asyncit/linalg/vector_ops.hpp"

namespace asyncit::op {

class SmoothFunction {
 public:
  virtual ~SmoothFunction() = default;

  virtual std::size_t dim() const = 0;

  /// f(x)
  virtual double value(std::span<const double> x) const = 0;

  /// g = ∇f(x)
  virtual void gradient(std::span<const double> x,
                        std::span<double> g) const = 0;

  /// ∂f/∂x_c (x)
  virtual double partial(std::size_t coord,
                         std::span<const double> x) const = 0;

  /// Partials for the coordinate range [begin, end) into out (size
  /// end-begin). Default loops `partial`; data-coupled functions (least
  /// squares, logistic) override it to compute the shared residual once
  /// per block instead of once per coordinate.
  virtual void partial_block(std::size_t begin, std::size_t end,
                             std::span<const double> x,
                             std::span<double> out) const;

  /// Strong convexity modulus mu (> 0 for the problems of Section V).
  virtual double mu() const = 0;

  /// Smoothness constant L (>= mu).
  virtual double lipschitz() const = 0;

  virtual std::string name() const = 0;

  /// The paper's admissible fixed step-size range is (0, 2/(mu+L)]; this
  /// returns its right end-point, the classic optimal fixed step.
  double suggested_step() const { return 2.0 / (mu() + lipschitz()); }
};

}  // namespace asyncit::op
