#include "asyncit/operators/gradient.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::op {

GradientOperator::GradientOperator(const SmoothFunction& f, double gamma,
                                   la::Partition partition)
    : f_(f), gamma_(gamma), partition_(std::move(partition)) {
  ASYNCIT_CHECK(partition_.dim() == f_.dim());
  ASYNCIT_CHECK_MSG(gamma_ > 0.0, "step-size must be positive");
}

void GradientOperator::apply_block(la::BlockId blk, std::span<const double> x,
                                   std::span<double> out, Workspace&) const {
  ASYNCIT_CHECK(x.size() == dim());
  const la::BlockRange r = partition_.range(blk);
  ASYNCIT_CHECK(out.size() == r.size());
  f_.partial_block(r.begin, r.end, x, out);
  for (std::size_t c = r.begin; c < r.end; ++c)
    out[c - r.begin] = x[c] - gamma_ * out[c - r.begin];
}

double GradientOperator::contraction_factor() const {
  return std::max(std::abs(1.0 - gamma_ * f_.mu()),
                  std::abs(1.0 - gamma_ * f_.lipschitz()));
}

}  // namespace asyncit::op
