#include "asyncit/operators/jacobi.hpp"

#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::op {

JacobiOperator::JacobiOperator(const la::CsrMatrix& a, la::Vector b,
                               la::Partition partition)
    : a_(a), b_(std::move(b)), partition_(std::move(partition)) {
  ASYNCIT_CHECK(a_.rows() == a_.cols());
  ASYNCIT_CHECK(b_.size() == a_.rows());
  ASYNCIT_CHECK(partition_.dim() == a_.rows());
  diag_ = a_.diagonal();
  for (double d : diag_)
    ASYNCIT_CHECK_MSG(d != 0.0, "Jacobi needs a nonzero diagonal");
}

void JacobiOperator::apply_block(la::BlockId blk, std::span<const double> x,
                                 std::span<double> out) const {
  ASYNCIT_CHECK(x.size() == dim());
  const la::BlockRange r = partition_.range(blk);
  ASYNCIT_CHECK(out.size() == r.size());
  for (std::size_t row = r.begin; row < r.end; ++row) {
    // b_row - sum_{k != row} a_rk x_k  =  b_row - (A x)_row + a_rr x_row
    const auto cols = a_.row_cols(row);
    const auto vals = a_.row_values(row);
    double s = b_[row];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == row) continue;
      s -= vals[k] * x[cols[k]];
    }
    out[row - r.begin] = s / diag_[row];
  }
}

double JacobiOperator::contraction_bound() const {
  double worst = 0.0;
  for (std::size_t row = 0; row < a_.rows(); ++row) {
    const auto cols = a_.row_cols(row);
    const auto vals = a_.row_values(row);
    double off = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k)
      if (cols[k] != row) off += std::abs(vals[k]);
    worst = std::max(worst, off / std::abs(diag_[row]));
  }
  return worst;
}

}  // namespace asyncit::op
