#include "asyncit/operators/jacobi.hpp"

#include <cmath>

#include "asyncit/linalg/kernels.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::op {

JacobiOperator::JacobiOperator(const la::CsrMatrix& a, la::Vector b,
                               la::Partition partition)
    : a_(a), b_(std::move(b)), partition_(std::move(partition)) {
  ASYNCIT_CHECK(a_.rows() == a_.cols());
  ASYNCIT_CHECK(b_.size() == a_.rows());
  ASYNCIT_CHECK(partition_.dim() == a_.rows());
  diag_ = a_.diagonal();
  inv_diag_.resize(diag_.size());
  for (std::size_t i = 0; i < diag_.size(); ++i) {
    ASYNCIT_CHECK_MSG(diag_[i] != 0.0, "Jacobi needs a nonzero diagonal");
    inv_diag_[i] = 1.0 / diag_[i];
  }
}

void JacobiOperator::apply_block(la::BlockId blk, std::span<const double> x,
                                 std::span<double> out, Workspace&) const {
  ASYNCIT_CHECK(x.size() == dim());
  const la::BlockRange r = partition_.range(blk);
  ASYNCIT_CHECK(out.size() == r.size());
  a_.jacobi_rows(r.begin, r.end, b_, inv_diag_, x, out);
}

double JacobiOperator::apply_block_residual(la::BlockId blk,
                                            std::span<const double> x,
                                            std::span<double> out,
                                            Workspace&) const {
  ASYNCIT_CHECK(x.size() == dim());
  const la::BlockRange r = partition_.range(blk);
  ASYNCIT_CHECK(out.size() == r.size());
  a_.jacobi_rows(r.begin, r.end, b_, inv_diag_, x, out);
  return std::sqrt(
      la::kern::sq_dist(out.data(), x.data() + r.begin, r.size()));
}

double JacobiOperator::contraction_bound() const {
  double worst = 0.0;
  for (std::size_t row = 0; row < a_.rows(); ++row) {
    const auto cols = a_.row_cols(row);
    const auto vals = a_.row_values(row);
    double off = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k)
      if (cols[k] != row) off += std::abs(vals[k]);
    worst = std::max(worst, off / std::abs(diag_[row]));
  }
  return worst;
}

}  // namespace asyncit::op
