// Separable proximal operators for the non-smooth part g of problem (4).
//
//   prox_{γ,g}(x) = argmin_v { g(v) + (1/2γ)‖v − x‖² }
//
// For separable g the prox acts coordinate-wise, which is what makes it
// usable inside asynchronous block updates. Provided:
//   * Zero        — g = 0 (plain gradient iterations);
//   * L1          — g = λ‖x‖₁ (soft thresholding; lasso / sparse ML);
//   * SquaredL2   — g = (λ/2)‖x‖² (ridge / Tikhonov);
//   * ElasticNet  — g = λ₁‖x‖₁ + (λ₂/2)‖x‖²;
//   * Box         — g = indicator of [lo, hi]^n (projection; constrained
//                   problems such as the obstacle problem's u ≥ ψ).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "asyncit/linalg/vector_ops.hpp"

namespace asyncit::op {

class ProxOperator {
 public:
  virtual ~ProxOperator() = default;

  /// Coordinate-wise prox: returns prox_{γ,g_c}(v) for coordinate c.
  virtual double prox(std::size_t coord, double v, double gamma) const = 0;

  /// g(x), for objective reporting (+inf never occurs: box prox reports 0
  /// inside and projects outside).
  virtual double value(std::span<const double> x) const = 0;

  virtual std::string name() const = 0;

  /// Applies the prox to every coordinate of x into out.
  void apply(std::span<const double> x, double gamma,
             std::span<double> out) const;
};

std::unique_ptr<ProxOperator> make_zero_prox();
std::unique_ptr<ProxOperator> make_l1_prox(double lambda);
std::unique_ptr<ProxOperator> make_squared_l2_prox(double lambda);
std::unique_ptr<ProxOperator> make_elastic_net_prox(double l1, double l2);
std::unique_ptr<ProxOperator> make_box_prox(double lo, double hi);
/// Per-coordinate lower bounds (the obstacle constraint u >= psi).
std::unique_ptr<ProxOperator> make_lower_bound_prox(la::Vector lower);

/// Scalar soft-threshold helper: sign(v) * max(|v| - t, 0).
double soft_threshold(double v, double t);

}  // namespace asyncit::op
