#include "asyncit/operators/smooth.hpp"

#include "asyncit/support/check.hpp"

namespace asyncit::op {

void SmoothFunction::partial_block(std::size_t begin, std::size_t end,
                                   std::span<const double> x,
                                   std::span<double> out) const {
  ASYNCIT_CHECK(begin <= end && end <= dim());
  ASYNCIT_CHECK(out.size() == end - begin);
  for (std::size_t c = begin; c < end; ++c) out[c - begin] = partial(c, x);
}

}  // namespace asyncit::op
