// Krasnoselskii–Mann averaging wrapper:
//
//   F_i(x) = x_i + η ( T_i(x) − x_i ),   η ∈ (0, 1].
//
// This is the update map of ARock (Peng, Xu, Yan, Yin — the paper's
// reference [32]): asynchronous coordinate updates of a nonexpansive
// operator need damping η to tolerate staleness. Wrapping any
// BlockOperator lets the ARock baseline reuse the whole engine stack.
#pragma once

#include "asyncit/operators/operator.hpp"

namespace asyncit::op {

class KrasnoselskiiMannOperator final : public BlockOperator {
 public:
  /// Holds a reference to `inner`; caller keeps it alive.
  KrasnoselskiiMannOperator(const BlockOperator& inner, double eta);

  const la::Partition& partition() const override {
    return inner_.partition();
  }
  using BlockOperator::apply_block;
  void apply_block(la::BlockId blk, std::span<const double> x,
                   std::span<double> out, Workspace& ws) const override;
  std::string name() const override;

  double eta() const { return eta_; }

 private:
  const BlockOperator& inner_;
  double eta_;
};

}  // namespace asyncit::op
