// Fixed-step gradient operator T(x) = x − γ ∇f(x).
//
// For mu-strongly convex, L-smooth f and γ ∈ (0, 2/(mu+L)] this is a
// contraction in the Euclidean norm with factor max(|1−γmu|, |1−γL|); when
// f is additionally *separable* (the paper's Section V hypothesis) the
// operator decouples coordinatewise and the same factor bounds it in the
// maximum norm — which is what totally asynchronous convergence needs.
#pragma once

#include "asyncit/linalg/partition.hpp"
#include "asyncit/operators/operator.hpp"
#include "asyncit/operators/smooth.hpp"

namespace asyncit::op {

class GradientOperator final : public BlockOperator {
 public:
  GradientOperator(const SmoothFunction& f, double gamma,
                   la::Partition partition);

  const la::Partition& partition() const override { return partition_; }
  using BlockOperator::apply_block;
  void apply_block(la::BlockId blk, std::span<const double> x,
                   std::span<double> out, Workspace& ws) const override;
  std::string name() const override { return "gradient"; }

  double gamma() const { return gamma_; }
  /// Euclidean contraction factor max(|1−γmu|, |1−γL|).
  double contraction_factor() const;

 private:
  const SmoothFunction& f_;
  double gamma_;
  la::Partition partition_;
};

}  // namespace asyncit::op
