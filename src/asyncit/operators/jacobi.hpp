// Point-Jacobi fixed-point operator for linear systems A x = b:
//
//   F_i(x) = ( b_i − Σ_{k≠i} a_ik x_k ) / a_ii .
//
// For strictly diagonally dominant A this operator is a contraction in the
// maximum norm with factor alpha = max_i Σ_{k≠i} |a_ik| / |a_ii| < 1 — the
// classic setting of Chazan–Miranker chaotic relaxation, and the simplest
// substrate on which all of the paper's asynchronous machinery is exact.
#pragma once

#include "asyncit/linalg/csr_matrix.hpp"
#include "asyncit/linalg/partition.hpp"
#include "asyncit/operators/operator.hpp"

namespace asyncit::op {

class JacobiOperator final : public BlockOperator {
 public:
  /// A must be square with nonzero diagonal; partition.dim() == A.rows().
  JacobiOperator(const la::CsrMatrix& a, la::Vector b,
                 la::Partition partition);

  const la::Partition& partition() const override { return partition_; }
  using BlockOperator::apply_block;
  void apply_block(la::BlockId blk, std::span<const double> x,
                   std::span<double> out, Workspace& ws) const override;
  /// Fused update + displacement: one matrix traversal, no extra pass
  /// re-reading the rows.
  double apply_block_residual(la::BlockId blk, std::span<const double> x,
                              std::span<double> out,
                              Workspace& ws) const override;
  std::string name() const override { return "jacobi"; }

  /// Max-norm contraction bound: max_i Σ_{k≠i} |a_ik| / |a_ii|.
  double contraction_bound() const;

 private:
  const la::CsrMatrix& a_;
  la::Vector b_;
  la::Vector diag_;
  la::Vector inv_diag_;
  la::Partition partition_;
};

}  // namespace asyncit::op
