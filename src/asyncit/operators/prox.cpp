#include "asyncit/operators/prox.hpp"

#include <algorithm>
#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::op {

void ProxOperator::apply(std::span<const double> x, double gamma,
                         std::span<double> out) const {
  ASYNCIT_CHECK(x.size() == out.size());
  for (std::size_t c = 0; c < x.size(); ++c) out[c] = prox(c, x[c], gamma);
}

double soft_threshold(double v, double t) {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return 0.0;
}

namespace {

class ZeroProx final : public ProxOperator {
 public:
  double prox(std::size_t, double v, double) const override { return v; }
  double value(std::span<const double>) const override { return 0.0; }
  std::string name() const override { return "zero"; }
};

class L1Prox final : public ProxOperator {
 public:
  explicit L1Prox(double lambda) : lambda_(lambda) {
    ASYNCIT_CHECK(lambda_ >= 0.0);
  }
  double prox(std::size_t, double v, double gamma) const override {
    return soft_threshold(v, gamma * lambda_);
  }
  double value(std::span<const double> x) const override {
    return lambda_ * la::norm1(x);
  }
  std::string name() const override { return "l1"; }

 private:
  double lambda_;
};

class SquaredL2Prox final : public ProxOperator {
 public:
  explicit SquaredL2Prox(double lambda) : lambda_(lambda) {
    ASYNCIT_CHECK(lambda_ >= 0.0);
  }
  double prox(std::size_t, double v, double gamma) const override {
    return v / (1.0 + gamma * lambda_);
  }
  double value(std::span<const double> x) const override {
    return 0.5 * lambda_ * la::norm2_sq(x);
  }
  std::string name() const override { return "squared-l2"; }

 private:
  double lambda_;
};

class ElasticNetProx final : public ProxOperator {
 public:
  ElasticNetProx(double l1, double l2) : l1_(l1), l2_(l2) {
    ASYNCIT_CHECK(l1_ >= 0.0 && l2_ >= 0.0);
  }
  double prox(std::size_t, double v, double gamma) const override {
    return soft_threshold(v, gamma * l1_) / (1.0 + gamma * l2_);
  }
  double value(std::span<const double> x) const override {
    return l1_ * la::norm1(x) + 0.5 * l2_ * la::norm2_sq(x);
  }
  std::string name() const override { return "elastic-net"; }

 private:
  double l1_;
  double l2_;
};

class BoxProx final : public ProxOperator {
 public:
  BoxProx(double lo, double hi) : lo_(lo), hi_(hi) {
    ASYNCIT_CHECK(lo_ <= hi_);
  }
  double prox(std::size_t, double v, double) const override {
    return std::clamp(v, lo_, hi_);
  }
  double value(std::span<const double>) const override { return 0.0; }
  std::string name() const override { return "box"; }

 private:
  double lo_;
  double hi_;
};

class LowerBoundProx final : public ProxOperator {
 public:
  explicit LowerBoundProx(la::Vector lower) : lower_(std::move(lower)) {}
  double prox(std::size_t coord, double v, double) const override {
    ASYNCIT_CHECK(coord < lower_.size());
    return std::max(v, lower_[coord]);
  }
  double value(std::span<const double>) const override { return 0.0; }
  std::string name() const override { return "lower-bound"; }

 private:
  la::Vector lower_;
};

}  // namespace

std::unique_ptr<ProxOperator> make_zero_prox() {
  return std::make_unique<ZeroProx>();
}
std::unique_ptr<ProxOperator> make_l1_prox(double lambda) {
  return std::make_unique<L1Prox>(lambda);
}
std::unique_ptr<ProxOperator> make_squared_l2_prox(double lambda) {
  return std::make_unique<SquaredL2Prox>(lambda);
}
std::unique_ptr<ProxOperator> make_elastic_net_prox(double l1, double l2) {
  return std::make_unique<ElasticNetProx>(l1, l2);
}
std::unique_ptr<ProxOperator> make_box_prox(double lo, double hi) {
  return std::make_unique<BoxProx>(lo, hi);
}
std::unique_ptr<ProxOperator> make_lower_bound_prox(la::Vector lower) {
  return std::make_unique<LowerBoundProx>(std::move(lower));
}

}  // namespace asyncit::op
