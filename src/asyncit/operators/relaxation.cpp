#include "asyncit/operators/relaxation.hpp"

#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::op {

SorJacobiOperator::SorJacobiOperator(const la::CsrMatrix& a, la::Vector b,
                                     double omega, la::Partition partition)
    : jacobi_(a, std::move(b), std::move(partition)), omega_(omega) {
  ASYNCIT_CHECK_MSG(omega_ > 0.0, "relaxation factor must be positive");
}

void SorJacobiOperator::apply_block(la::BlockId blk,
                                    std::span<const double> x,
                                    std::span<double> out,
                                    Workspace& ws) const {
  jacobi_.apply_block(blk, x, out, ws);
  const la::BlockRange r = partition().range(blk);
  for (std::size_t c = 0; c < out.size(); ++c) {
    const double xi = x[r.begin + c];
    out[c] = (1.0 - omega_) * xi + omega_ * out[c];
  }
}

std::string SorJacobiOperator::name() const {
  return "sor-jacobi(omega=" + std::to_string(omega_) + ")";
}

double SorJacobiOperator::contraction_bound() const {
  return std::abs(1.0 - omega_) + omega_ * jacobi_.contraction_bound();
}

double SorJacobiOperator::max_stable_omega() const {
  return 2.0 / (1.0 + jacobi_.contraction_bound());
}

ScaledGradientOperator::ScaledGradientOperator(const SmoothFunction& f,
                                               la::Vector curvatures,
                                               double damping,
                                               la::Partition partition)
    : f_(f), partition_(std::move(partition)) {
  ASYNCIT_CHECK(curvatures.size() == f_.dim());
  ASYNCIT_CHECK(partition_.dim() == f_.dim());
  ASYNCIT_CHECK_MSG(damping > 0.0 && damping <= 1.0,
                    "damping must be in (0, 1]");
  steps_.resize(curvatures.size());
  for (std::size_t i = 0; i < curvatures.size(); ++i) {
    ASYNCIT_CHECK_MSG(curvatures[i] > 0.0,
                      "curvature estimates must be positive");
    steps_[i] = damping / curvatures[i];
  }
}

void ScaledGradientOperator::apply_block(la::BlockId blk,
                                         std::span<const double> x,
                                         std::span<double> out,
                                         Workspace&) const {
  ASYNCIT_CHECK(x.size() == partition_.dim());
  const la::BlockRange r = partition_.range(blk);
  ASYNCIT_CHECK(out.size() == r.size());
  f_.partial_block(r.begin, r.end, x, out);
  for (std::size_t c = r.begin; c < r.end; ++c)
    out[c - r.begin] = x[c] - steps_[c] * out[c - r.begin];
}

}  // namespace asyncit::op
