#include "asyncit/transport/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>
#include <thread>

#include "asyncit/obs/metrics.hpp"
#include "asyncit/obs/trace_recorder.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/support/timer.hpp"
#include "asyncit/transport/pool.hpp"
#include "asyncit/transport/wire.hpp"

namespace asyncit::transport {

namespace {

constexpr std::uint32_t kHelloMagic = 0x48454C4F;  // "HELO"
constexpr int kPollMillis = 200;     ///< service-thread wakeup bound
constexpr int kDialBackoffMicros = 20000;
/// Elastic mode: minimum spacing between background redial attempts on
/// one link, and the budget for a single nonblocking connect.
constexpr double kRedialBackoffSeconds = 0.2;
constexpr double kDialAttemptSeconds = 0.25;
/// Elastic mode: per-link send-queue bound; beyond it the OLDEST frame is
/// dropped first (a fresher value supersedes it anyway — last-arrival
/// semantics).
constexpr std::size_t kMaxElasticQueue = 1024;

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ASYNCIT_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in resolve_ipv4(const std::string& host, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) == 1) return sa;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  ASYNCIT_CHECK(::getaddrinfo(host.c_str(), nullptr, &hints, &res) == 0 &&
                res != nullptr);
  sa.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return sa;
}

}  // namespace

// ----------------------------------------------------------- TcpEndpoint

class TcpEndpoint final : public Endpoint {
 public:
  std::uint32_t rank() const override { return rank_; }
  SendReceipt send(std::uint32_t dst, const MessageHeader& header,
                   std::span<const double> value, double now,
                   bool allow_drop) override;
  std::size_t receive(double now, std::vector<net::Message>& out) override;
  void recycle(std::vector<net::Message>& consumed) override;
  std::uint64_t activity() const override;
  void wait_for_activity(std::uint64_t seen,
                         double timeout_seconds) override;
  double next_delivery() const override;
  std::uint64_t sent() const override { return sent_; }
  std::uint64_t dropped() const override;
  std::uint64_t delivered() const override;
  net::DelayHistogram delays() const override;

 private:
  friend class TcpTransport;
  friend struct TcpTransport::Impl;

  /// One outgoing directed link: a queue of encoded frames drained by a
  /// dedicated writer thread. In elastic mode the writer also owns the
  /// connection life cycle (lazy dial / redial), so fd is atomic: the
  /// writer mutates it while send()/flush() peek at it.
  struct OutLink {
    std::uint32_t dst = 0;
    std::atomic<int> fd{-1};
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::vector<std::uint8_t>> queue;  ///< guarded by mu
    bool writing = false;                          ///< guarded by mu
    std::atomic<bool> closed{false};
    /// Frames discarded by the writer (unconnected / dead destination,
    /// elastic queue overflow) — part of the endpoint's dropped() count.
    std::atomic<std::uint64_t> tx_dropped{0};
    double next_dial_at = 0.0;  ///< writer-thread local backoff clock
  };

  /// One incoming directed link, serviced by a reader thread.
  struct InLink {
    std::uint32_t src = 0;
    int fd = -1;
    std::thread reader;
    /// Elastic rejoin: a fresh connection from the same rank supersedes
    /// this one (its fd is shut down; the reader exits; the shell stays
    /// for the teardown join).
    bool retired = false;  ///< guarded by the endpoint's in_mu_
  };

  TcpTransport::Impl* impl_ = nullptr;
  std::uint32_t rank_ = 0;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::vector<std::unique_ptr<OutLink>> out_;  ///< indexed by dst

  std::mutex in_mu_;  ///< guards in_ during the accept phase
  std::vector<std::unique_ptr<InLink>> in_;

  BytePool frame_pool_;
  MessagePool rx_pool_;

  mutable std::mutex rx_mu_;
  std::condition_variable rx_cv_;
  std::vector<net::Message> delivered_;     ///< guarded by rx_mu_
  std::uint64_t activity_ = 0;              ///< guarded by rx_mu_
  std::uint64_t delivered_count_ = 0;       ///< guarded by rx_mu_
  net::DelayHistogram delays_;              ///< guarded by rx_mu_

  // Touched only by the owning peer thread; read by the orchestrator
  // after the peers are joined (join orders the accesses).
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

// ------------------------------------------------------------------ Impl

struct TcpTransport::Impl {
  TcpOptions options;
  std::vector<std::uint32_t> locals;
  std::vector<bool> expected_ranks;  ///< startup rendezvous set (by rank)
  std::vector<std::unique_ptr<TcpEndpoint>> endpoints;  ///< by world rank
  WallTimer clock;  ///< arrival timestamps (receiver-local intervals only)
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> bad_frames{0};
  int stop_pipe_[2] = {-1, -1};
  std::mutex reg_mu;
  std::condition_variable reg_cv;
  std::size_t pending_incoming = 0;  ///< rendezvous countdown, guarded by reg_mu

  /// Metrics handles, registered once at start(); hot paths update them
  /// only while a run has observability on (obs::tracing_on()).
  obs::Counter* m_tx_frames = nullptr;
  obs::Counter* m_tx_bytes = nullptr;
  obs::Counter* m_rx_frames = nullptr;
  obs::Counter* m_rx_bytes = nullptr;
  obs::Counter* m_tx_drops = nullptr;
  obs::Counter* m_redials = nullptr;
  obs::Counter* m_bad_frames = nullptr;

  ~Impl() { shutdown(); }

  void shutdown();
  void start(TcpOptions opts);
  int dial(std::uint32_t dst, double deadline) const;
  /// Single bounded nonblocking connect + hello (elastic redial path).
  /// Returns the connected fd or -1; never throws, never retries.
  int try_dial(std::uint32_t src_rank, std::uint32_t dst,
               double timeout) const;
  /// Writer-side connection upkeep (elastic): redial when unconnected or
  /// dead, rate-limited by kRedialBackoffSeconds. True when usable.
  bool ensure_connected(TcpEndpoint* ep, TcpEndpoint::OutLink* link);
  void accept_loop(TcpEndpoint* ep);
  void reader_loop(TcpEndpoint* ep, TcpEndpoint::InLink* link);
  void writer_loop(TcpEndpoint* ep, TcpEndpoint::OutLink* link);
  bool write_all(TcpEndpoint::OutLink* link,
                 std::span<const std::uint8_t> bytes);
  bool read_exact(int fd, std::uint8_t* out, std::size_t n,
                  double deadline) const;
};

void TcpTransport::Impl::start(TcpOptions opts) {
  options = std::move(opts);
  const std::size_t world = options.nodes.size();
  ASYNCIT_CHECK(world >= 2);
  locals = options.local_ranks;
  if (locals.empty())
    for (std::size_t r = 0; r < world; ++r)
      locals.push_back(static_cast<std::uint32_t>(r));
  for (const std::uint32_t r : locals) ASYNCIT_CHECK(r < world);
  for (std::size_t r = 0; r < world; ++r) {
    const bool local =
        std::find(locals.begin(), locals.end(), r) != locals.end();
    // A remote rank must be dialable from the config alone.
    ASYNCIT_CHECK(local || options.nodes[r].port != 0);
  }
  // The startup rendezvous set: everyone in the static mesh, only the
  // configured subset in elastic mode (absent slots join later).
  std::vector<bool> expected(world, !options.elastic);
  if (options.elastic) {
    for (const std::uint32_t r : options.expected_ranks) {
      ASYNCIT_CHECK(r < world);
      expected[r] = true;
    }
  }
  auto& registry = obs::MetricsRegistry::instance();
  m_tx_frames = &registry.counter("tcp.tx_frames");
  m_tx_bytes = &registry.counter("tcp.tx_bytes");
  m_rx_frames = &registry.counter("tcp.rx_frames");
  m_rx_bytes = &registry.counter("tcp.rx_bytes");
  m_tx_drops = &registry.counter("tcp.tx_drops");
  m_redials = &registry.counter("tcp.redials");
  m_bad_frames = &registry.counter("tcp.bad_frames");

  ASYNCIT_CHECK(::pipe(stop_pipe_) == 0);
  set_nonblocking(stop_pipe_[0]);

  endpoints.resize(world);
  // Phase 1: bind + listen every local rank, resolving auto-ports so the
  // dial phase below sees the real numbers.
  for (const std::uint32_t r : locals) {
    auto ep = std::make_unique<TcpEndpoint>();
    ep->impl_ = this;
    ep->rank_ = r;
    ep->out_.resize(world);
    for (std::size_t dst = 0; dst < world; ++dst) {
      ep->out_[dst] = std::make_unique<TcpEndpoint::OutLink>();
      ep->out_[dst]->dst = static_cast<std::uint32_t>(dst);
    }
    ep->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASYNCIT_CHECK(ep->listen_fd_ >= 0);
    int one = 1;
    ::setsockopt(ep->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_ANY);
    sa.sin_port = htons(options.nodes[r].port);
    ASYNCIT_CHECK(::bind(ep->listen_fd_,
                         reinterpret_cast<const sockaddr*>(&sa),
                         sizeof(sa)) == 0);
    socklen_t len = sizeof(sa);
    ASYNCIT_CHECK(::getsockname(ep->listen_fd_,
                                reinterpret_cast<sockaddr*>(&sa),
                                &len) == 0);
    options.nodes[r].port = ntohs(sa.sin_port);
    ASYNCIT_CHECK(::listen(ep->listen_fd_,
                           static_cast<int>(world)) == 0);
    endpoints[r] = std::move(ep);
  }
  // Phase 2: acceptors run while we dial, so local<->local pairs (the
  // in-process loopback mesh) rendezvous without any ordering games.
  // Expected incoming: one hello per expected non-self rank per local
  // endpoint (non-expected slots dial in whenever they start).
  std::size_t expected_peers = 0;
  for (std::size_t r = 0; r < world; ++r)
    if (expected[r]) ++expected_peers;
  pending_incoming = 0;
  for (const std::uint32_t r : locals)
    pending_incoming += expected_peers - (expected[r] ? 1 : 0);
  expected_ranks = std::move(expected);
  for (const std::uint32_t r : locals) {
    TcpEndpoint* ep = endpoints[r].get();
    ep->acceptor_ = std::thread([this, ep] { accept_loop(ep); });
  }
  // Phase 3: dial every EXPECTED destination from every local rank and
  // say hello; writers for the remaining slots start unconnected and
  // (in elastic mode) dial lazily once traffic for them appears.
  const double deadline =
      clock.seconds() + options.connect_timeout_seconds;
  for (const std::uint32_t r : locals) {
    TcpEndpoint* ep = endpoints[r].get();
    for (std::uint32_t dst = 0; dst < world; ++dst) {
      if (dst == r) continue;
      TcpEndpoint::OutLink* link = ep->out_[dst].get();
      if (expected_ranks[dst]) {
        const int fd = dial(dst, deadline);
        std::uint8_t hello[8];
        for (int i = 0; i < 4; ++i)
          hello[i] = static_cast<std::uint8_t>(kHelloMagic >> (8 * i));
        for (int i = 0; i < 4; ++i)
          hello[4 + i] = static_cast<std::uint8_t>(r >> (8 * i));
        ASYNCIT_CHECK(::send(fd, hello, sizeof(hello), MSG_NOSIGNAL) ==
                      static_cast<ssize_t>(sizeof(hello)));
        set_nodelay(fd);
        set_nonblocking(fd);
        link->fd.store(fd, std::memory_order_relaxed);
      }
      link->writer = std::thread([this, ep, link] { writer_loop(ep, link); });
    }
  }
  // Phase 4: wait until every local rank has its expected incoming links.
  {
    std::unique_lock<std::mutex> lock(reg_mu);
    const bool ok = reg_cv.wait_for(
        lock,
        std::chrono::duration<double>(
            std::max(0.0, deadline - clock.seconds()) + 1e-3),
        [&] { return pending_incoming == 0; });
    ASYNCIT_CHECK(ok);  // rendezvous timeout: a peer process never showed
  }
}

int TcpTransport::Impl::dial(std::uint32_t dst, double deadline) const {
  const sockaddr_in sa =
      resolve_ipv4(options.nodes[dst].host, options.nodes[dst].port);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASYNCIT_CHECK(fd >= 0);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa),
                  sizeof(sa)) == 0)
      return fd;
    ::close(fd);
    ASYNCIT_CHECK(clock.seconds() < deadline);  // rendezvous timeout
    ::usleep(kDialBackoffMicros);
  }
}

int TcpTransport::Impl::try_dial(std::uint32_t src_rank, std::uint32_t dst,
                                 double timeout) const {
  const sockaddr_in sa =
      resolve_ipv4(options.nodes[dst].host, options.nodes[dst].port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  set_nonblocking(fd);
  const double deadline = clock.seconds() + timeout;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    for (;;) {
      pollfd p[2] = {{fd, POLLOUT, 0}, {stop_pipe_[0], POLLIN, 0}};
      ::poll(p, 2, kPollMillis);
      if (p[0].revents & POLLOUT) break;
      if (stopping.load(std::memory_order_relaxed) ||
          clock.seconds() > deadline) {
        ::close(fd);
        return -1;
      }
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return -1;
    }
  }
  // Hello: 8 bytes into an empty send buffer — completes immediately on
  // any healthy connection (the poll covers a pathological one).
  std::uint8_t hello[8];
  for (int i = 0; i < 4; ++i)
    hello[i] = static_cast<std::uint8_t>(kHelloMagic >> (8 * i));
  for (int i = 0; i < 4; ++i)
    hello[4 + i] = static_cast<std::uint8_t>(src_rank >> (8 * i));
  std::size_t off = 0;
  while (off < sizeof(hello)) {
    const ssize_t k =
        ::send(fd, hello + off, sizeof(hello) - off, MSG_NOSIGNAL);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (clock.seconds() > deadline) break;
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, kPollMillis);
      continue;
    }
    break;
  }
  if (off != sizeof(hello)) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

bool TcpTransport::Impl::ensure_connected(TcpEndpoint* ep,
                                          TcpEndpoint::OutLink* link) {
  const int fd = link->fd.load(std::memory_order_relaxed);
  if (fd >= 0 && !link->closed.load(std::memory_order_relaxed)) return true;
  if (!options.elastic || stopping.load(std::memory_order_relaxed))
    return false;
  const double t = clock.seconds();
  if (t < link->next_dial_at) return false;
  link->next_dial_at = t + kRedialBackoffSeconds;
  const int nfd = try_dial(ep->rank_, link->dst, kDialAttemptSeconds);
  if (obs::tracing_on()) m_redials->add();
  obs::record(obs::EventType::kRedial, 0, link->dst, nfd >= 0 ? 1 : 0, t);
  if (nfd < 0) return false;
  if (fd >= 0) ::close(fd);
  link->fd.store(nfd, std::memory_order_relaxed);
  link->closed.store(false, std::memory_order_relaxed);
  return true;
}

bool TcpTransport::Impl::read_exact(int fd, std::uint8_t* out,
                                    std::size_t n, double deadline) const {
  std::size_t off = 0;
  while (off < n) {
    pollfd p[2] = {{fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    ::poll(p, 2, kPollMillis);
    if (stopping.load(std::memory_order_relaxed) ||
        clock.seconds() > deadline)
      return false;
    const ssize_t k = ::recv(fd, out + off, n - off, 0);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
    } else if (k == 0) {
      return false;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return false;
    }
  }
  return true;
}

void TcpTransport::Impl::accept_loop(TcpEndpoint* ep) {
  // Static mesh: exit once every expected hello arrived. Elastic: run
  // for the transport's lifetime — late joiners and crash-rejoins dial
  // in whenever they come up.
  std::size_t expect = 0;
  for (std::size_t r = 0; r < expected_ranks.size(); ++r)
    if (expected_ranks[r] && r != ep->rank_) ++expect;
  std::vector<bool> counted(options.nodes.size(), false);
  std::size_t registered = 0;
  while (!stopping.load(std::memory_order_relaxed) &&
         (options.elastic || registered < expect)) {
    pollfd p[2] = {{ep->listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    ::poll(p, 2, kPollMillis);
    if (!(p[0].revents & POLLIN)) continue;
    const int fd = ::accept(ep->listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_nonblocking(fd);
    std::uint8_t hello[8];
    const double hello_deadline = clock.seconds() + 10.0;
    if (!read_exact(fd, hello, sizeof(hello), hello_deadline)) {
      ::close(fd);
      continue;
    }
    std::uint32_t magic = 0, src = 0;
    for (int i = 0; i < 4; ++i) magic |= std::uint32_t(hello[i]) << (8 * i);
    for (int i = 0; i < 4; ++i)
      src |= std::uint32_t(hello[4 + i]) << (8 * i);
    if (magic != kHelloMagic || src >= options.nodes.size() ||
        src == ep->rank_) {
      ::close(fd);  // not one of ours
      continue;
    }
    set_nodelay(fd);
    auto link = std::make_unique<TcpEndpoint::InLink>();
    link->src = src;
    link->fd = fd;
    TcpEndpoint::InLink* raw = link.get();
    {
      std::lock_guard<std::mutex> lock(ep->in_mu_);
      TcpEndpoint::InLink* existing = nullptr;
      for (const auto& l : ep->in_)
        if (l->src == src && !l->retired) existing = l.get();
      if (existing != nullptr) {
        if (!options.elastic) {
          // One incoming link per source rank: a duplicate hello (a
          // stale process from a previous run on a recycled port, a
          // retried dial) must not consume a rendezvous slot, or the
          // mesh would "complete" while the genuine peer sits unread in
          // the listen backlog.
          ::close(fd);
          continue;
        }
        // Elastic rejoin: the fresh connection supersedes the stale one.
        // Shutting the old fd down unblocks its reader (which exits);
        // the shell stays in in_ for the teardown join.
        existing->retired = true;
        ::shutdown(existing->fd, SHUT_RDWR);
      }
      ep->in_.push_back(std::move(link));
    }
    raw->reader = std::thread([this, ep, raw] { reader_loop(ep, raw); });
    if (expected_ranks[src] && !counted[src]) {
      counted[src] = true;
      ++registered;
      {
        std::lock_guard<std::mutex> lock(reg_mu);
        --pending_incoming;
      }
      reg_cv.notify_all();
    }
  }
}

void TcpTransport::Impl::reader_loop(TcpEndpoint* ep,
                                     TcpEndpoint::InLink* link) {
  std::vector<std::uint8_t> buf;
  buf.reserve(1 << 16);
  std::uint8_t tmp[16384];
  while (!stopping.load(std::memory_order_relaxed)) {
    pollfd p[2] = {{link->fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    ::poll(p, 2, kPollMillis);
    if (!(p[0].revents & (POLLIN | POLLHUP | POLLERR))) continue;
    const ssize_t n = ::recv(link->fd, tmp, sizeof(tmp), 0);
    if (n == 0) return;  // peer closed (clean departure)
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        continue;
      return;
    }
    buf.insert(buf.end(), tmp, tmp + n);
    std::size_t off = 0;
    bool notify = false;
    while (off < buf.size()) {
      net::Message m = ep->rx_pool_.acquire();
      std::size_t consumed = 0;
      const DecodeStatus st = decode_frame(
          std::span<const std::uint8_t>(buf.data() + off, buf.size() - off),
          consumed, m,
          options.max_frame_doubles != 0 ? options.max_frame_doubles
                                         : kMaxPayloadDoubles);
      if (st == DecodeStatus::kOk) {
        off += consumed;
        if (obs::tracing_on()) {
          m_rx_frames->add();
          m_rx_bytes->add(consumed);
        }
        m.deliver_at = clock.seconds();  // arrival stamp (transport clock)
        {
          std::lock_guard<std::mutex> lock(ep->rx_mu_);
          ep->delivered_.push_back(std::move(m));
          ++ep->activity_;
        }
        notify = true;
      } else {
        ep->rx_pool_.recycle(std::move(m));
        if (st == DecodeStatus::kNeedMore) break;
        // Corrupt stream: count it and kill the connection — a broken
        // framing layer can never resynchronize safely. shutdown() (not
        // just exiting the reader) makes the SENDER's next write fail,
        // so its writer marks the link closed instead of blocking
        // forever against a kernel buffer nobody drains.
        bad_frames.fetch_add(1, std::memory_order_relaxed);
        if (obs::tracing_on()) m_bad_frames->add();
        // sub=0xFF: wire-invalid (transport reader), vs. the peer-level
        // semantic rejects which carry the MsgKind.
        obs::record(obs::EventType::kFrameReject, 0xFF, link->src, 0, 0.0);
        ::shutdown(link->fd, SHUT_RDWR);
        if (notify) ep->rx_cv_.notify_one();
        return;
      }
    }
    if (notify) ep->rx_cv_.notify_one();
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

bool TcpTransport::Impl::write_all(TcpEndpoint::OutLink* link,
                                   std::span<const std::uint8_t> bytes) {
  const int fd = link->fd.load(std::memory_order_relaxed);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t k = ::send(fd, bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (k >= 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd p[2] = {{fd, POLLOUT, 0}, {stop_pipe_[0], POLLIN, 0}};
      ::poll(p, 2, kPollMillis);
      if (stopping.load(std::memory_order_relaxed)) return false;
      continue;
    }
    if (errno == EINTR) continue;
    link->closed.store(true, std::memory_order_relaxed);
    return false;  // peer gone (EPIPE/ECONNRESET): drop from here on
  }
  return true;
}

void TcpTransport::Impl::writer_loop(TcpEndpoint* ep,
                                     TcpEndpoint::OutLink* link) {
  std::vector<std::vector<std::uint8_t>> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(link->mu);
      link->cv.wait(lock, [&] {
        return !link->queue.empty() ||
               stopping.load(std::memory_order_relaxed);
      });
      if (link->queue.empty()) return;  // stopping, fully drained
      batch.swap(link->queue);
      link->writing = true;
    }
    if (obs::tracing_full()) {
      // Per-link send-queue depth at drain time: the live backpressure
      // signal of the wire (counter track in the exported trace).
      std::size_t bytes = 0;
      for (const auto& f : batch) bytes += f.size();
      obs::record(obs::EventType::kQueueDepth,
                  static_cast<std::uint8_t>(obs::QueueKind::kTcpWriter),
                  link->dst, batch.size(), double(bytes));
    }
    // Elastic links own their connection: (re)dial before draining. A
    // batch for an unreachable destination is discarded — the medium is
    // down, and the totally asynchronous regime treats that as loss.
    const bool usable = ensure_connected(ep, link);
    for (auto& frame : batch) {
      if (usable && !link->closed.load(std::memory_order_relaxed)) {
        write_all(link, frame);
        if (obs::tracing_on()) {
          m_tx_frames->add();
          m_tx_bytes->add(frame.size());
        }
      } else {
        link->tx_dropped.fetch_add(1, std::memory_order_relaxed);
        if (obs::tracing_on()) m_tx_drops->add();
        obs::record(obs::EventType::kFrameDrop, 0, link->dst, batch.size(),
                    0.0);
      }
      ep->frame_pool_.recycle(std::move(frame));
    }
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(link->mu);
      link->writing = false;
    }
    link->cv.notify_all();  // flush() waiters
  }
}

void TcpTransport::Impl::shutdown() {
  stopping.store(true, std::memory_order_relaxed);
  if (stop_pipe_[1] >= 0) {
    const std::uint8_t b = 1;
    [[maybe_unused]] const ssize_t r = ::write(stop_pipe_[1], &b, 1);
  }
  for (auto& ep : endpoints) {
    if (!ep) continue;
    for (auto& link : ep->out_) {
      // Lock the link mutex before notifying: a writer that already
      // evaluated its wait predicate (stopping still false) but has not
      // yet blocked would otherwise miss this notification forever and
      // hang the join below (classic lost wakeup).
      { std::lock_guard<std::mutex> lock(link->mu); }
      link->cv.notify_all();
    }
    if (ep->acceptor_.joinable()) ep->acceptor_.join();
  }
  for (auto& ep : endpoints) {
    if (!ep) continue;
    for (auto& link : ep->in_)
      if (link->reader.joinable()) link->reader.join();
    for (auto& link : ep->out_)
      if (link->writer.joinable()) link->writer.join();
    for (auto& link : ep->in_) close_if_open(link->fd);
    for (auto& link : ep->out_) {
      const int fd = link->fd.exchange(-1, std::memory_order_relaxed);
      if (fd >= 0) ::close(fd);
    }
    close_if_open(ep->listen_fd_);
  }
  close_if_open(stop_pipe_[0]);
  close_if_open(stop_pipe_[1]);
}

// ------------------------------------------------- TcpEndpoint methods

SendReceipt TcpEndpoint::send(std::uint32_t dst, const MessageHeader& header,
                              std::span<const double> value, double now,
                              bool /*allow_drop*/) {
  ASYNCIT_CHECK(dst < out_.size() && dst != rank_);
  ++sent_;
  OutLink* link = out_[dst].get();
  const bool elastic = impl_->options.elastic;
  // Static mesh: a closed link stays closed, drop at the door. Elastic:
  // enqueue anyway — the writer redials in the background (the
  // destination may be rejoining) and discards what it cannot deliver.
  if (!elastic && link->closed.load(std::memory_order_relaxed)) {
    ++dropped_;
    obs::record(obs::EventType::kFrameDrop,
                static_cast<std::uint8_t>(header.kind), dst, 0, 0.0);
    return {false, now, now};
  }
  // A block broadcast encodes once PER DESTINATION even though the bytes
  // are identical: sharing one frame across link queues would need a
  // refcounted pool entry (a plain shared_ptr allocates per broadcast,
  // breaking the zero-alloc contract), and the encode is a ~block-sized
  // memcpy — cheap next to the socket write it feeds.
  std::vector<std::uint8_t> frame = frame_pool_.acquire();
  encode_frame(rank_, header, value, now, frame);
  {
    std::lock_guard<std::mutex> lock(link->mu);
    if (elastic && link->queue.size() >= kMaxElasticQueue) {
      // Bounded queue toward an unreachable destination: the OLDEST
      // frame is the least valuable (a fresher value supersedes it).
      frame_pool_.recycle(std::move(link->queue.front()));
      link->queue.erase(link->queue.begin());
      ++dropped_;
      obs::record(obs::EventType::kFrameDrop, 0, dst, kMaxElasticQueue, 0.0);
    }
    link->queue.push_back(std::move(frame));
  }
  link->cv.notify_one();
  return {true, now, now};
}

std::size_t TcpEndpoint::receive(double now,
                                 std::vector<net::Message>& out) {
  std::lock_guard<std::mutex> lock(rx_mu_);
  const std::size_t n = delivered_.size();
  if (n == 0) return 0;
  const double drain_time = impl_->clock.seconds();
  for (net::Message& m : delivered_) {
    // m.deliver_at holds the arrival stamp on the transport clock; the
    // measured delay is the receiver-observable queueing interval.
    const double delay = std::max(0.0, drain_time - m.deliver_at);
    delays_.add(delay);
    m.t_send = now - delay;
    m.deliver_at = now;
    out.push_back(std::move(m));
  }
  delivered_.clear();
  delivered_count_ += n;
  return n;
}

void TcpEndpoint::recycle(std::vector<net::Message>& consumed) {
  for (net::Message& m : consumed) rx_pool_.recycle(std::move(m));
  consumed.clear();
}

std::uint64_t TcpEndpoint::activity() const {
  std::lock_guard<std::mutex> lock(rx_mu_);
  return activity_;
}

void TcpEndpoint::wait_for_activity(std::uint64_t seen,
                                    double timeout_seconds) {
  std::unique_lock<std::mutex> lock(rx_mu_);
  rx_cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                  [&] { return activity_ > seen; });
}

double TcpEndpoint::next_delivery() const {
  return std::numeric_limits<double>::infinity();
}

std::uint64_t TcpEndpoint::dropped() const {
  // Accepted-then-undeliverable frames (writer-side discards on dead or
  // never-connected links) count alongside the at-the-door drops.
  std::uint64_t n = dropped_;
  for (const auto& link : out_)
    n += link->tx_dropped.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t TcpEndpoint::delivered() const {
  std::lock_guard<std::mutex> lock(rx_mu_);
  return delivered_count_;
}

net::DelayHistogram TcpEndpoint::delays() const {
  std::lock_guard<std::mutex> lock(rx_mu_);
  return delays_;
}

// ------------------------------------------------- TcpTransport facade

TcpTransport::TcpTransport(TcpOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->start(std::move(options));
}

TcpTransport::~TcpTransport() = default;

std::size_t TcpTransport::world() const {
  return impl_->options.nodes.size();
}

std::vector<std::uint32_t> TcpTransport::local_ranks() const {
  return impl_->locals;
}

Endpoint& TcpTransport::endpoint(std::uint32_t rank) {
  ASYNCIT_CHECK(rank < impl_->endpoints.size() &&
                impl_->endpoints[rank] != nullptr);
  return *impl_->endpoints[rank];
}

void TcpTransport::flush(double timeout_seconds) {
  const double deadline = impl_->clock.seconds() + timeout_seconds;
  for (auto& ep : impl_->endpoints) {
    if (!ep) continue;
    for (auto& link : ep->out_) {
      if (!impl_->options.elastic &&
          link->fd.load(std::memory_order_relaxed) < 0)
        continue;
      std::unique_lock<std::mutex> lock(link->mu);
      link->cv.wait_for(
          lock,
          std::chrono::duration<double>(
              std::max(0.0, deadline - impl_->clock.seconds())),
          [&] { return link->queue.empty() && !link->writing; });
    }
  }
}

std::uint16_t TcpTransport::port_of(std::uint32_t rank) const {
  ASYNCIT_CHECK(rank < impl_->options.nodes.size());
  return impl_->options.nodes[rank].port;
}

std::uint64_t TcpTransport::bad_frames() const {
  return impl_->bad_frames.load(std::memory_order_relaxed);
}

}  // namespace asyncit::transport
