#include "asyncit/transport/codec.hpp"

#include <cmath>

#include "asyncit/support/check.hpp"

namespace asyncit::transport::codec {

QuantParams choose_quant_params(std::span<const double> v, unsigned bits) {
  ASYNCIT_CHECK(!v.empty());
  ASYNCIT_CHECK(bits == 8 || bits == 16);
  double lo = v[0], hi = v[0];
  for (const double x : v) {
    if (x < lo) lo = x;
    if (x > hi) hi = x;
  }
  QuantParams p;
  p.min = lo;
  const double levels = static_cast<double>((1u << bits) - 1);
  p.scale = hi > lo ? (hi - lo) / levels : 1.0;
  return p;
}

std::uint32_t quantize(const QuantParams& p, unsigned bits, double v) {
  const std::uint32_t max_q = (1u << bits) - 1;
  const double q = std::round((v - p.min) / p.scale);
  if (!(q > 0.0)) return 0;  // also catches NaN
  if (q >= static_cast<double>(max_q)) return max_q;
  return static_cast<std::uint32_t>(q);
}

void roundtrip(std::span<double> v, const QuantParams& p, unsigned bits) {
  for (double& x : v) x = dequant(p.min, p.scale, quantize(p, bits, x));
}

Window best_window(std::span<const double> cur,
                   std::span<const double> last, std::size_t max_len) {
  ASYNCIT_CHECK(cur.size() == last.size());
  ASYNCIT_CHECK(max_len >= 1);
  const std::size_t n = cur.size();
  Window w;
  if (n <= max_len) {
    w.count = n;
    return w;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < max_len; ++i)
    sum += std::abs(cur[i] - last[i]);
  double best = sum;
  w.count = max_len;
  for (std::size_t s = 1; s + max_len <= n; ++s) {
    sum += std::abs(cur[s + max_len - 1] - last[s + max_len - 1]) -
           std::abs(cur[s - 1] - last[s - 1]);
    if (sum > best) {
      best = sum;
      w.offset = s;
    }
  }
  return w;
}

}  // namespace asyncit::transport::codec
