// Pluggable wire transport for the message-passing runtime.
//
// net::Peer used to talk straight to in-process Mailbox queues, so the
// "distributed" runtime could only ever simulate communication effects
// inside one address space. transport/ puts an interface between the peer
// loop and the medium: a Transport owns the communication fabric of a run
// (one Endpoint per locally hosted rank), and a peer sends/receives/waits
// exclusively through its Endpoint. Three backends implement it:
//
//   inproc  (transport/inproc.hpp)  the seeded mailbox channels of PR 1
//           refactored behind the interface — byte-for-byte the same
//           latency/drop draw sequences, so channel replay determinism is
//           unchanged;
//   tcp     (transport/tcp.hpp)     nonblocking POSIX sockets over
//           loopback/LAN with the length-prefixed wire format of
//           transport/wire.hpp and per-peer reader/writer threads — ranks
//           may live in DIFFERENT PROCESSES (see net::run_node and
//           tools/asyncit_node.cpp);
//   chaos   (transport/chaos.hpp)   a decorator over any backend that
//           injects the paper's delay/reorder/drop models at the frame
//           level, so delay-model experiments run unchanged over real
//           sockets.
//
// Allocation discipline: the send/receive path is allocation-free in
// steady state. Payload buffers and wire frames are recycled through
// transport/pool.hpp pools with the same discipline as op::Workspace —
// every acquire is matched by a recycle, capacity is retained, and after
// warm-up the pools serve every message (pinned by tests/alloc_test.cpp).
//
// Threading contract: one Endpoint is driven by exactly ONE peer thread
// (send/receive/recycle/wait are called from it alone); backends may run
// internal service threads (TCP readers/writers) that synchronize with
// the peer thread internally. Stats accessors are safe after the run has
// quiesced (peers joined); delays() returns a copy for that reason.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "asyncit/net/channel.hpp"

namespace asyncit::transport {

/// Sender-side description of an outgoing message; the Endpoint fills in
/// src (its own rank) and the timing fields.
struct MessageHeader {
  la::BlockId block = 0;
  model::Step tag = 0;
  std::uint64_t round = 0;
  std::uint32_t offset = 0;  ///< partial-block frames (see net::Message)
  bool partial = false;
  /// Partial-range frame that nonetheless finishes the sender's round —
  /// the delta layer emits exactly one complete frame per (block, round)
  /// so gated modes (SSP/BSP) count rounds identically with delta on.
  bool complete = false;
  net::MsgKind kind = net::MsgKind::kValue;
  /// Chaos-drawn latency riding the wire (see net::Message); backends
  /// forward it verbatim. 0 outside the chaos decorator.
  double injected_delay = 0.0;
  /// Scalar-quantization lattice (codec frames only; 0 bits = raw
  /// doubles). The payload the peer hands to send() is ALREADY
  /// roundtripped onto these lattice points: inproc/chaos/simnet deliver
  /// the doubles as-is, the TCP backend re-quantizes (exactly) into a
  /// codec wire frame and the decoder dequantizes with the same params.
  std::uint8_t quant_bits = 0;
  double quant_min = 0.0;
  double quant_scale = 0.0;
};

/// What happened to one send, for trace logging. `deliver_at` is the
/// scheduled (inproc/chaos) or nominal (tcp: == t_send) delivery time.
struct SendReceipt {
  bool sent = false;  ///< false: dropped by the link's loss model
  double t_send = 0.0;
  double deliver_at = 0.0;
};

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual std::uint32_t rank() const = 0;

  /// Sends `value` (a block or sub-block payload) to rank `dst`. `now` is
  /// the run clock in seconds; `allow_drop` gates the loss model exactly
  /// like the pre-transport LinkStamper path (only the totally
  /// asynchronous mode tolerates loss).
  virtual SendReceipt send(std::uint32_t dst, const MessageHeader& header,
                           std::span<const double> value, double now,
                           bool allow_drop) = 0;

  /// Appends every message deliverable at `now` to `out` (delivery order)
  /// and returns the number appended. Ownership of the payload buffers
  /// moves to the caller until recycle().
  virtual std::size_t receive(double now, std::vector<net::Message>& out) = 0;

  /// Returns consumed messages' payload buffers to the endpoint's pool
  /// and clears `consumed`. Call after incorporating a receive() batch;
  /// this is what keeps the steady-state path allocation-free.
  virtual void recycle(std::vector<net::Message>& consumed) = 0;

  /// Monotone counter bumped whenever new data may have become
  /// receivable (a post / a frame arrival). Read it BEFORE the last
  /// receive() and pass it to wait_for_activity: an arrival landing in
  /// between can then never be slept through.
  virtual std::uint64_t activity() const = 0;

  /// Blocks until activity() exceeds `seen` or the timeout passes.
  virtual void wait_for_activity(std::uint64_t seen,
                                 double timeout_seconds) = 0;

  /// Earliest scheduled delivery among internally held messages (+inf
  /// when none) — lets gate waits sleep exactly until maturation.
  virtual double next_delivery() const = 0;

  // ---- statistics (stable once the run has quiesced) ----
  virtual std::uint64_t sent() const = 0;     ///< stamped (incl. dropped)
  virtual std::uint64_t dropped() const = 0;
  virtual std::uint64_t delivered() const = 0;
  /// Measured per-message delays at this receiver (see each backend's
  /// header for what interval is measured).
  virtual net::DelayHistogram delays() const = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Total number of ranks in the run (across all processes).
  virtual std::size_t world() const = 0;

  /// Ranks hosted by THIS process (every one has an endpoint()).
  virtual std::vector<std::uint32_t> local_ranks() const = 0;

  /// The endpoint of a locally hosted rank.
  virtual Endpoint& endpoint(std::uint32_t rank) = 0;

  virtual const char* backend() const = 0;

  /// Best-effort drain of outbound queues (a node broadcasts its stop
  /// control frame and must not tear the fabric down under it). Default:
  /// nothing buffered, nothing to do.
  virtual void flush(double /*timeout_seconds*/) {}

  /// Wire-invalid frames observed across local receivers (corrupted or
  /// foreign byte streams; see TcpTransport). Backends without a framed
  /// medium have none. Part of the uniform counter schema every node
  /// reports (MpResult::bad_frames / the asyncit-node/1 JSON).
  virtual std::uint64_t bad_frames() const { return 0; }
};

}  // namespace asyncit::transport
