// Lossy frame codec: windowed top-k sparsification + scalar quantization.
//
// The delta layer in net::Peer ships only the components that changed
// since the last frame on a (link, block) pair. This module adds the two
// classic bandwidth levers on top of that, both OFF by default:
//
//   top-k      when the dirty range is wider than wire_topk, send the
//              contiguous window of at most wire_topk components that
//              captures the most |change| mass. Components outside the
//              window stay DIRTY on the sender — they are deferred to a
//              later frame, never silently dropped — so the scheme is a
//              communication reordering, not an information loss, and
//              the wire format keeps its single (offset, count) range.
//   quantize   map the window's doubles onto 2^bits uniform levels
//              between the window min and max (bits in {8, 16}) and ship
//              packed integers behind the codec frame flag.
//
// Determinism contract: dequant() below is the ONE arithmetic that turns
// a level index back into a double. The sender roundtrips its values
// through quantize+dequant BEFORE handing them to Endpoint::send, so the
// doubles it records as "last sent" and the doubles every backend
// delivers (inproc/chaos/simnet hand the roundtripped vector over
// directly; TCP re-quantizes — exact, because the values are already on
// lattice points — and the decoder dequantizes with the same min/scale
// carried in the subheader) are bit-identical. That is what makes the
// compressed world replayable and the parity gates meaningful.
//
// Everything here is allocation-free: spans in, spans/scalars out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace asyncit::transport::codec {

/// Codec id carried in the subheader (the only one defined).
inline constexpr std::uint8_t kCodecScalarQuant = 1;

/// Packed payload bytes for `count` components at `bits` bits each.
inline constexpr std::size_t quant_payload_bytes(std::size_t count,
                                                 unsigned bits) {
  return (count * bits + 7) / 8;
}

/// Level index -> double. Every decode path MUST use this (and not
/// re-derive the lattice) so all backends agree to the last ulp.
inline double dequant(double quant_min, double quant_scale,
                      std::uint32_t q) {
  return quant_min + quant_scale * static_cast<double>(q);
}

struct QuantParams {
  double min = 0.0;
  double scale = 1.0;
};

/// Lattice spanning [min(v), max(v)] with 2^bits levels. A constant
/// window gets scale 1.0 so quantize() maps everything to level 0 and
/// dequant() reproduces the constant exactly.
QuantParams choose_quant_params(std::span<const double> v, unsigned bits);

/// Nearest level index, clamped to [0, 2^bits - 1].
std::uint32_t quantize(const QuantParams& p, unsigned bits, double v);

/// In-place v[i] <- dequant(quantize(v[i])): the sender-side roundtrip
/// that puts the payload on lattice points before it reaches the wire.
void roundtrip(std::span<double> v, const QuantParams& p, unsigned bits);

struct Window {
  std::size_t offset = 0;  ///< relative to the spans passed in
  std::size_t count = 0;
};

/// The contiguous window of length <= max_len that maximizes
/// sum |cur[i] - last[i]| (sliding-window scan, ties to the leftmost).
/// cur and last must be the same size; max_len >= 1.
Window best_window(std::span<const double> cur,
                   std::span<const double> last, std::size_t max_len);

}  // namespace asyncit::transport::codec
