#include "asyncit/transport/chaos.hpp"

#include <algorithm>

#include "asyncit/obs/trace_recorder.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::transport {

ChaosTransport::ChaosTransport(Transport& inner,
                               const net::DeliveryPolicy& policy,
                               std::uint64_t seed)
    : inner_(&inner) {
  // Same preconditions the inproc backend enforces: every route into a
  // delay model validates the policy (drop_prob == 1 would starve the
  // run into its wall budget with no diagnostic).
  ASYNCIT_CHECK(policy.min_latency >= 0.0 &&
                policy.max_latency >= policy.min_latency);
  ASYNCIT_CHECK(policy.drop_prob >= 0.0 && policy.drop_prob < 1.0);
  const std::size_t world = inner.world();
  const std::vector<std::uint32_t> locals = inner.local_ranks();
  endpoints_.resize(world);
  for (const std::uint32_t r : locals) {
    auto ep = std::make_unique<ChaosEndpoint>();
    ep->inner_ = &inner.endpoint(r);
    ep->fifo_ = policy.fifo;
    ep->drop_control_ = policy.drop_control;
    ep->fifo_floor_.assign(world, 0.0);
    endpoints_[r] = std::move(ep);
  }
  // Per-directed-link streams in the same (src, dst) row-major derivation
  // as InprocTransport: chaos-over-tcp replays the inproc latency/drop
  // draw sequences for the same master seed. The stampers run with
  // fifo=false — ordering is enforced at the receiver instead, because a
  // sender-side floor is meaningless across host clocks.
  net::DeliveryPolicy draw_policy = policy;
  draw_policy.fifo = false;
  Rng seeder(seed);
  for (std::size_t src = 0; src < world; ++src) {
    for (std::size_t dst = 0; dst < world; ++dst) {
      const std::uint64_t s = seeder.next();
      if (endpoints_[src])
        endpoints_[src]->links_.emplace_back(draw_policy, s);
    }
  }
}

Endpoint& ChaosTransport::endpoint(std::uint32_t rank) {
  ASYNCIT_CHECK(rank < endpoints_.size() && endpoints_[rank] != nullptr);
  return *endpoints_[rank];
}

std::uint32_t ChaosEndpoint::rank() const { return inner_->rank(); }

SendReceipt ChaosEndpoint::send(std::uint32_t dst,
                                const MessageHeader& header,
                                std::span<const double> value, double now,
                                bool allow_drop) {
  ASYNCIT_CHECK(dst < links_.size());
  net::Message probe;  // carries only the stamped timing fields
  // Control frames are exempt from the drop model unless the stress flag
  // opts them in (see DeliveryPolicy::drop_control); the stamper still
  // consumes its draws, keeping the link streams replay-deterministic.
  const bool droppable =
      allow_drop && (!net::is_control(header.kind) || drop_control_);
  const bool kept = links_[dst].stamp(probe, now, droppable);
  if (!kept) {
    // The loss model decided here (sender-side draw): the trace's
    // injected-drop signature, distinct from dead-link TCP drops.
    obs::record(obs::EventType::kFrameDrop,
                static_cast<std::uint8_t>(header.kind), dst, 0,
                probe.deliver_at - now);
    return {false, probe.t_send, probe.deliver_at};
  }
  MessageHeader h = header;
  h.injected_delay = probe.deliver_at - now;  // this link's latency draw
  // Drops were decided here; the inner backend must not drop again.
  const SendReceipt r = inner_->send(dst, h, value, now, false);
  return {r.sent, now, probe.deliver_at};
}

std::size_t ChaosEndpoint::receive(double now,
                                   std::vector<net::Message>& out) {
  staging_.clear();
  inner_->receive(now, staging_);
  for (net::Message& m : staging_) {
    double release = now + std::max(0.0, m.injected_delay);
    if (fifo_ && m.src < fifo_floor_.size()) {
      release = std::max(release, fifo_floor_[m.src]);
      fifo_floor_[m.src] = release;
    }
    m.t_send = now;  // first seen at this layer (delay measurement base)
    m.deliver_at = release;
    // Arrivals are near-sorted already (now advances), so this insert
    // lands close to the tail and stays cheap even with a big backlog.
    const auto it = std::upper_bound(
        held_.begin() + static_cast<std::ptrdiff_t>(held_head_),
        held_.end(), m,
        [](const net::Message& a, const net::Message& b) {
          return a.deliver_at < b.deliver_at;
        });
    held_.insert(it, std::move(m));
  }
  staging_.clear();
  // Consume from a head cursor instead of erasing the vector front: with
  // a large injected latency against a fast sender the backlog reaches
  // rate x latency messages, and a front erase per drain made every
  // receive O(backlog) — the compaction below keeps it amortized O(1).
  std::size_t n = 0;
  while (held_head_ + n < held_.size() &&
         held_[held_head_ + n].deliver_at <= now)
    ++n;
  for (std::size_t i = 0; i < n; ++i) {
    net::Message& m = held_[held_head_ + i];
    delays_.add(now - m.t_send);
    out.push_back(std::move(m));
  }
  held_head_ += n;
  if (n > 0 || held_.size() > held_head_)
    obs::record(obs::EventType::kQueueDepth,
                static_cast<std::uint8_t>(obs::QueueKind::kChaosHeld),
                rank(), held_.size() - held_head_, double(n));
  if (held_head_ >= 64 && held_head_ * 2 >= held_.size()) {
    held_.erase(held_.begin(),
                held_.begin() + static_cast<std::ptrdiff_t>(held_head_));
    held_head_ = 0;
  }
  delivered_ += n;
  return n;
}

void ChaosEndpoint::recycle(std::vector<net::Message>& consumed) {
  inner_->recycle(consumed);
}

std::uint64_t ChaosEndpoint::activity() const { return inner_->activity(); }

void ChaosEndpoint::wait_for_activity(std::uint64_t seen,
                                      double timeout_seconds) {
  inner_->wait_for_activity(seen, timeout_seconds);
}

double ChaosEndpoint::next_delivery() const {
  const double inner_next = inner_->next_delivery();
  if (held_head_ >= held_.size()) return inner_next;
  return std::min(inner_next, held_[held_head_].deliver_at);
}

std::uint64_t ChaosEndpoint::sent() const {
  std::uint64_t n = 0;
  for (const net::LinkStamper& l : links_) n += l.stamped();
  return n;
}

std::uint64_t ChaosEndpoint::dropped() const {
  std::uint64_t n = 0;
  for (const net::LinkStamper& l : links_) n += l.dropped();
  return n + inner_->dropped();
}

std::uint64_t ChaosEndpoint::delivered() const { return delivered_; }

net::DelayHistogram ChaosEndpoint::delays() const { return delays_; }

}  // namespace asyncit::transport
