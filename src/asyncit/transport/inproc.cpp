#include "asyncit/transport/inproc.hpp"

#include "asyncit/support/check.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::transport {

InprocTransport::InprocTransport(std::size_t world,
                                 const net::DeliveryPolicy& policy,
                                 std::uint64_t seed) {
  ASYNCIT_CHECK(world >= 1);
  ASYNCIT_CHECK(policy.min_latency >= 0.0 &&
                policy.max_latency >= policy.min_latency);
  ASYNCIT_CHECK(policy.drop_prob >= 0.0 && policy.drop_prob < 1.0);
  stations_.reserve(world);
  for (std::size_t i = 0; i < world; ++i)
    stations_.push_back(std::make_unique<Station>());
  // One independent RNG stream per directed link, derived in the fixed
  // (src, dst) row-major order of the pre-transport orchestrator: the
  // latency/drop draw sequence of every link stays a pure function of
  // (seed, link, message index).
  Rng seeder(seed);
  endpoints_.resize(world);
  for (std::size_t src = 0; src < world; ++src) {
    InprocEndpoint& ep = endpoints_[src];
    ep.owner_ = this;
    ep.rank_ = static_cast<std::uint32_t>(src);
    ep.drop_control_ = policy.drop_control;
    ep.links_.reserve(world);
    for (std::size_t dst = 0; dst < world; ++dst)
      ep.links_.emplace_back(policy, seeder.next());
  }
}

std::vector<std::uint32_t> InprocTransport::local_ranks() const {
  std::vector<std::uint32_t> ranks(stations_.size());
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ranks[i] = static_cast<std::uint32_t>(i);
  return ranks;
}

Endpoint& InprocTransport::endpoint(std::uint32_t rank) {
  ASYNCIT_CHECK(rank < endpoints_.size());
  return endpoints_[rank];
}

SendReceipt InprocEndpoint::send(std::uint32_t dst,
                                 const MessageHeader& header,
                                 std::span<const double> value, double now,
                                 bool allow_drop) {
  ASYNCIT_CHECK(dst < owner_->stations_.size() && dst != rank_);
  InprocTransport::Station& station = *owner_->stations_[dst];
  net::Message m = station.pool.acquire();
  m.src = rank_;
  m.block = header.block;
  m.tag = header.tag;
  m.round = header.round;
  m.partial = header.partial;
  m.complete = header.complete;
  m.kind = header.kind;
  m.offset = header.offset;
  m.injected_delay = header.injected_delay;  // chaos latency rides along
  m.value.assign(value.begin(), value.end());
  // The loss model spares control frames unless the stress flag opts
  // them in; the stamper consumes its drop draw regardless, so the
  // per-link draw sequence (replay determinism) is kind-independent.
  const bool droppable =
      allow_drop && (!net::is_control(header.kind) || drop_control_);
  const bool sent = links_[dst].stamp(m, now, droppable);
  const SendReceipt receipt{sent, m.t_send, m.deliver_at};
  if (sent)
    station.mailbox.post(std::move(m));
  else
    station.pool.recycle(std::move(m));
  return receipt;
}

std::size_t InprocEndpoint::receive(double now,
                                    std::vector<net::Message>& out) {
  return owner_->stations_[rank_]->mailbox.drain(now, out);
}

void InprocEndpoint::recycle(std::vector<net::Message>& consumed) {
  MessagePool& pool = owner_->stations_[rank_]->pool;
  for (net::Message& m : consumed) pool.recycle(std::move(m));
  consumed.clear();
}

std::uint64_t InprocEndpoint::activity() const {
  return owner_->stations_[rank_]->mailbox.posted();
}

void InprocEndpoint::wait_for_activity(std::uint64_t seen,
                                       double timeout_seconds) {
  owner_->stations_[rank_]->mailbox.wait_for_post(seen, timeout_seconds);
}

double InprocEndpoint::next_delivery() const {
  return owner_->stations_[rank_]->mailbox.next_delivery();
}

std::uint64_t InprocEndpoint::sent() const {
  std::uint64_t n = 0;
  for (const net::LinkStamper& l : links_) n += l.stamped();
  return n;
}

std::uint64_t InprocEndpoint::dropped() const {
  std::uint64_t n = 0;
  for (const net::LinkStamper& l : links_) n += l.dropped();
  return n;
}

std::uint64_t InprocEndpoint::delivered() const {
  return owner_->stations_[rank_]->mailbox.delivered();
}

net::DelayHistogram InprocEndpoint::delays() const {
  return owner_->stations_[rank_]->mailbox.delays();
}

}  // namespace asyncit::transport
