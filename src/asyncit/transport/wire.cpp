#include "asyncit/transport/wire.hpp"

#include <bit>
#include <cstring>

namespace asyncit::transport {

namespace {

// Explicit little-endian byte (de)serialization: portable regardless of
// host order, and on LE hosts the compiler collapses each helper to a
// plain load/store.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t(p[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

double get_f64(const std::uint8_t* p) {
  return std::bit_cast<double>(get_u64(p));
}

// flags byte: bit0 = partial, bits 1-3 = MsgKind (kValue 0 .. 5; kStop=1
// lands on the old 0x02 "stop" bit, so version-1 frames are unchanged).
constexpr std::uint8_t kFlagPartial = 0x01;
constexpr std::uint8_t kKindShift = 1;
constexpr std::uint8_t kKindMask = 0x07;
constexpr std::uint8_t kKnownFlags =
    kFlagPartial | (kKindMask << kKindShift);

}  // namespace

namespace {

void encode_fields(std::uint32_t src, la::BlockId block, model::Step tag,
                   std::uint64_t round, std::uint32_t offset, bool partial,
                   net::MsgKind kind, double t_send, double injected_delay,
                   std::span<const double> value,
                   std::vector<std::uint8_t>& out) {
  out.clear();
  const std::uint32_t count = static_cast<std::uint32_t>(value.size());
  out.reserve(frame_bytes(count));
  put_u32(out, static_cast<std::uint32_t>(kWireHeaderBytes + 8 * count));
  put_u16(out, kWireMagic);
  out.push_back(kWireVersion);
  std::uint8_t flags = 0;
  if (partial) flags |= kFlagPartial;
  flags |= static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(kind) & kKindMask) << kKindShift);
  out.push_back(flags);
  put_u32(out, src);
  put_u32(out, block);
  put_u64(out, tag);
  put_u64(out, round);
  put_u32(out, offset);
  put_u32(out, count);
  put_f64(out, t_send);
  put_f64(out, injected_delay);
  for (const double v : value) put_f64(out, v);
}

}  // namespace

void encode_frame(const net::Message& m, std::vector<std::uint8_t>& out) {
  encode_fields(m.src, m.block, m.tag, m.round, m.offset, m.partial, m.kind,
                m.t_send, m.injected_delay, m.value, out);
}

void encode_frame(std::uint32_t src, const MessageHeader& header,
                  std::span<const double> value, double t_send,
                  std::vector<std::uint8_t>& out) {
  encode_fields(src, header.block, header.tag, header.round, header.offset,
                header.partial, header.kind, t_send, header.injected_delay,
                value, out);
}

DecodeStatus decode_frame(std::span<const std::uint8_t> buf,
                          std::size_t& consumed, net::Message& out) {
  consumed = 0;
  if (buf.size() < 4) return DecodeStatus::kNeedMore;
  const std::uint8_t* p = buf.data();
  const std::uint32_t length = get_u32(p);
  // Reject an insane length BEFORE waiting for it to "complete": a
  // corrupted prefix must not make the reader buffer gigabytes.
  if (length < kWireHeaderBytes ||
      length > kWireHeaderBytes + 8ull * kMaxPayloadDoubles ||
      (length - kWireHeaderBytes) % 8 != 0)
    return DecodeStatus::kBadFrame;
  // Magic/version are validated as soon as they are present, again so a
  // garbage stream fails fast instead of stalling in kNeedMore.
  if (buf.size() >= 6 && get_u16(p + 4) != kWireMagic)
    return DecodeStatus::kBadFrame;
  if (buf.size() >= 7 && p[6] != kWireVersion) return DecodeStatus::kBadFrame;
  if (buf.size() < 4 + std::size_t(length)) return DecodeStatus::kNeedMore;

  const std::uint8_t flags = p[7];
  if (flags & ~kKnownFlags) return DecodeStatus::kBadFrame;
  const std::uint8_t kind = (flags >> kKindShift) & kKindMask;
  if (kind >= net::kNumMsgKinds) return DecodeStatus::kBadFrame;
  const std::uint32_t count = get_u32(p + 36);
  if (kWireHeaderBytes + 8ull * count != length) return DecodeStatus::kBadFrame;

  out.src = get_u32(p + 8);
  out.block = get_u32(p + 12);
  out.tag = get_u64(p + 16);
  out.round = get_u64(p + 24);
  out.offset = get_u32(p + 32);
  out.partial = (flags & kFlagPartial) != 0;
  out.kind = static_cast<net::MsgKind>(kind);
  out.t_send = get_f64(p + 40);
  out.injected_delay = get_f64(p + 48);
  out.deliver_at = 0.0;
  out.value.resize(count);
  const std::uint8_t* payload = p + 4 + kWireHeaderBytes;
  if constexpr (std::endian::native == std::endian::little) {
    if (count > 0) std::memcpy(out.value.data(), payload, 8ull * count);
  } else {
    for (std::uint32_t i = 0; i < count; ++i)
      out.value[i] = get_f64(payload + 8ull * i);
  }
  consumed = 4 + std::size_t(length);
  return DecodeStatus::kOk;
}

}  // namespace asyncit::transport
