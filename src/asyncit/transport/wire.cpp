#include "asyncit/transport/wire.hpp"

#include <bit>
#include <cstring>

#include "asyncit/transport/codec.hpp"

namespace asyncit::transport {

namespace {

// Explicit little-endian byte (de)serialization: portable regardless of
// host order, and on LE hosts the compiler collapses each helper to a
// plain load/store.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t(p[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

double get_f64(const std::uint8_t* p) {
  return std::bit_cast<double>(get_u64(p));
}

// flags byte: bit0 = partial, bits 1-3 = MsgKind (kValue 0 .. 5; kStop=1
// lands on the old 0x02 "stop" bit, so version-1 frames are unchanged),
// bit4 = complete (partial range that finishes the sender's round),
// bit5 = codec (subheader + quantized payload follow).
constexpr std::uint8_t kFlagPartial = 0x01;
constexpr std::uint8_t kKindShift = 1;
constexpr std::uint8_t kKindMask = 0x07;
constexpr std::uint8_t kFlagComplete = 0x10;
constexpr std::uint8_t kFlagCodec = 0x20;
constexpr std::uint8_t kKnownFlags = kFlagPartial |
                                     (kKindMask << kKindShift) |
                                     kFlagComplete | kFlagCodec;

}  // namespace

namespace {

void encode_fields(std::uint32_t src, la::BlockId block, model::Step tag,
                   std::uint64_t round, std::uint32_t offset, bool partial,
                   bool complete, net::MsgKind kind, double t_send,
                   double injected_delay, std::uint8_t quant_bits,
                   double quant_min, double quant_scale,
                   std::span<const double> value,
                   std::vector<std::uint8_t>& out) {
  out.clear();
  const std::uint32_t count = static_cast<std::uint32_t>(value.size());
  const bool codec = quant_bits != 0;
  out.reserve(wire_frame_bytes(count, quant_bits));
  const std::uint64_t body =
      codec ? kWireHeaderBytes + kCodecSubheaderBytes +
                  codec::quant_payload_bytes(count, quant_bits)
            : kWireHeaderBytes + 8ull * count;
  put_u32(out, static_cast<std::uint32_t>(body));
  put_u16(out, kWireMagic);
  out.push_back(kWireVersion);
  std::uint8_t flags = 0;
  if (partial) flags |= kFlagPartial;
  flags |= static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(kind) & kKindMask) << kKindShift);
  if (complete) flags |= kFlagComplete;
  if (codec) flags |= kFlagCodec;
  out.push_back(flags);
  put_u32(out, src);
  put_u32(out, block);
  put_u64(out, tag);
  put_u64(out, round);
  put_u32(out, offset);
  put_u32(out, count);
  put_f64(out, t_send);
  put_f64(out, injected_delay);
  if (!codec) {
    for (const double v : value) put_f64(out, v);
    return;
  }
  out.push_back(codec::kCodecScalarQuant);
  out.push_back(quant_bits);
  put_u16(out, 0);  // reserved
  put_f64(out, quant_min);
  put_f64(out, quant_scale);
  // The payload is already on lattice points (the sender roundtripped it
  // through the codec before send), so requantizing here is exact — the
  // decoder's dequant reproduces the input doubles bit for bit.
  const codec::QuantParams p{quant_min, quant_scale};
  if (quant_bits == 8) {
    for (const double v : value)
      out.push_back(static_cast<std::uint8_t>(codec::quantize(p, 8, v)));
  } else {
    for (const double v : value)
      put_u16(out, static_cast<std::uint16_t>(codec::quantize(p, 16, v)));
  }
}

}  // namespace

void encode_frame(const net::Message& m, std::vector<std::uint8_t>& out) {
  encode_fields(m.src, m.block, m.tag, m.round, m.offset, m.partial,
                m.complete, m.kind, m.t_send, m.injected_delay, 0, 0.0, 0.0,
                m.value, out);
}

void encode_frame(std::uint32_t src, const MessageHeader& header,
                  std::span<const double> value, double t_send,
                  std::vector<std::uint8_t>& out) {
  encode_fields(src, header.block, header.tag, header.round, header.offset,
                header.partial, header.complete, header.kind, t_send,
                header.injected_delay, header.quant_bits, header.quant_min,
                header.quant_scale, value, out);
}

DecodeStatus decode_frame(std::span<const std::uint8_t> buf,
                          std::size_t& consumed, net::Message& out,
                          std::uint32_t max_block_doubles) {
  consumed = 0;
  if (buf.size() < 4) return DecodeStatus::kNeedMore;
  const std::uint8_t* p = buf.data();
  const std::uint32_t length = get_u32(p);
  // Reject an insane length BEFORE waiting for it to "complete": a
  // corrupted prefix must not make the reader buffer gigabytes. The
  // exact length/count consistency (raw vs codec layout) is checked once
  // the flags byte is in hand.
  if (length < kWireHeaderBytes ||
      length > kWireHeaderBytes + kCodecSubheaderBytes +
                   8ull * kMaxPayloadDoubles)
    return DecodeStatus::kBadFrame;
  // A length below the smallest codec layout can only be a raw frame,
  // and a raw frame is header + whole doubles — a ragged length is
  // structurally broken and rejectable from the prefix alone.
  if (length < kWireHeaderBytes + kCodecSubheaderBytes &&
      (length - kWireHeaderBytes) % 8 != 0)
    return DecodeStatus::kBadFrame;
  // Magic/version/flags are validated as soon as they are present, again
  // so a garbage stream fails fast instead of stalling in kNeedMore.
  if (buf.size() >= 6 && get_u16(p + 4) != kWireMagic)
    return DecodeStatus::kBadFrame;
  if (buf.size() >= 7 && p[6] != kWireVersion) return DecodeStatus::kBadFrame;
  if (buf.size() >= 8 && (p[7] & ~kKnownFlags)) return DecodeStatus::kBadFrame;
  if (buf.size() < 4 + std::size_t(length)) return DecodeStatus::kNeedMore;

  const std::uint8_t flags = p[7];
  if (flags & ~kKnownFlags) return DecodeStatus::kBadFrame;
  const std::uint8_t kind = (flags >> kKindShift) & kKindMask;
  if (kind >= net::kNumMsgKinds) return DecodeStatus::kBadFrame;
  const bool codec = (flags & kFlagCodec) != 0;
  const std::uint32_t count = get_u32(p + 36);
  const std::uint32_t offset = get_u32(p + 32);
  // Range bound (u64 arithmetic — offset + count must not be allowed to
  // wrap): a frame whose coordinate range exceeds the widest block the
  // receiver could incorporate is stream garbage, not a peer decision.
  if (std::uint64_t(offset) + count > max_block_doubles)
    return DecodeStatus::kBadFrame;
  std::uint8_t quant_bits = 0;
  double quant_min = 0.0, quant_scale = 0.0;
  if (codec) {
    if (length < kWireHeaderBytes + kCodecSubheaderBytes)
      return DecodeStatus::kBadFrame;
    const std::uint8_t* sub = p + 4 + kWireHeaderBytes;
    quant_bits = sub[1];
    if (sub[0] != codec::kCodecScalarQuant ||
        (quant_bits != 8 && quant_bits != 16) || get_u16(sub + 2) != 0)
      return DecodeStatus::kBadFrame;
    if (kWireHeaderBytes + kCodecSubheaderBytes +
            codec::quant_payload_bytes(count, quant_bits) !=
        length)
      return DecodeStatus::kBadFrame;
    quant_min = get_f64(sub + 4);
    quant_scale = get_f64(sub + 12);
  } else {
    if (kWireHeaderBytes + 8ull * count != length)
      return DecodeStatus::kBadFrame;
  }

  out.src = get_u32(p + 8);
  out.block = get_u32(p + 12);
  out.tag = get_u64(p + 16);
  out.round = get_u64(p + 24);
  out.offset = offset;
  out.partial = (flags & kFlagPartial) != 0;
  out.complete = (flags & kFlagComplete) != 0;
  out.kind = static_cast<net::MsgKind>(kind);
  out.t_send = get_f64(p + 40);
  out.injected_delay = get_f64(p + 48);
  out.deliver_at = 0.0;
  out.value.resize(count);
  if (codec) {
    const std::uint8_t* q = p + 4 + kWireHeaderBytes + kCodecSubheaderBytes;
    if (quant_bits == 8) {
      for (std::uint32_t i = 0; i < count; ++i)
        out.value[i] = codec::dequant(quant_min, quant_scale, q[i]);
    } else {
      for (std::uint32_t i = 0; i < count; ++i)
        out.value[i] =
            codec::dequant(quant_min, quant_scale, get_u16(q + 2ull * i));
    }
  } else {
    const std::uint8_t* payload = p + 4 + kWireHeaderBytes;
    if constexpr (std::endian::native == std::endian::little) {
      if (count > 0) std::memcpy(out.value.data(), payload, 8ull * count);
    } else {
      for (std::uint32_t i = 0; i < count; ++i)
        out.value[i] = get_f64(payload + 8ull * i);
    }
  }
  consumed = 4 + std::size_t(length);
  return DecodeStatus::kOk;
}

}  // namespace asyncit::transport
