// TCP backend: nonblocking POSIX sockets over loopback or a LAN.
//
// The fabric is a full mesh of DIRECTED links: every rank listens on its
// configured port, and for each destination it dials the destination's
// listener and uses that connection for its outgoing frames only (an
// 8-byte hello identifies the dialing rank, so there is no connection
// glare to resolve). Per peer link the endpoint runs one writer thread
// (drains a queue of pooled, pre-encoded wire frames — the peer thread
// never blocks on a socket) and one reader thread (poll + nonblocking
// recv into a reassembly buffer, transport/wire.hpp framing, decoded
// messages pushed into the endpoint's delivery queue). A transport may
// host any subset of the ranks: all of them (in-process loopback tests
// and benches) or exactly one (tools/asyncit_node.cpp, one process per
// rank — see scripts/launch_cluster.py).
//
// Semantics differences from inproc, by design honest about the medium:
//   - links are FIFO and lossless (TCP): reordering/drops come from the
//     chaos decorator, not from the socket;
//   - a receiver cannot compare the sender's clock with its own, so
//     delays() measures arrival-to-drain (the queueing interval the
//     receiver can actually observe); t_send/deliver_at are rewritten to
//     receiver-clock values consistent with that interval;
//   - a closed link (peer process exited) turns subsequent sends into
//     drops — the totally asynchronous regime tolerates that, and the
//     node runtime broadcasts a stop frame (flushed before teardown)
//     first. In ELASTIC mode (TcpOptions::elastic, the membership/
//     runtime) a closed or never-connected link additionally redials in
//     the background, so a rank that joins late — or rejoins after a
//     crash — is wired into the mesh without restarting anyone.
//
// Steady state allocates nothing: frames and messages are pooled
// (transport/pool.hpp), reassembly buffers and queues retain capacity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asyncit/transport/transport.hpp"

namespace asyncit::transport {

class TcpEndpoint;

struct TcpPeerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = bind ephemeral (requires the rank local)
};

struct TcpOptions {
  /// One address per rank; world size is nodes.size(). With elastic
  /// membership every SLOT gets an address up front — a spare rank the
  /// launcher starts later is dialable from the config alone.
  std::vector<TcpPeerAddress> nodes;
  /// Ranks hosted by this process. Empty = all (in-process mesh).
  std::vector<std::uint32_t> local_ranks;
  /// Rendezvous budget: dialing retries until every local rank is fully
  /// connected (other processes may start later).
  double connect_timeout_seconds = 20.0;

  /// Elastic-membership mode (membership/ — ranks may join, die, and
  /// rejoin mid-run). What changes:
  ///   - only `expected_ranks` take part in the startup rendezvous
  ///     (dialed with retry, their hellos awaited); every other slot
  ///     starts unconnected;
  ///   - acceptors run for the transport's lifetime, so a late rank can
  ///     dial in at any time, and a fresh connection from an
  ///     already-known rank REPLACES the stale one (rejoin after crash);
  ///   - outgoing links (re)dial lazily from the writer thread with a
  ///     backoff whenever frames are queued for an unconnected or dead
  ///     destination; frames that cannot be delivered are dropped
  ///     (counted), which is exactly the loss the totally asynchronous
  ///     regime tolerates;
  ///   - per-link send queues are bounded (oldest frame dropped first)
  ///     so a dead destination cannot grow memory without bound.
  bool elastic = false;
  /// Ranks expected at launch (rendezvous set). Ignored unless elastic;
  /// empty means no rendezvous at all (a late joiner: dial lazily, wait
  /// for nobody).
  std::vector<std::uint32_t> expected_ranks;

  /// Decode-time bound on a value frame's coordinate range: frames with
  /// offset + count beyond this are rejected at the wire (counted in
  /// bad_frames, connection closed) instead of reaching incorporate.
  /// Default: the format's own sanity cap. Runtimes that know their
  /// widest block should lower it.
  std::uint32_t max_frame_doubles = 0;  ///< 0 = wire.hpp kMaxPayloadDoubles
};

class TcpTransport final : public Transport {
 public:
  /// Binds, dials, and completes the full rendezvous (throws CheckError
  /// on timeout). On return every local endpoint is connected both ways.
  explicit TcpTransport(TcpOptions options);
  ~TcpTransport() override;

  std::size_t world() const override;
  std::vector<std::uint32_t> local_ranks() const override;
  Endpoint& endpoint(std::uint32_t rank) override;
  const char* backend() const override { return "tcp"; }
  void flush(double timeout_seconds) override;

  /// Actual bound port of a local rank (resolves port 0 requests).
  std::uint16_t port_of(std::uint32_t rank) const;

  /// Frames rejected by wire validation across all local readers (a
  /// nonzero value means a corrupted or foreign byte stream; the
  /// offending connection is closed on first rejection).
  std::uint64_t bad_frames() const override;

 private:
  friend class TcpEndpoint;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace asyncit::transport
