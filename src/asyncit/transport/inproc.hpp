// In-process backend: the seeded mailbox channels behind the Transport
// interface.
//
// This is the PR-1 net:: channel machinery (net::Mailbox delivery-order
// queues, net::LinkStamper per-directed-link latency/drop stamping)
// verbatim, relocated from the peer loop into an Endpoint. The RNG
// streams are derived from the master seed in the exact (src, dst)
// row-major order the old run_message_passing used, and each send
// performs the same draws in the same order, so the latency/drop sequence
// of every link is byte-for-byte the pre-transport one — the channel
// replay-determinism tests hold across the refactor.
//
// Pooling: a sender borrows the outgoing net::Message from the
// DESTINATION station's pool (the message ends its life there when the
// receiver recycles its drain batch), so every pool's acquires and
// recycles match one-to-one regardless of how asymmetric the traffic is.
//
// delays() measures post-to-drain (injected latency + scheduling), as
// before.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "asyncit/net/channel.hpp"
#include "asyncit/transport/pool.hpp"
#include "asyncit/transport/transport.hpp"

namespace asyncit::transport {

class InprocTransport;

class InprocEndpoint final : public Endpoint {
 public:
  std::uint32_t rank() const override { return rank_; }
  SendReceipt send(std::uint32_t dst, const MessageHeader& header,
                   std::span<const double> value, double now,
                   bool allow_drop) override;
  std::size_t receive(double now, std::vector<net::Message>& out) override;
  void recycle(std::vector<net::Message>& consumed) override;
  std::uint64_t activity() const override;
  void wait_for_activity(std::uint64_t seen,
                         double timeout_seconds) override;
  double next_delivery() const override;
  std::uint64_t sent() const override;
  std::uint64_t dropped() const override;
  std::uint64_t delivered() const override;
  net::DelayHistogram delays() const override;

 private:
  friend class InprocTransport;
  InprocTransport* owner_ = nullptr;
  std::uint32_t rank_ = 0;
  bool drop_control_ = false;  ///< DeliveryPolicy::drop_control
  /// Per-destination stampers, owned and used by this endpoint's peer
  /// thread alone (the replay-determinism contract of net::LinkStamper).
  std::vector<net::LinkStamper> links_;
};

class InprocTransport final : public Transport {
 public:
  /// Seeds one RNG stream per directed link from `seed` in (src, dst)
  /// row-major order — identical derivation to the pre-transport
  /// orchestrator, including the unused self-link draws.
  InprocTransport(std::size_t world, const net::DeliveryPolicy& policy,
                  std::uint64_t seed);

  std::size_t world() const override { return stations_.size(); }
  std::vector<std::uint32_t> local_ranks() const override;
  Endpoint& endpoint(std::uint32_t rank) override;
  const char* backend() const override { return "inproc"; }

 private:
  friend class InprocEndpoint;
  /// Receive side of one rank: the mailbox plus the pool its consumed
  /// messages return to (and its senders borrow from).
  struct Station {
    net::Mailbox mailbox;
    MessagePool pool;
  };
  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<InprocEndpoint> endpoints_;
};

}  // namespace asyncit::transport
