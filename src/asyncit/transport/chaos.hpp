// Chaos decorator: the paper's delay/reorder/drop models over ANY backend.
//
// Wraps another Transport and injects a net::DeliveryPolicy at the frame
// level, so the delay-model experiments that previously only ran on
// in-process mailboxes run unchanged over real sockets:
//
//   latency   drawn sender-side from the per-directed-link seeded RNG
//             stream (same (src, dst) row-major seed derivation as the
//             inproc backend, so chaos-over-tcp draws the exact latency/
//             drop sequences that inproc draws for the same master seed)
//             and carried on the wire in Message::injected_delay; the
//             RECEIVE side holds each frame until the injected latency
//             has elapsed past its arrival — additive to whatever the
//             physical medium did;
//   reorder   emerges exactly as in the paper: a later frame with a
//             smaller draw matures earlier (non-FIFO links), producing
//             genuine label inversions over TCP;
//   fifo      optional in-order floor, applied at the receiver per source
//             link (TCP preserves per-link frame order, so flooring the
//             scheduled release reproduces sender-side FIFO);
//   drop      decided sender-side (deterministic per link), the frame is
//             simply never submitted to the inner backend.
//
// delays() measures first-seen-to-drain at the receiver: injected hold
// plus scheduling, the interval the unbounded-delay assumptions of the
// paper are about. A ChaosEndpoint is driven by its single peer thread
// (same contract as every Endpoint); the inner endpoint handles service
// threads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "asyncit/net/channel.hpp"
#include "asyncit/transport/transport.hpp"

namespace asyncit::transport {

class ChaosTransport;

class ChaosEndpoint final : public Endpoint {
 public:
  std::uint32_t rank() const override;
  SendReceipt send(std::uint32_t dst, const MessageHeader& header,
                   std::span<const double> value, double now,
                   bool allow_drop) override;
  std::size_t receive(double now, std::vector<net::Message>& out) override;
  void recycle(std::vector<net::Message>& consumed) override;
  std::uint64_t activity() const override;
  void wait_for_activity(std::uint64_t seen,
                         double timeout_seconds) override;
  double next_delivery() const override;
  std::uint64_t sent() const override;
  std::uint64_t dropped() const override;
  std::uint64_t delivered() const override;
  net::DelayHistogram delays() const override;

 private:
  friend class ChaosTransport;

  Endpoint* inner_ = nullptr;
  bool drop_control_ = false;  ///< DeliveryPolicy::drop_control
  std::vector<net::LinkStamper> links_;  ///< per destination
  /// Frames awaiting maturity, sorted by deliver_at (mailbox
  /// discipline). Entries before held_head_ are consumed; the vector is
  /// compacted once the consumed prefix dominates, so draining stays
  /// amortized O(1) however large the latency backlog grows.
  std::vector<net::Message> held_;
  std::size_t held_head_ = 0;
  std::vector<net::Message> staging_;    ///< inner drain scratch
  std::vector<double> fifo_floor_;       ///< per SOURCE link release floor
  bool fifo_ = false;
  std::uint64_t delivered_ = 0;
  net::DelayHistogram delays_;
};

class ChaosTransport final : public Transport {
 public:
  /// Decorates `inner` (not owned; must outlive this transport) with
  /// `policy`, seeding per-directed-link streams from `seed` exactly like
  /// InprocTransport does.
  ChaosTransport(Transport& inner, const net::DeliveryPolicy& policy,
                 std::uint64_t seed);

  std::size_t world() const override { return inner_->world(); }
  std::vector<std::uint32_t> local_ranks() const override {
    return inner_->local_ranks();
  }
  Endpoint& endpoint(std::uint32_t rank) override;
  const char* backend() const override { return "chaos"; }
  void flush(double timeout_seconds) override {
    inner_->flush(timeout_seconds);
  }
  std::uint64_t bad_frames() const override { return inner_->bad_frames(); }

 private:
  Transport* inner_;
  std::vector<std::unique_ptr<ChaosEndpoint>> endpoints_;  ///< by rank
};

}  // namespace asyncit::transport
