// Recycling pools for the messaging hot path.
//
// Same discipline as op::Workspace, applied to what travels: every sent
// payload borrows a net::Message whose value vector keeps its capacity
// across trips, and every TCP frame borrows a byte buffer that the writer
// thread hands back after the socket write. After warm-up the pools reach
// the high-water mark of the traffic and the steady-state send/receive
// path performs zero heap allocations (pinned by tests/alloc_test.cpp).
//
// Unlike op::Workspace these pools ARE thread-safe (mutex-protected):
// a sender borrows from the pool that the receiver later recycles into
// (inproc posts into the destination's pool; TCP readers and peer threads
// share the endpoint's pool), so borrow and return can happen on
// different threads. The flows balance by construction — inproc senders
// acquire from the destination station that drains the message, and TCP
// acquire/recycle are both endpoint-local — so pools neither leak nor
// grow without bound.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "asyncit/net/channel.hpp"

namespace asyncit::transport {

/// Pool of net::Message shells. acquire() hands back a message whose
/// value vector retains the capacity of its previous trip (fill with
/// assign(); no allocation once capacity suffices).
class MessagePool {
 public:
  MessagePool() { pool_.reserve(kReserve); }

  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  net::Message acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_.empty()) return net::Message{};
    net::Message m = std::move(pool_.back());
    pool_.pop_back();
    return m;
  }

  void recycle(net::Message m) {
    // A capacity-less shell (its value was moved elsewhere, e.g. into a
    // BSP holdback buffer) would poison the pool: the next acquire would
    // have to allocate. Let it die instead.
    if (m.value.capacity() == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    pool_.push_back(std::move(m));
  }

  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pool_.size();
  }

 private:
  static constexpr std::size_t kReserve = 64;
  mutable std::mutex mu_;
  std::vector<net::Message> pool_;
};

/// Pool of byte buffers (wire frames). Senders encode into a borrowed
/// frame; the writer thread recycles it after the socket write.
class BytePool {
 public:
  BytePool() { pool_.reserve(kReserve); }

  BytePool(const BytePool&) = delete;
  BytePool& operator=(const BytePool&) = delete;

  std::vector<std::uint8_t> acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_.empty()) return {};
    std::vector<std::uint8_t> b = std::move(pool_.back());
    pool_.pop_back();
    return b;
  }

  void recycle(std::vector<std::uint8_t> b) {
    if (b.capacity() == 0) return;
    b.clear();
    std::lock_guard<std::mutex> lock(mu_);
    pool_.push_back(std::move(b));
  }

  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pool_.size();
  }

 private:
  static constexpr std::size_t kReserve = 64;
  mutable std::mutex mu_;
  std::vector<std::vector<std::uint8_t>> pool_;
};

}  // namespace asyncit::transport
