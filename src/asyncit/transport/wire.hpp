// Wire format for net::Message — the byte contract of the TCP backend.
//
// A frame is a little-endian length prefix followed by a fixed header and
// the payload doubles:
//
//   offset  size  field
//   0       4     u32  frame length (bytes AFTER this field)
//   4       2     u16  magic 0xA517
//   6       1     u8   version (currently 1)
//   7       1     u8   flags: bit0 partial, bits1-3 MsgKind (kValue 0,
//                      kStop 1, kPing 2, kAck 3, kPingReq 4,
//                      kMembershipUpdate 5 — kStop keeps its original
//                      bit pattern 0x02, so pre-membership frames are
//                      byte-identical), bit4 complete (a partial-range
//                      frame that nonetheless finishes the sender's
//                      round — delta frames set it so gated modes keep
//                      their round accounting), bit5 codec (a codec
//                      subheader follows the fixed header and the
//                      payload is quantized integers, not raw doubles);
//                      bits 6-7 rejected
//   8       4     u32  sender rank
//   12      4     u32  block id
//   16      8     u64  tag (sender's per-block production counter)
//   24      8     u64  epoch (sender's round index)
//   32      4     u32  offset (coordinate offset within the block —
//                      partial-block frames for flexible communication)
//   36      4     u32  count (number of payload doubles)
//   40      8     f64  t_send (sender clock, diagnostic only: sender and
//                      receiver clocks are not comparable across hosts)
//   48      8     f64  injected_delay (chaos decorator; 0 otherwise)
//   56      8*count    payload doubles, little-endian IEEE-754
//
// When flag bit5 (codec) is set, a 20-byte codec subheader sits between
// the fixed header and the payload, and the payload is packed
// little-endian quantized integers instead of doubles:
//
//   56      1     u8   codec id (1 = scalar quantization)
//   57      1     u8   quant_bits (8 or 16)
//   58      2     u16  reserved (must be 0)
//   60      8     f64  quant_min
//   68      8     f64  quant_scale
//   76      count*quant_bits/8   packed LE unsigned ints; double i is
//                      quant_min + quant_scale * q[i] (codec.hpp dequant
//                      — the ONE arithmetic every decoder uses, so all
//                      backends deliver bit-identical values)
//
// All integers and doubles are little-endian regardless of host order.
// decode_frame is defensive: it never trusts the length field further
// than the declared maximum, rejects bad magic/version/kind and
// inconsistent lengths, bounds offset+count against the configured max
// block width (a frame whose range cannot fit any block dies at the
// wire, not at incorporate), and distinguishes "frame still incomplete"
// (kNeedMore) from "stream is garbage" (kBadFrame) so a reader thread can
// keep a reassembly buffer across short reads yet kill a corrupted
// connection immediately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "asyncit/net/channel.hpp"
#include "asyncit/transport/transport.hpp"

namespace asyncit::transport {

inline constexpr std::uint16_t kWireMagic = 0xA517;
inline constexpr std::uint8_t kWireVersion = 1;
/// Header bytes AFTER the 4-byte length prefix.
inline constexpr std::size_t kWireHeaderBytes = 52;
/// Hard cap on payload doubles per frame (sanity bound for garbage
/// rejection; generously above any block the runtime partitions).
inline constexpr std::uint32_t kMaxPayloadDoubles = 1u << 22;
/// Codec subheader bytes (present when the codec flag bit is set).
inline constexpr std::size_t kCodecSubheaderBytes = 20;

/// Encoded size of a message carrying `count` payload doubles, including
/// the length prefix.
inline constexpr std::size_t frame_bytes(std::size_t count) {
  return 4 + kWireHeaderBytes + 8 * count;
}

/// Encoded size including the length prefix for a frame carrying `count`
/// components at `quant_bits` bits each (0 = raw doubles). This is THE
/// bytes-on-wire figure: the TCP backend produces exactly this many
/// bytes, and the simnet bandwidth model charges exactly this many.
inline constexpr std::size_t wire_frame_bytes(std::size_t count,
                                              unsigned quant_bits) {
  return quant_bits == 0
             ? frame_bytes(count)
             : 4 + kWireHeaderBytes + kCodecSubheaderBytes +
                   (count * quant_bits + 7) / 8;
}

/// Serializes `m` into `out` (cleared first; capacity is retained, so a
/// pooled buffer makes this allocation-free once warm). Always a raw
/// (non-codec) frame: net::Message carries decoded doubles only.
void encode_frame(const net::Message& m, std::vector<std::uint8_t>& out);

/// Sender-side fast path: encodes straight from the header and payload
/// span the peer passes to Endpoint::send — no net::Message is
/// materialized on the TX side at all. When header.quant_bits is 8 or 16
/// the frame is emitted with the codec subheader and each double is
/// re-quantized against header.quant_min/quant_scale (the peer has
/// already roundtripped the values, so requantization is exact and the
/// decoder reproduces the payload bit-identically).
void encode_frame(std::uint32_t src, const MessageHeader& header,
                  std::span<const double> value, double t_send,
                  std::vector<std::uint8_t>& out);

enum class DecodeStatus {
  kOk,        ///< one frame decoded; `consumed` bytes eaten
  kNeedMore,  ///< prefix of a valid frame; feed more bytes
  kBadFrame,  ///< stream corrupt (bad magic/version/length/kind/range)
};

/// Attempts to decode one frame from the front of `buf` into `out`
/// (payload assigned into out.value — capacity retained; codec payloads
/// are dequantized into doubles here, so consumers never see packed
/// ints). On kOk, `consumed` is set to the number of bytes eaten;
/// otherwise it is 0. `max_block_doubles` bounds offset+count: a frame
/// whose coordinate range exceeds the widest block the receiver could
/// ever incorporate is rejected at decode time.
DecodeStatus decode_frame(std::span<const std::uint8_t> buf,
                          std::size_t& consumed, net::Message& out,
                          std::uint32_t max_block_doubles =
                              kMaxPayloadDoubles);

}  // namespace asyncit::transport
