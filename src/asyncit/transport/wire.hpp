// Wire format for net::Message — the byte contract of the TCP backend.
//
// A frame is a little-endian length prefix followed by a fixed header and
// the payload doubles:
//
//   offset  size  field
//   0       4     u32  frame length (bytes AFTER this field)
//   4       2     u16  magic 0xA517
//   6       1     u8   version (currently 1)
//   7       1     u8   flags: bit0 partial, bits1-3 MsgKind (kValue 0,
//                      kStop 1, kPing 2, kAck 3, kPingReq 4,
//                      kMembershipUpdate 5 — kStop keeps its original
//                      bit pattern 0x02, so pre-membership frames are
//                      byte-identical; 6-7 rejected)
//   8       4     u32  sender rank
//   12      4     u32  block id
//   16      8     u64  tag (sender's per-block production counter)
//   24      8     u64  epoch (sender's round index)
//   32      4     u32  offset (coordinate offset within the block —
//                      partial-block frames for flexible communication)
//   36      4     u32  count (number of payload doubles)
//   40      8     f64  t_send (sender clock, diagnostic only: sender and
//                      receiver clocks are not comparable across hosts)
//   48      8     f64  injected_delay (chaos decorator; 0 otherwise)
//   56      8*count    payload doubles, little-endian IEEE-754
//
// All integers and doubles are little-endian regardless of host order.
// decode_frame is defensive: it never trusts the length field further
// than the declared maximum, rejects bad magic/version/kind and
// inconsistent lengths, and distinguishes "frame still incomplete"
// (kNeedMore) from "stream is garbage" (kBadFrame) so a reader thread can
// keep a reassembly buffer across short reads yet kill a corrupted
// connection immediately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "asyncit/net/channel.hpp"
#include "asyncit/transport/transport.hpp"

namespace asyncit::transport {

inline constexpr std::uint16_t kWireMagic = 0xA517;
inline constexpr std::uint8_t kWireVersion = 1;
/// Header bytes AFTER the 4-byte length prefix.
inline constexpr std::size_t kWireHeaderBytes = 52;
/// Hard cap on payload doubles per frame (sanity bound for garbage
/// rejection; generously above any block the runtime partitions).
inline constexpr std::uint32_t kMaxPayloadDoubles = 1u << 22;

/// Encoded size of a message carrying `count` payload doubles, including
/// the length prefix.
inline constexpr std::size_t frame_bytes(std::size_t count) {
  return 4 + kWireHeaderBytes + 8 * count;
}

/// Serializes `m` into `out` (cleared first; capacity is retained, so a
/// pooled buffer makes this allocation-free once warm).
void encode_frame(const net::Message& m, std::vector<std::uint8_t>& out);

/// Sender-side fast path: encodes straight from the header and payload
/// span the peer passes to Endpoint::send — no net::Message is
/// materialized on the TX side at all.
void encode_frame(std::uint32_t src, const MessageHeader& header,
                  std::span<const double> value, double t_send,
                  std::vector<std::uint8_t>& out);

enum class DecodeStatus {
  kOk,        ///< one frame decoded; `consumed` bytes eaten
  kNeedMore,  ///< prefix of a valid frame; feed more bytes
  kBadFrame,  ///< stream corrupt (bad magic/version/length/kind)
};

/// Attempts to decode one frame from the front of `buf` into `out`
/// (payload assigned into out.value — capacity retained). On kOk,
/// `consumed` is set to the number of bytes eaten; otherwise it is 0.
DecodeStatus decode_frame(std::span<const std::uint8_t> buf,
                          std::size_t& consumed, net::Message& out);

}  // namespace asyncit::transport
