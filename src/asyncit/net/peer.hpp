// A worker peer of the message-passing runtime.
//
// Each peer runs on its own thread (or its own PROCESS — see
// net/node_runtime.hpp), owns a contiguous range of blocks, and holds a
// PRIVATE copy of the full iterate: the only way another peer's update
// reaches it is as a Message received through its transport::Endpoint
// (contrast rt::, where workers share the iterate in memory). The peer
// never touches the communication medium directly — inproc mailboxes,
// TCP sockets, and the chaos decorator all hide behind the endpoint
// (see transport/transport.hpp). The loop is the receive -> incorporate
// -> update -> send cycle of the paper's distributed model:
//
//   receive      drain every delivered message, incorporate it under the
//                configured OverwritePolicy (kLastArrivalWins reproduces
//                one-sided-put label inversions; kNewestTagWins filters
//                them receiver-side);
//   update       apply the block operator to the owned blocks
//                (inner_steps applications per phase; with
//                publish_partials, mid-phase partials are sent and
//                mid-phase arrivals incorporated — Definition 3);
//   send         publish the new block values to every other peer, tagged
//                with a per-block production counter.
//
// Coordination gates (Mode) before each sweep:
//   kAsync  never wait — the paper's Section II totally asynchronous
//           regime (unbounded delays tolerated);
//   kSsp    stale-synchronous: wait until every peer's last complete
//           round is within `staleness` of this peer's round (per-worker
//           clock gap cap);
//   kBsp    barrier-synchronized baseline: staleness 0 plus a frozen
//           per-round snapshot (exact distributed Jacobi).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "asyncit/membership/swim.hpp"
#include "asyncit/net/channel.hpp"
#include "asyncit/net/mp_runtime.hpp"
#include "asyncit/operators/operator.hpp"
#include "asyncit/runtime/shared_iterate.hpp"
#include "asyncit/support/timer.hpp"
#include "asyncit/trace/event_log.hpp"
#include "asyncit/transport/transport.hpp"

namespace asyncit::net {

/// A peer's private copy of the iterate plus the receive-side bookkeeping
/// (value tags, inversion/staleness counters). Kept as a standalone struct
/// so incorporation is unit-testable without threads.
struct LocalView {
  la::Vector x;
  std::vector<model::Step> tags;     ///< tag of the value currently held
  std::vector<model::Step> max_tag;  ///< newest tag ever seen per block
  std::uint64_t inversions = 0;      ///< arrivals with tag < newest seen
  std::uint64_t stale_filtered = 0;  ///< arrivals discarded by policy

  LocalView(const la::Vector& x0, std::size_t num_blocks)
      : x(x0), tags(num_blocks, 0), max_tag(num_blocks, 0) {}
};

/// Applies one received message to a local view under `policy`. An arrival
/// whose tag is older than the newest tag ever seen for that block is
/// counted as a label inversion (the trace-level signature of out-of-order
/// messages); kNewestTagWins additionally refuses to let it overwrite.
/// Partial-block frames (m.offset > 0 or m.value shorter than the block)
/// overwrite only the carried coordinate range.
void incorporate(const la::Partition& partition, OverwritePolicy policy,
                 const Message& m, LocalView& view);

/// The blocks `self` should include in a welcome snapshot for `joiner`:
/// its share of the contiguous assignment over the ESTABLISHED live set
/// (the live view with the joiner removed). Established ranks jointly
/// cover the iterate exactly once under this plan — the dedupe that
/// stops a joiner from receiving the same block from several ranks when
/// a membership epoch races the welcome. Returns empty when `self` is
/// not established or is a surplus (idle) rank. `live` must be sorted
/// (the membership table's invariant).
std::vector<la::BlockId> snapshot_plan(std::size_t num_blocks,
                                       const std::vector<std::uint32_t>& live,
                                       std::uint32_t self,
                                       std::uint32_t joiner);

/// Everything a peer shares with the orchestrator and the other peers.
/// All pointers outlive the peer threads (owned by run_message_passing /
/// run_node).
struct PeerContext {
  const op::BlockOperator* op = nullptr;
  const MpOptions* options = nullptr;
  const WallTimer* clock = nullptr;
  const std::vector<std::vector<la::BlockId>>* owned = nullptr;
  /// Monitoring plane: peers publish their own blocks here so the
  /// orchestrator can evaluate stopping rules; compute never reads it.
  rt::SharedIterate* monitor = nullptr;
  /// Per-block Euclidean displacement of the most recent update
  /// (atomic_ref access), for the displacement stopping rule.
  std::vector<double>* last_displacement = nullptr;
  std::vector<std::atomic<std::uint64_t>>* updates = nullptr;  ///< per peer
  std::atomic<bool>* stop = nullptr;
  /// Single-rank process mode (net::run_node): there is no orchestrator
  /// that can see a global snapshot, so the peer evaluates its stopping
  /// criterion on its OWN private view and announces a hit with a kStop
  /// control frame. Update budgets then count local updates only.
  bool node_mode = false;
  const la::WeightedMaxNorm* norm = nullptr;  ///< node-mode oracle stop
  /// Elastic membership (one agent PER PEER, driven by the peer thread
  /// alone). When set, the peer owns the blocks its index in the LIVE
  /// view assigns (re-running la::assign_blocks_contiguous on every
  /// view change), routes kPing/kAck/kPingReq/kMembershipUpdate frames
  /// into the agent, welcomes joiners with an iterate snapshot, and
  /// evaluates "everyone else is done" over the live view instead of
  /// the static world. Requires Mode::kAsync — the gated modes assume a
  /// static round structure that churn would deadlock.
  membership::SwimAgent* membership = nullptr;
};

class Peer {
 public:
  Peer(const PeerContext& ctx, std::uint32_t id, const la::Vector& x0,
       transport::Endpoint& endpoint);

  /// Thread body: loops until ctx.stop. Safe to call exactly once.
  void run();

  // ---- post-run accessors (valid after the thread has joined) ----
  const LocalView& view() const { return view_; }
  std::uint64_t rounds() const { return round_; }
  std::uint64_t messages_sent() const { return endpoint_->sent(); }
  std::uint64_t messages_dropped() const { return endpoint_->dropped(); }
  std::uint64_t partials_sent() const { return partials_sent_; }
  /// kStop control frames received (node mode: peers that left).
  std::uint64_t peers_stopped() const { return peers_stopped_; }
  /// Wire-valid messages discarded for out-of-range semantic fields
  /// (source rank / block id / offset extent — config mismatch).
  std::uint64_t frames_rejected() const { return frames_rejected_; }
  /// Elastic mode: live-view changes that re-ran block assignment.
  std::uint64_t reassignments() const { return reassignments_; }
  /// Elastic mode: blocks sent as welcome snapshots to joining ranks.
  std::uint64_t snapshot_blocks_sent() const { return snapshot_blocks_sent_; }
  /// Elastic mode: owned blocks NOT snapshot to a joiner because the
  /// established-cover plan assigns them to another rank (the duplicates
  /// the pre-dedupe welcome path would have sent).
  std::uint64_t snapshot_blocks_suppressed() const {
    return snapshot_blocks_suppressed_;
  }
  /// Bytes this peer's value frames WOULD have cost without the wire
  /// layer (full-width raw frames) vs what actually went out. Counted
  /// for block publishes on every backend; raw == wire with delta off.
  std::uint64_t bytes_sent_raw() const { return bytes_sent_raw_; }
  std::uint64_t bytes_sent_wire() const { return bytes_sent_wire_; }
  /// Frame-class breakdown of the delta layer's sends.
  std::uint64_t wire_frames_full() const { return wire_frames_full_; }
  std::uint64_t wire_frames_delta() const { return wire_frames_delta_; }
  std::uint64_t wire_frames_heartbeat() const {
    return wire_frames_heartbeat_;
  }
  std::uint64_t wire_frames_codec() const { return wire_frames_codec_; }
  /// TX byte breakdown per destination rank (index = dst; empty vectors
  /// until the first block publish sizes them).
  const std::vector<std::uint64_t>& link_bytes_raw() const {
    return link_bytes_raw_;
  }
  const std::vector<std::uint64_t>& link_bytes_wire() const {
    return link_bytes_wire_;
  }
  const trace::EventLog& log() const { return log_; }
  /// Measured drain delay per source rank (always on; index = src).
  const std::vector<DelayHistogram>& link_delays() const {
    return link_delays_;
  }
  /// Online admissibility auditor (null unless ObsOptions::audit or
  /// adaptive staleness — steering needs the measured bound).
  const obs::OnlineAuditor* auditor() const { return auditor_.get(); }
  /// SSP/BSP gate entries that actually blocked before opening.
  std::uint64_t gate_stalls() const { return gate_stalls_; }
  /// Adaptive staleness: steering decisions taken (0 when off) and the
  /// gate bound at exit (== solve.staleness when off).
  std::uint64_t steering_decisions() const {
    return steer_ ? steer_->decisions() : 0;
  }
  std::uint64_t staleness_bound() const {
    return steer_ ? steer_->bound() : ctx_.options->solve.staleness;
  }

 private:
  double now() const { return ctx_.clock->seconds(); }
  bool stopped() const {
    return ctx_.stop->load(std::memory_order_relaxed);
  }

  /// Drains the endpoint and incorporates everything delivered.
  void receive();
  /// Elastic mode: drives the SWIM agent (probe cadence, gossip), puts
  /// its outbox on the wire, reacts to membership events (snapshot
  /// joins, block re-assignment, live-view completion). No-op without a
  /// membership agent.
  void service_membership();
  /// Re-runs la::assign_blocks_contiguous over the live view.
  void recompute_owned();
  /// Sends the current value of every owned block to a joining rank so
  /// it starts from the live iterate instead of x0 (snapshot join).
  void send_snapshot_to(std::uint32_t dst);
  /// The blocks this peer currently owns (elastic view, or the static
  /// launch assignment when membership is off).
  const std::vector<la::BlockId>& owned_blocks() const {
    return ctx_.membership != nullptr ? elastic_owned_ : (*ctx_.owned)[id_];
  }
  /// Async no-local-criterion termination over the live view: true when
  /// every other slot has stopped, died, or never joined.
  bool all_others_inactive() const;
  /// Computes one updating phase of block b (inner_steps applications;
  /// flexible communication when configured) and publishes the result.
  void update_block(la::BlockId b, std::size_t reps,
                    std::span<const double> compute_view);
  /// Sends the current value of owned block b to every other peer.
  void send_block(la::BlockId b, bool partial);
  /// Announces this rank's local stopping-criterion hit (node mode).
  void broadcast_stop();
  /// Blocks until every other peer's count of complete rounds reaches
  /// `needed` (SSP/BSP gate). Returns false if stopped while waiting.
  bool wait_for_rounds(std::uint64_t needed);
  /// Budget checks + CPU-sliced voluntary yield (see rt::executors);
  /// node mode adds the local stopping-criterion check.
  void maybe_check(std::uint64_t own_updates);
  /// incorporate() plus the observability taps: inversion events, the
  /// audit bridge's changed-block mask, per-link delay bookkeeping.
  void incorporate_tracked(const la::Partition& partition,
                           OverwritePolicy policy, const Message& m);
  /// Records the stop decision and trips the shared flag.
  void trip_stop(obs::StopReason reason);

  PeerContext ctx_;
  const std::uint32_t id_;
  LocalView view_;
  transport::Endpoint* endpoint_;
  std::vector<Message> inbox_;        ///< drain buffer (reused)
  /// BSP only: drained messages from rounds this peer has not finished
  /// yet (fast peers may run one round ahead); incorporated once round_
  /// passes them, keeping each round's snapshot exact.
  std::vector<Message> holdback_;
  std::vector<Message> holdback_keep_;     ///< holdback filter scratch
  std::vector<Message> recycle_scratch_;   ///< consumed holdback returns
  la::Vector phase_out_;              ///< block output buffer (reused)
  la::Vector phase_prev_;             ///< phase-start block value (reused)
  la::Vector snapshot_;               ///< BSP per-round frozen view
  op::Workspace ws_;                  ///< per-peer operator scratch

  std::uint64_t round_ = 0;           ///< completed sweeps over owned blocks
  /// Per-BLOCK send counter (all m blocks, not just the launch-owned
  /// ones: elastic re-assignment hands blocks between ranks, and a new
  /// owner must continue the tag sequence past everything it has seen or
  /// kNewestTagWins receivers would discard its updates as stale).
  std::vector<model::Step> production_;
  model::Step local_step_ = 0;        ///< completed phases (trace labels)
  std::uint64_t partials_sent_ = 0;
  std::uint64_t peers_stopped_ = 0;
  std::uint64_t frames_rejected_ = 0;
  ThreadCpuTimer cpu_timer_;

  // ---- elastic membership (all empty/zero when ctx.membership is null)
  std::vector<la::BlockId> elastic_owned_;   ///< current live assignment
  std::vector<la::BlockId> sweep_owned_;     ///< per-sweep stable copy
  std::vector<bool> stopped_ranks_;          ///< kStop seen, by rank
  std::vector<membership::Event> events_scratch_;
  std::uint64_t owned_epoch_ = 0;     ///< table epoch of elastic_owned_
  std::uint64_t reassignments_ = 0;
  std::uint64_t snapshot_blocks_sent_ = 0;
  std::uint64_t snapshot_blocks_suppressed_ = 0;
  std::vector<la::BlockId> snapshot_plan_;   ///< welcome-plan scratch

  // ---- wire-efficiency layer (MpOptions::wire; all empty when off) ----
  /// Per-(destination, block) record of the payload the receiver last
  /// got from us — the reference the next delta frame diffs against.
  /// `last` holds post-codec values (what the receiver actually holds),
  /// updated only when the send receipt says the frame went out.
  struct DeltaSlot {
    la::Vector last;
    bool valid = false;
    std::uint64_t sends_since_refresh = 0;
    std::uint64_t rx_epoch = 0;  ///< block_rx_epoch_ when last refreshed
  };
  std::vector<DeltaSlot> delta_;   ///< [dst * num_blocks + block]
  /// Raw-equivalent vs on-wire bytes per destination rank (index = dst).
  std::vector<std::uint64_t> link_bytes_raw_;
  std::vector<std::uint64_t> link_bytes_wire_;
  /// Bumped whenever a remote value for the block is incorporated: our
  /// delta baseline toward EVERY destination is stale the moment someone
  /// else wrote the block (ownership churn), so the next send refreshes.
  std::vector<std::uint64_t> block_rx_epoch_;
  la::Vector codec_scratch_;       ///< quantization roundtrip buffer
  std::uint64_t bytes_sent_raw_ = 0;
  std::uint64_t bytes_sent_wire_ = 0;
  std::uint64_t wire_frames_full_ = 0;
  std::uint64_t wire_frames_delta_ = 0;
  std::uint64_t wire_frames_heartbeat_ = 0;
  std::uint64_t wire_frames_codec_ = 0;

  /// Round-completion tracking per source peer: complete_rounds_[src] is
  /// the count r of initial rounds (0..r-1) for which ALL of src's final
  /// block messages have been received; arrivals_[src] counts finals per
  /// not-yet-complete round.
  std::vector<std::uint64_t> complete_rounds_;
  std::vector<std::unordered_map<std::uint64_t, std::size_t>> arrivals_;

  trace::EventLog log_;
  std::size_t trace_budget_ = 0;      ///< remaining events this peer may log

  // ---- observability (obs/) ----
  std::vector<DelayHistogram> link_delays_;  ///< by source rank
  std::unique_ptr<obs::OnlineAuditor> auditor_;
  /// Adaptive-staleness controller (kSsp + solve.adaptive.enabled): the
  /// round-gate slack run() reads is bound() instead of the static
  /// staleness option. Fed from the auditor's measured delay bound in
  /// update_block (signal in rounds: d_bound / owned blocks).
  std::unique_ptr<obs::StalenessController> steer_;
  std::uint64_t gate_stalls_ = 0;
  /// Audit bridge (see update_block): step j = own completed phases;
  /// last_changed_[i] = audit step at which component i last changed,
  /// pending_[i] = changed by a remote incorporation since the last own
  /// step (those blocks join the next step's S_j).
  std::vector<model::Step> audit_last_changed_;
  std::vector<std::uint8_t> audit_pending_;
  std::vector<la::BlockId> audit_updated_;   ///< S_j assembly scratch
};

}  // namespace asyncit::net
