#include "asyncit/net/mp_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "asyncit/net/peer.hpp"
#include "asyncit/obs/metrics.hpp"
#include "asyncit/runtime/pacing.hpp"
#include "asyncit/runtime/shared_iterate.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/support/timer.hpp"
#include "asyncit/transport/inproc.hpp"

namespace asyncit::net {

namespace {

/// Orchestrator poll period. Coarse enough not to steal meaningful CPU
/// from the peers on an oversubscribed machine, fine enough that stopping
/// decisions lag by well under a millisecond.
constexpr double kMonitorPeriod = 2e-4;

}  // namespace

MpResult run_message_passing(const op::BlockOperator& op,
                             const la::Vector& x0,
                             const MpOptions& options) {
  ASYNCIT_CHECK(options.chaos.delivery.min_latency >= 0.0 &&
                options.chaos.delivery.max_latency >= options.chaos.delivery.min_latency);
  ASYNCIT_CHECK(options.chaos.delivery.drop_prob >= 0.0 &&
                options.chaos.delivery.drop_prob < 1.0);
  // The in-process backend derives one RNG stream per directed link from
  // options.seed in the fixed pre-transport order: replays are
  // deterministic however the OS schedules the threads.
  transport::InprocTransport transport(options.workers, options.chaos.delivery,
                                       options.seed);
  return run_message_passing(op, x0, options, transport);
}

MpResult run_message_passing(const op::BlockOperator& op,
                             const la::Vector& x0, const MpOptions& options,
                             transport::Transport& transport) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  const std::size_t peers_n = options.workers;
  ASYNCIT_CHECK(peers_n >= 1 && peers_n <= m);
  ASYNCIT_CHECK(x0.size() == partition.dim());
  ASYNCIT_CHECK(options.solve.inner_steps >= 1);
  ASYNCIT_CHECK(options.solve.check_every >= 1);
  ASYNCIT_CHECK(transport.world() == peers_n);
  ASYNCIT_CHECK(transport.local_ranks().size() == peers_n);

  // Observability: arm the global recorder/registry for this run. The
  // kOff default leaves both untouched (so callers that manage the
  // recorder themselves — benches, the node runtime — are unaffected).
  if (options.obs.trace_level != obs::TraceLevel::kOff) {
    obs::TraceConfig tc;
    tc.level = options.obs.trace_level;
    tc.ring_capacity = options.obs.trace_ring_capacity;
    obs::TraceRecorder::instance().enable(tc);
    obs::MetricsRegistry::instance().reset();
  }

  const auto owned = la::assign_blocks_contiguous(m, peers_n);
  rt::SharedIterate monitor(x0);
  std::vector<double> last_displacement(m, 1e300);
  std::vector<std::atomic<std::uint64_t>> updates(peers_n);
  std::atomic<bool> stop{false};
  la::WeightedMaxNorm norm{partition};
  const bool oracle = options.solve.x_star.has_value();
  const bool displacement_stop = options.solve.displacement_tol > 0.0;

  WallTimer timer;
  PeerContext ctx;
  ctx.op = &op;
  ctx.options = &options;
  ctx.clock = &timer;
  ctx.owned = &owned;
  ctx.monitor = &monitor;
  ctx.last_displacement = &last_displacement;
  ctx.updates = &updates;
  ctx.stop = &stop;

  // Elastic membership in threaded mode: every rank runs its own agent
  // (driven by its peer thread alone — the Endpoint threading contract).
  // Nobody actually dies in-process, so this is the failure detector
  // under load: the false-positive testbed (tests/membership_test.cpp).
  std::vector<std::unique_ptr<membership::SwimAgent>> agents;
  if (options.membership.enabled) {
    ASYNCIT_CHECK(options.solve.mode == Mode::kAsync);
    agents.reserve(peers_n);
    for (std::size_t p = 0; p < peers_n; ++p)
      agents.push_back(std::make_unique<membership::SwimAgent>(
          static_cast<std::uint32_t>(p), peers_n, options.membership,
          options.seed));
  }

  std::vector<std::unique_ptr<Peer>> peers;
  peers.reserve(peers_n);
  for (std::size_t p = 0; p < peers_n; ++p) {
    PeerContext pctx = ctx;
    if (!agents.empty()) pctx.membership = agents[p].get();
    peers.push_back(std::make_unique<Peer>(
        pctx, static_cast<std::uint32_t>(p), x0,
        transport.endpoint(static_cast<std::uint32_t>(p))));
  }

  std::vector<std::thread> threads;
  threads.reserve(peers_n);
  for (std::size_t p = 0; p < peers_n; ++p)
    threads.emplace_back([&peers, p] { peers[p]->run(); });

  // ---- monitor loop (this thread): stopping rules over the published
  // plane; peers handle the time/update budgets themselves as well. All
  // snapshot/residual scratch comes from the monitor's workspace — the
  // poll loop allocates nothing once warm.
  op::Workspace monitor_ws;
  la::Vector snap(partition.dim());
  rt::DisplacementStop stop_rule;
  while (!stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kMonitorPeriod));
    const double t = timer.seconds();
    std::uint64_t total = 0;
    for (const auto& u : updates) total += u.load(std::memory_order_relaxed);
    if (t > options.solve.max_seconds || total >= options.solve.max_updates) {
      obs::record(obs::EventType::kStopDecision, 0,
                  static_cast<std::uint32_t>(
                      t > options.solve.max_seconds
                          ? obs::StopReason::kWallBudget
                          : obs::StopReason::kUpdateBudget),
                  total, t);
      stop.store(true, std::memory_order_relaxed);
      break;
    }
    if (oracle) {
      monitor.snapshot_into(snap);
      if (norm.distance(snap, *options.solve.x_star) < options.solve.tol) {
        obs::record(obs::EventType::kStopDecision, 0,
                    static_cast<std::uint32_t>(obs::StopReason::kOracle),
                    total, t);
        stop.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (displacement_stop &&
        stop_rule.should_stop(
            last_displacement, op, options.solve.displacement_tol,
            [&](std::span<double> s) { monitor.snapshot_into(s); },
            monitor_ws)) {
      obs::record(obs::EventType::kStopDecision, 0,
                  static_cast<std::uint32_t>(obs::StopReason::kDisplacement),
                  total, t);
      stop.store(true, std::memory_order_relaxed);
      break;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : threads) th.join();

  // ---- assemble the result ----
  MpResult result;
  result.wall_seconds = timer.seconds();
  if (options.obs.trace_level != obs::TraceLevel::kOff) {
    obs::TraceRecorder::instance().disable();
    const obs::RecorderStats os = obs::TraceRecorder::instance().stats();
    result.obs_events_recorded = os.recorded;
    result.obs_events_dropped = os.dropped;
  }
  result.x = monitor.snapshot();
  result.updates_per_worker.reserve(peers_n);
  for (const auto& u : updates) {
    result.updates_per_worker.push_back(u.load());
    result.total_updates += result.updates_per_worker.back();
  }
  result.rounds = peers.front()->rounds();
  for (const auto& p : peers)
    result.rounds = std::min(result.rounds, p->rounds());
  for (const auto& p : peers) {
    result.partials_sent += p->partials_sent();
    result.inversions_observed += p->view().inversions;
    result.stale_filtered += p->view().stale_filtered;
    result.peers_stopped += p->peers_stopped();
    result.frames_rejected += p->frames_rejected();
    result.reassignments += p->reassignments();
    result.snapshot_blocks_sent += p->snapshot_blocks_sent();
    result.snapshot_blocks_suppressed += p->snapshot_blocks_suppressed();
    result.bytes_sent_raw += p->bytes_sent_raw();
    result.bytes_sent_wire += p->bytes_sent_wire();
    result.wire_frames_full += p->wire_frames_full();
    result.wire_frames_delta += p->wire_frames_delta();
    result.wire_frames_heartbeat += p->wire_frames_heartbeat();
    result.wire_frames_codec += p->wire_frames_codec();
    result.gate_stalls += p->gate_stalls();
    result.steering_decisions += p->steering_decisions();
    result.staleness_at_exit =
        std::max(result.staleness_at_exit, p->staleness_bound());
  }
  result.bad_frames = transport.bad_frames();
  for (std::size_t pi = 0; pi < peers.size(); ++pi) {
    const auto& links = peers[pi]->link_delays();
    for (std::uint32_t src = 0; src < links.size(); ++src) {
      if (links[src].count() == 0) continue;
      MpResult::LinkDelay link;
      link.src = src;
      link.dst = static_cast<std::uint32_t>(pi);
      link.delays = links[src];
      result.link_delays.push_back(std::move(link));
    }
    if (peers[pi]->auditor() != nullptr)
      result.admissibility.push_back(peers[pi]->auditor()->report());
  }
  for (const auto& a : agents) result.membership += a->stats();
  for (std::size_t p = 0; p < peers_n; ++p) {
    const transport::Endpoint& ep =
        transport.endpoint(static_cast<std::uint32_t>(p));
    result.messages_sent += ep.sent();
    result.messages_dropped += ep.dropped();
    result.messages_delivered += ep.delivered();
    result.delays.merge(ep.delays());
  }
  if (options.obs.record_trace) {
    std::vector<trace::PhaseEvent> phases;
    std::vector<trace::MessageEvent> messages;
    for (const auto& p : peers) {
      const trace::EventLog& log = p->log();
      phases.insert(phases.end(), log.phases().begin(), log.phases().end());
      messages.insert(messages.end(), log.messages().begin(),
                      log.messages().end());
    }
    std::sort(phases.begin(), phases.end(),
              [](const trace::PhaseEvent& a, const trace::PhaseEvent& b) {
                return a.t_start < b.t_start;
              });
    std::sort(messages.begin(), messages.end(),
              [](const trace::MessageEvent& a, const trace::MessageEvent& b) {
                return a.t_send < b.t_send;
              });
    for (auto& e : phases) result.log.add_phase(e);
    for (auto& e : messages) result.log.add_message(e);
  }
  if (oracle) {
    result.final_error = norm.distance(result.x, *options.solve.x_star);
    result.converged = result.final_error < options.solve.tol;
  }
  return result;
}

}  // namespace asyncit::net
