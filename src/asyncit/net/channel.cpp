#include "asyncit/net/channel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "asyncit/support/check.hpp"

namespace asyncit::net {

// ------------------------------------------------------- DelayHistogram

namespace {
// 1 microsecond .. 10 seconds, 36 log-spaced buckets plus an overflow
// bucket; covers everything from same-quantum delivery to stragglers.
constexpr double kEdgeLo = 1e-6;
constexpr double kEdgeHi = 10.0;
constexpr std::size_t kBuckets = 36;
}  // namespace

DelayHistogram::DelayHistogram() {
  edges_.reserve(kBuckets + 1);
  const double ratio = std::pow(kEdgeHi / kEdgeLo, 1.0 / double(kBuckets - 1));
  double e = kEdgeLo;
  for (std::size_t i = 0; i < kBuckets; ++i, e *= ratio) edges_.push_back(e);
  edges_.push_back(std::numeric_limits<double>::infinity());
  counts_.assign(edges_.size(), 0);
}

void DelayHistogram::add(double delay_seconds) {
  const double d = std::max(0.0, delay_seconds);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), d);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
  ++count_;
  sum_ += d;
  min_ = (count_ == 1) ? d : std::min(min_, d);
  max_ = std::max(max_, d);
}

void DelayHistogram::merge(const DelayHistogram& other) {
  ASYNCIT_CHECK(counts_.size() == other.counts_.size());
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  min_ = (count_ == 0) ? other.min_ : std::min(min_, other.min_);
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double DelayHistogram::quantile(double p) const {
  ASYNCIT_CHECK(p >= 0.0 && p <= 1.0);
  if (count_ == 0) return 0.0;
  const double rank = p * double(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (double(seen) >= rank)
      return std::isinf(edges_[i]) ? max_ : edges_[i];
  }
  return max_;
}

// ----------------------------------------------------------- LinkStamper

bool LinkStamper::stamp(Message& m, double now, bool allow_drop) {
  ++stamped_;
  // Always consume the same number of draws per message so the sequence
  // stays aligned across replays regardless of mode flags.
  const double latency =
      rng_.uniform(policy_.min_latency, policy_.max_latency);
  const bool drop = policy_.drop_prob > 0.0 && rng_.bernoulli(policy_.drop_prob);
  m.t_send = now;
  m.deliver_at = now + latency;
  if (policy_.fifo) {
    m.deliver_at = std::max(m.deliver_at, last_deliver_at_);
    last_deliver_at_ = m.deliver_at;
  }
  if (drop && allow_drop) {
    ++dropped_;
    return false;
  }
  return true;
}

// --------------------------------------------------------------- Mailbox

void Mailbox::post(Message m) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Insert keeping pending_ sorted by deliver_at (ties: arrival order).
    auto it = std::upper_bound(
        pending_.begin(), pending_.end(), m,
        [](const Message& a, const Message& b) {
          return a.deliver_at < b.deliver_at;
        });
    pending_.insert(it, std::move(m));
    ++posted_;
  }
  cv_.notify_one();
}

std::size_t Mailbox::drain(double now, std::vector<Message>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  while (n < pending_.size() && pending_[n].deliver_at <= now) ++n;
  for (std::size_t i = 0; i < n; ++i) {
    delays_.add(now - pending_[i].t_send);
    out.push_back(std::move(pending_[i]));
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(n));
  delivered_ += n;
  return n;
}

void Mailbox::wait_for_post(std::uint64_t seen_posted,
                            double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
               [&] { return posted_ > seen_posted; });
}

double Mailbox::next_delivery() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.empty() ? std::numeric_limits<double>::infinity()
                          : pending_.front().deliver_at;
}

std::uint64_t Mailbox::posted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return posted_;
}

std::uint64_t Mailbox::delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

}  // namespace asyncit::net
