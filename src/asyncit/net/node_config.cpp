#include "asyncit/net/node_config.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace asyncit::net {

namespace {

using Handler = bool (*)(NodeConfig&, std::istringstream&, std::string&);

/// One table row: the documentation AND the parser binding for a key —
/// the two cannot drift apart because they are the same entry.
struct KeyEntry {
  ConfigKeySpec spec;
  Handler handler;
};

template <typename T>
bool read_value(std::istringstream& ls, T& v, std::string& error) {
  if (ls >> v) return true;
  error = "bad value";
  return false;
}

bool read_bool01(std::istringstream& ls, bool& v, std::string& error) {
  int i = 0;
  if (!read_value(ls, i, error)) return false;
  v = i != 0;
  return true;
}

// clang-format off
const KeyEntry kKeys[] = {
    {{"world", "int", "-",
      "number of ranks (required; must precede node lines)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       if (!read_value(ls, c.world, e)) return false;
       c.nodes.resize(c.world);
       return true;
     }},
    {{"node", "rank host port", "-",
      "address of one rank (one line per rank; required)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       std::size_t rank = 0;
       transport::TcpPeerAddress addr;
       if (!read_value(ls, rank, e) || !read_value(ls, addr.host, e) ||
           !read_value(ls, addr.port, e))
         return false;
       if (rank >= c.nodes.size()) {
         e = "node rank out of range (put world first)";
         return false;
       }
       c.nodes[rank] = addr;
       return true;
     }},
    {{"seed", "int", "42", "problem + chaos + dataset seed"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.seed, e);
     }},
    {{"workload", "enum:solve|train", "solve",
      "solve: Jacobi message passing; train: parameter-server SGD"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       std::string w;
       if (!read_value(ls, w, e)) return false;
       if (w == "solve") c.workload = Workload::kSolve;
       else if (w == "train") c.workload = Workload::kTrain;
       else { e = "unknown workload " + w; return false; }
       return true;
     }},

    // -- solve workload --
    {{"dim", "int", "128", "Jacobi system size (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.dim, e);
     }},
    {{"blocks", "int", "8", "partition blocks (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.blocks, e);
     }},
    {{"nnz", "int", "4", "off-diagonal entries per row (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.nnz, e);
     }},
    {{"dominance", "float", "2.0", "diagonal dominance factor (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.dominance, e);
     }},
    {{"mode", "enum:async|ssp|bsp",
      "async", "solver coordination discipline (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       std::string m;
       if (!read_value(ls, m, e)) return false;
       if (m == "async") c.mode = net::Mode::kAsync;
       else if (m == "ssp") c.mode = net::Mode::kSsp;
       else if (m == "bsp") c.mode = net::Mode::kBsp;
       else { e = "unknown mode " + m; return false; }
       return true;
     }},
    {{"staleness", "int", "2",
      "SSP clock-gap bound (solve mode ssp and train discipline ssp)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.staleness, e);
     }},
    {{"inner_steps", "int", "1",
      "operator applications per phase (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.inner_steps, e);
     }},
    {{"publish_partials", "bool01", "0",
      "flexible communication, Definition 3 (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.publish_partials, e);
     }},
    {{"overwrite", "enum:last_arrival|newest_tag", "last_arrival",
      "mailbox overwrite policy (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       std::string p;
       if (!read_value(ls, p, e)) return false;
       if (p == "last_arrival")
         c.overwrite = net::OverwritePolicy::kLastArrivalWins;
       else if (p == "newest_tag")
         c.overwrite = net::OverwritePolicy::kNewestTagWins;
       else { e = "unknown overwrite policy " + p; return false; }
       return true;
     }},
    {{"tol", "float", "1e-8", "oracle stopping tolerance (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.tol, e);
     }},
    {{"max_seconds", "float", "30",
      "per-process wall budget (both workloads)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.max_seconds, e);
     }},
    {{"check_every", "int", "16",
      "budget/stop check cadence in own updates (solve; node mode "
      "evaluates the oracle every 4x this)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.check_every, e);
     }},
    {{"max_updates", "int", "100000000",
      "per-rank update budget (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.max_updates, e);
     }},

    // -- train workload: dataset --
    {{"samples", "int", "400", "dataset rows (train)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.dataset.samples, e);
     }},
    {{"features", "int", "80",
      "dataset columns == model size (train)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.dataset.features, e);
     }},
    {{"density", "float", "0.25", "dataset row density (train)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.dataset.density, e);
     }},
    {{"separation", "float", "2.0",
      "margin scale of the labeling hyperplane (train)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.dataset.separation, e);
     }},
    {{"label_noise", "float", "0.05",
      "fraction of flipped labels (train)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.dataset.label_noise, e);
     }},
    {{"ridge", "float", "0.1",
      "L2 regularization strength (train; must be positive)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.dataset.ridge, e);
     }},

    // -- train workload: optimizer --
    {{"discipline", "enum:bsp|tap|ssp", "tap",
      "server aggregation discipline (train)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       std::string d;
       if (!read_value(ls, d, e)) return false;
       if (d == "bsp") c.sgd.discipline = train::Discipline::kBsp;
       else if (d == "tap") c.sgd.discipline = train::Discipline::kTap;
       else if (d == "ssp") c.sgd.discipline = train::Discipline::kSsp;
       else { e = "unknown discipline " + d; return false; }
       return true;
     }},
    {{"learning_rate", "float", "0.5", "SGD step size (train)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.sgd.learning_rate, e);
     }},
    {{"batch_size", "int", "16",
      "minibatch rows per worker step (train)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.sgd.batch_size, e);
     }},
    {{"max_epochs", "int", "50",
      "per-worker epoch budget over its shard (train)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.sgd.max_epochs, e);
     }},
    {{"target_accuracy", "float", "0",
      "stop when a server eval reaches this train accuracy "
      "(train; 0 disables)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.sgd.target_accuracy, e);
     }},
    {{"eval_every", "int", "8",
      "server eval cadence: applied deltas (tap/ssp) or rounds (bsp)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.sgd.eval_every, e);
     }},

    // -- wire efficiency (solve) --
    {{"wire_delta", "bool01", "0",
      "per-link delta encoding: each sender tracks the last frame per "
      "(destination, block) and ships only the changed range (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.wire_delta, e);
     }},
    {{"wire_topk", "int", "0",
      "cap a delta frame at the densest window of this many coordinates "
      "(lossy until the next refresh; 0 = ship the whole changed range; "
      "requires wire_delta 1)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.wire_topk, e);
     }},
    {{"wire_quant_bits", "int", "0",
      "scalar-quantize value payloads to 8 or 16 bits per coordinate "
      "(0 = raw doubles; requires wire_delta 1)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.wire_quant_bits, e);
     }},
    {{"wire_refresh_every", "int", "16",
      "full-frame resync period per (destination, block): every N-th "
      "send ships the whole block, bounding delta drift (1 = always "
      "full)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.wire_refresh_every, e);
     }},

    // -- fabric --
    {{"transport", "enum:tcp|sim", "tcp",
      "tcp: one process per rank over sockets (asyncit_node); sim: the "
      "whole world in one process over virtual time (asyncit_sim; node "
      "lines not required, max_seconds is a virtual budget)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       std::string t;
       if (!read_value(ls, t, e)) return false;
       if (t == "tcp") c.sim = false;
       else if (t == "sim") c.sim = true;
       else { e = "unknown transport " + t; return false; }
       return true;
     }},
    {{"sim_latency", "float", "1e-3",
      "sim intra-region base one-way latency, virtual seconds"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.topology.latency, e);
     }},
    {{"sim_jitter", "float", "0.5",
      "sim per-frame latency jitter fraction (>= 1: heavy reordering)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.topology.jitter, e);
     }},
    {{"sim_asymmetry", "float", "0",
      "sim per-directed-link base skew fraction (asymmetric routes)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.topology.asymmetry, e);
     }},
    {{"sim_bandwidth", "float", "0",
      "sim link bandwidth, bytes per virtual second (0 = infinite)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.topology.bandwidth, e);
     }},
    {{"sim_fifo", "bool01", "0", "sim per-link in-order delivery floor"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.simcfg.topology.fifo, e);
     }},
    {{"sim_drop", "float", "0",
      "sim per-frame loss probability (droppable frames only)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.topology.drop_prob, e);
     }},
    {{"sim_drop_control", "bool01", "0",
      "sim loss also drops CONTROL frames"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.simcfg.topology.drop_control, e);
     }},
    {{"sim_regions", "int", "1",
      "sim WAN regions (ranks assigned round-robin)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.topology.regions, e);
     }},
    {{"sim_cross_region", "float", "4.0",
      "sim cross-region latency multiplier"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.topology.cross_region, e);
     }},
    {{"sim_partition", "t0 t1 boundary", "-",
      "sim partition window (repeatable): while t0 <= t < t1 frames "
      "crossing the cut {rank < boundary}|{rank >= boundary} drop; the "
      "window end is the heal"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       simnet::PartitionWindow w;
       if (!read_value(ls, w.t0, e) || !read_value(ls, w.t1, e) ||
           !read_value(ls, w.boundary, e))
         return false;
       c.simcfg.topology.partitions.push_back(w);
       return true;
     }},
    {{"sim_compute", "float", "1e-3",
      "sim virtual cost of one update phase, seconds"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.compute.phase, e);
     }},
    {{"sim_compute_jitter", "float", "0.5",
      "sim per-phase cost jitter fraction (in [0, 1])"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.compute.jitter, e);
     }},
    {{"sim_straggler_every", "int", "0",
      "every N-th rank straggles (0 disables)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.compute.straggler_every, e);
     }},
    {{"sim_straggler_factor", "float", "10.0",
      "compute multiplier of a straggling rank"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.simcfg.compute.straggler_factor, e);
     }},
    {{"sim_event_log", "bool01", "0",
      "record the full event log (hash is always kept)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.simcfg.record_log, e);
     }},
    {{"sim_runs", "int", "1",
      "determinism re-runs: all must agree on log hash + residual"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.sim_runs, e);
     }},
    {{"chaos", "bool01", "0",
      "wrap the transport (tcp or sim) in the chaos decorator"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.chaos, e);
     }},
    {{"min_latency", "float", "0",
      "chaos injected latency lower bound, seconds"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.chaos_policy.min_latency, e);
     }},
    {{"max_latency", "float", "0",
      "chaos injected latency upper bound, seconds"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.chaos_policy.max_latency, e);
     }},
    {{"fifo", "bool01", "0", "chaos in-order delivery floor"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.chaos_policy.fifo, e);
     }},
    {{"drop_prob", "float", "0",
      "chaos loss probability (droppable frames only)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.chaos_policy.drop_prob, e);
     }},
    {{"drop_control", "bool01", "0",
      "chaos loss also drops CONTROL frames"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.chaos_policy.drop_control, e);
     }},
    {{"elastic", "bool01", "0",
      "elastic TCP: tolerate peers dying mid-run "
      "(implied by membership 1)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.elastic, e);
     }},

    // -- membership (solve, mode async) --
    {{"membership", "bool01", "0",
      "SWIM gossip membership with elastic ranks (solve, mode async)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.membership.enabled, e);
     }},
    {{"ping_period", "float", "0.05",
      "membership probe cadence, seconds"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.membership.ping_period, e);
     }},
    {{"ping_timeout", "float", "0.15",
      "direct-ack window (suspect at 2x)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.membership.ping_timeout, e);
     }},
    {{"suspicion_timeout", "float", "1.0",
      "suspect to dead grace period, seconds"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.membership.suspicion_timeout, e);
     }},
    {{"ping_req_fanout", "int", "2", "indirect probe helpers"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.membership.ping_req_fanout, e);
     }},
    {{"late", "repeatable-int", "-",
      "slot absent at launch (repeatable; requires membership 1)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       std::uint32_t r = 0;
       if (!read_value(ls, r, e)) return false;
       c.late.push_back(r);
       return true;
     }},

    // -- observability --
    {{"trace", "enum:none|metrics|full", "none",
      "observability level"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       std::string level;
       if (!read_value(ls, level, e)) return false;
       if (!obs::parse_trace_level(level.c_str(), &c.trace)) {
         e = "unknown trace level " + level;
         return false;
       }
       return true;
     }},
    {{"trace_dir", "string", "",
      "where rank_<r>.trace.json / .metrics.json land"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.trace_dir, e);
     }},
    {{"audit", "bool01", "0",
      "online admissibility auditor (solve)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.audit, e);
     }},
    {{"stream_interval", "float", "0",
      "streaming trace-window flush cadence, seconds (0 disables; "
      "requires trace full + trace_dir)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.stream_interval, e);
     }},
    {{"stream_windows", "int", "8",
      "newest window files kept on disk per rank (0 = unbounded)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.stream_windows, e);
     }},
    {{"adaptive", "bool01", "0",
      "auditor-fed adaptive staleness: steer the SSP bound from the "
      "measured delay (solve mode ssp / train discipline ssp; "
      "staleness becomes the initial bound)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_bool01(ls, c.adaptive.enabled, e);
     }},
    {{"adaptive_min", "int", "1", "adaptive staleness bound floor"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.adaptive.min_bound, e);
     }},
    {{"adaptive_max", "int", "8", "adaptive staleness bound ceiling"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.adaptive.max_bound, e);
     }},
    {{"adaptive_gain", "float", "1.0",
      "measured-signal to bound scale factor"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.adaptive.gain, e);
     }},
    {{"adaptive_hold", "int", "3",
      "consecutive lower candidates before the bound drops (hysteresis)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.adaptive.hold, e);
     }},
    {{"adaptive_every", "int", "32",
      "steering decision cadence: own steps (solve) or applied deltas "
      "(train)"},
     [](NodeConfig& c, std::istringstream& ls, std::string& e) {
       return read_value(ls, c.adaptive.decide_every, e);
     }},
};
// clang-format on

/// Post-parse cross-field validation; the contract both workloads and
/// the launcher rely on.
bool validate(NodeConfig& cfg, std::string& error) {
  if (cfg.world < 2) {
    error = "config needs world >= 2";
    return false;
  }
  // Simulated worlds live in one process: no address table to check.
  if (!cfg.sim) {
    for (std::size_t r = 0; r < cfg.world; ++r) {
      if (cfg.nodes[r].port == 0) {
        error = "config missing node line for rank " + std::to_string(r);
        return false;
      }
    }
  }
  if (cfg.sim_runs < 1) {
    error = "sim_runs must be >= 1";
    return false;
  }
  for (const std::uint32_t r : cfg.late) {
    if (r >= cfg.world) {
      error = "late rank out of range";
      return false;
    }
  }
  if (!cfg.late.empty() && !cfg.membership.enabled) {
    error = "late ranks require membership 1";
    return false;
  }
  if (cfg.membership.enabled && cfg.workload == Workload::kTrain) {
    error = "membership rides the solve runtime; the train workload "
            "uses plain elastic TCP (elastic 1)";
    return false;
  }
  if (cfg.membership.enabled && cfg.mode != net::Mode::kAsync) {
    error = "membership requires mode async (elastic ranks would "
            "deadlock a gated round structure)";
    return false;
  }
  if (cfg.membership.enabled) {
    cfg.elastic = true;
    for (std::uint32_t r = 0; r < cfg.world; ++r)
      if (std::find(cfg.late.begin(), cfg.late.end(), r) == cfg.late.end())
        cfg.membership.initial_alive.push_back(r);
  }
  if (cfg.adaptive.enabled) {
    if (cfg.adaptive.min_bound < 1 ||
        cfg.adaptive.max_bound < cfg.adaptive.min_bound) {
      error = "adaptive bounds need 1 <= adaptive_min <= adaptive_max";
      return false;
    }
    if (cfg.adaptive.hold < 1 || cfg.adaptive.decide_every < 1) {
      error = "adaptive_hold and adaptive_every must be >= 1";
      return false;
    }
  }
  if (cfg.wire_quant_bits != 0 && cfg.wire_quant_bits != 8 &&
      cfg.wire_quant_bits != 16) {
    error = "wire_quant_bits must be 0, 8, or 16";
    return false;
  }
  if (cfg.wire_refresh_every < 1) {
    error = "wire_refresh_every must be >= 1";
    return false;
  }
  if ((cfg.wire_topk != 0 || cfg.wire_quant_bits != 0) && !cfg.wire_delta) {
    error = "wire_topk / wire_quant_bits require wire_delta 1";
    return false;
  }
  if (cfg.stream_interval > 0.0 &&
      (cfg.trace != obs::TraceLevel::kFull || cfg.trace_dir.empty())) {
    error = "stream_interval requires trace full and trace_dir";
    return false;
  }
  if (cfg.workload == Workload::kTrain) {
    // Shared keys fold into the SGD options here, so the two workloads
    // cannot disagree about what `staleness` or `max_seconds` mean.
    cfg.sgd.staleness = cfg.staleness;
    cfg.sgd.max_seconds = cfg.max_seconds;
    cfg.sgd.adaptive = cfg.adaptive;
    if (cfg.dataset.ridge <= 0.0) {
      error = "train workload needs ridge > 0";
      return false;
    }
    if (cfg.dataset.samples < cfg.world - 1) {
      error = "train workload needs at least one dataset row per worker";
      return false;
    }
  }
  return true;
}

}  // namespace

std::span<const ConfigKeySpec> node_config_schema() {
  static std::vector<ConfigKeySpec> specs = [] {
    std::vector<ConfigKeySpec> out;
    for (const KeyEntry& k : kKeys) out.push_back(k.spec);
    return out;
  }();
  return specs;
}

std::string node_config_schema_json() {
  std::string out =
      "{\"schema\":\"asyncit-node-config/1\",\"keys\":[";
  bool first = true;
  for (const ConfigKeySpec& s : node_config_schema()) {
    if (!first) out += ",";
    first = false;
    out += std::string("{\"key\":\"") + s.key + "\",\"type\":\"" +
           s.type + "\",\"default\":\"" + s.default_value +
           "\",\"help\":\"" + s.help + "\"}";
  }
  out += "]}";
  return out;
}

bool parse_node_config(std::istream& in, const std::string& name,
                       NodeConfig& out, std::string& error) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    const KeyEntry* entry = nullptr;
    for (const KeyEntry& k : kKeys) {
      if (key == k.spec.key) {
        entry = &k;
        break;
      }
    }
    std::string detail;
    if (entry == nullptr)
      detail = "unknown key " + key;
    else if (!entry->handler(out, ls, detail))
      detail = (detail.empty() ? "bad value" : detail) + " (key " + key + ")";
    if (!detail.empty()) {
      error = name + ":" + std::to_string(lineno) + ": " + detail;
      return false;
    }
  }
  if (!validate(out, error)) {
    error = name + ": " + error;
    return false;
  }
  return true;
}

bool load_node_config(const std::string& path, NodeConfig& out,
                      std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open config " + path;
    return false;
  }
  return parse_node_config(in, path, out, error);
}

}  // namespace asyncit::net
