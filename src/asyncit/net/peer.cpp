#include "asyncit/net/peer.hpp"

#include <algorithm>
#include <thread>

#include "asyncit/linalg/vector_ops.hpp"
#include "asyncit/obs/metrics.hpp"
#include "asyncit/obs/trace_recorder.hpp"
#include "asyncit/runtime/pacing.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/transport/codec.hpp"
#include "asyncit/transport/wire.hpp"

namespace asyncit::net {

namespace {

/// Poll granularity while blocked in a coordination gate; bounds how long
/// a waiting peer can miss the stop flag.
constexpr double kMaxGateWait = 1e-3;

/// Node-mode stopping checks run at this multiple of the budget-check
/// cadence (an oracle distance / residual scan is O(n), so it should not
/// run on every budget check).
constexpr std::uint64_t kNodeStopCheckFactor = 4;

}  // namespace

void incorporate(const la::Partition& partition, OverwritePolicy policy,
                 const Message& m, LocalView& view) {
  auto dst = partition.block_span(std::span<double>(view.x), m.block);
  ASYNCIT_CHECK(m.offset + m.value.size() <= dst.size());
  if (m.tag < view.max_tag[m.block]) ++view.inversions;
  view.max_tag[m.block] = std::max(view.max_tag[m.block], m.tag);
  if (policy == OverwritePolicy::kNewestTagWins &&
      m.tag <= view.tags[m.block]) {
    ++view.stale_filtered;
    return;
  }
  std::copy(m.value.begin(), m.value.end(), dst.begin() + m.offset);
  view.tags[m.block] = m.tag;
}

Peer::Peer(const PeerContext& ctx, std::uint32_t id, const la::Vector& x0,
           transport::Endpoint& endpoint)
    : ctx_(ctx),
      id_(id),
      view_(x0, ctx.op->partition().num_blocks()),
      endpoint_(&endpoint),
      round_(0),
      production_(ctx.op->partition().num_blocks(), 0),
      // Round-completion bookkeeping only feeds the SSP/BSP gates
      // (receive() skips it in async mode), and the per-source delay
      // breakdown is opt-out: both are O(world) per peer, which at
      // simulator scale (1000 in-process peers) is pure dead weight.
      complete_rounds_(ctx.options->solve.mode != Mode::kAsync
                           ? ctx.options->workers
                           : 0,
                       0),
      arrivals_(ctx.options->solve.mode != Mode::kAsync
                    ? ctx.options->workers
                    : 0),
      link_delays_(ctx.options->obs.link_delays ? ctx.options->workers
                                                : 0) {
  ASYNCIT_CHECK(endpoint_->rank() == id_);
  // Adaptive staleness steers on the auditor's measured delay bound, so
  // enabling it implies the auditor even when audit reporting is off.
  const bool steer = ctx_.options->solve.adaptive.enabled &&
                     ctx_.options->solve.mode == Mode::kSsp;
  if (ctx_.options->obs.audit || steer) {
    const std::size_t m = ctx_.op->partition().num_blocks();
    auditor_ = std::make_unique<obs::OnlineAuditor>(m);
    audit_last_changed_.assign(m, 0);
    audit_pending_.assign(m, 0);
    audit_updated_.reserve(m);
  }
  if (steer)
    steer_ = std::make_unique<obs::StalenessController>(
        ctx_.options->solve.adaptive, ctx_.options->solve.staleness);
  if (ctx_.membership != nullptr) {
    // Elastic ranks only make sense in the totally asynchronous regime:
    // SSP/BSP round gates would wait forever for a rank that left.
    ASYNCIT_CHECK(ctx_.options->solve.mode == Mode::kAsync);
    stopped_ranks_.assign(ctx_.options->workers, false);
    owned_epoch_ = ctx_.membership->table().epoch();
    recompute_owned();
  }
  if (ctx_.options->obs.record_trace)
    trace_budget_ =
        ctx_.options->obs.max_trace_events / std::max<std::size_t>(1, ctx_.options->workers);
  if (ctx_.options->wire.delta) {
    // One baseline per (destination, block). The `last` vectors size
    // themselves to the block width on first use, so an idle link costs
    // a few words, not a block copy.
    delta_.resize(ctx_.options->workers *
                  ctx_.op->partition().num_blocks());
    block_rx_epoch_.assign(ctx_.op->partition().num_blocks(), 0);
  }
}

std::vector<la::BlockId> snapshot_plan(std::size_t num_blocks,
                                       const std::vector<std::uint32_t>& live,
                                       std::uint32_t self,
                                       std::uint32_t joiner) {
  // Established set = live view minus the joiner; the plan is the same
  // contiguous assignment recompute_owned() uses, so in the settled case
  // (no racing epoch) every rank's plan share IS its owned set and
  // nothing is suppressed.
  std::size_t established = 0;
  std::size_t index = 0;
  bool found = false;
  for (const std::uint32_t r : live) {
    if (r == joiner) continue;
    if (r == self) {
      index = established;
      found = true;
    }
    ++established;
  }
  if (!found || established == 0) return {};
  const std::size_t workers = std::min(established, num_blocks);
  if (index >= workers) return {};  // surplus (idle) rank
  return la::assign_blocks_contiguous(num_blocks, workers)[index];
}

void Peer::incorporate_tracked(const la::Partition& partition,
                               OverwritePolicy policy, const Message& m) {
  const bool inversion = m.tag < view_.max_tag[m.block];
  const bool filtered = policy == OverwritePolicy::kNewestTagWins &&
                        m.tag <= view_.tags[m.block];
  if (inversion)
    obs::record(obs::EventType::kInversion, filtered ? 1 : 0,
                static_cast<std::uint32_t>(m.block),
                view_.max_tag[m.block] - m.tag, 0.0);
  incorporate(partition, policy, m, view_);
  // Audit bridge: an accepted remote value changes the component as of
  // the CURRENT local step — it joins the next own step's S_j.
  if (!filtered && auditor_ != nullptr) audit_pending_[m.block] = 1;
  // Delta layer: another rank wrote this block (ownership churn / a
  // double-assignment window), so the baselines we hold for it toward
  // EVERY destination no longer describe what we last sent of our own
  // values — force a full-frame resync on the next publish.
  if (!filtered && !block_rx_epoch_.empty()) ++block_rx_epoch_[m.block];
}

void Peer::trip_stop(obs::StopReason reason) {
  obs::record(obs::EventType::kStopDecision, 0,
              static_cast<std::uint32_t>(reason), local_step_, now());
  ctx_.stop->store(true, std::memory_order_relaxed);
}

void Peer::receive() {
  inbox_.clear();
  const double tnow = now();
  endpoint_->receive(tnow, inbox_);
  if (!inbox_.empty())
    obs::record(obs::EventType::kQueueDepth,
                static_cast<std::uint8_t>(obs::QueueKind::kInbox), id_,
                inbox_.size(), 0.0);
  // BSP keeps exact Jacobi rounds: a message from a round this peer has
  // not yet finished must not leak into the current snapshot, so it is
  // held back until round_ advances past it. (Fast peers can legally be
  // one round ahead: they got our round-r values and completed round r+1
  // while we are still sweeping round r.) Held-back messages rejoin
  // through holdback_ at the next receive() after round_ advances.
  const bool bsp = ctx_.options->solve.mode == Mode::kBsp;
  const OverwritePolicy policy =
      bsp ? OverwritePolicy::kNewestTagWins : ctx_.options->solve.overwrite;
  const la::Partition& partition = ctx_.op->partition();

  if (bsp && !holdback_.empty()) {
    for (Message& m : holdback_) {
      if (m.round < round_) {
        incorporate_tracked(partition, policy, m);
        recycle_scratch_.push_back(std::move(m));
      } else {
        holdback_keep_.push_back(std::move(m));
      }
    }
    holdback_.swap(holdback_keep_);
    holdback_keep_.clear();
  }

  for (Message& m : inbox_) {
    // Semantic validation BEFORE any field is used as an index: a frame
    // can be wire-valid yet describe another run's geometry (two nodes
    // launched with disagreeing configs). Such a message must be
    // discarded with a counter, not abort the rank via a failed CHECK.
    if (m.src >= ctx_.options->workers || m.src == id_) {
      ++frames_rejected_;
      obs::record(obs::EventType::kFrameReject,
                  static_cast<std::uint8_t>(m.kind), m.src, m.block, 0.0);
      continue;
    }
    if (m.kind == MsgKind::kStop) {
      // A rank announcing that its local stopping criterion fired (node
      // mode). Gated modes must stop immediately — the departed rank will
      // never complete another round and the SSP/BSP gate would deadlock.
      // The totally asynchronous mode keeps refining until its OWN
      // criterion fires (the departed rank's final values are within
      // tolerance, so convergence completes); only a rank with no local
      // criterion at all stops once everyone else has left.
      ++peers_stopped_;
      const bool has_local_criterion =
          ctx_.options->solve.x_star.has_value() ||
          ctx_.options->solve.displacement_tol > 0.0;
      if (ctx_.membership != nullptr) {
        // A deliberate leave: straight to dead in the table (no point
        // probing a rank that said goodbye), and its blocks are adopted
        // at the re-assignment this triggers. "Everyone else is done"
        // is evaluated over the LIVE view, not the static world — a
        // spare slot that never joined must not keep us running.
        stopped_ranks_[m.src] = true;
        ctx_.membership->table().leave(m.src, now());
        if (ctx_.options->solve.mode != Mode::kAsync)
          trip_stop(obs::StopReason::kPeerStop);
        else if (!has_local_criterion && all_others_inactive())
          trip_stop(obs::StopReason::kLiveViewDone);
      } else if (ctx_.options->solve.mode != Mode::kAsync) {
        trip_stop(obs::StopReason::kPeerStop);
      } else if (!has_local_criterion &&
                 peers_stopped_ + 1 >= ctx_.options->workers) {
        trip_stop(obs::StopReason::kLiveViewDone);
      }
      continue;
    }
    if (is_control(m.kind)) {
      // SWIM failure-detector traffic (membership/swim.hpp). Without an
      // agent these frames describe a protocol this run does not speak —
      // discard with the same counter as any config mismatch.
      if (ctx_.membership == nullptr) {
        ++frames_rejected_;
        obs::record(obs::EventType::kFrameReject,
                    static_cast<std::uint8_t>(m.kind), m.src, m.block, 0.0);
      } else {
        obs::record(obs::EventType::kProbe, static_cast<std::uint8_t>(m.kind),
                    m.src, m.tag, 0.0);
        ctx_.membership->on_frame(m, now());
      }
      continue;
    }
    // A non-partial value frame must carry EXACTLY its block (a shorter
    // payload would silently prefix-overwrite the block yet count as a
    // complete update in the round accounting); only mid-phase partials
    // may carry sub-ranges.
    bool reject = m.block >= partition.num_blocks();
    if (!reject) {
      const std::size_t block_size = partition.range(m.block).size();
      reject = m.offset + m.value.size() > block_size ||
               (!m.partial && (m.offset != 0 || m.value.size() != block_size));
    }
    if (reject) {
      ++frames_rejected_;
      obs::record(obs::EventType::kFrameReject,
                  static_cast<std::uint8_t>(m.kind), m.src, m.block, 0.0);
      continue;
    }
    // Per-link measured staleness: the drain-time delay of this frame,
    // attributed to its source rank (the (src, dst=this) breakdown that
    // MpResult::link_delays / schema asyncit-node/2 export).
    const double link_delay = std::max(0.0, tnow - m.t_send);
    if (!link_delays_.empty()) link_delays_[m.src].add(link_delay);
    obs::record(obs::EventType::kFrameRecv, static_cast<std::uint8_t>(m.kind),
                m.src, m.tag, link_delay);
    if (ctx_.membership != nullptr)
      ctx_.membership->heard_from(m.src, now());
    // Round-completion tracking (counts at drain time, independent of any
    // BSP holdback). Only SSP/BSP gates consult it — and with message
    // loss (kAsync) an incomplete round would leave its map entry behind
    // forever — so skip the bookkeeping entirely in async mode. A delta
    // frame that ends the sender's phase is partial on the wire but
    // carries the complete flag: it counts like the full-width frame it
    // replaced.
    if ((!m.partial || m.complete) &&
        ctx_.options->solve.mode != Mode::kAsync) {
      const std::size_t need = (*ctx_.owned)[m.src].size();
      auto& per_round = arrivals_[m.src];
      ++per_round[m.round];
      auto it = per_round.find(complete_rounds_[m.src]);
      while (it != per_round.end() && it->second >= need) {
        per_round.erase(it);
        ++complete_rounds_[m.src];
        it = per_round.find(complete_rounds_[m.src]);
      }
    }
    if (bsp && m.round >= round_) {
      holdback_.push_back(std::move(m));
      continue;
    }
    incorporate_tracked(partition, policy, m);
  }
  // Return every consumed payload buffer to the endpoint's pool (the
  // shells whose value moved into holdback_ are skipped by the pool).
  endpoint_->recycle(inbox_);
  if (!recycle_scratch_.empty()) endpoint_->recycle(recycle_scratch_);
  service_membership();
}

void Peer::send_block(la::BlockId b, bool partial) {
  const la::Partition& partition = ctx_.op->partition();
  // The next tag must beat everything we have SEEN for the block, not
  // just everything we produced: after an elastic re-assignment the new
  // owner continues the previous owner's sequence, so kNewestTagWins
  // receivers accept the adopted block's updates immediately.
  const model::Step tag = (production_[b] =
                               std::max(production_[b], view_.max_tag[b]) + 1);
  view_.tags[b] = tag;
  view_.max_tag[b] = tag;
  const auto value =
      partition.block_span(std::span<const double>(view_.x), b);
  const double t = now();
  const bool allow_drop = ctx_.options->solve.mode == Mode::kAsync;
  const WireOptions& wire = ctx_.options->wire;
  const std::size_t num_blocks = partition.num_blocks();
  auto send_one = [&](std::uint32_t dst) {
    transport::MessageHeader header;
    header.block = b;
    header.tag = tag;
    header.round = round_;
    header.partial = partial;
    std::span<const double> payload = value;
    DeltaSlot* slot = nullptr;
    bool full = true;
    bool heartbeat = false;
    if (wire.delta) {
      slot = &delta_[std::size_t(dst) * num_blocks + b];
      // A full refresh re-anchors the link: first contact, ownership
      // churn on the block since the slot was anchored (the receiver's
      // copy may predate our adoption), or the periodic resync that
      // bounds how long a lost delta can linger as drift.
      full = !slot->valid || slot->rx_epoch != block_rx_epoch_[b] ||
             slot->sends_since_refresh + 1 >= wire.refresh_every;
      if (!full) {
        std::size_t lo = 0, hi = value.size();
        const la::Vector& last = slot->last;
        while (lo < hi && value[lo] == last[lo]) ++lo;
        while (hi > lo && value[hi - 1] == last[hi - 1]) --hi;
        if (lo == hi) {
          // Nothing changed since the last frame on this link: send a
          // zero-width heartbeat so the tag/round stream (and the chaos
          // draw sequence — one draw per frame) is unchanged.
          heartbeat = true;
          header.offset = 0;
          payload = {};
        } else {
          std::size_t off = lo, len = hi - lo;
          if (wire.topk != 0 && len > wire.topk) {
            const transport::codec::Window w = transport::codec::best_window(
                value.subspan(lo, len),
                std::span<const double>(last).subspan(lo, len), wire.topk);
            off = lo + w.offset;
            len = w.count;
          }
          header.offset = static_cast<std::uint32_t>(off);
          payload = value.subspan(off, len);
        }
        header.partial = true;
        // The frame replacing a full-width publish keeps its
        // round-accounting weight; a frame that was partial anyway
        // (flexible-mode early publish) stays weightless.
        header.complete = !partial;
      }
    }
    if (wire.quant_bits != 0 && !full && !payload.empty()) {
      // Quantize delta ranges only: full-width refresh frames always
      // carry exact doubles, so accumulated compression error is wiped
      // at every resync and the steady-state noise floor is set by ONE
      // inter-refresh window of delta steps (~ payload range * 2^-bits
      // per frame), never by unbounded drift. Components that go exactly
      // stationary stop paying it entirely (their frames degenerate to
      // heartbeats); the stopping tolerance of a lossy run must still
      // sit above the floor of the components that keep moving.
      // Round-trip the payload onto the quantization lattice BEFORE the
      // send: every backend (inproc hands over these doubles, TCP
      // re-quantizes exactly since they sit on lattice points) delivers
      // bit-identical values, and slot->last below tracks what the
      // receiver actually holds.
      codec_scratch_.assign(payload.begin(), payload.end());
      const transport::codec::QuantParams qp =
          transport::codec::choose_quant_params(codec_scratch_,
                                                wire.quant_bits);
      transport::codec::roundtrip(codec_scratch_, qp, wire.quant_bits);
      header.quant_bits = static_cast<std::uint8_t>(wire.quant_bits);
      header.quant_min = qp.min;
      header.quant_scale = qp.scale;
      payload = codec_scratch_;
      ++wire_frames_codec_;
    }
    const transport::SendReceipt receipt =
        endpoint_->send(dst, header, payload, t, allow_drop);
    const std::uint64_t raw = transport::frame_bytes(value.size());
    const std::uint64_t sent =
        transport::wire_frame_bytes(payload.size(), header.quant_bits);
    bytes_sent_raw_ += raw;
    bytes_sent_wire_ += sent;
    if (link_bytes_raw_.size() <= dst) {
      link_bytes_raw_.resize(ctx_.options->workers, 0);
      link_bytes_wire_.resize(ctx_.options->workers, 0);
    }
    link_bytes_raw_[dst] += raw;
    link_bytes_wire_[dst] += sent;
    if (!wire.delta || full)
      ++wire_frames_full_;
    else if (heartbeat)
      ++wire_frames_heartbeat_;
    else
      ++wire_frames_delta_;
    if (receipt.sent && slot != nullptr) {
      // The slot mirrors what the receiver now holds — update it only
      // when the frame actually left (a dropped frame leaves the
      // receiver, and therefore the slot, unchanged).
      if (full) {
        slot->last.assign(payload.begin(), payload.end());
        slot->valid = true;
        slot->sends_since_refresh = 0;
        slot->rx_epoch = block_rx_epoch_[b];
      } else {
        ++slot->sends_since_refresh;
        if (!heartbeat)
          std::copy(payload.begin(), payload.end(),
                    slot->last.begin() + header.offset);
      }
    }
    if (obs::tracing_full()) {
      if (receipt.sent)
        obs::record(obs::EventType::kFrameSend,
                    static_cast<std::uint8_t>(header.kind), dst, tag,
                    double(sent));
      else
        obs::record(obs::EventType::kFrameDrop,
                    static_cast<std::uint8_t>(header.kind), dst, tag, 0.0);
    }
    if (trace_budget_ > 0) {
      --trace_budget_;
      log_.add_message({id_, dst, b, partial, !receipt.sent, receipt.t_send,
                        receipt.deliver_at, tag});
    }
  };
  if (ctx_.membership != nullptr) {
    // Publish to the LIVE view only (suspects included — they are still
    // presumed members until the grace period expires).
    for (const std::uint32_t dst : ctx_.membership->table().live_ranks())
      if (dst != id_) send_one(dst);
  } else {
    const std::uint32_t peers =
        static_cast<std::uint32_t>(ctx_.options->workers);
    for (std::uint32_t dst = 0; dst < peers; ++dst)
      if (dst != id_) send_one(dst);
  }
  if (partial) ++partials_sent_;
}

void Peer::broadcast_stop() {
  transport::MessageHeader header;
  header.kind = MsgKind::kStop;
  const double t = now();
  if (ctx_.membership != nullptr) {
    for (const std::uint32_t dst : ctx_.membership->table().live_ranks()) {
      if (dst == id_) continue;
      endpoint_->send(dst, header, {}, t, /*allow_drop=*/false);
    }
    return;
  }
  const std::uint32_t peers =
      static_cast<std::uint32_t>(ctx_.options->workers);
  for (std::uint32_t dst = 0; dst < peers; ++dst) {
    if (dst == id_) continue;
    endpoint_->send(dst, header, {}, t, /*allow_drop=*/false);
  }
}

bool Peer::all_others_inactive() const {
  const membership::MembershipTable& table = ctx_.membership->table();
  for (std::uint32_t r = 0; r < ctx_.options->workers; ++r) {
    if (r == id_ || stopped_ranks_[r]) continue;
    const membership::MemberState s = table.state(r);
    if (s == membership::MemberState::kAlive ||
        s == membership::MemberState::kSuspect)
      return false;
  }
  return true;
}

void Peer::recompute_owned() {
  const la::Partition& partition = ctx_.op->partition();
  const std::vector<std::uint32_t>& live =
      ctx_.membership->table().live_ranks();
  // Self is always in its own live view; blocks are re-assigned over the
  // SORTED live ranks, so every rank with the same view computes the
  // same assignment. Transient view disagreement (gossip in flight) only
  // double-assigns or orphans blocks briefly — both are plain staleness
  // under the totally asynchronous convergence theory.
  const auto it = std::lower_bound(live.begin(), live.end(), id_);
  ASYNCIT_CHECK(it != live.end() && *it == id_);
  const std::size_t index = static_cast<std::size_t>(it - live.begin());
  const std::size_t workers =
      std::min(live.size(), partition.num_blocks());
  if (index >= workers) {
    // More live ranks than blocks: the surplus ranks idle (receive-only).
    elastic_owned_.clear();
    return;
  }
  const auto assignment =
      la::assign_blocks_contiguous(partition.num_blocks(), workers);
  elastic_owned_ = assignment[index];
}

void Peer::send_snapshot_to(std::uint32_t dst) {
  // Welcome a joiner with a DISJOINT slice of the iterate: every
  // established rank runs the same deterministic plan over the same
  // sorted live view, so each block reaches the joiner exactly once
  // instead of once per surviving owner of a stale assignment. Blocks we
  // own but the plan routes through someone else are counted as
  // suppressed duplicates. (Plain kValue frames — the receiver needs no
  // special path.)
  const la::Partition& partition = ctx_.op->partition();
  const double t = now();
  snapshot_plan_ =
      snapshot_plan(partition.num_blocks(),
                    ctx_.membership->table().live_ranks(), id_, dst);
  for (const la::BlockId b : owned_blocks()) {
    if (std::find(snapshot_plan_.begin(), snapshot_plan_.end(), b) ==
        snapshot_plan_.end())
      ++snapshot_blocks_suppressed_;
  }
  for (const la::BlockId b : snapshot_plan_) {
    transport::MessageHeader header;
    header.block = b;
    // We may be forwarding a block we do not own: beat nothing, just
    // ship the newest value we have SEEN at the tag we saw it under.
    header.tag = std::max(production_[b], view_.tags[b]);
    header.round = round_;
    const auto value =
        partition.block_span(std::span<const double>(view_.x), b);
    endpoint_->send(dst, header, value, t, /*allow_drop=*/false);
    obs::record(obs::EventType::kFrameSend,
                static_cast<std::uint8_t>(header.kind), dst, header.tag,
                double(value.size() * sizeof(double)));
    ++snapshot_blocks_sent_;
  }
}

void Peer::service_membership() {
  membership::SwimAgent* agent = ctx_.membership;
  if (agent == nullptr) return;
  agent->tick(now());
  if (!agent->outbox().empty()) {
    const double t = now();
    for (const membership::ControlFrame& f : agent->outbox()) {
      transport::MessageHeader header;
      header.kind = f.kind;
      header.block = f.target;
      header.tag = f.seq;
      obs::record(obs::EventType::kProbe, static_cast<std::uint8_t>(f.kind),
                  f.dst, f.seq, 0.0);
      // allow_drop=true: the DEFAULT DeliveryPolicy spares control
      // frames anyway (drop_control=false); flipping the flag turns the
      // chaos loss model into a failure-detector stress test.
      endpoint_->send(f.dst, header, f.payload, t, /*allow_drop=*/true);
    }
    agent->outbox().clear();
  }
  events_scratch_.clear();
  agent->drain_events(events_scratch_);
  for (const membership::Event& e : events_scratch_) {
    obs::record(obs::EventType::kMembership,
                static_cast<std::uint8_t>(e.kind), e.rank, e.incarnation,
                0.0);
    if (e.kind == membership::EventKind::kJoined && e.rank != id_)
      send_snapshot_to(e.rank);  // pre-re-assignment owned set: the
                                 // established ranks jointly cover x
  }
  if (owned_epoch_ != agent->table().epoch()) {
    owned_epoch_ = agent->table().epoch();
    recompute_owned();
    ++reassignments_;
    // A death may complete the live-view termination condition for a
    // rank with no local criterion (everyone else stopped or died).
    const bool has_local_criterion =
        ctx_.options->solve.x_star.has_value() ||
        ctx_.options->solve.displacement_tol > 0.0;
    if (ctx_.node_mode && !has_local_criterion && all_others_inactive())
      trip_stop(obs::StopReason::kLiveViewDone);
  }
}

void Peer::update_block(la::BlockId b, std::size_t reps,
                        std::span<const double> compute_view) {
  const MpOptions& opt = *ctx_.options;
  const la::Partition& partition = ctx_.op->partition();
  const la::BlockRange r = partition.range(b);
  phase_out_.resize(r.size());
  const double t_start = now();

  const bool flexible =
      opt.solve.publish_partials && opt.solve.mode != Mode::kBsp && opt.solve.inner_steps > 1;
  const std::size_t inner = opt.solve.mode == Mode::kBsp ? 1 : opt.solve.inner_steps;

  // Displacement of this phase = movement of the block across the phase.
  phase_prev_.assign(view_.x.begin() + static_cast<std::ptrdiff_t>(r.begin),
                     view_.x.begin() + static_cast<std::ptrdiff_t>(r.end));

  for (std::size_t t = 0; t < inner; ++t) {
    for (std::size_t rep = 0; rep < reps; ++rep)
      ctx_.op->apply_block(b, compute_view, phase_out_, ws_);
    std::copy(phase_out_.begin(), phase_out_.end(),
              view_.x.begin() + static_cast<std::ptrdiff_t>(r.begin));
    if (flexible && t + 1 < inner) {
      send_block(b, /*partial=*/true);
      receive();  // incorporate mid-phase arrivals (Definition 3)
    }
  }
  send_block(b, /*partial=*/false);

  // Publish to the monitoring plane (never read by compute).
  ctx_.monitor->store_block(r.begin, phase_out_);
  std::atomic_ref<double>((*ctx_.last_displacement)[b])
      .store(la::dist2(phase_out_, phase_prev_), std::memory_order_relaxed);

  ++local_step_;
  obs::record(obs::EventType::kBlockUpdate, flexible ? 1 : 0,
              static_cast<std::uint32_t>(b), local_step_, now() - t_start);
  if (auditor_ != nullptr) {
    // Audit bridge: own step j updates S_j = {b} ∪ {blocks a remote
    // incorporation changed since step j-1}; every component was last
    // changed at a step <= j-1, so l(j) = min over last_changed_ gives
    // the condition a–d auditors the measured local schedule.
    const model::Step j = local_step_;
    model::Step l_min = audit_last_changed_[0];
    for (const model::Step s : audit_last_changed_) l_min = std::min(l_min, s);
    audit_updated_.clear();
    audit_pending_[b] = 1;
    for (std::size_t i = 0; i < audit_pending_.size(); ++i) {
      if (!audit_pending_[i]) continue;
      audit_pending_[i] = 0;
      audit_updated_.push_back(static_cast<la::BlockId>(i));
      audit_last_changed_[i] = j;
    }
    auditor_->record_step(audit_updated_, l_min);
    if (steer_ != nullptr &&
        local_step_ % ctx_.options->solve.adaptive.decide_every == 0) {
      // Measured signal in ROUNDS: the auditor's delay bound counts own
      // steps (one per block phase), the gate slack counts sweeps over
      // the owned set — divide by the sweep length to convert.
      const double owned_n =
          static_cast<double>(std::max<std::size_t>(1, (*ctx_.owned)[id_].size()));
      steer_->decide(static_cast<double>(auditor_->d_bound()) / owned_n,
                     obs::SteeringDomain::kNetSsp);
    }
  }
  if (trace_budget_ > 0) {
    --trace_budget_;
    log_.add_phase({id_, b, t_start, now(), local_step_});
  }
}

bool Peer::wait_for_rounds(std::uint64_t needed) {
  const std::uint32_t peers =
      static_cast<std::uint32_t>(ctx_.options->workers);
  bool first_pass = true;
  while (!stopped()) {
    // Enforce the wall budget INSIDE the gate: a rank whose awaited
    // peer died without a stop frame would otherwise wait forever —
    // maybe_check only runs between updates, and in node mode there is
    // no monitor thread to trip the flag (the threaded orchestrator
    // does, but checking here keeps both paths honest).
    if (now() > ctx_.options->solve.max_seconds) {
      trip_stop(obs::StopReason::kWallBudget);
      return false;
    }
    const std::uint64_t seen = endpoint_->activity();
    receive();
    bool satisfied = true;
    for (std::uint32_t src = 0; src < peers; ++src) {
      if (src == id_) continue;
      if (complete_rounds_[src] < needed) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) return true;
    if (first_pass) {
      // The gate actually blocks this sweep (not satisfied from what was
      // already drained) — the stall the adaptive bound exists to avoid.
      first_pass = false;
      ++gate_stalls_;
    }
    // Sleep until the next pending delivery matures, new data arrives,
    // or the poll bound expires (keeps the stop flag responsive).
    const double t = now();
    const double next = endpoint_->next_delivery();
    double timeout = kMaxGateWait;
    if (next > t) timeout = std::min(timeout, next - t);
    endpoint_->wait_for_activity(seen, std::max(timeout, 1e-5));
  }
  return false;
}

void Peer::maybe_check(std::uint64_t own_updates) {
  const MpOptions& opt = *ctx_.options;
  if (own_updates % opt.solve.check_every != 0) return;
  if (now() > opt.solve.max_seconds) {
    trip_stop(obs::StopReason::kWallBudget);
    return;
  }
  // In node mode only this rank's counter is visible here, so the update
  // budget is per-rank; the threaded orchestrator sums all peers.
  std::uint64_t total = 0;
  for (const auto& u : *ctx_.updates)
    total += u.load(std::memory_order_relaxed);
  if (total >= opt.solve.max_updates) {
    trip_stop(obs::StopReason::kUpdateBudget);
    return;
  }
  if (ctx_.node_mode && !stopped() &&
      own_updates % (opt.solve.check_every * kNodeStopCheckFactor) == 0) {
    // The peer's private view is the only full iterate this process has;
    // evaluate the stopping criterion on it directly. With an oracle,
    // stop below tol in the weighted max norm; without one, fall back to
    // the residual certificate of the displacement rule.
    bool hit = false;
    if (opt.solve.x_star.has_value()) {
      hit = ctx_.norm != nullptr &&
            ctx_.norm->distance(view_.x, *opt.solve.x_star) < opt.solve.tol;
    } else if (opt.solve.displacement_tol > 0.0) {
      hit = op::max_block_residual(*ctx_.op, view_.x, ws_) <
            opt.solve.displacement_tol;
    }
    if (hit) {
      broadcast_stop();
      trip_stop(opt.solve.x_star.has_value() ? obs::StopReason::kOracle
                                       : obs::StopReason::kDisplacement);
      return;
    }
  }
  if (cpu_timer_.seconds() > rt::kYieldPeriod) {
    cpu_timer_.reset();
    std::this_thread::yield();
  }
}

void Peer::run() {
  // The constructor ran on the orchestrator thread; rebase the per-thread
  // CPU clock here so yield pacing measures THIS thread's consumption.
  cpu_timer_.reset();
  const MpOptions& opt = *ctx_.options;
  const bool elastic = ctx_.membership != nullptr;
  const std::size_t reps = rt::slowdown_repetitions(opt.worker_slowdown, id_);
  std::uint64_t own_updates = 0;

  while (!stopped()) {
    if (opt.solve.mode != Mode::kAsync && round_ > 0) {
      // Re-read the slack every sweep: with adaptive staleness the
      // controller moves it between sweeps (staleness_bound() is the
      // static option when steering is off; kBsp is always 0).
      const std::uint64_t slack =
          opt.solve.mode == Mode::kBsp ? 0 : staleness_bound();
      const std::uint64_t needed = round_ > slack ? round_ - slack : 0;
      if (!wait_for_rounds(needed)) break;
    }
    receive();
    // The owned set may change UNDER the sweep (a receive() inside
    // update_block can re-run the assignment), so each sweep iterates a
    // stable copy; adopted blocks join the next sweep.
    if (elastic) sweep_owned_ = owned_blocks();
    const std::vector<la::BlockId>& owned =
        elastic ? sweep_owned_ : (*ctx_.owned)[id_];
    if (owned.empty()) {
      // Receive-only rank (more live ranks than blocks): keep the
      // detector and the stop checks alive without spinning.
      const std::uint64_t seen = endpoint_->activity();
      maybe_check(own_updates);
      if (!stopped()) endpoint_->wait_for_activity(seen, kMaxGateWait);
      continue;
    }
    std::span<const double> compute_view(view_.x);
    if (opt.solve.mode == Mode::kBsp) {
      snapshot_ = view_.x;  // frozen per-round view: exact Jacobi
      compute_view = snapshot_;
    }
    for (la::BlockId b : owned) {
      update_block(b, reps, compute_view);
      ++own_updates;
      (*ctx_.updates)[id_].fetch_add(1, std::memory_order_relaxed);
      maybe_check(own_updates);
      if (stopped()) break;
      if (opt.solve.mode != Mode::kBsp) receive();
    }
    ++round_;
  }
}

}  // namespace asyncit::net
