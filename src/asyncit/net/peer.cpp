#include "asyncit/net/peer.hpp"

#include <algorithm>
#include <thread>

#include "asyncit/linalg/vector_ops.hpp"
#include "asyncit/runtime/pacing.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::net {

namespace {

/// Poll granularity while blocked in a coordination gate; bounds how long
/// a waiting peer can miss the stop flag.
constexpr double kMaxGateWait = 1e-3;

}  // namespace

void incorporate(const la::Partition& partition, OverwritePolicy policy,
                 const Message& m, LocalView& view) {
  auto dst = partition.block_span(std::span<double>(view.x), m.block);
  ASYNCIT_CHECK(m.value.size() == dst.size());
  if (m.tag < view.max_tag[m.block]) ++view.inversions;
  view.max_tag[m.block] = std::max(view.max_tag[m.block], m.tag);
  if (policy == OverwritePolicy::kNewestTagWins &&
      m.tag <= view.tags[m.block]) {
    ++view.stale_filtered;
    return;
  }
  std::copy(m.value.begin(), m.value.end(), dst.begin());
  view.tags[m.block] = m.tag;
}

Peer::Peer(const PeerContext& ctx, std::uint32_t id, const la::Vector& x0,
           std::vector<std::uint64_t> link_seeds)
    : ctx_(ctx),
      id_(id),
      view_(x0, ctx.op->partition().num_blocks()),
      round_(0),
      production_((*ctx.owned)[id].size(), 0),
      complete_rounds_(ctx.options->workers, 0),
      arrivals_(ctx.options->workers) {
  ASYNCIT_CHECK(link_seeds.size() == ctx_.options->workers);
  links_.reserve(link_seeds.size());
  for (std::uint64_t seed : link_seeds)
    links_.emplace_back(ctx_.options->delivery, seed);
  if (ctx_.options->record_trace)
    trace_budget_ =
        ctx_.options->max_trace_events / std::max<std::size_t>(1, ctx_.options->workers);
}

std::uint64_t Peer::messages_sent() const {
  std::uint64_t n = 0;
  for (const LinkStamper& l : links_) n += l.stamped();
  return n;
}

std::uint64_t Peer::messages_dropped() const {
  std::uint64_t n = 0;
  for (const LinkStamper& l : links_) n += l.dropped();
  return n;
}

void Peer::receive() {
  inbox_.clear();
  (*ctx_.mailboxes)[id_].drain(now(), inbox_);
  // BSP keeps exact Jacobi rounds: a message from a round this peer has
  // not yet finished must not leak into the current snapshot, so it is
  // held back until round_ advances past it. (Fast peers can legally be
  // one round ahead: they got our round-r values and completed round r+1
  // while we are still sweeping round r.) Held-back messages rejoin
  // through holdback_ at the next receive() after round_ advances.
  const bool bsp = ctx_.options->mode == Mode::kBsp;
  const OverwritePolicy policy =
      bsp ? OverwritePolicy::kNewestTagWins : ctx_.options->overwrite;
  const la::Partition& partition = ctx_.op->partition();

  if (bsp && !holdback_.empty()) {
    std::vector<Message> still_held;
    for (Message& m : holdback_) {
      if (m.round < round_)
        incorporate(partition, policy, m, view_);
      else
        still_held.push_back(std::move(m));
    }
    holdback_.swap(still_held);
  }

  for (Message& m : inbox_) {
    // Round-completion tracking (counts at drain time, independent of any
    // BSP holdback). Only SSP/BSP gates consult it — and with message
    // loss (kAsync) an incomplete round would leave its map entry behind
    // forever — so skip the bookkeeping entirely in async mode.
    if (!m.partial && ctx_.options->mode != Mode::kAsync) {
      const std::size_t need = (*ctx_.owned)[m.src].size();
      auto& per_round = arrivals_[m.src];
      ++per_round[m.round];
      auto it = per_round.find(complete_rounds_[m.src]);
      while (it != per_round.end() && it->second >= need) {
        per_round.erase(it);
        ++complete_rounds_[m.src];
        it = per_round.find(complete_rounds_[m.src]);
      }
    }
    if (bsp && m.round >= round_) {
      holdback_.push_back(std::move(m));
      continue;
    }
    incorporate(partition, policy, m, view_);
  }
}

void Peer::send_block(la::BlockId b, bool partial) {
  const la::Partition& partition = ctx_.op->partition();
  const la::BlockId own_first = (*ctx_.owned)[id_].front();
  const model::Step tag = ++production_[b - own_first];
  view_.tags[b] = tag;
  view_.max_tag[b] = tag;
  const auto value =
      partition.block_span(std::span<const double>(view_.x), b);
  const double t = now();
  const bool allow_drop = ctx_.options->mode == Mode::kAsync;
  const std::uint32_t peers =
      static_cast<std::uint32_t>(ctx_.options->workers);
  for (std::uint32_t dst = 0; dst < peers; ++dst) {
    if (dst == id_) continue;
    Message m;
    m.src = id_;
    m.block = b;
    m.tag = tag;
    m.round = round_;
    m.partial = partial;
    m.value.assign(value.begin(), value.end());
    const bool sent = links_[dst].stamp(m, t, allow_drop);
    if (trace_budget_ > 0) {
      --trace_budget_;
      log_.add_message({id_, dst, b, partial, !sent, m.t_send, m.deliver_at,
                        tag});
    }
    if (sent) (*ctx_.mailboxes)[dst].post(std::move(m));
  }
  if (partial) ++partials_sent_;
}

void Peer::update_block(la::BlockId b, std::size_t reps,
                        std::span<const double> compute_view) {
  const MpOptions& opt = *ctx_.options;
  const la::Partition& partition = ctx_.op->partition();
  const la::BlockRange r = partition.range(b);
  phase_out_.resize(r.size());
  const double t_start = now();

  const bool flexible =
      opt.publish_partials && opt.mode != Mode::kBsp && opt.inner_steps > 1;
  const std::size_t inner = opt.mode == Mode::kBsp ? 1 : opt.inner_steps;

  // Displacement of this phase = movement of the block across the phase.
  phase_prev_.assign(view_.x.begin() + static_cast<std::ptrdiff_t>(r.begin),
                     view_.x.begin() + static_cast<std::ptrdiff_t>(r.end));

  for (std::size_t t = 0; t < inner; ++t) {
    for (std::size_t rep = 0; rep < reps; ++rep)
      ctx_.op->apply_block(b, compute_view, phase_out_, ws_);
    std::copy(phase_out_.begin(), phase_out_.end(),
              view_.x.begin() + static_cast<std::ptrdiff_t>(r.begin));
    if (flexible && t + 1 < inner) {
      send_block(b, /*partial=*/true);
      receive();  // incorporate mid-phase arrivals (Definition 3)
    }
  }
  send_block(b, /*partial=*/false);

  // Publish to the monitoring plane (never read by compute).
  ctx_.monitor->store_block(r.begin, phase_out_);
  std::atomic_ref<double>((*ctx_.last_displacement)[b])
      .store(la::dist2(phase_out_, phase_prev_), std::memory_order_relaxed);

  ++local_step_;
  if (trace_budget_ > 0) {
    --trace_budget_;
    log_.add_phase({id_, b, t_start, now(), local_step_});
  }
}

bool Peer::wait_for_rounds(std::uint64_t needed) {
  const std::uint32_t peers =
      static_cast<std::uint32_t>(ctx_.options->workers);
  while (!stopped()) {
    const std::uint64_t seen = (*ctx_.mailboxes)[id_].posted();
    receive();
    bool satisfied = true;
    for (std::uint32_t src = 0; src < peers; ++src) {
      if (src == id_) continue;
      if (complete_rounds_[src] < needed) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) return true;
    // Sleep until the next pending delivery matures, a new post arrives,
    // or the poll bound expires (keeps the stop flag responsive).
    const double t = now();
    const double next = (*ctx_.mailboxes)[id_].next_delivery();
    double timeout = kMaxGateWait;
    if (next > t) timeout = std::min(timeout, next - t);
    (*ctx_.mailboxes)[id_].wait_for_post(seen, std::max(timeout, 1e-5));
  }
  return false;
}

void Peer::maybe_check(std::uint64_t own_updates) {
  const MpOptions& opt = *ctx_.options;
  if (own_updates % opt.check_every != 0) return;
  if (now() > opt.max_seconds) {
    ctx_.stop->store(true, std::memory_order_relaxed);
    return;
  }
  std::uint64_t total = 0;
  for (const auto& u : *ctx_.updates)
    total += u.load(std::memory_order_relaxed);
  if (total >= opt.max_updates) {
    ctx_.stop->store(true, std::memory_order_relaxed);
    return;
  }
  if (cpu_timer_.seconds() > rt::kYieldPeriod) {
    cpu_timer_.reset();
    std::this_thread::yield();
  }
}

void Peer::run() {
  // The constructor ran on the orchestrator thread; rebase the per-thread
  // CPU clock here so yield pacing measures THIS thread's consumption.
  cpu_timer_.reset();
  const MpOptions& opt = *ctx_.options;
  const std::vector<la::BlockId>& owned = (*ctx_.owned)[id_];
  const std::size_t reps = rt::slowdown_repetitions(opt.worker_slowdown, id_);
  const std::uint64_t slack =
      opt.mode == Mode::kBsp ? 0 : opt.staleness;
  std::uint64_t own_updates = 0;

  while (!stopped()) {
    if (opt.mode != Mode::kAsync && round_ > 0) {
      const std::uint64_t needed = round_ > slack ? round_ - slack : 0;
      if (!wait_for_rounds(needed)) break;
    }
    receive();
    std::span<const double> compute_view(view_.x);
    if (opt.mode == Mode::kBsp) {
      snapshot_ = view_.x;  // frozen per-round view: exact Jacobi
      compute_view = snapshot_;
    }
    for (la::BlockId b : owned) {
      update_block(b, reps, compute_view);
      ++own_updates;
      (*ctx_.updates)[id_].fetch_add(1, std::memory_order_relaxed);
      maybe_check(own_updates);
      if (stopped()) break;
      if (opt.mode != Mode::kBsp) receive();
    }
    ++round_;
  }
}

}  // namespace asyncit::net
