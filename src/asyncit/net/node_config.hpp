// The node config schema — single source of truth for every key a
// per-process deployment understands.
//
// tools/asyncit_node.cpp parses its config file through
// parse_node_config(), and scripts/launch_cluster.py validates every key
// it writes against the JSON table `asyncit_node --schema` dumps — both
// sides read THE SAME table below (node_config_schema()), so a key
// cannot exist in the parser without being documented, and the launcher
// cannot silently write a key the node would reject.
// tools/asyncit_sim.cpp (transport sim: the whole world in one process
// over virtual time) and scripts/sim_sweep.py reuse the same table the
// same way — the sim_* keys live here, not in a parallel schema.
//
// Config format: order-free "key value" lines, '#' starts a comment.
// `world` must precede `node` lines. Two workloads share the file
// format:
//   workload solve   net::run_node over the seeded Jacobi system
//   workload train   train::run_training_node — rank 0 parameter
//                    server, ranks 1..world-1 SGD workers over the
//                    seeded synthetic logistic dataset
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "asyncit/membership/membership.hpp"
#include "asyncit/net/mp_runtime.hpp"
#include "asyncit/obs/trace_recorder.hpp"
#include "asyncit/problems/synthetic.hpp"
#include "asyncit/simnet/config.hpp"
#include "asyncit/train/train.hpp"
#include "asyncit/transport/tcp.hpp"

namespace asyncit::net {

enum class Workload { kSolve, kTrain };

/// Everything a rank needs to join a run: the address table plus the
/// problem/solver/training knobs, all derived from one config file so
/// every process reconstructs identical seeded state.
struct NodeConfig {
  std::size_t world = 0;
  std::uint64_t seed = 42;
  Workload workload = Workload::kSolve;
  std::vector<transport::TcpPeerAddress> nodes;

  // -- solve workload: seeded Jacobi system + solver discipline --
  std::size_t dim = 128;
  std::size_t blocks = 8;
  std::size_t nnz = 4;
  double dominance = 2.0;
  net::Mode mode = net::Mode::kAsync;
  std::uint64_t staleness = 2;  ///< SSP bound (both workloads)
  std::size_t inner_steps = 1;
  bool publish_partials = false;
  net::OverwritePolicy overwrite = net::OverwritePolicy::kLastArrivalWins;
  double tol = 1e-8;
  double max_seconds = 30.0;
  std::uint64_t max_updates = 100000000;
  /// Budget/stop-check cadence in own updates (node mode evaluates the
  /// oracle every 4x this, see peer.cpp). Lower it when updates are
  /// cheap relative to overshooting the tolerance — e.g. sim sweeps.
  std::uint64_t check_every = 16;

  // -- train workload: seeded logistic dataset + SGD discipline --
  problems::LogisticConfig dataset;  ///< samples/features/density/...
  train::SgdOptions sgd;             ///< discipline/lr/batch/epochs/...

  // -- wire efficiency (solve workload; net::WireOptions) --
  bool wire_delta = false;          ///< per-link delta encoding
  std::uint32_t wire_topk = 0;      ///< delta window cap (coords; 0=off)
  std::uint32_t wire_quant_bits = 0;  ///< 0 raw, 8/16 scalar quant
  std::uint32_t wire_refresh_every = 16;  ///< full-frame resync period

  // -- fabric --
  /// transport sim: the whole world runs in ONE process over the
  /// simnet/ virtual-time engine (tools/asyncit_sim); node lines are
  /// not required and max_seconds is a VIRTUAL budget. The sim_* keys
  /// below populate `simcfg`.
  bool sim = false;
  simnet::SimConfig simcfg;
  /// Determinism re-runs: asyncit_sim executes the world `sim_runs`
  /// times and fails unless every run agrees on the event-log hash and
  /// final residual.
  std::size_t sim_runs = 1;
  bool chaos = false;
  net::DeliveryPolicy chaos_policy;
  /// Elastic TCP without the SWIM detector: sends to dead peers drop
  /// instead of wedging teardown (the train churn leg; implied by
  /// `membership 1`).
  bool elastic = false;
  membership::Options membership;
  std::vector<std::uint32_t> late;  ///< slots absent at launch

  // -- observability --
  obs::TraceLevel trace = obs::TraceLevel::kOff;
  std::string trace_dir;
  bool audit = false;
  /// Streaming trace windows (obs/streamer.hpp): > 0 arms a background
  /// flusher writing rank_<r>.window_<k>.trace.json chunks into
  /// trace_dir every `stream_interval` seconds, keeping the newest
  /// `stream_windows` on disk — a killed rank leaves its recent past
  /// behind. Requires trace full + trace_dir; replaces the single exit
  /// trace.json (the windows ARE the record; trace_merge.py stitches).
  double stream_interval = 0.0;
  std::size_t stream_windows = 8;
  /// Auditor-fed adaptive staleness (obs/steering.hpp): steers the SSP
  /// bound of whichever workload runs (solve mode ssp / train
  /// discipline ssp); `staleness` becomes the initial bound.
  obs::SteeringOptions adaptive;
};

/// One documented key. `type` is a human/launcher hint (int, float,
/// bool01, string, enum:a|b|c, "rank host port", repeatable-int).
struct ConfigKeySpec {
  const char* key;
  const char* type;
  const char* default_value;
  const char* help;
};

/// The full key table, in documentation order.
std::span<const ConfigKeySpec> node_config_schema();

/// {"schema":"asyncit-node-config/1","keys":[{key,type,default,help}...]}
/// — what `asyncit_node --schema` prints and launch_cluster.py validates
/// its generated configs against.
std::string node_config_schema_json();

/// Parses "key value" lines from `in`. Returns false and sets `error`
/// (prefixed with `name:line:`) on any unknown key, malformed value, or
/// failed cross-field validation.
bool parse_node_config(std::istream& in, const std::string& name,
                       NodeConfig& out, std::string& error);

/// File wrapper around the stream parser ("cannot open" becomes the
/// error string).
bool load_node_config(const std::string& path, NodeConfig& out,
                      std::string& error);

}  // namespace asyncit::net
