#include "asyncit/net/node_runtime.hpp"

#include <atomic>
#include <memory>

#include "asyncit/membership/swim.hpp"
#include "asyncit/net/peer.hpp"
#include "asyncit/obs/metrics.hpp"
#include "asyncit/runtime/shared_iterate.hpp"
#include "asyncit/support/check.hpp"
#include "asyncit/support/timer.hpp"

namespace asyncit::net {

MpResult run_node(const op::BlockOperator& op, const la::Vector& x0,
                  const MpOptions& options,
                  transport::Endpoint& endpoint) {
  WallTimer timer;
  return run_node(op, x0, options, endpoint, timer);
}

MpResult run_node(const op::BlockOperator& op, const la::Vector& x0,
                  const MpOptions& options, transport::Endpoint& endpoint,
                  const WallTimer& clock) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  const std::size_t world = options.workers;
  const std::uint32_t rank = endpoint.rank();
  ASYNCIT_CHECK(world >= 1 && world <= m);
  ASYNCIT_CHECK(rank < world);
  ASYNCIT_CHECK(x0.size() == partition.dim());
  ASYNCIT_CHECK(options.solve.inner_steps >= 1);
  ASYNCIT_CHECK(options.solve.check_every >= 1);

  const auto owned = la::assign_blocks_contiguous(m, world);
  rt::SharedIterate monitor(x0);  // publish plane (unused without an
                                  // orchestrator, kept for uniformity)
  std::vector<double> last_displacement(m, 1e300);
  std::vector<std::atomic<std::uint64_t>> updates(world);
  std::atomic<bool> stop{false};
  la::WeightedMaxNorm norm{partition};

  // Observability: arm the global recorder for this rank's run. The
  // caller (tools/asyncit_node) snapshots/exports after return; the
  // recorder's realtime anchor is what trace_merge.py aligns on.
  if (options.obs.trace_level != obs::TraceLevel::kOff) {
    obs::TraceConfig tc;
    tc.level = options.obs.trace_level;
    tc.ring_capacity = options.obs.trace_ring_capacity;
    tc.rank = static_cast<std::uint16_t>(rank);
    obs::TraceRecorder::instance().enable(tc);
    obs::MetricsRegistry::instance().reset();
  }

  PeerContext ctx;
  ctx.op = &op;
  ctx.options = &options;
  ctx.clock = &clock;
  ctx.owned = &owned;
  ctx.monitor = &monitor;
  ctx.last_displacement = &last_displacement;
  ctx.updates = &updates;
  ctx.stop = &stop;
  ctx.node_mode = true;
  ctx.norm = &norm;

  // Elastic membership: one SWIM agent, driven by this (the peer's)
  // thread. The launch assignment in `owned` becomes a fallback; the
  // peer re-assigns blocks over the live view as it changes.
  std::unique_ptr<membership::SwimAgent> agent;
  if (options.membership.enabled) {
    ASYNCIT_CHECK(options.solve.mode == Mode::kAsync);
    agent = std::make_unique<membership::SwimAgent>(
        rank, world, options.membership, options.seed);
    ctx.membership = agent.get();
  }

  Peer peer(ctx, rank, x0, endpoint);
  peer.run();  // the calling thread IS the peer

  MpResult result;
  result.wall_seconds = clock.seconds();
  if (options.obs.trace_level != obs::TraceLevel::kOff) {
    obs::TraceRecorder::instance().disable();
    const obs::RecorderStats os = obs::TraceRecorder::instance().stats();
    result.obs_events_recorded = os.recorded;
    result.obs_events_dropped = os.dropped;
  }
  result.x = peer.view().x;  // the rank's full private iterate
  result.updates_per_worker.assign(world, 0);
  result.updates_per_worker[rank] = updates[rank].load();
  result.total_updates = result.updates_per_worker[rank];
  result.rounds = peer.rounds();
  result.partials_sent = peer.partials_sent();
  result.inversions_observed = peer.view().inversions;
  result.stale_filtered = peer.view().stale_filtered;
  result.peers_stopped = peer.peers_stopped();
  result.frames_rejected = peer.frames_rejected();
  result.reassignments = peer.reassignments();
  result.snapshot_blocks_sent = peer.snapshot_blocks_sent();
  result.snapshot_blocks_suppressed = peer.snapshot_blocks_suppressed();
  result.bytes_sent_raw = peer.bytes_sent_raw();
  result.bytes_sent_wire = peer.bytes_sent_wire();
  result.wire_frames_full = peer.wire_frames_full();
  result.wire_frames_delta = peer.wire_frames_delta();
  result.wire_frames_heartbeat = peer.wire_frames_heartbeat();
  result.wire_frames_codec = peer.wire_frames_codec();
  result.gate_stalls = peer.gate_stalls();
  result.steering_decisions = peer.steering_decisions();
  result.staleness_at_exit = peer.staleness_bound();
  if (agent) {
    result.membership = agent->stats();
    result.live_at_exit = agent->table().live_ranks();
  }
  result.messages_sent = endpoint.sent();
  result.messages_dropped = endpoint.dropped();
  result.messages_delivered = endpoint.delivered();
  result.delays.merge(endpoint.delays());
  const auto& links = peer.link_delays();
  for (std::uint32_t src = 0; src < links.size(); ++src) {
    if (links[src].count() == 0) continue;
    MpResult::LinkDelay link;
    link.src = src;
    link.dst = rank;
    link.delays = links[src];
    result.link_delays.push_back(std::move(link));
  }
  if (peer.auditor() != nullptr)
    result.admissibility.push_back(peer.auditor()->report());
  if (options.obs.record_trace) {
    for (const auto& e : peer.log().phases()) result.log.add_phase(e);
    for (const auto& e : peer.log().messages()) result.log.add_message(e);
  }
  if (options.solve.x_star.has_value()) {
    result.final_error = norm.distance(result.x, *options.solve.x_star);
    result.converged = result.final_error < options.solve.tol;
  }
  return result;
}

}  // namespace asyncit::net
