// Orchestration of the message-passing runtime.
//
// run_message_passing executes asynchronous iterations the way the paper's
// testbeds did: P worker threads own disjoint block ranges and exchange
// step-tagged block values through a pluggable wire transport with
// injectable latency, reordering (non-FIFO delivery), and loss — values
// actually TRAVEL between workers instead of living in shared memory
// (rt::) or in a virtual-time simulation (sim::). Out-of-order messages,
// label inversions, and unbounded heterogeneity delays therefore occur on
// real hardware, and every per-message delay is measured into a histogram
// rather than assumed from a model.
//
// The default overload runs over the in-process mailbox backend
// (transport/inproc.hpp), byte-for-byte the pre-transport behaviour; the
// Transport overload accepts any backend hosting every rank in this
// process — e.g. transport::TcpTransport over loopback sockets, or
// transport::ChaosTransport stacking the delay models on top of TCP. For
// one-rank-per-PROCESS deployments see net/node_runtime.hpp.
//
// Three coordination modes are selectable per run (see net/peer.hpp):
// totally asynchronous (kAsync), staleness-bounded (kSsp), and the
// barrier-synchronized BSP baseline (kBsp). Flexible communication
// (Definition 3 partial publishing) and the displacement-based stopping
// rule of rt::RuntimeOptions carry over unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "asyncit/linalg/norms.hpp"
#include "asyncit/membership/membership.hpp"
#include "asyncit/net/channel.hpp"
#include "asyncit/obs/auditor.hpp"
#include "asyncit/obs/steering.hpp"
#include "asyncit/obs/trace_recorder.hpp"
#include "asyncit/operators/operator.hpp"
#include "asyncit/trace/event_log.hpp"

namespace asyncit::transport {
class Transport;
}

namespace asyncit::net {

/// Per-sweep coordination discipline.
enum class Mode {
  kAsync,  ///< never wait (totally asynchronous, paper Section II)
  kSsp,    ///< stale synchronous: clock gap capped by `staleness`
  kBsp,    ///< bulk synchronous baseline (barrier every round)
};

/// What to solve and when to stop — the discipline, flexible
/// communication, and budget knobs. Aggregate-initializable; nested in
/// MpOptions (and mirrored by train::TrainOptions for the PSGD mode).
struct SolveOptions {
  Mode mode = Mode::kAsync;
  /// SSP clock-gap cap in rounds (ignored by kAsync; kBsp behaves as 0).
  std::uint64_t staleness = 1;
  /// Auditor-fed adaptive staleness (kSsp only; obs/steering.hpp): the
  /// gate slack tracks the OnlineAuditor's measured delay bound instead
  /// of the static `staleness` value (which becomes the initial bound).
  /// Enabling this implies the auditor — the measured signal must exist.
  obs::SteeringOptions adaptive;

  std::size_t inner_steps = 1;
  /// Flexible communication (Definition 3): send partial iterates
  /// mid-phase and incorporate mid-phase arrivals between inner steps.
  /// Honoured by kAsync and kSsp; kBsp keeps its frozen-snapshot rounds.
  bool publish_partials = false;

  OverwritePolicy overwrite = OverwritePolicy::kLastArrivalWins;

  double tol = 1e-9;
  std::optional<la::Vector> x_star;  ///< oracle stopping + error metric

  /// Displacement stopping rule without a known solution, identical in
  /// meaning to rt::RuntimeOptions::displacement_tol (0 disables); the
  /// orchestrator confirms a candidate stop with a true residual check.
  double displacement_tol = 0.0;

  std::uint64_t max_updates = 1000000;  ///< total block-update budget
  double max_seconds = 30.0;
  std::uint64_t check_every = 16;  ///< per-peer budget check cadence
};

/// Fault/latency injection for the in-process backend.
struct ChaosOptions {
  /// Channel behaviour for every directed link. drop_prob is honoured
  /// only in kAsync (see DeliveryPolicy). Ignored by the Transport
  /// overloads (the backend's own delivery behaviour applies there —
  /// stack transport::ChaosTransport for injection over real sockets).
  DeliveryPolicy delivery;
};

/// Wire-efficiency layer (transport/codec.hpp, DESIGN.md §6): per-link
/// delta encoding of block publishes, with optional lossy compression on
/// top. All off by default — the wire then carries byte-identical
/// full-width frames.
struct WireOptions {
  /// Per-(link, block) delta encoding: each sender remembers the payload
  /// it last put on every directed link and ships only the contiguous
  /// range that changed (an offset/count partial frame flagged
  /// `complete` so round accounting is unaffected). An unchanged block
  /// still sends a zero-count heartbeat — frame COUNTS are invariant, so
  /// chaos/simnet draw sequences replay identically with delta on or
  /// off, and the tag stream stays intact.
  bool delta = false;
  /// Windowed top-k sparsification (requires delta): when the dirty
  /// range is wider than this, send only the <= topk-wide window with
  /// the largest |change| mass; the rest stays dirty and ships later.
  /// 0 = off.
  std::uint32_t topk = 0;
  /// Scalar quantization (requires delta): payload doubles ride as
  /// 2^bits-level integers between the frame's min/max. 0 = off
  /// (exact); 8 or 16 otherwise. Lossy — gated by the residual-tolerance
  /// parity suite against the uncompressed oracle.
  std::uint32_t quant_bits = 0;
  /// Every this-many sends on a (link, block) pair, a full-width frame
  /// resyncs the receiver — bounds how long a dropped delta (or a
  /// replaced connection) can keep a component stale.
  std::uint32_t refresh_every = 16;
};

/// Observability (obs/, DESIGN.md §8) + the legacy Gantt EventLog.
struct ObsOptions {
  bool record_trace = false;          ///< fill the EventLog (Gantt)
  std::size_t max_trace_events = 20000;

  /// Event-tracing level for this run. kOff leaves the global recorder
  /// untouched; kMetrics/kFull enable it at run entry (resetting rings
  /// and the metrics registry) and disable it at exit, leaving the
  /// recorded events snapshot-able by the caller (exporters, node JSON).
  obs::TraceLevel trace_level = obs::TraceLevel::kOff;
  /// Per-thread event-ring capacity (events; power of two).
  std::size_t trace_ring_capacity = 4096;
  /// Online admissibility auditor: every peer streams its local
  /// (S_j, l(j)) schedule through the condition a–d checks while the
  /// run executes (MpResult::admissibility). Independent of tracing.
  bool audit = false;
  /// Per-source-link delay histograms at each receiver
  /// (MpResult::link_delays). On for the thread-scale runs that always
  /// had them; simnet::run_world turns it off — one DelayHistogram is
  /// ~600 B, and world^2 of them at 1000 ranks is ~600 MB of pure
  /// bookkeeping. The endpoint-level delays() aggregate is unaffected.
  bool link_delays = true;
};

/// Options for run_message_passing / run_node: topology at the top,
/// everything else grouped by concern into aggregate-initializable
/// sub-structs — `{.workers = 4, .solve = {.mode = Mode::kSsp}}` works.
struct MpOptions {
  std::size_t workers = 2;
  /// Per-worker compute repetition factors (heterogeneity injection), as
  /// in rt::RuntimeOptions: empty = all 1.0.
  std::vector<double> worker_slowdown;
  std::uint64_t seed = 1;

  SolveOptions solve;
  ChaosOptions chaos;
  WireOptions wire;
  ObsOptions obs;

  /// Elastic ranks (membership/): when enabled, every peer runs a SWIM
  /// failure detector over the control-frame path, block ownership
  /// follows the live view (la::assign_blocks_contiguous re-run on every
  /// membership change), joiners are welcomed with an iterate snapshot,
  /// and `workers` becomes the number of SLOTS — membership.initial_alive
  /// (empty = all) says which are present at launch. Requires kAsync.
  membership::Options membership;
};

struct MpResult {
  la::Vector x;
  double wall_seconds = 0.0;
  bool converged = false;
  double final_error = -1.0;  ///< oracle error (when x_star given)

  std::uint64_t total_updates = 0;           ///< block updates
  std::vector<std::uint64_t> updates_per_worker;
  std::uint64_t rounds = 0;                  ///< min complete sweeps

  // ---- channel statistics: observed, not assumed ----
  std::uint64_t messages_sent = 0;      ///< stamped (incl. dropped)
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t partials_sent = 0;
  /// Arrivals carrying a tag older than the newest already seen for the
  /// block — genuine out-of-order deliveries (label inversions).
  std::uint64_t inversions_observed = 0;
  /// Inversions that kNewestTagWins refused to incorporate.
  std::uint64_t stale_filtered = 0;
  /// kStop control frames received (node mode only: how many other ranks
  /// announced their stopping criterion before this rank finished).
  std::uint64_t peers_stopped = 0;
  /// Received frames discarded because their semantic fields (source
  /// rank, block id, offset/payload extent) do not fit this run's
  /// geometry — a misconfigured or hostile sender, not a wire error.
  std::uint64_t frames_rejected = 0;
  /// Wire-invalid frames the transport's readers rejected (corrupted or
  /// foreign byte streams — transport::Transport::bad_frames). Filled
  /// where the runtime sees the whole transport (the Transport overload
  /// of run_message_passing; tools/asyncit_node fills it for run_node).
  std::uint64_t bad_frames = 0;

  // ---- wire-efficiency layer (WireOptions; raw == wire when off) ----
  /// Bytes the peers' block publishes would have cost as full-width raw
  /// frames, vs the bytes actually framed (delta ranges, heartbeats,
  /// quantized payloads). raw / wire is the bandwidth-reduction factor
  /// the c15 bench gates.
  std::uint64_t bytes_sent_raw = 0;
  std::uint64_t bytes_sent_wire = 0;
  /// Frame-class breakdown of the delta layer's block publishes.
  std::uint64_t wire_frames_full = 0;
  std::uint64_t wire_frames_delta = 0;
  std::uint64_t wire_frames_heartbeat = 0;
  std::uint64_t wire_frames_codec = 0;

  // ---- elastic membership (all zero/empty when membership is off) ----
  /// Detector + dissemination counters, summed over local ranks.
  membership::Stats membership;
  /// Live-view changes that re-ran block assignment.
  std::uint64_t reassignments = 0;
  /// Blocks sent as welcome snapshots to joining ranks.
  std::uint64_t snapshot_blocks_sent = 0;
  /// Owned blocks NOT snapshot because the established-cover plan
  /// assigns them to another rank (deduped welcome duplicates).
  std::uint64_t snapshot_blocks_suppressed = 0;
  /// This rank's live view at exit (run_node only; sorted, includes the
  /// own rank).
  std::vector<std::uint32_t> live_at_exit;

  /// Measured post-to-drain delay of every delivered message.
  DelayHistogram delays;

  // ---- observability (obs/) ----
  /// Per-link measured delay breakdown: messages from `src` drained by
  /// receiving peer `dst` (schema asyncit-node/2 `links`).
  struct LinkDelay {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    DelayHistogram delays;
  };
  std::vector<LinkDelay> link_delays;
  /// Per-peer online admissibility reports (ObsOptions::audit); run_node
  /// fills exactly one entry (the local rank's view of the schedule).
  std::vector<obs::AdmissibilityReport> admissibility;
  /// Global recorder accounting for the run (ObsOptions::trace_level).
  std::uint64_t obs_events_recorded = 0;
  std::uint64_t obs_events_dropped = 0;

  /// SSP/BSP gate entries that actually blocked (the peer polled at
  /// least once before its round gate opened), summed over local ranks —
  /// the stall metric the adaptive bound is steered to reduce.
  std::uint64_t gate_stalls = 0;
  /// Adaptive-staleness steering (SolveOptions::adaptive): decisions
  /// taken (traced as kSteering) and the bound at exit. With steering
  /// off, decisions is 0 and the exit bound is solve.staleness.
  std::uint64_t steering_decisions = 0;
  std::uint64_t staleness_at_exit = 0;

  trace::EventLog log;
};

/// Runs P = options.workers peer threads until convergence or budget
/// exhaustion over the in-process mailbox backend (options.chaos.delivery
/// and options.seed configure its channels). Requires workers <= num_blocks
/// and x0.size() == dim.
MpResult run_message_passing(const op::BlockOperator& op,
                             const la::Vector& x0, const MpOptions& options);

/// Same, over a caller-supplied transport backend. The transport must
/// host every rank of the run in this process (transport.world() ==
/// options.workers, all ranks local); its own delivery behaviour applies
/// — options.chaos.delivery is ignored in this overload.
MpResult run_message_passing(const op::BlockOperator& op,
                             const la::Vector& x0, const MpOptions& options,
                             transport::Transport& transport);

}  // namespace asyncit::net
