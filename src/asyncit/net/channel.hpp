// Mailbox channels for the in-process message-passing runtime.
//
// Where sim/ *simulates* channels in virtual time, net/ runs them on real
// threads: every block value travels as a tagged Message posted into the
// receiver's Mailbox and becomes visible only once its injected delivery
// time has passed. Latency, ordering, and loss are injected at the sending
// LINK (LinkStamper) so that the delay process is a deterministic function
// of the seed and the per-link message count — two runs with the same seed
// draw identical latency/drop sequences on every link no matter how the
// OS schedules the worker threads. Delivery-side reordering (non-FIFO
// links) then produces genuine out-of-order arrivals on real hardware:
// a message sent later can carry a smaller injected latency and overtake
// its predecessor, which the receiver observes as a label inversion.
//
// Delays are MEASURED, not assumed: every drained message records the wall
// clock interval between post and drain in a DelayHistogram (injected
// latency + scheduling delay — the quantity the paper's unbounded-delay
// assumptions are about).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "asyncit/linalg/partition.hpp"
#include "asyncit/linalg/vector_ops.hpp"
#include "asyncit/model/history.hpp"
#include "asyncit/support/rng.hpp"

namespace asyncit::net {

/// What a message carries. Almost everything is a block value; everything
/// else is a CONTROL frame riding the same path: kStop is a rank
/// announcing that it met its stopping criterion and is leaving, and the
/// kPing/kAck/kPingReq/kMembershipUpdate quartet is the SWIM failure
/// detector of membership/ (elastic ranks). Control frames reuse the
/// value header with repurposed fields — see membership/swim.hpp.
enum class MsgKind : std::uint8_t {
  kValue = 0,
  kStop = 1,
  kPing = 2,              ///< direct liveness probe (tag = sequence)
  kAck = 3,               ///< probe answer (block = answered target)
  kPingReq = 4,           ///< indirect probe request (block = target)
  kMembershipUpdate = 5,  ///< dedicated gossip broadcast
};
inline constexpr std::uint8_t kNumMsgKinds = 6;

inline constexpr bool is_control(MsgKind k) { return k != MsgKind::kValue; }

/// A block value in flight between two peers.
struct Message {
  std::uint32_t src = 0;        ///< sending peer
  la::BlockId block = 0;        ///< which block the payload is
  model::Step tag = 0;          ///< sender's production counter for `block`
  std::uint64_t round = 0;      ///< sender's phase/round index when sent
  bool partial = false;         ///< mid-phase partial update (Definition 3)
  /// Partial-range frame that finishes the sender's round anyway (the
  /// delta layer ships only changed coordinates, so the "whole block
  /// arrived" signal gated modes need travels as this flag instead).
  bool complete = false;
  MsgKind kind = MsgKind::kValue;
  /// Coordinate offset of the payload within the block: a partial-block
  /// frame carries value.size() <= block size coordinates starting here
  /// (flexible communication at sub-block granularity). 0 + full size for
  /// whole-block messages.
  std::uint32_t offset = 0;
  /// Latency injected by the chaos transport decorator, in seconds. Rides
  /// the wire so the receive side of a REAL link can hold the frame for
  /// the sender-drawn (seed-deterministic) delay. 0 outside chaos.
  double injected_delay = 0.0;
  double t_send = 0.0;          ///< wall seconds (runtime clock) at post
  double deliver_at = 0.0;      ///< t_send + injected latency
  la::Vector value;             ///< the block payload
};

/// Per-link delivery behaviour (latency, ordering, loss).
struct DeliveryPolicy {
  /// Injected latency is uniform in [min_latency, max_latency] seconds.
  /// Zero-zero means immediate visibility (still via the mailbox).
  double min_latency = 0.0;
  double max_latency = 0.0;
  /// Enforce per-link in-order delivery: each message's delivery time is
  /// floored at the previous message's on the same link. false (default)
  /// allows overtaking — the out-of-order regime of the paper.
  bool fifo = false;
  /// Probability that a message is lost in transit. Only honoured in the
  /// totally asynchronous mode (SSP/BSP gate on complete rounds and would
  /// deadlock without retransmission, which net/ does not model).
  double drop_prob = 0.0;
  /// By default the loss model spares CONTROL frames (MsgKind != kValue):
  /// a lost kStop would wedge a gated rank forever and lost membership
  /// frames would turn every chaos run into false-positive soup — the
  /// iteration theory licenses dropping VALUES (a fresher one follows),
  /// not protocol signals. Set true to subject control frames to the
  /// drop model anyway (failure-detector stress testing). The drop draw
  /// is consumed either way, so value-stream replay determinism is
  /// unaffected by the flag.
  bool drop_control = false;
};

/// Receiver-side incorporation policy — mirrors sim::OverwritePolicy.
enum class OverwritePolicy {
  /// Incoming value always overwrites the local copy (one-sided put / DMA
  /// semantics). With non-FIFO links this lets a stale value clobber a
  /// fresher one: a genuine out-of-order label inversion.
  kLastArrivalWins,
  /// Receiver keeps the newest tag (receiver-side filtering).
  kNewestTagWins,
};

/// Log-spaced histogram of measured per-message delays (seconds).
class DelayHistogram {
 public:
  DelayHistogram();

  void add(double delay_seconds);
  void merge(const DelayHistogram& other);

  std::uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return max_; }
  double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
  /// Approximate quantile (upper edge of the bucket holding rank p*count).
  double quantile(double p) const;
  /// Named quantiles exported through the node/cluster JSON (schema
  /// asyncit-node/2); max() above completes the set.
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Bucket upper edges (seconds) and counts, for serialization.
  const std::vector<double>& edges() const { return edges_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::vector<double> edges_;  ///< upper edges, log-spaced; last = +inf
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sender-side stamping of one directed link (src -> dst). Owns its RNG
/// stream, so the sequence of (latency, drop) draws for a link depends only
/// on the seed and the link's message count — the replay-determinism
/// anchor of the whole runtime. Owned and used by a single sender thread;
/// not thread-safe by design.
class LinkStamper {
 public:
  LinkStamper(DeliveryPolicy policy, std::uint64_t seed)
      : policy_(policy), rng_(seed) {}

  /// Stamps deliver_at (and applies the FIFO floor). Returns false when
  /// the message was dropped (caller must not post it).
  bool stamp(Message& m, double now, bool allow_drop);

  std::uint64_t stamped() const { return stamped_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  DeliveryPolicy policy_;
  Rng rng_;
  double last_deliver_at_ = 0.0;  ///< FIFO floor
  std::uint64_t stamped_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Multi-producer single-consumer mailbox. Producers post stamped
/// messages; the consumer drains every message whose deliver_at has
/// passed, in deliver_at order (which is NOT post order on non-FIFO
/// links). A condition variable lets coordination modes (BSP/SSP) sleep
/// until something new can possibly be ready instead of spinning.
class Mailbox {
 public:
  void post(Message m);

  /// Moves every message with deliver_at <= now into `out` (appended, in
  /// deliver_at order) and records its measured delay. Returns the number
  /// delivered.
  std::size_t drain(double now, std::vector<Message>& out);

  /// Blocks until the post counter exceeds `seen_posted` or
  /// `timeout_seconds` passes. The caller reads posted() BEFORE its last
  /// drain and passes it here, so a post landing between drain and wait
  /// can never be slept through (no lost wakeup).
  void wait_for_post(std::uint64_t seen_posted, double timeout_seconds);

  /// Earliest deliver_at among pending messages (+inf when empty).
  double next_delivery() const;

  std::uint64_t posted() const;
  std::uint64_t delivered() const;
  const DelayHistogram& delays() const { return delays_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Min-heap on deliver_at (lazy: a sorted insert into a vector keeps the
  // code simple; mailboxes hold few messages at a time).
  std::vector<Message> pending_;
  std::uint64_t posted_ = 0;
  std::uint64_t delivered_ = 0;
  DelayHistogram delays_;
};

}  // namespace asyncit::net
