// One-rank-per-process driver for genuinely distributed runs.
//
// run_message_passing hosts every peer as a thread of one process;
// run_node hosts exactly ONE peer — the calling process's rank — on the
// calling thread, talking to the other ranks through a transport endpoint
// (in practice transport::TcpTransport with local_ranks = {rank}; see
// tools/asyncit_node.cpp and scripts/launch_cluster.py for the
// config/rendezvous glue).
//
// What changes without a global orchestrator:
//   stopping   no process can snapshot the global iterate, but each
//              peer's PRIVATE view converges to the same fixed point, so
//              the peer checks its own criterion (oracle distance under
//              the weighted max norm, or the residual certificate when
//              displacement_tol is set) and broadcasts a kStop control
//              frame on a hit. Async ranks keep refining until their own
//              criterion fires (a departed rank's final values are within
//              tolerance, so the survivors still converge); SSP/BSP ranks
//              stop on the first kStop — the departed rank would deadlock
//              their round gate.
//   budgets    options.solve.max_updates counts THIS rank's updates (no global
//              counter exists); max_seconds is per-process wall time.
//   elasticity with options.membership.enabled the world is a set of
//              SLOTS, not a frozen roster: a SWIM failure detector
//              (membership/) runs on the control-frame path, dead ranks'
//              blocks are adopted via re-assignment over the live view,
//              and late-started ranks join mid-run (snapshot-welcomed).
//              See DESIGN.md §7; requires Mode::kAsync and an elastic
//              transport (TcpOptions::elastic).
//
// The caller owns transport lifetime: flush() the transport after
// run_node returns so the final kStop/value frames reach the wire before
// teardown.
#pragma once

#include "asyncit/net/mp_runtime.hpp"
#include "asyncit/support/timer.hpp"
#include "asyncit/transport/transport.hpp"

namespace asyncit::net {

/// Runs this process's rank (endpoint.rank()) of a world of
/// options.workers ranks until the local stopping criterion, a received
/// stop, or budget exhaustion. MpResult.x is the rank's full private
/// iterate; message statistics cover this rank's endpoint only.
MpResult run_node(const op::BlockOperator& op, const la::Vector& x0,
                  const MpOptions& options, transport::Endpoint& endpoint);

/// Same, but the run reads time from `clock` instead of starting its own
/// wall timer — the hook simnet::run_world uses to put every budget and
/// timestamp on virtual time (clock is a simnet::SimClock there). The
/// clock must read 0 at (or before) the call and only move forward.
MpResult run_node(const op::BlockOperator& op, const la::Vector& x0,
                  const MpOptions& options, transport::Endpoint& endpoint,
                  const WallTimer& clock);

}  // namespace asyncit::net
