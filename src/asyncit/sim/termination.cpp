#include "asyncit/sim/termination.hpp"

namespace asyncit::sim {

bool DoubleScanDetector::scan(const std::vector<Reply>& replies) {
  ++scans_;
  if (certified_) return true;

  bool all_converged = !replies.empty();
  std::uint64_t sent = 0, received = 0;
  for (const Reply& r : replies) {
    all_converged = all_converged && r.locally_converged;
    sent += r.sent;
    received += r.received;
  }
  const bool clean = all_converged && sent == received;

  if (clean && had_clean_scan_ && sent == last_sent_ &&
      received == last_received_) {
    certified_ = true;
    return true;
  }
  had_clean_scan_ = clean;
  last_sent_ = sent;
  last_received_ = received;
  return false;
}

}  // namespace asyncit::sim
