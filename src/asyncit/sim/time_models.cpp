#include "asyncit/sim/time_models.hpp"

#include "asyncit/support/check.hpp"

namespace asyncit::sim {

namespace {

class FixedCompute final : public ComputeTimeModel {
 public:
  explicit FixedCompute(double t) : t_(t) { ASYNCIT_CHECK(t_ > 0.0); }
  double phase_duration(std::size_t, Rng&) override { return t_; }
  std::string name() const override { return "fixed"; }

 private:
  double t_;
};

class UniformCompute final : public ComputeTimeModel {
 public:
  UniformCompute(double lo, double hi) : lo_(lo), hi_(hi) {
    ASYNCIT_CHECK(0.0 < lo_ && lo_ <= hi_);
  }
  double phase_duration(std::size_t, Rng& rng) override {
    return rng.uniform(lo_, hi_);
  }
  std::string name() const override { return "uniform"; }

 private:
  double lo_;
  double hi_;
};

class ParetoCompute final : public ComputeTimeModel {
 public:
  ParetoCompute(double scale, double shape) : scale_(scale), shape_(shape) {
    ASYNCIT_CHECK(scale_ > 0.0 && shape_ > 0.0);
  }
  double phase_duration(std::size_t, Rng& rng) override {
    return rng.pareto(scale_, shape_);
  }
  std::string name() const override { return "pareto"; }

 private:
  double scale_;
  double shape_;
};

class LinearCompute final : public ComputeTimeModel {
 public:
  explicit LinearCompute(double scale) : scale_(scale) {
    ASYNCIT_CHECK(scale_ > 0.0);
  }
  double phase_duration(std::size_t k, Rng&) override {
    return scale_ * static_cast<double>(k);
  }
  std::string name() const override { return "linear(Baudet)"; }

 private:
  double scale_;
};

class SlowThenFastCompute final : public ComputeTimeModel {
 public:
  SlowThenFastCompute(double slow, double fast, std::size_t switch_at)
      : slow_(slow), fast_(fast), switch_at_(switch_at) {
    ASYNCIT_CHECK(slow_ > 0.0 && fast_ > 0.0);
  }
  double phase_duration(std::size_t k, Rng&) override {
    return k < switch_at_ ? slow_ : fast_;
  }
  std::string name() const override { return "slow-then-fast"; }

 private:
  double slow_;
  double fast_;
  std::size_t switch_at_;
};

class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(double t) : t_(t) { ASYNCIT_CHECK(t_ >= 0.0); }
  double latency(Rng&) override { return t_; }
  std::string name() const override { return "fixed"; }

 private:
  double t_;
};

class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(double lo, double hi) : lo_(lo), hi_(hi) {
    ASYNCIT_CHECK(0.0 <= lo_ && lo_ <= hi_);
  }
  double latency(Rng& rng) override { return rng.uniform(lo_, hi_); }
  std::string name() const override { return "uniform"; }

 private:
  double lo_;
  double hi_;
};

class ParetoLatency final : public LatencyModel {
 public:
  ParetoLatency(double scale, double shape) : scale_(scale), shape_(shape) {
    ASYNCIT_CHECK(scale_ > 0.0 && shape_ > 0.0);
  }
  double latency(Rng& rng) override { return rng.pareto(scale_, shape_); }
  std::string name() const override { return "pareto"; }

 private:
  double scale_;
  double shape_;
};

}  // namespace

std::unique_ptr<ComputeTimeModel> make_fixed_compute(double t) {
  return std::make_unique<FixedCompute>(t);
}
std::unique_ptr<ComputeTimeModel> make_uniform_compute(double lo, double hi) {
  return std::make_unique<UniformCompute>(lo, hi);
}
std::unique_ptr<ComputeTimeModel> make_pareto_compute(double scale,
                                                      double shape) {
  return std::make_unique<ParetoCompute>(scale, shape);
}
std::unique_ptr<ComputeTimeModel> make_linear_compute(double scale) {
  return std::make_unique<LinearCompute>(scale);
}
std::unique_ptr<ComputeTimeModel> make_slow_then_fast_compute(
    double slow, double fast, std::size_t switch_at_phase) {
  return std::make_unique<SlowThenFastCompute>(slow, fast, switch_at_phase);
}

std::unique_ptr<LatencyModel> make_fixed_latency(double t) {
  return std::make_unique<FixedLatency>(t);
}
std::unique_ptr<LatencyModel> make_uniform_latency(double lo, double hi) {
  return std::make_unique<UniformLatency>(lo, hi);
}
std::unique_ptr<LatencyModel> make_pareto_latency(double scale,
                                                  double shape) {
  return std::make_unique<ParetoLatency>(scale, shape);
}

}  // namespace asyncit::sim
