// Discrete-event simulator of parallel/distributed asynchronous iterations.
//
// This is the executable substitute for the paper's testbeds (Tnode, Cray
// T3E SHMEM, IBM SP4, Grid5000 — see DESIGN.md §2): P simulated processors
// own disjoint sets of blocks, run updating phases whose durations follow
// per-processor ComputeTimeModels, and exchange values over channels with
// latency, optional FIFO ordering, and optional message drops. Everything
// is deterministic given the seed and runs in virtual time.
//
// Faithfulness to the paper's model:
//   * every completed updating phase is assigned the next global iteration
//     number j — the linearization of Definition 1;
//   * each value carries the step at which it was produced, so the labels
//     l_h(j) (and hence delays, out-of-order arrivals, macro-iterations
//     and epochs) are MEASURED, not assumed;
//   * non-FIFO channels + last-arrival-wins overwrite reproduce genuine
//     out-of-order message behaviour (label inversions);
//   * flexible communication (Definition 3): phases perform inner_steps
//     applications of the block operator; partial iterates are sent
//     mid-phase (hatched arrows of Fig. 2) and mid-phase arrivals are
//     incorporated between inner steps;
//   * termination detection runs the [22]-style double-scan protocol over
//     control messages (see sim/termination.hpp).
//
// run_sync_sim provides the synchronous (BSP) baseline on the same virtual
// hardware: rounds end at the slowest processor's phase plus message
// delivery (with retransmission on drops) — the waiting the paper's
// asynchronous iterations eliminate.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "asyncit/linalg/norms.hpp"
#include "asyncit/model/epoch.hpp"
#include "asyncit/model/history.hpp"
#include "asyncit/model/macro_iteration.hpp"
#include "asyncit/operators/operator.hpp"
#include "asyncit/sim/termination.hpp"
#include "asyncit/sim/time_models.hpp"
#include "asyncit/support/rng.hpp"
#include "asyncit/trace/event_log.hpp"

namespace asyncit::sim {

enum class OverwritePolicy {
  /// Incoming value always overwrites the local copy (one-sided put /
  /// DMA semantics). With non-FIFO channels this produces genuine
  /// out-of-order label inversions.
  kLastArrivalWins,
  /// Receiver keeps the newest tag (receiver-side filtering).
  kNewestTagWins,
};

struct SimOptions {
  std::size_t inner_steps = 1;
  bool publish_partials = false;  ///< flexible communication (Definition 3)
  bool fifo = false;              ///< enforce per-channel in-order delivery
  double drop_prob = 0.0;         ///< transient message loss probability
  OverwritePolicy overwrite = OverwritePolicy::kLastArrivalWins;

  model::Step max_steps = 100000;
  double max_time = 1e12;
  double tol = 1e-10;
  std::optional<la::Vector> x_star;  ///< oracle for error tracking/stop
  bool stop_on_oracle = true;        ///< stop when error < tol (needs x_star)

  bool enable_detection = false;  ///< [22]-style termination detection
  double local_eps = 1e-10;       ///< per-processor local residual bound
  double scan_period = 5.0;       ///< coordinator scan period (virtual time)

  model::LabelRecording recording = model::LabelRecording::kMinOnly;
  la::Vector norm_weights;       ///< weighted max norm (empty = unit)
  model::Step record_error_every = 1;

  bool record_trace = true;      ///< fill the EventLog (Gantt)
  std::size_t max_trace_events = 20000;

  std::uint64_t seed = 1;
};

struct SimResult {
  la::Vector x;                ///< global iterate at the end
  model::Step steps = 0;       ///< completed updating phases
  double virtual_time = 0.0;
  bool converged = false;

  bool detection_fired = false;
  double detection_time = 0.0;
  model::Step detection_step = 0;
  double error_at_detection = -1.0;  ///< oracle error when detection fired
  std::size_t scans = 0;

  model::ScheduleTrace trace;
  std::vector<model::Step> macro_boundaries;
  std::vector<model::Step> epoch_boundaries;

  std::vector<std::pair<model::Step, double>> error_history;
  std::vector<std::pair<double, double>> error_vs_time;
  double initial_error = 0.0;

  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_dropped = 0;
  std::size_t partials_sent = 0;
  std::vector<std::size_t> updates_per_processor;

  trace::EventLog log;

  SimResult(std::size_t num_blocks, model::LabelRecording rec)
      : trace(num_blocks, rec) {}
};

/// Runs the asynchronous simulation. `compute` supplies one model per
/// processor (its size determines the processor count; blocks are split
/// contiguously and near-evenly across processors).
SimResult run_async_sim(const op::BlockOperator& op, const la::Vector& x0,
                        std::vector<std::unique_ptr<ComputeTimeModel>> compute,
                        LatencyModel& latency, const SimOptions& options);

struct SyncSimResult {
  la::Vector x;
  std::size_t rounds = 0;
  double virtual_time = 0.0;
  bool converged = false;
  std::vector<std::pair<double, double>> error_vs_time;
  std::size_t retransmissions = 0;
  double initial_error = 0.0;
};

/// Synchronous (BSP) baseline on the same virtual hardware: each round
/// applies a full Jacobi-style sweep; the barrier waits for the slowest
/// processor and for every message (dropped messages are retransmitted
/// after a timeout of twice the sampled latency).
SyncSimResult run_sync_sim(const op::BlockOperator& op, const la::Vector& x0,
                           std::vector<std::unique_ptr<ComputeTimeModel>> compute,
                           LatencyModel& latency, const SimOptions& options);

}  // namespace asyncit::sim
