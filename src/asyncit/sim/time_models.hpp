// Virtual-time models for the distributed simulator.
//
// ComputeTimeModel: duration of a processor's k-th updating phase.
//   * fixed       — homogeneous processors;
//   * uniform     — mild jitter;
//   * pareto      — heavy-tailed stragglers;
//   * linear      — the paper's Baudet example: the k-th phase takes k
//                   units, so the induced delay grows like sqrt(j);
//   * slow-then-fast — Mishchenko et al.'s motivating machine ("one worker
//                   being slow at first that gets faster with time").
//
// LatencyModel: transit time of a message on a channel.
#pragma once

#include <memory>
#include <string>

#include "asyncit/support/rng.hpp"

namespace asyncit::sim {

class ComputeTimeModel {
 public:
  virtual ~ComputeTimeModel() = default;
  /// Duration of this processor's k-th phase (k starts at 1).
  virtual double phase_duration(std::size_t k, Rng& rng) = 0;
  virtual std::string name() const = 0;
};

std::unique_ptr<ComputeTimeModel> make_fixed_compute(double t);
std::unique_ptr<ComputeTimeModel> make_uniform_compute(double lo, double hi);
std::unique_ptr<ComputeTimeModel> make_pareto_compute(double scale,
                                                      double shape);
/// k-th phase takes scale * k time units (Baudet's unbounded-delay
/// example from Section II of the paper).
std::unique_ptr<ComputeTimeModel> make_linear_compute(double scale);
std::unique_ptr<ComputeTimeModel> make_slow_then_fast_compute(
    double slow, double fast, std::size_t switch_at_phase);

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual double latency(Rng& rng) = 0;
  virtual std::string name() const = 0;
};

std::unique_ptr<LatencyModel> make_fixed_latency(double t);
std::unique_ptr<LatencyModel> make_uniform_latency(double lo, double hi);
std::unique_ptr<LatencyModel> make_pareto_latency(double scale, double shape);

}  // namespace asyncit::sim
