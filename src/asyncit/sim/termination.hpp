// Distributed termination detection for asynchronous iterations — the
// problem of the paper's reference [22] (El Baz, "A method of terminating
// asynchronous iterative algorithms on message passing systems").
//
// Local convergence of every processor is NOT enough to stop: a message
// still in flight can reactivate a processor (and asynchronous iterations
// have no global clock to ask). The detector below runs the classic
// double-scan / message-counting scheme that [22]-style protocols reduce
// to on our simulator:
//
//   * the coordinator periodically scans all processors; each reply
//     carries (locally_converged, #data messages sent, #received);
//   * a scan is CLEAN when every processor reports converged AND the
//     global sent count equals the global received count (no message in
//     flight at scan time);
//   * termination is certified after TWO consecutive clean scans with
//     unchanged message counters — the second scan proves the system was
//     already quiescent during the first (no activity slipped between
//     scans), which is exactly the "no update during one whole
//     macro-iteration" stability that [22]'s stopping criterion demands.
//
// The scan logic is a pure state machine so it can be unit-tested without
// the event loop.
#pragma once

#include <cstdint>
#include <vector>

namespace asyncit::sim {

class DoubleScanDetector {
 public:
  struct Reply {
    bool locally_converged = false;
    std::uint64_t sent = 0;      ///< data messages sent so far
    std::uint64_t received = 0;  ///< data messages received so far
  };

  /// Feeds one complete scan (one reply per processor). Returns true when
  /// termination is certified.
  bool scan(const std::vector<Reply>& replies);

  bool certified() const { return certified_; }
  std::size_t scans_performed() const { return scans_; }

 private:
  bool had_clean_scan_ = false;
  bool certified_ = false;
  std::uint64_t last_sent_ = 0;
  std::uint64_t last_received_ = 0;
  std::size_t scans_ = 0;
};

}  // namespace asyncit::sim
