#include "asyncit/sim/sim_engine.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "asyncit/support/check.hpp"

namespace asyncit::sim {

namespace {

using model::Step;

enum class EventKind : std::uint8_t {
  kInnerStep,   // one inner application of the block operator
  kMsgArrive,   // data message (full or partial update) delivered
  kScanStart,   // coordinator launches a detection scan
  kScanProbe,   // scan request reaches a processor
  kScanReply,   // processor's reply reaches the coordinator
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // deterministic tie-break
  EventKind kind = EventKind::kInnerStep;
  std::uint32_t proc = 0;       // target processor
  std::size_t inner_index = 0;  // kInnerStep: which inner step (1-based)
  // kMsgArrive payload
  la::BlockId block = 0;
  la::Vector value;
  Step tag = 0;
  bool partial = false;
  std::uint32_t src = 0;
  double t_send = 0.0;
  // detection payload
  std::size_t scan_id = 0;
  DoubleScanDetector::Reply reply;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct ProcessorState {
  std::vector<la::BlockId> owned;   // blocks this processor updates
  std::size_t next_owned = 0;       // round-robin cursor
  std::size_t phases_done = 0;      // k (phase counter)

  la::Vector view;                  // local copy of the iterate
  std::vector<Step> view_tag;       // production step per block

  // current phase
  la::BlockId block = 0;
  double phase_start = 0.0;
  double phase_duration = 0.0;
  la::Vector snapshot;              // frozen read (non-flexible mode)
  la::Vector inner_value;           // current inner iterate of `block`
  std::vector<Step> phase_labels;   // min tag observed per block this phase

  // termination detection
  std::uint64_t data_sent = 0;
  std::uint64_t data_received = 0;
  double last_displacement = 1e300;
  // With detection enabled a locally-converged processor goes PASSIVE: it
  // stops launching phases and stops sending unchanged values; an arriving
  // message that materially changes its view reactivates it. This is the
  // diffusing-computation behaviour [22]-style protocols assume — without
  // it no distributed system ever quiesces and termination is undecidable.
  bool passive = false;

  Rng rng{1};
};

}  // namespace

SimResult run_async_sim(const op::BlockOperator& op, const la::Vector& x0,
                        std::vector<std::unique_ptr<ComputeTimeModel>> compute,
                        LatencyModel& latency, const SimOptions& options) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  const std::size_t n = partition.dim();
  const std::size_t procs = compute.size();
  ASYNCIT_CHECK(procs >= 1 && procs <= m);
  ASYNCIT_CHECK(x0.size() == n);
  ASYNCIT_CHECK(options.inner_steps >= 1);
  ASYNCIT_CHECK_MSG(!options.enable_detection || options.drop_prob == 0.0,
                    "the [22]-style detector assumes reliable channels; "
                    "run fault injection with detection disabled");

  la::WeightedMaxNorm norm =
      options.norm_weights.empty()
          ? la::WeightedMaxNorm(partition)
          : la::WeightedMaxNorm(partition, options.norm_weights);

  Rng master(options.seed);
  SimResult result(m, options.recording);
  result.updates_per_processor.assign(procs, 0);

  // --- ownership: contiguous, near-even block split ---
  std::vector<ProcessorState> ps(procs);
  std::vector<std::uint32_t> owner(m);
  {
    const std::size_t base = m / procs, extra = m % procs;
    la::BlockId b = 0;
    for (std::size_t p = 0; p < procs; ++p) {
      const std::size_t count = base + (p < extra ? 1 : 0);
      for (std::size_t k = 0; k < count; ++k) {
        ps[p].owned.push_back(b);
        owner[b] = static_cast<std::uint32_t>(p);
        ++b;
      }
    }
  }
  for (auto& p : ps) {
    p.view = x0;
    p.view_tag.assign(m, 0);
    p.phase_labels.assign(m, 0);
    p.rng = master.split();
  }

  // --- global (true) iterate: latest completed update per block ---
  la::Vector x_global = x0;
  model::MacroIterationTracker macro(m);
  model::EpochTracker epoch(procs);

  const bool track_error = options.x_star.has_value();
  const la::Vector* x_star = track_error ? &*options.x_star : nullptr;
  if (track_error) {
    ASYNCIT_CHECK(x_star->size() == n);
    double e0 = 0.0;
    for (la::BlockId b = 0; b < m; ++b)
      e0 = std::max(e0, norm.block_distance(x0, *x_star, b));
    result.initial_error = e0;
  }

  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  op::Workspace ws;        // operator scratch shared by all simulated procs
  la::Vector apply_out;    // inner-step output buffer (reused)
  std::uint64_t seq = 0;
  auto push = [&](Event e) {
    e.seq = seq++;
    queue.push(std::move(e));
  };

  // FIFO enforcement: last scheduled arrival per (src, dst) channel.
  std::vector<double> fifo_last(procs * procs, 0.0);

  Step global_step = 0;
  bool stop = false;
  double now = 0.0;
  std::size_t trace_events = 0;

  // detection state
  DoubleScanDetector detector;
  std::size_t scan_id = 0;
  std::size_t scan_replies = 0;
  std::vector<DoubleScanDetector::Reply> scan_buffer(procs);

  auto start_phase = [&](std::uint32_t p, double t) {
    ProcessorState& s = ps[p];
    s.block = s.owned[s.next_owned];
    s.next_owned = (s.next_owned + 1) % s.owned.size();
    ++s.phases_done;
    s.phase_start = t;
    s.phase_duration = compute[p]->phase_duration(s.phases_done, s.rng);
    ASYNCIT_CHECK(s.phase_duration > 0.0);
    if (!options.publish_partials) s.snapshot = s.view;
    const la::BlockRange r = partition.range(s.block);
    s.inner_value.assign(s.view.begin() + static_cast<std::ptrdiff_t>(r.begin),
                         s.view.begin() + static_cast<std::ptrdiff_t>(r.end));
    s.phase_labels = s.view_tag;  // tags at phase start
    for (std::size_t t_idx = 1; t_idx <= options.inner_steps; ++t_idx) {
      Event e;
      e.time = t + s.phase_duration *
                       (static_cast<double>(t_idx) /
                        static_cast<double>(options.inner_steps));
      e.kind = EventKind::kInnerStep;
      e.proc = p;
      e.inner_index = t_idx;
      push(std::move(e));
    }
  };

  auto send_value = [&](std::uint32_t p, la::BlockId b,
                        const la::Vector& value, Step tag, bool partial,
                        double t) {
    ProcessorState& s = ps[p];
    for (std::uint32_t q = 0; q < procs; ++q) {
      if (q == p) continue;
      ++result.messages_sent;
      if (partial) ++result.partials_sent;
      const bool dropped = s.rng.bernoulli(options.drop_prob);
      double arrive = t + latency.latency(s.rng);
      if (options.fifo) {
        double& last = fifo_last[p * procs + q];
        arrive = std::max(arrive, last + 1e-9);
        last = arrive;
      }
      if (options.record_trace && trace_events < options.max_trace_events) {
        result.log.add_message(
            {p, q, b, partial, dropped, t, dropped ? -1.0 : arrive, tag});
        ++trace_events;
      }
      if (dropped) {
        ++result.messages_dropped;
        continue;
      }
      if (!partial) ++s.data_sent;
      Event e;
      e.time = arrive;
      e.kind = EventKind::kMsgArrive;
      e.proc = q;
      e.block = b;
      e.value = value;
      e.tag = tag;
      e.partial = partial;
      e.src = p;
      e.t_send = t;
      push(std::move(e));
    }
  };

  auto schedule_scan = [&](double t) {
    Event e;
    e.time = t;
    e.kind = EventKind::kScanStart;
    push(std::move(e));
  };

  for (std::uint32_t p = 0; p < procs; ++p) start_phase(p, 0.0);
  if (options.enable_detection) schedule_scan(options.scan_period);

  while (!queue.empty() && !stop) {
    Event ev = queue.top();
    queue.pop();
    now = ev.time;
    if (now > options.max_time) break;

    switch (ev.kind) {
      case EventKind::kInnerStep: {
        ProcessorState& s = ps[ev.proc];
        const la::BlockRange r = partition.range(s.block);
        // Read vector: live view (flexible) or phase-start snapshot.
        la::Vector& read = options.publish_partials ? s.view : s.snapshot;
        // Own block iterates on the inner value.
        std::copy(s.inner_value.begin(), s.inner_value.end(),
                  read.begin() + static_cast<std::ptrdiff_t>(r.begin));
        if (options.publish_partials) {
          // labels: min tag actually observed across inner reads
          for (la::BlockId h = 0; h < m; ++h)
            s.phase_labels[h] = std::min(s.phase_labels[h], s.view_tag[h]);
        }
        apply_out.resize(r.size());
        op.apply_block(s.block, read, apply_out, ws);
        s.inner_value.swap(apply_out);

        if (ev.inner_index < options.inner_steps) {
          if (options.publish_partials) {
            // hatched arrow: ship the partial immediately
            send_value(ev.proc, s.block, s.inner_value,
                       s.view_tag[s.block], /*partial=*/true, now);
          }
          break;
        }

        // --- phase completes: assign the global iteration number ---
        const Step j = ++global_step;
        // displacement for the local convergence flag
        double disp = 0.0;
        for (std::size_t c = 0; c < r.size(); ++c) {
          const double d = s.inner_value[c] - x_global[r.begin + c];
          disp += d * d;
        }
        s.last_displacement = std::sqrt(disp);

        std::copy(s.inner_value.begin(), s.inner_value.end(),
                  x_global.begin() + static_cast<std::ptrdiff_t>(r.begin));
        std::copy(s.inner_value.begin(), s.inner_value.end(),
                  s.view.begin() + static_cast<std::ptrdiff_t>(r.begin));
        // labels: own block's label is its previous update (tag before now)
        Step l_min = s.phase_labels[0];
        for (la::BlockId h = 1; h < m; ++h)
          l_min = std::min(l_min, s.phase_labels[h]);
        s.view_tag[s.block] = j;

        result.trace.record(
            {s.block}, l_min,
            options.recording == model::LabelRecording::kFull
                ? s.phase_labels
                : std::vector<Step>{},
            ev.proc);
        const bool macro_done =
            macro.observe(j, std::vector<la::BlockId>{s.block}, l_min);
        epoch.observe(j, ev.proc);
        ++result.updates_per_processor[ev.proc];

        if (options.record_trace &&
            trace_events < options.max_trace_events) {
          result.log.add_phase({ev.proc, s.block, s.phase_start, now, j});
          ++trace_events;
        }

        double err = -1.0;
        if (track_error &&
            (j % options.record_error_every == 0 || macro_done)) {
          err = norm.distance(x_global, *x_star);
          result.error_history.emplace_back(j, err);
          result.error_vs_time.emplace_back(now, err);
        }

        // Send-on-change: with detection enabled an unchanged value is not
        // re-broadcast (otherwise the system never quiesces).
        const bool changed = s.last_displacement >= options.local_eps;
        if (!options.enable_detection || changed)
          send_value(ev.proc, s.block, s.inner_value, j, /*partial=*/false,
                     now);

        result.steps = j;
        if (j >= options.max_steps) stop = true;
        if (track_error && options.stop_on_oracle && err >= 0.0 &&
            err < options.tol) {
          result.converged = true;
          stop = true;
        }
        if (!stop) {
          if (options.enable_detection && !changed)
            s.passive = true;  // locally converged: wait for new data
          else
            start_phase(ev.proc, now);
        }
        break;
      }

      case EventKind::kMsgArrive: {
        ProcessorState& s = ps[ev.proc];
        if (!ev.partial) ++s.data_received;
        const la::BlockRange r = partition.range(ev.block);
        const bool accept =
            options.overwrite == OverwritePolicy::kLastArrivalWins
                ? true
                : ev.tag >= s.view_tag[ev.block];
        if (accept) {
          double change = 0.0;
          for (std::size_t k = 0; k < ev.value.size(); ++k) {
            const double d = ev.value[k] - s.view[r.begin + k];
            change += d * d;
          }
          std::copy(ev.value.begin(), ev.value.end(),
                    s.view.begin() + static_cast<std::ptrdiff_t>(r.begin));
          s.view_tag[ev.block] = ev.tag;
          if (s.passive && std::sqrt(change) >= options.local_eps) {
            s.passive = false;  // new data: reactivate
            start_phase(ev.proc, now);
          }
        }
        break;
      }

      case EventKind::kScanStart: {
        ++scan_id;
        scan_replies = 0;
        for (std::uint32_t p = 0; p < procs; ++p) {
          Event e;
          e.time = now + latency.latency(master);
          e.kind = EventKind::kScanProbe;
          e.proc = p;
          e.scan_id = scan_id;
          push(std::move(e));
        }
        break;
      }

      case EventKind::kScanProbe: {
        const ProcessorState& s = ps[ev.proc];
        Event e;
        e.time = now + latency.latency(master);
        e.kind = EventKind::kScanReply;
        e.proc = 0;  // coordinator
        e.scan_id = ev.scan_id;
        e.src = ev.proc;
        e.reply = {s.last_displacement < options.local_eps, s.data_sent,
                   s.data_received};
        push(std::move(e));
        break;
      }

      case EventKind::kScanReply: {
        if (ev.scan_id != scan_id) break;  // stale scan
        scan_buffer[ev.src] = ev.reply;
        if (++scan_replies == procs) {
          ++result.scans;
          if (detector.scan(scan_buffer)) {
            result.detection_fired = true;
            result.detection_time = now;
            result.detection_step = global_step;
            if (track_error)
              result.error_at_detection = norm.distance(x_global, *x_star);
            result.converged = true;
            stop = true;
          } else {
            schedule_scan(now + options.scan_period);
          }
        }
        break;
      }
    }
  }

  result.virtual_time = now;
  result.x = std::move(x_global);
  result.macro_boundaries = macro.boundaries();
  result.epoch_boundaries = epoch.boundaries();
  return result;
}

SyncSimResult run_sync_sim(const op::BlockOperator& op, const la::Vector& x0,
                           std::vector<std::unique_ptr<ComputeTimeModel>> compute,
                           LatencyModel& latency,
                           const SimOptions& options) {
  const la::Partition& partition = op.partition();
  const std::size_t m = partition.num_blocks();
  const std::size_t procs = compute.size();
  ASYNCIT_CHECK(procs >= 1 && procs <= m);

  la::WeightedMaxNorm norm =
      options.norm_weights.empty()
          ? la::WeightedMaxNorm(partition)
          : la::WeightedMaxNorm(partition, options.norm_weights);

  Rng rng(options.seed);
  SyncSimResult result;
  const bool track_error = options.x_star.has_value();
  const la::Vector* x_star = track_error ? &*options.x_star : nullptr;
  if (track_error) result.initial_error = norm.distance(x0, *x_star);

  op::Workspace ws;
  la::Vector x = x0, y(x.size());
  double t = 0.0;
  const std::size_t max_rounds =
      static_cast<std::size_t>(options.max_steps / m) + 1;

  for (std::size_t round = 1; round <= max_rounds; ++round) {
    // Compute: the barrier waits for the slowest processor. Each
    // processor updates all its blocks once per round; its round work is
    // the sum of owned-phase durations.
    double slowest = 0.0;
    const std::size_t base = m / procs, extra = m % procs;
    for (std::size_t p = 0; p < procs; ++p) {
      const std::size_t owned = base + (p < extra ? 1 : 0);
      double work = 0.0;
      for (std::size_t k = 0; k < owned; ++k)
        work += compute[p]->phase_duration((round - 1) * owned + k + 1, rng);
      slowest = std::max(slowest, work);
    }
    // Communication: all-to-all; a dropped message is retransmitted after
    // a timeout of twice its sampled latency (synchronous systems MUST
    // retransmit — the barrier cannot complete otherwise).
    double comm = 0.0;
    for (std::size_t p = 0; p < procs; ++p) {
      for (std::size_t q = 0; q < procs; ++q) {
        if (p == q) continue;
        double delivery = latency.latency(rng);
        while (rng.bernoulli(options.drop_prob)) {
          delivery += 2.0 * latency.latency(rng);  // timeout + resend
          ++result.retransmissions;
        }
        comm = std::max(comm, delivery);
      }
    }
    t += slowest + comm;

    op.apply(x, y, ws);
    x.swap(y);
    result.rounds = round;

    if (track_error) {
      const double err = norm.distance(x, *x_star);
      result.error_vs_time.emplace_back(t, err);
      if (err < options.tol) {
        result.converged = true;
        break;
      }
    }
    if (t > options.max_time) break;
  }
  result.virtual_time = t;
  result.x = std::move(x);
  return result;
}

}  // namespace asyncit::sim
