// Quickstart: solve a sparse regression problem with totally asynchronous
// proximal-gradient iterations (the paper's Section V algorithm) in a few
// lines.
//
//   build/examples/quickstart
#include <cstdio>

#include "asyncit/asyncit.hpp"

int main() {
  using namespace asyncit;

  // 1. A synthetic lasso instance: min 1/2||Ax-y||^2 + (mu/2)||x||^2
  //    + lambda ||x||_1  (f is mu-strongly convex, L-smooth).
  Rng rng(42);
  problems::LassoConfig cfg;
  cfg.samples = 200;
  cfg.features = 128;
  cfg.support = 12;
  cfg.ridge = 0.2;
  cfg.lambda1 = 0.05;
  auto lasso = problems::make_synthetic_lasso(cfg, rng);

  // 2. Solve asynchronously: 2 workers, flexible communication on. The
  //    step size defaults to the paper's gamma = 2/(mu+L).
  solvers::ProxGradOptions opt;
  opt.workers = 2;
  opt.blocks = 16;          // 16 blocks of 8 coordinates
  opt.inner_steps = 2;      // two gradient-type iterations per phase
  opt.flexible = true;      // publish partial updates (Definition 3)
  opt.tol = 1e-8;
  auto result = solvers::solve_prox_gradient_async(lasso.problem, opt);

  // 3. Report.
  std::printf("converged:   %s\n", result.converged ? "yes" : "no");
  std::printf("objective:   %.8f\n", result.objective);
  std::printf("wall time:   %.3f ms\n", result.wall_seconds * 1e3);
  std::printf("updates:     %llu block updates\n",
              static_cast<unsigned long long>(result.updates));
  std::printf("error vs reference minimizer: %.2e\n",
              result.error_to_reference);

  std::size_t nonzeros = 0;
  for (double v : result.x)
    if (std::abs(v) > 1e-8) ++nonzeros;
  std::printf("solution sparsity: %zu/%zu nonzeros (true support %zu)\n",
              nonzeros, result.x.size(), cfg.support);
  return result.converged ? 0 : 1;
}
