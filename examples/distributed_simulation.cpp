// Distributed-system example: everything the paper's model allows, at
// once. Eight heterogeneous virtual machines (one with Baudet's
// linearly-growing phase times, one slow-then-fast as in Mishchenko et
// al.'s motivating case) solve a lasso instance over non-FIFO channels
// with jittery latency and 2% message loss, using flexible communication
// — while the macro-iteration, epoch and admissibility instruments watch,
// and the [22]-style protocol detects termination.
//
//   build/examples/distributed_simulation
#include <cstdio>

#include "asyncit/asyncit.hpp"

int main() {
  using namespace asyncit;

  std::printf("8 heterogeneous machines, non-FIFO lossy channels, "
              "flexible communication, lasso n=64.\n\n");

  Rng rng(23);
  problems::LassoConfig cfg;
  cfg.samples = 150;
  cfg.features = 64;
  cfg.support = 10;
  cfg.ridge = 0.3;
  cfg.lambda1 = 0.03;
  auto lasso = problems::make_synthetic_lasso(cfg, rng);

  op::BackwardForwardOperator bf(*lasso.problem.f, *lasso.problem.g,
                                 lasso.problem.suggested_gamma(),
                                 la::Partition::balanced(64, 16));
  const la::Vector x_bar = op::picard_solve(bf, la::zeros(64), 200000,
                                            1e-13);

  std::vector<std::unique_ptr<sim::ComputeTimeModel>> fleet;
  fleet.push_back(sim::make_linear_compute(0.05));          // Baudet's P2
  fleet.push_back(sim::make_slow_then_fast_compute(4.0, 0.5, 40));  // MIM
  fleet.push_back(sim::make_pareto_compute(0.5, 2.0));      // heavy tail
  for (int p = 3; p < 8; ++p)
    fleet.push_back(sim::make_uniform_compute(0.5, 1.5));

  auto latency = sim::make_uniform_latency(0.1, 2.0);
  sim::SimOptions opt;
  opt.tol = 1e-8;
  opt.x_star = x_bar;
  opt.inner_steps = 2;
  opt.publish_partials = true;   // flexible communication
  opt.fifo = false;              // out-of-order delivery possible
  opt.drop_prob = 0.02;          // transient faults
  opt.max_steps = 3000000;
  opt.recording = model::LabelRecording::kFull;
  opt.record_trace = true;
  opt.max_trace_events = 400;
  auto r = sim::run_async_sim(bf, la::zeros(64), std::move(fleet),
                              *latency, opt);

  std::printf("converged: %s after %llu updates, virtual time %.1f\n",
              r.converged ? "yes" : "no",
              static_cast<unsigned long long>(r.steps), r.virtual_time);
  std::printf("messages: %zu sent (%zu partials), %zu dropped and "
              "absorbed\n",
              r.messages_sent, r.partials_sent, r.messages_dropped);
  std::printf("macro-iterations (Def. 2): %zu | epochs (ref [30]): %zu\n",
              r.macro_boundaries.size() - 1, r.epoch_boundaries.size() - 1);
  std::printf("out-of-order label inversions (per machine): %zu\n",
              r.trace.per_machine_label_inversions());
  std::printf("admissibility audit: %s\n\n",
              model::audit_summary(r.trace).c_str());

  std::printf("update share per machine (heterogeneity visible):\n");
  for (std::size_t p = 0; p < r.updates_per_processor.size(); ++p)
    std::printf("  M%zu: %6zu updates (%.1f%%)\n", p,
                r.updates_per_processor[p],
                100.0 * double(r.updates_per_processor[p]) /
                    double(r.steps));

  const la::Vector sol = bf.solution_from_fixed_point(r.x);
  std::printf("\nsolution error vs sequential reference: %.2e\n",
              la::dist_inf(sol,
                           lasso.problem.reference_minimizer(200000,
                                                             1e-13)));

  std::printf("\nfirst instants of the run (Gantt, Fig. 1/2 style):\n");
  trace::GanttOptions gopt;
  gopt.width = 96;
  gopt.max_messages = 12;
  std::printf("%s", trace::render_gantt(r.log, gopt).c_str());
  return r.converged ? 0 : 1;
}
