// Machine learning example (paper Section V): train an L1-regularized
// logistic-regression classifier with synchronous, asynchronous, and
// flexible-communication asynchronous iterations, and compare.
//
//   build/examples/machine_learning
#include <cstdio>

#include "asyncit/asyncit.hpp"

int main() {
  using namespace asyncit;

  std::printf("Training L2+L1 logistic regression, three execution "
              "modes.\n\n");

  Rng rng(7);
  problems::LogisticConfig cfg;
  cfg.samples = 600;
  cfg.features = 96;
  cfg.density = 0.3;
  cfg.label_noise = 0.05;
  cfg.ridge = 0.2;
  cfg.lambda1 = 0.01;
  auto data = problems::make_synthetic_logistic(cfg, rng);

  // High-precision reference for fair oracle stopping in all modes.
  const auto reference =
      solvers::solve_prox_gradient_sequential(data.problem, 1e-12);
  std::printf("reference: objective %.6f, train accuracy %.1f%%\n\n",
              reference.objective,
              100.0 * data.logistic->accuracy(reference.x));

  TextTable table({"mode", "wall ms", "updates", "objective",
                   "train acc %", "err vs ref"});
  auto report = [&](const char* name, const solvers::SolveSummary& s) {
    table.add_row({name, TextTable::num(s.wall_seconds * 1e3, 2),
                   std::to_string(s.updates),
                   TextTable::num(s.objective, 6),
                   TextTable::num(100.0 * data.logistic->accuracy(s.x), 1),
                   TextTable::sci(s.error_to_reference, 1)});
  };

  solvers::ProxGradOptions opt;
  opt.workers = 2;
  opt.blocks = 16;
  opt.tol = 1e-7;
  opt.max_seconds = 30.0;
  opt.reference = reference.x;

  report("synchronous (barrier)",
         solvers::solve_prox_gradient_sync(data.problem, opt));
  report("asynchronous",
         solvers::solve_prox_gradient_async(data.problem, opt));
  opt.inner_steps = 3;
  opt.flexible = true;
  report("async + flexible comm",
         solvers::solve_prox_gradient_async(data.problem, opt));

  // Heterogeneous workers: the async advantage the paper argues for.
  opt.inner_steps = 1;
  opt.flexible = false;
  opt.worker_slowdown = {1.0, 6.0};
  report("sync, worker-2 6x slower",
         solvers::solve_prox_gradient_sync(data.problem, opt));
  report("async, worker-2 6x slower",
         solvers::solve_prox_gradient_async(data.problem, opt));

  std::printf("%s\n", table.render().c_str());
  std::printf("note how the barrier mode pays the 6x straggler in full "
              "while the asynchronous mode keeps the fast worker "
              "productive.\n");
  return 0;
}
