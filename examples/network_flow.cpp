// Network flow example (paper refs [6][8]): solve a convex separable
// transportation problem by distributed asynchronous relaxation on node
// prices, and read the economic interpretation off the dual solution.
//
//   build/examples/network_flow
#include <cstdio>

#include "asyncit/asyncit.hpp"

int main() {
  using namespace asyncit;

  std::printf("Convex transportation network, asynchronous dual "
              "relaxation (Bertsekas–El Baz).\n\n");

  Rng rng(11);
  auto net = problems::make_grid_network(4, 5, rng);
  std::printf("grid 4x5: %zu nodes, %zu arcs\n", net.num_nodes(),
              net.num_arcs());

  // sequential reference first
  const auto seq = solvers::solve_network_flow_sequential(net, 1e-10);
  std::printf("sequential reference: primal cost %.4f, dual %.4f, "
              "max excess %.1e\n",
              seq.primal_cost, seq.dual_value, seq.max_excess);

  // asynchronous threaded solve
  solvers::NetworkFlowOptions opt;
  opt.workers = 2;
  opt.tol = 1e-6;
  opt.max_seconds = 30.0;
  const auto async = solvers::solve_network_flow_async(net, opt);
  std::printf("async (2 workers):    primal cost %.4f, dual %.4f, "
              "max excess %.1e, %.2f ms, converged: %s\n\n",
              async.primal_cost, async.dual_value, async.max_excess,
              async.wall_seconds * 1e3, async.converged ? "yes" : "no");

  // price table (the dual variables: one per node, node 0 is reference)
  TextTable prices({"node", "supply", "price p_i", "excess g_i"});
  for (std::size_t i = 0; i < std::min<std::size_t>(net.num_nodes(), 10);
       ++i) {
    prices.add_row({std::to_string(i),
                    TextTable::num(net.supplies()[i], 3),
                    TextTable::num(async.prices[i], 4),
                    TextTable::sci(net.excess(i, async.prices), 1)});
  }
  std::printf("%s(first 10 nodes)\n\n", prices.render().c_str());

  // busiest arcs
  TextTable arcs({"arc", "flow", "capacity", "marginal cost a*x+c",
                  "price drop p_t - p_h"});
  std::size_t shown = 0;
  for (std::size_t e = 0; e < net.num_arcs() && shown < 8; ++e) {
    const auto& a = net.arcs()[e];
    const double x = async.flows[e];
    if (x < 0.5) continue;
    ++shown;
    arcs.add_row({std::to_string(a.tail) + "->" + std::to_string(a.head),
                  TextTable::num(x, 3), TextTable::num(a.cap, 1),
                  TextTable::num(a.quad * x + a.lin, 3),
                  TextTable::num(async.prices[a.tail] -
                                     async.prices[a.head],
                                 3)});
  }
  std::printf("%s(arcs carrying flow: marginal cost = price drop on "
              "unsaturated arcs — complementary slackness)\n",
              arcs.render().c_str());
  return async.converged ? 0 : 1;
}
