// Obstacle problem example (paper ref [26]): an elastic membrane pinned
// at the boundary, pushed down by a load, resting on a dome obstacle.
// Solved by asynchronous projected relaxation; prints an ASCII rendering
// of the contact set (where the membrane touches the obstacle).
//
//   build/examples/obstacle_membrane
#include <cstdio>

#include "asyncit/asyncit.hpp"

int main() {
  using namespace asyncit;

  const std::size_t n = 32;
  std::printf("Obstacle problem on a %zux%zu interior grid: load f=-30, "
              "dome obstacle.\n\n",
              n, n);
  problems::ObstacleProblem prob(n, -30.0, -0.05, 1.0);

  solvers::LinearSolveOptions opt;
  opt.workers = 2;
  opt.blocks = 64;
  opt.tol = 1e-9;
  opt.max_seconds = 60.0;
  const auto s = solvers::solve_obstacle_async(prob, opt);

  std::printf("converged: %s in %.2f ms (%llu block updates)\n",
              s.converged ? "yes" : "no", s.wall_seconds * 1e3,
              static_cast<unsigned long long>(s.updates));
  std::printf("feasibility violation max(psi-u, 0): %.2e\n",
              s.feasibility_violation);
  std::printf("complementarity residual:            %.2e\n",
              s.complementarity);
  std::printf("contact points: %zu of %zu\n\n", s.contact_points,
              prob.dim());

  // ASCII map: '#' contact (u == psi), '.' free membrane
  std::printf("contact set ('#' = membrane touches obstacle):\n");
  for (std::size_t iy = 0; iy < n; ++iy) {
    std::string row;
    for (std::size_t ix = 0; ix < n; ++ix) {
      const std::size_t i = iy * n + ix;
      row += (s.u[i] - prob.obstacle()[i] < 1e-6) ? '#' : '.';
    }
    std::printf("  %s\n", row.c_str());
  }

  // center cross-section
  std::printf("\ncross-section at y = 1/2 (u vs psi):\n");
  const std::size_t mid = n / 2;
  for (std::size_t ix = 0; ix < n; ix += n / 16) {
    const std::size_t i = mid * n + ix;
    std::printf("  x=%5.2f  u=%8.5f  psi=%8.5f  %s\n",
                double(ix + 1) / double(n + 1), s.u[i], prob.obstacle()[i],
                s.u[i] - prob.obstacle()[i] < 1e-6 ? "CONTACT" : "");
  }
  return s.converged ? 0 : 1;
}
