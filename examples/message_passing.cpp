// Message passing: run the same problem through all three coordination
// modes of the net/ runtime — totally asynchronous, stale-synchronous
// (SSP), and barrier-synchronized (BSP) — on real threads exchanging
// tagged block values over latency/reordering channels, then repeat the
// asynchronous run over REAL TCP loopback sockets (the same solve, a
// genuinely serialized wire in between), and finally render the
// asynchronous run's measured schedule as a Gantt chart (the wall-clock
// analogue of the paper's Figure 1).
//
//   build/examples/message_passing
//
// For the fully distributed version of this example — one PROCESS per
// peer, rendezvousing over TCP from a small config file — run:
//
//   scripts/launch_cluster.py --workers 4 --dim 128 --blocks 8
//
// which spawns one build/tools/asyncit_node per rank on free loopback
// ports (add --chaos --min-latency 5e-4 --max-latency 3e-3 to inject
// this example's delay model over the real sockets).
#include <cstdio>

#include "asyncit/asyncit.hpp"

int main() {
  using namespace asyncit;

  // 1. A strictly diagonally dominant system: the Jacobi operator is a
  //    max-norm contraction, so every coordination mode must converge.
  Rng rng(42);
  auto sys = problems::make_diagonally_dominant_system(128, 4, 2.0, rng);
  la::Partition partition = la::Partition::balanced(128, 8);
  op::JacobiOperator jacobi(sys.a, sys.b, partition);
  const la::Vector x_star = op::picard_solve(jacobi, la::zeros(128), 50000,
                                             1e-14);

  // 2. Four peers, one of them 4x slower; 0.5..3 ms link latency with
  //    non-FIFO delivery, so later messages genuinely overtake earlier
  //    ones between the threads.
  auto options_for = [&](net::Mode mode) {
    net::MpOptions opt;
    opt.workers = 4;
    opt.worker_slowdown = {4.0, 1.0, 1.0, 1.0};
    opt.solve.mode = mode;
    opt.solve.staleness = 2;
    opt.chaos.delivery.min_latency = 5e-4;
    opt.chaos.delivery.max_latency = 3e-3;
    opt.solve.tol = 1e-8;
    opt.solve.x_star = x_star;
    opt.solve.max_seconds = 20.0;
    opt.solve.max_updates = 10000000;
    return opt;
  };

  std::printf("Jacobi n=128, 4 peers (one 4x slower), non-FIFO links "
              "0.5..3 ms\n\n");
  std::printf("%-6s  %-5s  %-9s  %-8s  %-10s  %-12s\n", "mode", "conv",
              "wall(ms)", "updates", "inversions", "delay p50/p99 (ms)");
  for (const net::Mode mode :
       {net::Mode::kBsp, net::Mode::kSsp, net::Mode::kAsync}) {
    net::MpOptions opt = options_for(mode);
    const char* name = mode == net::Mode::kBsp
                           ? "bsp"
                           : (mode == net::Mode::kSsp ? "ssp" : "async");
    auto result = net::run_message_passing(jacobi, la::zeros(128), opt);
    std::printf("%-6s  %-5s  %-9.2f  %-8llu  %-10llu  %.2f / %.2f\n", name,
                result.converged ? "yes" : "NO",
                result.wall_seconds * 1e3,
                static_cast<unsigned long long>(result.total_updates),
                static_cast<unsigned long long>(result.inversions_observed),
                result.delays.quantile(0.5) * 1e3,
                result.delays.quantile(0.99) * 1e3);
  }

  // 3. The same asynchronous solve with the iterate blocks actually
  //    serialized onto TCP loopback sockets: four in-process ranks, a
  //    full mesh of real connections, the chaos decorator re-injecting
  //    the identical 0.5..3 ms delay model at the frame level.
  {
    net::MpOptions opt = options_for(net::Mode::kAsync);
    transport::TcpOptions topts;
    topts.nodes.assign(4, {"127.0.0.1", 0});
    transport::TcpTransport tcp(std::move(topts));
    transport::ChaosTransport chaos(tcp, opt.chaos.delivery, opt.seed);
    auto over_tcp = net::run_message_passing(jacobi, la::zeros(128), opt,
                                             chaos);
    std::printf("\nsame async solve over TCP loopback + chaos delays: "
                "%s, wall %.2f ms, %llu frames delivered, "
                "delay p50 %.2f ms\n",
                over_tcp.converged ? "converged" : "DID NOT CONVERGE",
                over_tcp.wall_seconds * 1e3,
                static_cast<unsigned long long>(over_tcp.messages_delivered),
                over_tcp.delays.quantile(0.5) * 1e3);
  }

  // 4. Record a short asynchronous run and draw its measured schedule.
  //    Updating phases are inflated (large repetition factors, same 4x
  //    ratio) so each phase spans a visible fraction of the chart, and
  //    the wall-clock times are rescaled to milliseconds for rendering.
  net::MpOptions opt = options_for(net::Mode::kAsync);
  opt.obs.record_trace = true;
  opt.worker_slowdown = {8000.0, 2000.0, 2000.0, 2000.0};
  opt.solve.max_seconds = 0.05;  // a 50 ms observation window
  opt.solve.x_star.reset();
  auto traced = net::run_message_passing(jacobi, la::zeros(128), opt);

  trace::EventLog ms_log;  // same schedule, times in milliseconds
  for (trace::PhaseEvent e : traced.log.phases()) {
    e.t_start *= 1e3;
    e.t_end *= 1e3;
    ms_log.add_phase(e);
  }
  for (trace::MessageEvent e : traced.log.messages()) {
    e.t_send *= 1e3;
    e.t_arrive *= 1e3;
    ms_log.add_message(e);
  }

  trace::GanttOptions gopt;
  gopt.width = 90;
  gopt.max_messages = 12;
  std::printf("\nmeasured schedule of the asynchronous run, time in ms "
              "(rectangles: updating phases; arrows: messages):\n\n%s\n",
              trace::render_gantt(ms_log, gopt).c_str());
  return 0;
}
