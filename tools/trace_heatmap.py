#!/usr/bin/env python3
"""Render a rank-by-rank link-delay heat-map from a cluster aggregate.

Input is the asyncit-cluster JSON scripts/launch_cluster.py aggregates
(--json-out): every reporting rank's `links` array carries one delay
histogram per (src, dst) peer link (schema asyncit-node/3, measured at
the receiver from the sender's send stamp). This tool folds those into
one world-size matrix per chosen quantile and renders it twice:

  * a fixed-width text grid on stdout (or --out-text) — the quick
    "which link is slow" look in a terminal or CI log;
  * a self-contained SVG (--out-svg) with a log-scaled color ramp and a
    legend — the artifact launch_cluster.py --heatmap uploads.

Rows are the SENDING rank, columns the RECEIVING rank. Cells with no
traffic (a rank pair that never exchanged frames, the diagonal, a
killed rank's row) render blank / gray, never as zero — absence of
measurement is not a fast link. When the same (src, dst) pair is
reported by more than one rank the sample-richer histogram wins.

Usage:
    tools/trace_heatmap.py --cluster cluster.json [--quantile p95]
                           [--out-svg heatmap.svg] [--out-text heatmap.txt]

Exit status: 0 on success (even if the matrix is empty — an all-blank
map of a traffic-less run is a valid rendering), 1 on malformed input.
"""

import argparse
import json
import sys

QUANTILES = ("p50", "p95", "p99", "max")


def collect_links(doc):
    """-> (world, {(src, dst): {count, p50, p95, p99, max}})."""
    per_rank = doc.get("per_rank")
    if not isinstance(per_rank, dict):
        raise ValueError("no per_rank section (not an asyncit-cluster "
                         "aggregate with per-rank results?)")
    links = {}
    world = 0
    for rank_str, r in per_rank.items():
        world = max(world, int(rank_str) + 1)
        for link in r.get("links") or []:
            src, dst = int(link["src"]), int(link["dst"])
            q = link.get("quantiles") or {}
            entry = {"count": int(q.get("count", 0))}
            for name in QUANTILES:
                entry[name] = float(q.get(name, 0.0))
            world = max(world, src + 1, dst + 1)
            prev = links.get((src, dst))
            if prev is None or entry["count"] > prev["count"]:
                links[(src, dst)] = entry
    return world, links


def render_text(world, links, quantile, out):
    cell = 9  # "123.4ms" fits; blank cell = measurement absent
    out.write(f"link delay {quantile} [ms], rows = src rank, "
              f"cols = dst rank\n")
    out.write(" " * 5 + "".join(f"{d:>{cell}}" for d in range(world)) + "\n")
    for src in range(world):
        row = [f"{src:>4} "]
        for dst in range(world):
            e = links.get((src, dst))
            if e is None or e["count"] == 0:
                row.append(" " * (cell - 1) + ".")
            else:
                row.append(f"{e[quantile] * 1e3:>{cell - 2}.2f}ms")
        out.write("".join(row) + "\n")


def color(frac):
    """0..1 -> cold-to-hot ramp (dark blue -> yellow -> red)."""
    frac = min(1.0, max(0.0, frac))
    if frac < 0.5:
        t = frac / 0.5
        r, g, b = int(40 + 215 * t), int(60 + 180 * t), int(160 - 100 * t)
    else:
        t = (frac - 0.5) / 0.5
        r, g, b = 255, int(240 - 200 * t), int(60 - 60 * t)
    return f"#{r:02x}{g:02x}{b:02x}"


def render_svg(world, links, quantile, path):
    import math

    values = [e[quantile] for e in links.values() if e["count"] > 0]
    lo = min(values) if values else 0.0
    hi = max(values) if values else 0.0
    # Log scale when the spread warrants it (delay tails are heavy);
    # guard lo > 0 — a 0-second quantile stays on the linear floor.
    use_log = lo > 0.0 and hi / lo > 10.0

    def frac(v):
        if hi <= lo:
            return 0.0
        if use_log:
            return math.log(v / lo) / math.log(hi / lo) if v > 0 else 0.0
        return (v - lo) / (hi - lo)

    cell = max(12, min(40, 640 // max(1, world)))
    margin = 48
    legend_h = 56
    w = margin + world * cell + 16
    h = margin + world * cell + legend_h
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{w}" '
        f'height="{h}" font-family="monospace" font-size="10">',
        f'<rect width="{w}" height="{h}" fill="white"/>',
        f'<text x="{margin}" y="14">link delay {quantile} '
        f'(rows src, cols dst; gray = no traffic)</text>',
    ]
    label_every = max(1, world // 16)
    for i in range(0, world, label_every):
        parts.append(f'<text x="{margin + i * cell + 2}" '
                     f'y="{margin - 4}">{i}</text>')
        parts.append(f'<text x="{margin - 4}" '
                     f'y="{margin + i * cell + cell // 2 + 3}" '
                     f'text-anchor="end">{i}</text>')
    for (src, dst), e in sorted(links.items()):
        if e["count"] == 0:
            continue
        x = margin + dst * cell
        y = margin + src * cell
        v = e[quantile]
        parts.append(
            f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" '
            f'fill="{color(frac(v))}">'
            f'<title>{src}-&gt;{dst}: {quantile}={v * 1e3:.3f}ms '
            f'(n={e["count"]})</title></rect>')
    # Empty cells: one background rect under the grid would hide the
    # painted ones' borders; draw the lattice on top instead.
    for i in range(world + 1):
        parts.append(f'<line x1="{margin}" y1="{margin + i * cell}" '
                     f'x2="{margin + world * cell}" '
                     f'y2="{margin + i * cell}" stroke="#ddd"/>')
        parts.append(f'<line x1="{margin + i * cell}" y1="{margin}" '
                     f'x2="{margin + i * cell}" '
                     f'y2="{margin + world * cell}" stroke="#ddd"/>')
    ly = margin + world * cell + 20
    for i in range(32):
        parts.append(f'<rect x="{margin + i * 6}" y="{ly}" width="6" '
                     f'height="12" fill="{color(i / 31.0)}"/>')
    scale = "log" if use_log else "linear"
    parts.append(f'<text x="{margin}" y="{ly + 26}">'
                 f'{lo * 1e3:.3f}ms .. {hi * 1e3:.3f}ms ({scale})</text>')
    parts.append("</svg>")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(parts) + "\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cluster", required=True,
                    help="asyncit-cluster aggregate JSON "
                         "(launch_cluster.py --json-out)")
    ap.add_argument("--quantile", choices=QUANTILES, default="p95")
    ap.add_argument("--out-svg", default=None, help="write SVG here")
    ap.add_argument("--out-text", default=None,
                    help="write the text grid here instead of stdout")
    args = ap.parse_args()

    try:
        with open(args.cluster, "r", encoding="utf-8") as f:
            doc = json.load(f)
        world, links = collect_links(doc)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"trace_heatmap: {e}", file=sys.stderr)
        return 1

    if args.out_text:
        with open(args.out_text, "w", encoding="utf-8") as f:
            render_text(world, links, args.quantile, f)
    else:
        render_text(world, links, args.quantile, sys.stdout)
    if args.out_svg:
        render_svg(world, links, args.quantile, args.out_svg)
        measured = sum(1 for e in links.values() if e["count"] > 0)
        print(f"trace_heatmap: {measured} measured links over "
              f"{world}x{world} ranks -> {args.out_svg}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
