// asyncit_node — one rank of a multi-process message-passing run.
//
// Every process builds the SAME seeded problem (the generators are pure
// functions of the config's seed), connects to the other ranks over TCP
// using the address table in the config file, and runs net::run_node for
// its own rank. scripts/launch_cluster.py writes the config, picks free
// ports, and spawns one asyncit_node per rank:
//
//   scripts/launch_cluster.py --workers 4 --dim 128 --blocks 8
//
// Manual use:
//   asyncit_node --config cluster.cfg --rank 2
//
// Config format (order-free "key value" lines; '#' starts a comment):
//
//   world 4                  # number of ranks (required)
//   node 0 127.0.0.1 5000    # one line per rank: rank host port (required)
//   seed 42                  # problem + chaos seed
//   dim 128                  # Jacobi system size
//   blocks 8                 # partition blocks
//   nnz 4                    # off-diagonal entries per row
//   dominance 2.0            # diagonal dominance factor
//   mode async               # async | ssp | bsp
//   staleness 2              # SSP clock-gap cap
//   inner_steps 1            # applications per phase
//   publish_partials 0       # flexible communication (Definition 3)
//   overwrite last_arrival   # last_arrival | newest_tag
//   tol 1e-8                 # oracle stopping tolerance
//   max_seconds 30           # per-process wall budget
//   max_updates 100000000    # per-rank update budget
//   chaos 0                  # 1: wrap TCP in the chaos decorator
//   min_latency 0            # chaos injected latency bounds (seconds)
//   max_latency 0
//   fifo 0                   # chaos in-order delivery floor
//   drop_prob 0              # chaos loss probability (async only)
//   drop_control 0           # 1: chaos loss also drops CONTROL frames
//   membership 0             # 1: elastic ranks (SWIM detector, async only)
//   ping_period 0.05         # membership probe cadence (seconds)
//   ping_timeout 0.15        # direct-ack window (suspect at 2x)
//   suspicion_timeout 1.0    # suspect -> dead grace period
//   ping_req_fanout 2        # indirect probe helpers
//   late 4                   # slot absent at launch (repeatable): it is
//                            # excluded from rendezvous + initial view
//                            # and joins whenever the launcher starts it
//   trace none               # observability: none | metrics | full
//   trace_dir /tmp/run       # where rank_<r>.trace.json (Chrome/Perfetto
//                            # trace events) and rank_<r>.metrics.json
//                            # land; requires trace != none
//   audit 0                  # 1: online admissibility auditor (live
//                            # conditions a-d report in the JSON below)
//
// Exit status 0 when this rank's final oracle error is below tol (or the
// 10x band when the run was ended by another rank's stop frame — gated
// modes stop on the first announcement, in-flight staleness allowed).
//
// Output: one `ASYNCIT_NODE_JSON {...}` line per rank (schema
// asyncit-node/2), the machine-readable contract launch_cluster.py
// aggregates and asserts on. Fields: schema, rank, ok, converged, error,
// tol, wall_seconds, updates, rounds, sent, delivered, dropped,
// inversions, stale_filtered, partials_sent, peers_stopped,
// frames_rejected, bad_frames, a membership object (enabled,
// pings_sent, acks_sent, acks_received, ping_reqs_sent,
// gossip_frames_sent, suspicions, deaths_observed, joins_observed,
// refutations, control_rejected, reassignments, snapshot_blocks_sent,
// live_at_exit[]), and — new in /2 —
//   delay_quantiles {count,p50,p95,p99,max}   endpoint delay summary
//   links [{src,dst,count,p50,p95,p99,max}]   per-link (src,dst) delay
//       breakdown measured at incorporate (this rank is always dst)
//   admissibility {steps,a_holds,b_diverging,b_final_min_label,c_fair,
//       c_min_occurrences,c_worst_gap,d_bound,d_at_step,d_mean} | null
//       (the online auditor's live conditions a-d report; null unless
//       `audit 1`)
//   obs {recorded,dropped}                    trace-ring accounting
// The older ASYNCIT_NODE_RESULT key=value line is kept for humans and
// old scripts. The ASYNCIT_NODE_START marker carries epoch_ns (realtime
// clock at solve start) so tools/trace_merge.py can cross-check its
// per-rank clock alignment.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "asyncit/asyncit.hpp"
#include "asyncit/obs/exporter.hpp"
#include "asyncit/obs/metrics.hpp"

namespace {

using namespace asyncit;

struct NodeConfig {
  std::size_t world = 0;
  std::uint64_t seed = 42;
  std::size_t dim = 128;
  std::size_t blocks = 8;
  std::size_t nnz = 4;
  double dominance = 2.0;
  net::Mode mode = net::Mode::kAsync;
  std::uint64_t staleness = 2;
  std::size_t inner_steps = 1;
  bool publish_partials = false;
  net::OverwritePolicy overwrite = net::OverwritePolicy::kLastArrivalWins;
  double tol = 1e-8;
  double max_seconds = 30.0;
  std::uint64_t max_updates = 100000000;
  bool chaos = false;
  net::DeliveryPolicy chaos_policy;
  membership::Options membership;  ///< elastic ranks (initial_alive filled
                                   ///< from the `late` lines below)
  std::vector<std::uint32_t> late;  ///< slots absent at launch
  std::vector<transport::TcpPeerAddress> nodes;
  obs::TraceLevel trace = obs::TraceLevel::kOff;
  std::string trace_dir;  ///< rank_<r>.trace.json / .metrics.json target
  bool audit = false;     ///< online admissibility auditor
};

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "asyncit_node: %s\n", msg.c_str());
  std::exit(2);
}

NodeConfig parse_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) die("cannot open config " + path);
  NodeConfig cfg;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    auto want = [&](auto& v) {
      if (!(ls >> v))
        die(path + ":" + std::to_string(lineno) + ": bad value for " + key);
    };
    if (key == "world") {
      want(cfg.world);
      cfg.nodes.resize(cfg.world);
    } else if (key == "node") {
      std::size_t rank = 0;
      transport::TcpPeerAddress addr;
      want(rank);
      want(addr.host);
      want(addr.port);
      if (rank >= cfg.nodes.size())
        die(path + ":" + std::to_string(lineno) +
            ": node rank out of range (put `world` first)");
      cfg.nodes[rank] = addr;
    } else if (key == "seed") {
      want(cfg.seed);
    } else if (key == "dim") {
      want(cfg.dim);
    } else if (key == "blocks") {
      want(cfg.blocks);
    } else if (key == "nnz") {
      want(cfg.nnz);
    } else if (key == "dominance") {
      want(cfg.dominance);
    } else if (key == "mode") {
      std::string m;
      want(m);
      if (m == "async")
        cfg.mode = net::Mode::kAsync;
      else if (m == "ssp")
        cfg.mode = net::Mode::kSsp;
      else if (m == "bsp")
        cfg.mode = net::Mode::kBsp;
      else
        die("unknown mode " + m);
    } else if (key == "staleness") {
      want(cfg.staleness);
    } else if (key == "inner_steps") {
      want(cfg.inner_steps);
    } else if (key == "publish_partials") {
      int v = 0;
      want(v);
      cfg.publish_partials = v != 0;
    } else if (key == "overwrite") {
      std::string p;
      want(p);
      if (p == "last_arrival")
        cfg.overwrite = net::OverwritePolicy::kLastArrivalWins;
      else if (p == "newest_tag")
        cfg.overwrite = net::OverwritePolicy::kNewestTagWins;
      else
        die("unknown overwrite policy " + p);
    } else if (key == "tol") {
      want(cfg.tol);
    } else if (key == "max_seconds") {
      want(cfg.max_seconds);
    } else if (key == "max_updates") {
      want(cfg.max_updates);
    } else if (key == "chaos") {
      int v = 0;
      want(v);
      cfg.chaos = v != 0;
    } else if (key == "min_latency") {
      want(cfg.chaos_policy.min_latency);
    } else if (key == "max_latency") {
      want(cfg.chaos_policy.max_latency);
    } else if (key == "fifo") {
      int v = 0;
      want(v);
      cfg.chaos_policy.fifo = v != 0;
    } else if (key == "drop_prob") {
      want(cfg.chaos_policy.drop_prob);
    } else if (key == "drop_control") {
      int v = 0;
      want(v);
      cfg.chaos_policy.drop_control = v != 0;
    } else if (key == "membership") {
      int v = 0;
      want(v);
      cfg.membership.enabled = v != 0;
    } else if (key == "ping_period") {
      want(cfg.membership.ping_period);
    } else if (key == "ping_timeout") {
      want(cfg.membership.ping_timeout);
    } else if (key == "suspicion_timeout") {
      want(cfg.membership.suspicion_timeout);
    } else if (key == "ping_req_fanout") {
      want(cfg.membership.ping_req_fanout);
    } else if (key == "late") {
      std::uint32_t r = 0;
      want(r);
      cfg.late.push_back(r);
    } else if (key == "trace") {
      std::string level;
      want(level);
      if (!obs::parse_trace_level(level.c_str(), &cfg.trace))
        die("unknown trace level " + level);
    } else if (key == "trace_dir") {
      want(cfg.trace_dir);
    } else if (key == "audit") {
      int v = 0;
      want(v);
      cfg.audit = v != 0;
    } else {
      die(path + ":" + std::to_string(lineno) + ": unknown key " + key);
    }
  }
  if (cfg.world < 2) die("config needs world >= 2");
  for (std::size_t r = 0; r < cfg.world; ++r)
    if (cfg.nodes[r].port == 0)
      die("config missing node line for rank " + std::to_string(r));
  for (const std::uint32_t r : cfg.late)
    if (r >= cfg.world) die("late rank out of range");
  if (!cfg.late.empty() && !cfg.membership.enabled)
    die("late ranks require membership 1");
  if (cfg.membership.enabled && cfg.mode != net::Mode::kAsync)
    die("membership requires mode async (elastic ranks would deadlock a "
        "gated round structure)");
  // The initial live view = every slot not marked late.
  if (cfg.membership.enabled) {
    for (std::uint32_t r = 0; r < cfg.world; ++r)
      if (std::find(cfg.late.begin(), cfg.late.end(), r) == cfg.late.end())
        cfg.membership.initial_alive.push_back(r);
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::uint32_t rank = 0;
  bool have_rank = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--rank" && i + 1 < argc) {
      // strtoul with full-string validation: "--rank x" or "--rank -1"
      // must die loudly, not silently become rank 0 and fight the real
      // rank 0 for its port.
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (s[0] == '\0' || s[0] == '-' || end == nullptr || *end != '\0' ||
          v > 0xFFFFFFFFul)
        die(std::string("invalid --rank value: ") + s);
      rank = static_cast<std::uint32_t>(v);
      have_rank = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      die("usage: asyncit_node --config <file> --rank <r> [--quiet]");
    }
  }
  if (config_path.empty() || !have_rank)
    die("usage: asyncit_node --config <file> --rank <r> [--quiet]");

  const NodeConfig cfg = parse_config(config_path);
  if (rank >= cfg.world) die("rank out of range");

  // Every process derives the identical problem and reference solution
  // from the config seed — nothing problem-sized crosses the wire except
  // the iterate blocks themselves.
  Rng rng(cfg.seed);
  auto sys = problems::make_diagonally_dominant_system(
      cfg.dim, cfg.nnz, cfg.dominance, rng);
  la::Partition partition = la::Partition::balanced(cfg.dim, cfg.blocks);
  op::JacobiOperator jacobi(sys.a, sys.b, partition);
  const la::Vector x_star =
      op::picard_solve(jacobi, la::zeros(cfg.dim), 50000, 1e-14);

  transport::TcpOptions topts;
  topts.nodes = cfg.nodes;
  topts.local_ranks = {rank};
  topts.connect_timeout_seconds = 30.0;
  const bool is_late =
      std::find(cfg.late.begin(), cfg.late.end(), rank) != cfg.late.end();
  if (cfg.membership.enabled) {
    topts.elastic = true;
    // Launch-time ranks rendezvous with each other as before; a late
    // joiner rendezvouses with NOBODY — it dials in lazily (some of the
    // initial ranks may already be dead) and is discovered via gossip.
    if (!is_late) topts.expected_ranks = cfg.membership.initial_alive;
  }
  if (!quiet)
    std::printf("[rank %u] rendezvous: %zu ranks%s, my port %u\n", rank,
                cfg.world, is_late ? " (late join)" : "",
                cfg.nodes[rank].port);
  transport::TcpTransport tcp(std::move(topts));
  std::unique_ptr<transport::ChaosTransport> chaos;
  if (cfg.chaos)
    chaos = std::make_unique<transport::ChaosTransport>(
        tcp, cfg.chaos_policy, cfg.seed);
  transport::Transport& fabric = chaos ? static_cast<transport::Transport&>(*chaos) : tcp;

  // Rendezvous done, solve starting: the marker scripts/launch_cluster.py
  // anchors its churn schedule on (a kill scheduled from process spawn
  // could land inside setup/rendezvous on a slow or sanitized build).
  // epoch_ns (CLOCK_REALTIME) lets tools/trace_merge.py cross-check the
  // per-rank clock anchors it aligns the merged timeline with.
  const std::uint64_t start_epoch_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::printf("ASYNCIT_NODE_START rank=%u epoch_ns=%llu\n", rank,
              static_cast<unsigned long long>(start_epoch_ns));
  std::fflush(stdout);

  net::MpOptions opt;
  opt.workers = cfg.world;
  opt.mode = cfg.mode;
  opt.staleness = cfg.staleness;
  opt.inner_steps = cfg.inner_steps;
  opt.publish_partials = cfg.publish_partials;
  opt.overwrite = cfg.overwrite;
  opt.tol = cfg.tol;
  opt.x_star = x_star;
  opt.max_seconds = cfg.max_seconds;
  opt.max_updates = cfg.max_updates;
  opt.seed = cfg.seed;
  opt.membership = cfg.membership;
  opt.trace_level = cfg.trace;
  opt.audit = cfg.audit;

  const net::MpResult result =
      net::run_node(jacobi, la::zeros(cfg.dim), opt, fabric.endpoint(rank));

  // Let the final frames (stop announcement, last block values) reach
  // the wire before the sockets close under the other ranks.
  fabric.flush(2.0);

  // Per-rank trace + metrics artifacts (trace_merge.py consumes the
  // former; launch_cluster.py archives both).
  if (cfg.trace != obs::TraceLevel::kOff && !cfg.trace_dir.empty()) {
    const std::string base =
        cfg.trace_dir + "/rank_" + std::to_string(rank);
    if (cfg.trace == obs::TraceLevel::kFull) {
      obs::ExportMeta meta;
      meta.rank = static_cast<std::uint16_t>(rank);
      meta.epoch_realtime_ns =
          obs::TraceRecorder::instance().epoch_realtime_ns();
      meta.events_dropped = result.obs_events_dropped;
      meta.label = "asyncit_node";
      if (!obs::export_chrome_trace_file(base + ".trace.json", meta))
        std::fprintf(stderr, "[rank %u] trace export failed: %s\n", rank,
                     (base + ".trace.json").c_str());
    }
    std::ofstream mf(base + ".metrics.json");
    if (mf)
      mf << obs::MetricsRegistry::instance().to_json() << "\n";
    else
      std::fprintf(stderr, "[rank %u] metrics export failed: %s\n", rank,
                   (base + ".metrics.json").c_str());
  }

  // A rank that was stopped by another rank's announcement (gated modes
  // stop on the first kStop) may sit within in-flight staleness of the
  // tolerance rather than below it; accept the same 10x band the bench
  // baselines use — but ONLY when a peer actually announced. A rank that
  // merely exhausted its budget without anyone converging must fail.
  const bool peer_stopped = result.peers_stopped > 0;
  const bool ok =
      result.converged ||
      (peer_stopped && result.final_error >= 0.0 &&
       result.final_error < 10.0 * cfg.tol);

  if (!quiet)
    std::printf(
        "[rank %u] %s: error %.3e (tol %.1e) after %.3f s, %llu updates, "
        "%llu rounds, sent %llu delivered %llu dropped %llu "
        "inversions %llu\n",
        rank, ok ? "converged" : "DID NOT CONVERGE", result.final_error,
        cfg.tol, result.wall_seconds,
        static_cast<unsigned long long>(result.total_updates),
        static_cast<unsigned long long>(result.rounds),
        static_cast<unsigned long long>(result.messages_sent),
        static_cast<unsigned long long>(result.messages_delivered),
        static_cast<unsigned long long>(result.messages_dropped),
        static_cast<unsigned long long>(result.inversions_observed));
  // Machine-parseable summaries. The key=value line predates the JSON
  // one and is kept for humans / old scripts; launch_cluster.py reads
  // the asyncit-node/1 JSON (one line, schema documented in the header
  // comment above).
  std::printf("ASYNCIT_NODE_RESULT rank=%u ok=%d converged=%d error=%.17g "
              "updates=%llu sent=%llu delivered=%llu dropped=%llu\n",
              rank, ok ? 1 : 0, result.converged ? 1 : 0,
              result.final_error,
              static_cast<unsigned long long>(result.total_updates),
              static_cast<unsigned long long>(result.messages_sent),
              static_cast<unsigned long long>(result.messages_delivered),
              static_cast<unsigned long long>(result.messages_dropped));
  const std::uint64_t bad_frames = fabric.bad_frames();
  const membership::Stats& ms = result.membership;
  std::string live = "[";
  for (std::size_t i = 0; i < result.live_at_exit.size(); ++i) {
    if (i > 0) live += ",";
    live += std::to_string(result.live_at_exit[i]);
  }
  live += "]";
  // asyncit-node/2 additions, built as strings (the printf below is
  // already at the edge of readability).
  char qb[192];
  const auto quantiles_json = [&qb](const net::DelayHistogram& h) {
    std::snprintf(qb, sizeof qb,
                  "{\"count\":%llu,\"p50\":%.9g,\"p95\":%.9g,"
                  "\"p99\":%.9g,\"max\":%.9g}",
                  static_cast<unsigned long long>(h.count()), h.p50(),
                  h.p95(), h.p99(), h.max());
    return std::string(qb);
  };
  std::string links = "[";
  for (std::size_t i = 0; i < result.link_delays.size(); ++i) {
    const net::MpResult::LinkDelay& l = result.link_delays[i];
    if (i > 0) links += ",";
    links += "{\"src\":" + std::to_string(l.src) +
             ",\"dst\":" + std::to_string(l.dst) +
             ",\"quantiles\":" + quantiles_json(l.delays) + "}";
  }
  links += "]";
  std::string audit_json = "null";
  if (!result.admissibility.empty()) {
    const obs::AdmissibilityReport& ar = result.admissibility.front();
    char ab[384];
    std::snprintf(
        ab, sizeof ab,
        "{\"steps\":%llu,\"a_holds\":%s,\"b_diverging\":%s,"
        "\"b_final_min_label\":%llu,\"c_fair\":%s,"
        "\"c_min_occurrences\":%llu,\"c_worst_gap\":%llu,"
        "\"d_bound\":%llu,\"d_at_step\":%llu,\"d_mean\":%.9g}",
        static_cast<unsigned long long>(ar.steps),
        ar.a_holds ? "true" : "false", ar.b_diverging ? "true" : "false",
        static_cast<unsigned long long>(ar.b_final_min_label),
        ar.c_fair ? "true" : "false",
        static_cast<unsigned long long>(ar.c_min_occurrences),
        static_cast<unsigned long long>(ar.c_worst_gap),
        static_cast<unsigned long long>(ar.d_bound),
        static_cast<unsigned long long>(ar.d_at_step), ar.d_mean);
    audit_json = ab;
  }
  std::printf(
      "ASYNCIT_NODE_JSON {\"schema\":\"asyncit-node/2\",\"rank\":%u,"
      "\"ok\":%s,\"converged\":%s,\"error\":%.17g,\"tol\":%.17g,"
      "\"wall_seconds\":%.6f,\"updates\":%llu,\"rounds\":%llu,"
      "\"sent\":%llu,\"delivered\":%llu,\"dropped\":%llu,"
      "\"inversions\":%llu,\"stale_filtered\":%llu,\"partials_sent\":%llu,"
      "\"peers_stopped\":%llu,\"frames_rejected\":%llu,\"bad_frames\":%llu,"
      "\"membership\":{\"enabled\":%s,\"pings_sent\":%llu,"
      "\"acks_sent\":%llu,\"acks_received\":%llu,\"ping_reqs_sent\":%llu,"
      "\"gossip_frames_sent\":%llu,\"suspicions\":%llu,"
      "\"deaths_observed\":%llu,\"joins_observed\":%llu,"
      "\"refutations\":%llu,\"control_rejected\":%llu,"
      "\"reassignments\":%llu,\"snapshot_blocks_sent\":%llu,"
      "\"live_at_exit\":%s},\"delay_quantiles\":%s,\"links\":%s,"
      "\"admissibility\":%s,\"obs\":{\"recorded\":%llu,"
      "\"dropped\":%llu}}\n",
      rank, ok ? "true" : "false", result.converged ? "true" : "false",
      result.final_error, cfg.tol, result.wall_seconds,
      static_cast<unsigned long long>(result.total_updates),
      static_cast<unsigned long long>(result.rounds),
      static_cast<unsigned long long>(result.messages_sent),
      static_cast<unsigned long long>(result.messages_delivered),
      static_cast<unsigned long long>(result.messages_dropped),
      static_cast<unsigned long long>(result.inversions_observed),
      static_cast<unsigned long long>(result.stale_filtered),
      static_cast<unsigned long long>(result.partials_sent),
      static_cast<unsigned long long>(result.peers_stopped),
      static_cast<unsigned long long>(result.frames_rejected),
      static_cast<unsigned long long>(bad_frames),
      cfg.membership.enabled ? "true" : "false",
      static_cast<unsigned long long>(ms.pings_sent),
      static_cast<unsigned long long>(ms.acks_sent),
      static_cast<unsigned long long>(ms.acks_received),
      static_cast<unsigned long long>(ms.ping_reqs_sent),
      static_cast<unsigned long long>(ms.gossip_frames_sent),
      static_cast<unsigned long long>(ms.suspicions),
      static_cast<unsigned long long>(ms.deaths_observed),
      static_cast<unsigned long long>(ms.joins_observed),
      static_cast<unsigned long long>(ms.refutations),
      static_cast<unsigned long long>(ms.control_rejected),
      static_cast<unsigned long long>(result.reassignments),
      static_cast<unsigned long long>(result.snapshot_blocks_sent),
      live.c_str(), quantiles_json(result.delays).c_str(), links.c_str(),
      audit_json.c_str(),
      static_cast<unsigned long long>(result.obs_events_recorded),
      static_cast<unsigned long long>(result.obs_events_dropped));
  return ok ? 0 : 1;
}
