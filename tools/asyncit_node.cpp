// asyncit_node — one rank of a multi-process run (solve or train).
//
// Every process builds the SAME seeded problem (the generators are pure
// functions of the config's seed), connects to the other ranks over TCP
// using the address table in the config file, and runs its own rank's
// role. scripts/launch_cluster.py writes the config, picks free ports,
// and spawns one asyncit_node per rank:
//
//   scripts/launch_cluster.py --workers 4 --dim 128 --blocks 8
//   scripts/launch_cluster.py --workload train --workers 4 \
//       --target-accuracy 0.95
//
// Manual use:
//   asyncit_node --config cluster.cfg --rank 2
//   asyncit_node --schema          # dump the config key table as JSON
//
// The config format and the full key table live in ONE place:
// src/asyncit/net/node_config.{hpp,cpp}. `--schema` prints that table
// (schema asyncit-node-config/1) so launchers can validate the keys they
// write without parsing C++.
//
// Workloads (config key `workload`):
//   solve   net::run_node over the seeded Jacobi system — rank r owns
//           its partition blocks, exit 0 when the final oracle error is
//           below tol (or the 10x band when another rank announced).
//   train   train::run_training_node — rank 0 is the parameter server,
//           ranks 1..world-1 are minibatch-SGD workers over the seeded
//           synthetic logistic dataset (every rank rebuilds it from the
//           config; nothing dataset-sized crosses the wire). Exit 0 when
//           the target accuracy was reached (or, with target_accuracy 0,
//           when the budgeted run completed).
//
// Output: one `ASYNCIT_NODE_JSON {...}` line per rank (schema
// asyncit-node/3), the machine-readable contract launch_cluster.py
// aggregates and asserts on. /3 adds to the /2 fields:
//   workload  "solve" | "train"
//   train     {epoch, examples_per_sec, loss, accuracy, steps,
//             deltas_applied, examples} — null for solve-only ranks
// Solve-specific fields (error, inversions, membership, links, ...)
// keep their /2 meaning and are simply absent from train-workload
// lines. The older ASYNCIT_NODE_RESULT key=value line is kept for
// humans and old scripts. The ASYNCIT_NODE_START marker carries
// epoch_ns (realtime clock at solve start) so tools/trace_merge.py can
// cross-check its per-rank clock alignment.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "asyncit/asyncit.hpp"
#include "asyncit/net/node_config.hpp"
#include "asyncit/obs/exporter.hpp"
#include "asyncit/obs/metrics.hpp"
#include "asyncit/obs/streamer.hpp"
#include "asyncit/train/psgd.hpp"

namespace {

using namespace asyncit;

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "asyncit_node: %s\n", msg.c_str());
  std::exit(2);
}

/// Prints the solve-start marker (churn anchoring + trace-merge clock
/// cross-check).
void print_start_marker(std::uint32_t rank) {
  const std::uint64_t start_epoch_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::printf("ASYNCIT_NODE_START rank=%u epoch_ns=%llu\n", rank,
              static_cast<unsigned long long>(start_epoch_ns));
  std::fflush(stdout);
}

/// Streaming trace windows (config stream_interval > 0): a background
/// flusher owns the rings for the whole run, so a killed/hung rank
/// leaves its newest windows on disk instead of nothing.
std::unique_ptr<obs::TraceStreamer> make_streamer(const net::NodeConfig& cfg,
                                                  std::uint32_t rank) {
  if (cfg.stream_interval <= 0.0 || cfg.trace != obs::TraceLevel::kFull ||
      cfg.trace_dir.empty())
    return nullptr;
  obs::StreamerConfig sc;
  sc.dir = cfg.trace_dir;
  sc.rank = static_cast<std::uint16_t>(rank);
  sc.interval_seconds = cfg.stream_interval;
  sc.max_windows = cfg.stream_windows;
  sc.label = "asyncit_node";
  return std::make_unique<obs::TraceStreamer>(sc);
}

/// Per-rank trace + metrics artifacts (trace_merge.py consumes the
/// former; launch_cluster.py archives both).
void export_obs_artifacts(const net::NodeConfig& cfg, std::uint32_t rank,
                          std::uint64_t events_dropped,
                          obs::TraceStreamer* streamer) {
  if (cfg.trace == obs::TraceLevel::kOff || cfg.trace_dir.empty()) return;
  const std::string base = cfg.trace_dir + "/rank_" + std::to_string(rank);
  if (streamer != nullptr) {
    // The windows ARE the trace record: the final stop() flush drains
    // whatever the last period left behind. Writing the one-shot
    // trace.json too would duplicate every windowed event in a merge.
    streamer->stop();
  } else if (cfg.trace == obs::TraceLevel::kFull) {
    obs::ExportMeta meta;
    meta.rank = static_cast<std::uint16_t>(rank);
    meta.epoch_realtime_ns =
        obs::TraceRecorder::instance().epoch_realtime_ns();
    meta.events_dropped = events_dropped;
    meta.label = "asyncit_node";
    if (!obs::export_chrome_trace_file(base + ".trace.json", meta))
      std::fprintf(stderr, "[rank %u] trace export failed: %s\n", rank,
                   (base + ".trace.json").c_str());
  }
  std::ofstream mf(base + ".metrics.json");
  if (mf)
    mf << obs::MetricsRegistry::instance().to_json() << "\n";
  else
    std::fprintf(stderr, "[rank %u] metrics export failed: %s\n", rank,
                 (base + ".metrics.json").c_str());
}

int run_solve_workload(const net::NodeConfig& cfg, std::uint32_t rank,
                       transport::Transport& fabric, bool quiet) {
  // Every process derives the identical problem and reference solution
  // from the config seed — nothing problem-sized crosses the wire except
  // the iterate blocks themselves.
  Rng rng(cfg.seed);
  auto sys = problems::make_diagonally_dominant_system(
      cfg.dim, cfg.nnz, cfg.dominance, rng);
  la::Partition partition = la::Partition::balanced(cfg.dim, cfg.blocks);
  op::JacobiOperator jacobi(sys.a, sys.b, partition);
  const la::Vector x_star =
      op::picard_solve(jacobi, la::zeros(cfg.dim), 50000, 1e-14);

  print_start_marker(rank);

  net::MpOptions opt;
  opt.workers = cfg.world;
  opt.solve.mode = cfg.mode;
  opt.solve.staleness = cfg.staleness;
  opt.solve.inner_steps = cfg.inner_steps;
  opt.solve.publish_partials = cfg.publish_partials;
  opt.solve.overwrite = cfg.overwrite;
  opt.solve.tol = cfg.tol;
  opt.solve.x_star = x_star;
  opt.solve.max_seconds = cfg.max_seconds;
  opt.solve.max_updates = cfg.max_updates;
  opt.solve.check_every = cfg.check_every;
  opt.solve.adaptive = cfg.adaptive;
  opt.seed = cfg.seed;
  opt.membership = cfg.membership;
  opt.wire.delta = cfg.wire_delta;
  opt.wire.topk = cfg.wire_topk;
  opt.wire.quant_bits = cfg.wire_quant_bits;
  opt.wire.refresh_every = cfg.wire_refresh_every;
  opt.obs.trace_level = cfg.trace;
  opt.obs.audit = cfg.audit;

  const auto streamer = make_streamer(cfg, rank);
  const net::MpResult result =
      net::run_node(jacobi, la::zeros(cfg.dim), opt, fabric.endpoint(rank));

  // Let the final frames (stop announcement, last block values) reach
  // the wire before the sockets close under the other ranks.
  fabric.flush(2.0);
  export_obs_artifacts(cfg, rank, result.obs_events_dropped,
                       streamer.get());

  // A rank that was stopped by another rank's announcement (gated modes
  // stop on the first kStop) may sit within in-flight staleness of the
  // tolerance rather than below it; accept the same 10x band the bench
  // baselines use — but ONLY when a peer actually announced. A rank that
  // merely exhausted its budget without anyone converging must fail.
  const bool peer_stopped = result.peers_stopped > 0;
  const bool ok =
      result.converged ||
      (peer_stopped && result.final_error >= 0.0 &&
       result.final_error < 10.0 * cfg.tol);

  if (!quiet)
    std::printf(
        "[rank %u] %s: error %.3e (tol %.1e) after %.3f s, %llu updates, "
        "%llu rounds, sent %llu delivered %llu dropped %llu "
        "inversions %llu\n",
        rank, ok ? "converged" : "DID NOT CONVERGE", result.final_error,
        cfg.tol, result.wall_seconds,
        static_cast<unsigned long long>(result.total_updates),
        static_cast<unsigned long long>(result.rounds),
        static_cast<unsigned long long>(result.messages_sent),
        static_cast<unsigned long long>(result.messages_delivered),
        static_cast<unsigned long long>(result.messages_dropped),
        static_cast<unsigned long long>(result.inversions_observed));
  // Machine-parseable summaries. The key=value line predates the JSON
  // one and is kept for humans / old scripts; launch_cluster.py reads
  // the asyncit-node/3 JSON (one line, schema documented in the header
  // comment above).
  std::printf("ASYNCIT_NODE_RESULT rank=%u ok=%d converged=%d error=%.17g "
              "updates=%llu sent=%llu delivered=%llu dropped=%llu\n",
              rank, ok ? 1 : 0, result.converged ? 1 : 0,
              result.final_error,
              static_cast<unsigned long long>(result.total_updates),
              static_cast<unsigned long long>(result.messages_sent),
              static_cast<unsigned long long>(result.messages_delivered),
              static_cast<unsigned long long>(result.messages_dropped));
  const std::uint64_t bad_frames = fabric.bad_frames();
  const membership::Stats& ms = result.membership;
  std::string live = "[";
  for (std::size_t i = 0; i < result.live_at_exit.size(); ++i) {
    if (i > 0) live += ",";
    live += std::to_string(result.live_at_exit[i]);
  }
  live += "]";
  // asyncit-node/2 additions, built as strings (the printf below is
  // already at the edge of readability).
  char qb[192];
  const auto quantiles_json = [&qb](const net::DelayHistogram& h) {
    std::snprintf(qb, sizeof qb,
                  "{\"count\":%llu,\"p50\":%.9g,\"p95\":%.9g,"
                  "\"p99\":%.9g,\"max\":%.9g}",
                  static_cast<unsigned long long>(h.count()), h.p50(),
                  h.p95(), h.p99(), h.max());
    return std::string(qb);
  };
  std::string links = "[";
  for (std::size_t i = 0; i < result.link_delays.size(); ++i) {
    const net::MpResult::LinkDelay& l = result.link_delays[i];
    if (i > 0) links += ",";
    links += "{\"src\":" + std::to_string(l.src) +
             ",\"dst\":" + std::to_string(l.dst) +
             ",\"quantiles\":" + quantiles_json(l.delays) + "}";
  }
  links += "]";
  std::string audit_json = "null";
  if (!result.admissibility.empty()) {
    const obs::AdmissibilityReport& ar = result.admissibility.front();
    char ab[384];
    std::snprintf(
        ab, sizeof ab,
        "{\"steps\":%llu,\"a_holds\":%s,\"b_diverging\":%s,"
        "\"b_final_min_label\":%llu,\"c_fair\":%s,"
        "\"c_min_occurrences\":%llu,\"c_worst_gap\":%llu,"
        "\"d_bound\":%llu,\"d_at_step\":%llu,\"d_mean\":%.9g}",
        static_cast<unsigned long long>(ar.steps),
        ar.a_holds ? "true" : "false", ar.b_diverging ? "true" : "false",
        static_cast<unsigned long long>(ar.b_final_min_label),
        ar.c_fair ? "true" : "false",
        static_cast<unsigned long long>(ar.c_min_occurrences),
        static_cast<unsigned long long>(ar.c_worst_gap),
        static_cast<unsigned long long>(ar.d_bound),
        static_cast<unsigned long long>(ar.d_at_step), ar.d_mean);
    audit_json = ab;
  }
  std::printf(
      "ASYNCIT_NODE_JSON {\"schema\":\"asyncit-node/3\","
      "\"workload\":\"solve\",\"rank\":%u,"
      "\"ok\":%s,\"converged\":%s,\"error\":%.17g,\"tol\":%.17g,"
      "\"wall_seconds\":%.6f,\"updates\":%llu,\"rounds\":%llu,"
      "\"sent\":%llu,\"delivered\":%llu,\"dropped\":%llu,"
      "\"inversions\":%llu,\"stale_filtered\":%llu,\"partials_sent\":%llu,"
      "\"peers_stopped\":%llu,\"frames_rejected\":%llu,\"bad_frames\":%llu,"
      "\"membership\":{\"enabled\":%s,\"pings_sent\":%llu,"
      "\"acks_sent\":%llu,\"acks_received\":%llu,\"ping_reqs_sent\":%llu,"
      "\"gossip_frames_sent\":%llu,\"suspicions\":%llu,"
      "\"deaths_observed\":%llu,\"joins_observed\":%llu,"
      "\"refutations\":%llu,\"control_rejected\":%llu,"
      "\"reassignments\":%llu,\"snapshot_blocks_sent\":%llu,"
      "\"snapshot_blocks_suppressed\":%llu,"
      "\"live_at_exit\":%s},"
      "\"wire\":{\"delta\":%s,\"bytes_raw\":%llu,\"bytes_wire\":%llu,"
      "\"frames_full\":%llu,\"frames_delta\":%llu,"
      "\"frames_heartbeat\":%llu,\"frames_codec\":%llu},"
      "\"delay_quantiles\":%s,\"links\":%s,"
      "\"admissibility\":%s,\"obs\":{\"recorded\":%llu,"
      "\"dropped\":%llu},\"gate_stalls\":%llu,"
      "\"steering\":{\"decisions\":%llu,\"staleness_at_exit\":%llu},"
      "\"train\":null}\n",
      rank, ok ? "true" : "false", result.converged ? "true" : "false",
      result.final_error, cfg.tol, result.wall_seconds,
      static_cast<unsigned long long>(result.total_updates),
      static_cast<unsigned long long>(result.rounds),
      static_cast<unsigned long long>(result.messages_sent),
      static_cast<unsigned long long>(result.messages_delivered),
      static_cast<unsigned long long>(result.messages_dropped),
      static_cast<unsigned long long>(result.inversions_observed),
      static_cast<unsigned long long>(result.stale_filtered),
      static_cast<unsigned long long>(result.partials_sent),
      static_cast<unsigned long long>(result.peers_stopped),
      static_cast<unsigned long long>(result.frames_rejected),
      static_cast<unsigned long long>(bad_frames),
      cfg.membership.enabled ? "true" : "false",
      static_cast<unsigned long long>(ms.pings_sent),
      static_cast<unsigned long long>(ms.acks_sent),
      static_cast<unsigned long long>(ms.acks_received),
      static_cast<unsigned long long>(ms.ping_reqs_sent),
      static_cast<unsigned long long>(ms.gossip_frames_sent),
      static_cast<unsigned long long>(ms.suspicions),
      static_cast<unsigned long long>(ms.deaths_observed),
      static_cast<unsigned long long>(ms.joins_observed),
      static_cast<unsigned long long>(ms.refutations),
      static_cast<unsigned long long>(ms.control_rejected),
      static_cast<unsigned long long>(result.reassignments),
      static_cast<unsigned long long>(result.snapshot_blocks_sent),
      static_cast<unsigned long long>(result.snapshot_blocks_suppressed),
      live.c_str(), cfg.wire_delta ? "true" : "false",
      static_cast<unsigned long long>(result.bytes_sent_raw),
      static_cast<unsigned long long>(result.bytes_sent_wire),
      static_cast<unsigned long long>(result.wire_frames_full),
      static_cast<unsigned long long>(result.wire_frames_delta),
      static_cast<unsigned long long>(result.wire_frames_heartbeat),
      static_cast<unsigned long long>(result.wire_frames_codec),
      quantiles_json(result.delays).c_str(), links.c_str(),
      audit_json.c_str(),
      static_cast<unsigned long long>(result.obs_events_recorded),
      static_cast<unsigned long long>(result.obs_events_dropped),
      static_cast<unsigned long long>(result.gate_stalls),
      static_cast<unsigned long long>(result.steering_decisions),
      static_cast<unsigned long long>(result.staleness_at_exit));
  return ok ? 0 : 1;
}

int run_train_workload(const net::NodeConfig& cfg, std::uint32_t rank,
                       transport::Transport& fabric, bool quiet) {
  // Every rank rebuilds the identical dataset from (config, seed); only
  // delta and parameter frames cross the wire.
  const train::Dataset data =
      train::make_synthetic_dataset(cfg.dataset, cfg.seed);

  print_start_marker(rank);

  train::TrainOptions opt;
  opt.workers = cfg.world - 1;  // rank 0 is the parameter server
  opt.seed = cfg.seed;
  opt.sgd = cfg.sgd;
  opt.obs.trace_level = cfg.trace;

  const auto streamer = make_streamer(cfg, rank);
  const train::TrainResult result = train::run_training_node(
      data, la::zeros(data.features()), opt, fabric.endpoint(rank));
  fabric.flush(2.0);
  export_obs_artifacts(cfg, rank, result.obs_events_dropped,
                       streamer.get());

  // With a target, reaching it (server) / being stopped because the
  // server reached it (workers) is the acceptance criterion; without
  // one the budgeted run completing is.
  const bool ok = cfg.sgd.target_accuracy > 0.0 ? result.converged : true;
  const std::uint64_t steps =
      result.steps_per_worker.empty() ? 0 : result.steps_per_worker[0];
  const std::uint64_t updates = rank == 0 ? result.deltas_applied : steps;

  if (!quiet)
    std::printf(
        "[rank %u] %s: accuracy %.4f loss %.4f after %.3f s, epoch %llu, "
        "%llu updates, %.0f examples/s, sent %llu delivered %llu "
        "dropped %llu\n",
        rank, ok ? "trained" : "TARGET NOT REACHED", result.final_accuracy,
        result.final_loss, result.wall_seconds,
        static_cast<unsigned long long>(result.epochs),
        static_cast<unsigned long long>(updates), result.examples_per_sec,
        static_cast<unsigned long long>(result.messages_sent),
        static_cast<unsigned long long>(result.messages_delivered),
        static_cast<unsigned long long>(result.messages_dropped));
  std::printf("ASYNCIT_NODE_RESULT rank=%u ok=%d converged=%d error=-1 "
              "updates=%llu sent=%llu delivered=%llu dropped=%llu\n",
              rank, ok ? 1 : 0, result.converged ? 1 : 0,
              static_cast<unsigned long long>(updates),
              static_cast<unsigned long long>(result.messages_sent),
              static_cast<unsigned long long>(result.messages_delivered),
              static_cast<unsigned long long>(result.messages_dropped));
  std::printf(
      "ASYNCIT_NODE_JSON {\"schema\":\"asyncit-node/3\","
      "\"workload\":\"train\",\"rank\":%u,\"ok\":%s,\"converged\":%s,"
      "\"wall_seconds\":%.6f,\"updates\":%llu,\"rounds\":%llu,"
      "\"sent\":%llu,\"delivered\":%llu,\"dropped\":%llu,"
      "\"peers_stopped\":%llu,\"frames_rejected\":%llu,"
      "\"bad_frames\":%llu,\"obs\":{\"recorded\":%llu,\"dropped\":%llu},"
      "\"steering\":{\"decisions\":%llu,\"staleness_at_exit\":%llu},"
      "\"train\":{\"epoch\":%llu,\"examples_per_sec\":%.9g,"
      "\"loss\":%.9g,\"accuracy\":%.9g,\"steps\":%llu,"
      "\"deltas_applied\":%llu,\"examples\":%llu}}\n",
      rank, ok ? "true" : "false", result.converged ? "true" : "false",
      result.wall_seconds, static_cast<unsigned long long>(updates),
      static_cast<unsigned long long>(result.rounds),
      static_cast<unsigned long long>(result.messages_sent),
      static_cast<unsigned long long>(result.messages_delivered),
      static_cast<unsigned long long>(result.messages_dropped),
      static_cast<unsigned long long>(result.peers_stopped),
      static_cast<unsigned long long>(result.frames_rejected),
      static_cast<unsigned long long>(fabric.bad_frames()),
      static_cast<unsigned long long>(result.obs_events_recorded),
      static_cast<unsigned long long>(result.obs_events_dropped),
      static_cast<unsigned long long>(result.steering_decisions),
      static_cast<unsigned long long>(result.staleness_at_exit),
      static_cast<unsigned long long>(result.epochs),
      result.examples_per_sec, result.final_loss, result.final_accuracy,
      static_cast<unsigned long long>(steps),
      static_cast<unsigned long long>(result.deltas_applied),
      static_cast<unsigned long long>(result.examples_processed));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::uint32_t rank = 0;
  bool have_rank = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--schema") {
      std::printf("%s\n", net::node_config_schema_json().c_str());
      return 0;
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--rank" && i + 1 < argc) {
      // strtoul with full-string validation: "--rank x" or "--rank -1"
      // must die loudly, not silently become rank 0 and fight the real
      // rank 0 for its port.
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (s[0] == '\0' || s[0] == '-' || end == nullptr || *end != '\0' ||
          v > 0xFFFFFFFFul)
        die(std::string("invalid --rank value: ") + s);
      rank = static_cast<std::uint32_t>(v);
      have_rank = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      die("usage: asyncit_node --config <file> --rank <r> [--quiet] | "
          "asyncit_node --schema");
    }
  }
  if (config_path.empty() || !have_rank)
    die("usage: asyncit_node --config <file> --rank <r> [--quiet] | "
        "asyncit_node --schema");

  net::NodeConfig cfg;
  std::string error;
  if (!net::load_node_config(config_path, cfg, error)) die(error);
  if (rank >= cfg.world) die("rank out of range");

  transport::TcpOptions topts;
  topts.nodes = cfg.nodes;
  topts.local_ranks = {rank};
  topts.connect_timeout_seconds = 30.0;
  if (cfg.workload == net::Workload::kSolve) {
    // Tighten the decode-time frame bound to what this run can actually
    // produce: the widest partition block, or a gossip payload (3 doubles
    // per membership update, at most one update per rank).
    const std::size_t widest = (cfg.dim + cfg.blocks - 1) / cfg.blocks;
    topts.max_frame_doubles = static_cast<std::uint32_t>(
        std::max<std::size_t>(widest, 3 * cfg.world));
  }
  const bool is_late =
      std::find(cfg.late.begin(), cfg.late.end(), rank) != cfg.late.end();
  if (cfg.elastic) {
    topts.elastic = true;
    // With membership, launch-time ranks rendezvous with each other and
    // a late joiner rendezvouses with NOBODY — it dials in lazily (some
    // initial ranks may already be dead) and is discovered via gossip.
    // Plain elastic (the train churn leg) has no late slots: everyone
    // rendezvouses, and deaths after that simply stop mattering.
    if (cfg.membership.enabled) {
      if (!is_late) topts.expected_ranks = cfg.membership.initial_alive;
    } else {
      topts.expected_ranks.resize(cfg.world);
      for (std::uint32_t r = 0; r < cfg.world; ++r)
        topts.expected_ranks[r] = r;
    }
  }
  if (!quiet)
    std::printf("[rank %u] rendezvous: %zu ranks%s, my port %u\n", rank,
                cfg.world, is_late ? " (late join)" : "",
                cfg.nodes[rank].port);
  transport::TcpTransport tcp(std::move(topts));
  std::unique_ptr<transport::ChaosTransport> chaos;
  if (cfg.chaos)
    chaos = std::make_unique<transport::ChaosTransport>(
        tcp, cfg.chaos_policy, cfg.seed);
  transport::Transport& fabric =
      chaos ? static_cast<transport::Transport&>(*chaos) : tcp;

  return cfg.workload == net::Workload::kTrain
             ? run_train_workload(cfg, rank, fabric, quiet)
             : run_solve_workload(cfg, rank, fabric, quiet);
}
