// asyncit_node — one rank of a multi-process message-passing run.
//
// Every process builds the SAME seeded problem (the generators are pure
// functions of the config's seed), connects to the other ranks over TCP
// using the address table in the config file, and runs net::run_node for
// its own rank. scripts/launch_cluster.py writes the config, picks free
// ports, and spawns one asyncit_node per rank:
//
//   scripts/launch_cluster.py --workers 4 --dim 128 --blocks 8
//
// Manual use:
//   asyncit_node --config cluster.cfg --rank 2
//
// Config format (order-free "key value" lines; '#' starts a comment):
//
//   world 4                  # number of ranks (required)
//   node 0 127.0.0.1 5000    # one line per rank: rank host port (required)
//   seed 42                  # problem + chaos seed
//   dim 128                  # Jacobi system size
//   blocks 8                 # partition blocks
//   nnz 4                    # off-diagonal entries per row
//   dominance 2.0            # diagonal dominance factor
//   mode async               # async | ssp | bsp
//   staleness 2              # SSP clock-gap cap
//   inner_steps 1            # applications per phase
//   publish_partials 0       # flexible communication (Definition 3)
//   overwrite last_arrival   # last_arrival | newest_tag
//   tol 1e-8                 # oracle stopping tolerance
//   max_seconds 30           # per-process wall budget
//   max_updates 100000000    # per-rank update budget
//   chaos 0                  # 1: wrap TCP in the chaos decorator
//   min_latency 0            # chaos injected latency bounds (seconds)
//   max_latency 0
//   fifo 0                   # chaos in-order delivery floor
//   drop_prob 0              # chaos loss probability (async only)
//
// Exit status 0 when this rank's final oracle error is below tol (or the
// 10x band when the run was ended by another rank's stop frame — gated
// modes stop on the first announcement, in-flight staleness allowed).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "asyncit/asyncit.hpp"

namespace {

using namespace asyncit;

struct NodeConfig {
  std::size_t world = 0;
  std::uint64_t seed = 42;
  std::size_t dim = 128;
  std::size_t blocks = 8;
  std::size_t nnz = 4;
  double dominance = 2.0;
  net::Mode mode = net::Mode::kAsync;
  std::uint64_t staleness = 2;
  std::size_t inner_steps = 1;
  bool publish_partials = false;
  net::OverwritePolicy overwrite = net::OverwritePolicy::kLastArrivalWins;
  double tol = 1e-8;
  double max_seconds = 30.0;
  std::uint64_t max_updates = 100000000;
  bool chaos = false;
  net::DeliveryPolicy chaos_policy;
  std::vector<transport::TcpPeerAddress> nodes;
};

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "asyncit_node: %s\n", msg.c_str());
  std::exit(2);
}

NodeConfig parse_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) die("cannot open config " + path);
  NodeConfig cfg;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    auto want = [&](auto& v) {
      if (!(ls >> v))
        die(path + ":" + std::to_string(lineno) + ": bad value for " + key);
    };
    if (key == "world") {
      want(cfg.world);
      cfg.nodes.resize(cfg.world);
    } else if (key == "node") {
      std::size_t rank = 0;
      transport::TcpPeerAddress addr;
      want(rank);
      want(addr.host);
      want(addr.port);
      if (rank >= cfg.nodes.size())
        die(path + ":" + std::to_string(lineno) +
            ": node rank out of range (put `world` first)");
      cfg.nodes[rank] = addr;
    } else if (key == "seed") {
      want(cfg.seed);
    } else if (key == "dim") {
      want(cfg.dim);
    } else if (key == "blocks") {
      want(cfg.blocks);
    } else if (key == "nnz") {
      want(cfg.nnz);
    } else if (key == "dominance") {
      want(cfg.dominance);
    } else if (key == "mode") {
      std::string m;
      want(m);
      if (m == "async")
        cfg.mode = net::Mode::kAsync;
      else if (m == "ssp")
        cfg.mode = net::Mode::kSsp;
      else if (m == "bsp")
        cfg.mode = net::Mode::kBsp;
      else
        die("unknown mode " + m);
    } else if (key == "staleness") {
      want(cfg.staleness);
    } else if (key == "inner_steps") {
      want(cfg.inner_steps);
    } else if (key == "publish_partials") {
      int v = 0;
      want(v);
      cfg.publish_partials = v != 0;
    } else if (key == "overwrite") {
      std::string p;
      want(p);
      if (p == "last_arrival")
        cfg.overwrite = net::OverwritePolicy::kLastArrivalWins;
      else if (p == "newest_tag")
        cfg.overwrite = net::OverwritePolicy::kNewestTagWins;
      else
        die("unknown overwrite policy " + p);
    } else if (key == "tol") {
      want(cfg.tol);
    } else if (key == "max_seconds") {
      want(cfg.max_seconds);
    } else if (key == "max_updates") {
      want(cfg.max_updates);
    } else if (key == "chaos") {
      int v = 0;
      want(v);
      cfg.chaos = v != 0;
    } else if (key == "min_latency") {
      want(cfg.chaos_policy.min_latency);
    } else if (key == "max_latency") {
      want(cfg.chaos_policy.max_latency);
    } else if (key == "fifo") {
      int v = 0;
      want(v);
      cfg.chaos_policy.fifo = v != 0;
    } else if (key == "drop_prob") {
      want(cfg.chaos_policy.drop_prob);
    } else {
      die(path + ":" + std::to_string(lineno) + ": unknown key " + key);
    }
  }
  if (cfg.world < 2) die("config needs world >= 2");
  for (std::size_t r = 0; r < cfg.world; ++r)
    if (cfg.nodes[r].port == 0)
      die("config missing node line for rank " + std::to_string(r));
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::uint32_t rank = 0;
  bool have_rank = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--rank" && i + 1 < argc) {
      // strtoul with full-string validation: "--rank x" or "--rank -1"
      // must die loudly, not silently become rank 0 and fight the real
      // rank 0 for its port.
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (s[0] == '\0' || s[0] == '-' || end == nullptr || *end != '\0' ||
          v > 0xFFFFFFFFul)
        die(std::string("invalid --rank value: ") + s);
      rank = static_cast<std::uint32_t>(v);
      have_rank = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      die("usage: asyncit_node --config <file> --rank <r> [--quiet]");
    }
  }
  if (config_path.empty() || !have_rank)
    die("usage: asyncit_node --config <file> --rank <r> [--quiet]");

  const NodeConfig cfg = parse_config(config_path);
  if (rank >= cfg.world) die("rank out of range");

  // Every process derives the identical problem and reference solution
  // from the config seed — nothing problem-sized crosses the wire except
  // the iterate blocks themselves.
  Rng rng(cfg.seed);
  auto sys = problems::make_diagonally_dominant_system(
      cfg.dim, cfg.nnz, cfg.dominance, rng);
  la::Partition partition = la::Partition::balanced(cfg.dim, cfg.blocks);
  op::JacobiOperator jacobi(sys.a, sys.b, partition);
  const la::Vector x_star =
      op::picard_solve(jacobi, la::zeros(cfg.dim), 50000, 1e-14);

  transport::TcpOptions topts;
  topts.nodes = cfg.nodes;
  topts.local_ranks = {rank};
  topts.connect_timeout_seconds = 30.0;
  if (!quiet)
    std::printf("[rank %u] rendezvous: %zu ranks, my port %u\n", rank,
                cfg.world, cfg.nodes[rank].port);
  transport::TcpTransport tcp(std::move(topts));
  std::unique_ptr<transport::ChaosTransport> chaos;
  if (cfg.chaos)
    chaos = std::make_unique<transport::ChaosTransport>(
        tcp, cfg.chaos_policy, cfg.seed);
  transport::Transport& fabric = chaos ? static_cast<transport::Transport&>(*chaos) : tcp;

  net::MpOptions opt;
  opt.workers = cfg.world;
  opt.mode = cfg.mode;
  opt.staleness = cfg.staleness;
  opt.inner_steps = cfg.inner_steps;
  opt.publish_partials = cfg.publish_partials;
  opt.overwrite = cfg.overwrite;
  opt.tol = cfg.tol;
  opt.x_star = x_star;
  opt.max_seconds = cfg.max_seconds;
  opt.max_updates = cfg.max_updates;
  opt.seed = cfg.seed;

  const net::MpResult result =
      net::run_node(jacobi, la::zeros(cfg.dim), opt, fabric.endpoint(rank));

  // Let the final frames (stop announcement, last block values) reach
  // the wire before the sockets close under the other ranks.
  fabric.flush(2.0);

  // A rank that was stopped by another rank's announcement (gated modes
  // stop on the first kStop) may sit within in-flight staleness of the
  // tolerance rather than below it; accept the same 10x band the bench
  // baselines use — but ONLY when a peer actually announced. A rank that
  // merely exhausted its budget without anyone converging must fail.
  const bool peer_stopped = result.peers_stopped > 0;
  const bool ok =
      result.converged ||
      (peer_stopped && result.final_error >= 0.0 &&
       result.final_error < 10.0 * cfg.tol);

  if (!quiet)
    std::printf(
        "[rank %u] %s: error %.3e (tol %.1e) after %.3f s, %llu updates, "
        "%llu rounds, sent %llu delivered %llu dropped %llu "
        "inversions %llu\n",
        rank, ok ? "converged" : "DID NOT CONVERGE", result.final_error,
        cfg.tol, result.wall_seconds,
        static_cast<unsigned long long>(result.total_updates),
        static_cast<unsigned long long>(result.rounds),
        static_cast<unsigned long long>(result.messages_sent),
        static_cast<unsigned long long>(result.messages_delivered),
        static_cast<unsigned long long>(result.messages_dropped),
        static_cast<unsigned long long>(result.inversions_observed));
  // Machine-parseable summary (scripts/launch_cluster.py reads this).
  std::printf("ASYNCIT_NODE_RESULT rank=%u ok=%d converged=%d error=%.17g "
              "updates=%llu sent=%llu delivered=%llu dropped=%llu\n",
              rank, ok ? 1 : 0, result.converged ? 1 : 0,
              result.final_error,
              static_cast<unsigned long long>(result.total_updates),
              static_cast<unsigned long long>(result.messages_sent),
              static_cast<unsigned long long>(result.messages_delivered),
              static_cast<unsigned long long>(result.messages_dropped));
  return ok ? 0 : 1;
}
