// asyncit_sim — a whole simulated world in one process (transport sim).
//
// Where asyncit_node hosts ONE rank on real sockets, asyncit_sim hosts
// EVERY rank of the configured world as cooperative fibers over the
// simnet/ virtual-time engine: 1000-rank unbounded-delay scenarios run
// on one core in seconds, deterministically — same config + seed, same
// event log, bit for bit. scripts/sim_sweep.py writes the config
// (validated against --schema, exactly like launch_cluster.py) and
// asserts on the summary line.
//
// Usage:
//   asyncit_sim --config sweep.cfg [--quiet] [--max-wall <sec>]
//   asyncit_sim --schema           # the node_config key table as JSON
//
// The config file is the asyncit_node schema (node_config.{hpp,cpp} —
// one SSOT for both tools) with `transport sim` and the sim_* topology /
// compute keys; node address lines are not needed. Only the solve
// workload runs here (the train-over-sim path is exercised through
// simnet::run_train_world in tests/simnet_test.cpp).
//
// Determinism is not assumed, it is CHECKED: the world runs `sim_runs`
// times and the tool fails unless every run reproduces the first run's
// event-log hash and final residual exactly. --max-wall N fails the run
// if the total wall clock across runs exceeds N seconds (the CI scale
// smoke's < 60 s acceptance gate).
//
// Output: one `ASYNCIT_SIM_JSON {...}` line (schema asyncit-sim/1):
//   world, mode, runs, deterministic, ok, converged_ranks, events,
//   events_per_sec, virtual_seconds, wall_seconds, final_residual,
//   log_hash (hex), updates, sent/delivered/dropped/partition_dropped,
//   wall_ok.
// Exit 0 iff every rank converged (or sits in the 10x stopped-peer band
// asyncit_node accepts), every run agreed, and --max-wall held.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "asyncit/asyncit.hpp"
#include "asyncit/net/node_config.hpp"
#include "asyncit/simnet/world.hpp"

namespace {

using namespace asyncit;

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "asyncit_sim: %s\n", msg.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  bool quiet = false;
  double max_wall = 0.0;  // 0 = no wall gate
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--schema") {
      std::printf("%s\n", net::node_config_schema_json().c_str());
      return 0;
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--max-wall" && i + 1 < argc) {
      max_wall = std::atof(argv[++i]);
      if (max_wall <= 0.0) die("--max-wall needs a positive value");
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      die("usage: asyncit_sim --config <file> [--quiet] "
          "[--max-wall <sec>] | asyncit_sim --schema");
    }
  }
  if (config_path.empty())
    die("usage: asyncit_sim --config <file> [--quiet] "
        "[--max-wall <sec>] | asyncit_sim --schema");

  net::NodeConfig cfg;
  std::string error;
  if (!net::load_node_config(config_path, cfg, error)) die(error);
  if (!cfg.sim) die("config must set `transport sim` (this is the "
                    "single-process virtual-time driver)");
  if (cfg.workload != net::Workload::kSolve)
    die("asyncit_sim runs the solve workload only");
  if (cfg.blocks < cfg.world)
    die("blocks must be >= world (every rank owns at least one block)");

  // The identical seeded problem every distributed rank would build.
  Rng rng(cfg.seed);
  auto sys = problems::make_diagonally_dominant_system(cfg.dim, cfg.nnz,
                                                       cfg.dominance, rng);
  la::Partition partition = la::Partition::balanced(cfg.dim, cfg.blocks);
  op::JacobiOperator jacobi(sys.a, sys.b, partition);
  const la::Vector x_star =
      op::picard_solve(jacobi, la::zeros(cfg.dim), 50000, 1e-14);

  simnet::WorldOptions wo;
  wo.mp.workers = cfg.world;
  wo.mp.solve.mode = cfg.mode;
  wo.mp.solve.staleness = cfg.staleness;
  wo.mp.solve.inner_steps = cfg.inner_steps;
  wo.mp.solve.publish_partials = cfg.publish_partials;
  wo.mp.solve.overwrite = cfg.overwrite;
  wo.mp.solve.tol = cfg.tol;
  wo.mp.solve.x_star = x_star;
  wo.mp.solve.max_seconds = cfg.max_seconds;  // VIRTUAL budget under sim
  wo.mp.solve.max_updates = cfg.max_updates;
  wo.mp.solve.check_every = cfg.check_every;
  wo.mp.solve.adaptive = cfg.adaptive;
  wo.mp.seed = cfg.seed;
  wo.mp.membership = cfg.membership;
  wo.mp.obs.trace_level = cfg.trace;
  wo.mp.obs.audit = cfg.audit;
  wo.sim = cfg.simcfg;
  wo.chaos = cfg.chaos;
  wo.chaos_policy = cfg.chaos_policy;

  WallTimer wall;
  bool deterministic = true;
  bool converged_ok = true;
  std::size_t converged_ranks = 0;
  std::uint64_t first_hash = 0;
  double first_residual = 0.0;
  simnet::WorldResult last;
  for (std::size_t run = 0; run < cfg.sim_runs; ++run) {
    simnet::WorldResult r = simnet::run_world(jacobi, la::zeros(cfg.dim), wo);
    if (run == 0) {
      first_hash = r.log_hash;
      first_residual = r.final_residual;
      converged_ranks = 0;
      converged_ok = true;
      for (const net::MpResult& rank : r.ranks) {
        // Same acceptance as asyncit_node: below tol, or within the 10x
        // band when another rank's stop announcement ended this one.
        const bool ok =
            rank.converged || (rank.peers_stopped > 0 &&
                               rank.final_error >= 0.0 &&
                               rank.final_error < 10.0 * cfg.tol);
        converged_ranks += rank.converged ? 1 : 0;
        converged_ok = converged_ok && ok;
      }
    } else if (r.log_hash != first_hash ||
               r.final_residual != first_residual) {
      deterministic = false;
      std::fprintf(stderr,
                   "asyncit_sim: run %zu DIVERGED: hash %016" PRIx64
                   " vs %016" PRIx64 ", residual %.17g vs %.17g\n",
                   run, r.log_hash, first_hash, r.final_residual,
                   first_residual);
    }
    if (!quiet)
      std::printf("[run %zu] %" PRIu64 " events, %.3f virtual s, "
                  "%.3f wall s, residual %.3e, hash %016" PRIx64 "\n",
                  run, r.events, r.virtual_seconds, r.wall_seconds,
                  r.final_residual, r.log_hash);
    last = std::move(r);
  }
  const double total_wall = wall.seconds();
  const bool wall_ok = max_wall <= 0.0 || total_wall <= max_wall;
  if (!wall_ok)
    std::fprintf(stderr,
                 "asyncit_sim: wall budget exceeded: %.3f s > %.3f s\n",
                 total_wall, max_wall);

  const bool ok = converged_ok && deterministic && wall_ok;
  const double events_per_sec =
      total_wall > 0.0
          ? double(last.events) * double(cfg.sim_runs) / total_wall
          : 0.0;
  std::printf(
      "ASYNCIT_SIM_JSON {\"schema\":\"asyncit-sim/1\",\"world\":%zu,"
      "\"mode\":\"%s\",\"runs\":%zu,\"deterministic\":%s,\"ok\":%s,"
      "\"converged_ranks\":%zu,\"events\":%" PRIu64
      ",\"events_per_sec\":%.9g,\"virtual_seconds\":%.6f,"
      "\"wall_seconds\":%.6f,\"final_residual\":%.17g,"
      "\"log_hash\":\"%016" PRIx64 "\",\"updates\":%" PRIu64
      ",\"sent\":%" PRIu64 ",\"delivered\":%" PRIu64 ",\"dropped\":%" PRIu64
      ",\"partition_dropped\":%" PRIu64 ",\"wall_ok\":%s}\n",
      cfg.world,
      cfg.mode == net::Mode::kAsync ? "async"
      : cfg.mode == net::Mode::kSsp ? "ssp"
                                    : "bsp",
      cfg.sim_runs, deterministic ? "true" : "false",
      ok ? "true" : "false", converged_ranks, last.events, events_per_sec,
      last.virtual_seconds, total_wall, last.final_residual, last.log_hash,
      last.total_updates, last.messages_sent, last.messages_delivered,
      last.messages_dropped, last.partition_dropped, wall_ok ? "true" : "false");
  return ok ? 0 : 1;
}
