#!/usr/bin/env python3
"""Merge per-rank asyncit Chrome trace files onto one cluster timeline.

Each asyncit_node rank exports `rank_<r>.trace.json` (schema
asyncit-trace/1, written by obs/exporter.cpp): event timestamps are
MICROseconds on the rank's own monotonic clock, zeroed at its recorder
enable, and `otherData.epoch_realtime_ns` records where that zero sits
on CLOCK_REALTIME. Ranks on one machine (the launch_cluster.py case)
share CLOCK_REALTIME, so shifting every rank's events by

    (epoch_realtime_ns[rank] - min over ranks) / 1000   [us]

puts all of them on a single timeline anchored at the earliest rank's
enable instant. The merged document loads directly in Perfetto /
chrome://tracing; each rank keeps its own process group (pid = rank).

Cross-check: pass the launcher log (or any file containing the
`ASYNCIT_NODE_START rank=R epoch_ns=E` markers asyncit_node prints at
solve start) via --log and the merge verifies each rank's trace anchor
sits within --skew-tolerance seconds of its start marker — a torn
config (mixed runs in one directory) fails loudly instead of producing
a silently misaligned timeline.

Usage:
    tools/trace_merge.py --out merged.json rank_0.trace.json rank_1...
    tools/trace_merge.py --dir /tmp/run --out merged.json [--log run.log]

Exit status: 0 on success, 1 on malformed input or failed cross-check.
"""

import argparse
import glob
import json
import os
import re
import sys

START_RE = re.compile(r"ASYNCIT_NODE_START\s+rank=(\d+)\s+epoch_ns=(\d+)")


def load_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    other = doc.get("otherData", {})
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents array")
    if "epoch_realtime_ns" not in other:
        raise ValueError(f"{path}: otherData.epoch_realtime_ns missing "
                         "(not an asyncit-trace/1 document?)")
    return {
        "path": path,
        "rank": int(other.get("rank", -1)),
        "epoch_ns": int(other["epoch_realtime_ns"]),
        "dropped": int(other.get("events_dropped", 0)),
        "events": events,
    }


def parse_start_markers(path):
    markers = {}
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        for line in f:
            m = START_RE.search(line)
            if m:
                markers[int(m.group(1))] = int(m.group(2))
    return markers


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="*", help="per-rank trace JSON files")
    ap.add_argument("--dir", default=None,
                    help="glob rank_*.trace.json from this directory")
    ap.add_argument("--out", required=True, help="merged trace output path")
    ap.add_argument("--log", default=None,
                    help="launcher log with ASYNCIT_NODE_START markers "
                         "(clock-alignment cross-check)")
    ap.add_argument("--skew-tolerance", type=float, default=30.0,
                    help="max |trace anchor - start marker| seconds "
                         "(anchor precedes the marker by the rendezvous "
                         "time; default 30)")
    args = ap.parse_args()

    paths = list(args.traces)
    if args.dir:
        paths += sorted(glob.glob(os.path.join(args.dir,
                                               "rank_*.trace.json")))
    if not paths:
        print("trace_merge: no input traces", file=sys.stderr)
        return 1

    try:
        traces = [load_trace(p) for p in paths]
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"trace_merge: {e}", file=sys.stderr)
        return 1

    ranks = [t["rank"] for t in traces]
    if len(set(ranks)) != len(ranks):
        print(f"trace_merge: duplicate ranks in inputs: {sorted(ranks)}",
              file=sys.stderr)
        return 1

    epoch0 = min(t["epoch_ns"] for t in traces)

    if args.log:
        markers = parse_start_markers(args.log)
        for t in traces:
            if t["rank"] not in markers:
                continue  # marker from an old binary / killed before start
            skew_s = abs(t["epoch_ns"] - markers[t["rank"]]) / 1e9
            if skew_s > args.skew_tolerance:
                print(f"trace_merge: rank {t['rank']} trace anchor is "
                      f"{skew_s:.3f}s from its ASYNCIT_NODE_START marker "
                      f"(> {args.skew_tolerance}s) — mixed runs in one "
                      "directory?", file=sys.stderr)
                return 1

    merged = []
    offsets_us = {}
    for t in traces:
        shift_us = (t["epoch_ns"] - epoch0) / 1e3
        offsets_us[str(t["rank"])] = shift_us
        for ev in t["events"]:
            if "ts" in ev:
                ev = dict(ev)
                ev["ts"] = ev["ts"] + shift_us
            merged.append(ev)
    # Stable chronological order (metadata events carry no ts; sort them
    # first so Perfetto names the tracks before their samples arrive).
    merged.sort(key=lambda ev: ev.get("ts", -1.0))

    doc = {
        "traceEvents": merged,
        "otherData": {
            "schema": "asyncit-trace-merged/1",
            "ranks": sorted(ranks),
            "epoch_realtime_ns": epoch0,
            "rank_offsets_us": offsets_us,
            "events_dropped": sum(t["dropped"] for t in traces),
        },
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    print(f"trace_merge: {len(merged)} events from {len(traces)} ranks "
          f"-> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
