#!/usr/bin/env python3
"""Merge per-rank asyncit Chrome trace files onto one cluster timeline.

Each asyncit_node rank exports either a single `rank_<r>.trace.json`
(schema asyncit-trace/1, written at exit by obs/exporter.cpp) or — when
the streaming flusher ran (obs/streamer.hpp) — a run of windowed chunks
`rank_<r>.window_<k>.trace.json` (schema asyncit-trace/2). Windows of a
rank partition that rank's event stream exactly: stitching them in
window_seq order reproduces what the single exit dump would have held.
A rank must not present both forms in one directory (that is a torn
run) and the merge rejects it.

Event timestamps are MICROseconds on the rank's own monotonic clock,
zeroed at its recorder enable, and `otherData.epoch_realtime_ns`
records where that zero sits on CLOCK_REALTIME. Ranks on one machine
(the launch_cluster.py case) share CLOCK_REALTIME, so shifting every
rank's events by

    (epoch_realtime_ns[rank] - min over ranks) / 1000   [us]

puts all of them on a single timeline anchored at the earliest rank's
enable instant. The merged document loads directly in Perfetto /
chrome://tracing; each rank keeps its own process group (pid = rank).

Drop accounting for windowed ranks is cross-checked: each window
carries its own drop delta (`events_dropped_window`) plus the
cumulative counter (`events_dropped`), and when the full window run
survives on disk (sequences contiguous from 0) the deltas must sum to
the final cumulative value — a double-draining consumer (the bug class
obs/streamer.hpp's single-path rule exists for) fails the merge loudly.
Rotated-away windows (sequence run not starting at 0) are tolerated;
the merged document reports the missing prefix per rank.

Cross-check: pass the launcher log (or any file containing the
`ASYNCIT_NODE_START rank=R epoch_ns=E` markers asyncit_node prints at
solve start) via --log and the merge verifies each rank's trace anchor
sits within --skew-tolerance seconds of its start marker — a torn
config (mixed runs in one directory) fails loudly instead of producing
a silently misaligned timeline.

Usage:
    tools/trace_merge.py --out merged.json rank_0.trace.json rank_1...
    tools/trace_merge.py --dir /tmp/run --out merged.json [--log run.log]

Exit status: 0 on success, 1 on malformed input or failed cross-check.
"""

import argparse
import glob
import json
import os
import re
import sys

START_RE = re.compile(r"ASYNCIT_NODE_START\s+rank=(\d+)\s+epoch_ns=(\d+)")
WINDOW_RE = re.compile(r"rank_(\d+)\.window_(\d+)\.trace\.json$")


def load_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    other = doc.get("otherData", {})
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents array")
    if "epoch_realtime_ns" not in other:
        raise ValueError(f"{path}: otherData.epoch_realtime_ns missing "
                         "(not an asyncit-trace document?)")
    window_seq = other.get("window_seq")
    if window_seq is None and WINDOW_RE.search(os.path.basename(path)):
        raise ValueError(f"{path}: window-named file without "
                         "otherData.window_seq (not asyncit-trace/2?)")
    return {
        "path": path,
        "rank": int(other.get("rank", -1)),
        "epoch_ns": int(other["epoch_realtime_ns"]),
        "dropped": int(other.get("events_dropped", 0)),
        "window_seq": None if window_seq is None else int(window_seq),
        "window_dropped": int(other.get("events_dropped_window", 0)),
        "events": events,
    }


def stitch_rank(rank, docs):
    """Collapse one rank's loaded docs into a single plain-shaped trace.

    Exactly one plain doc passes through untouched; a window run is
    concatenated in window_seq order, keeping the Perfetto metadata
    naming events (the ones without "ts") from the first window only so
    the stitched stream is byte-comparable to a single exit dump of the
    same events. Returns (trace, rotated_out_dropped).
    """
    plain = [d for d in docs if d["window_seq"] is None]
    windows = [d for d in docs if d["window_seq"] is not None]
    if plain and windows:
        raise ValueError(
            f"rank {rank}: both a one-shot trace ({plain[0]['path']}) and "
            f"streamed windows ({windows[0]['path']}) — mixed runs in one "
            "directory")
    if len(plain) > 1:
        raise ValueError(f"rank {rank}: duplicate one-shot traces: "
                         f"{sorted(d['path'] for d in plain)}")
    if plain:
        return plain[0], 0

    windows.sort(key=lambda d: d["window_seq"])
    seqs = [d["window_seq"] for d in windows]
    if len(set(seqs)) != len(seqs):
        raise ValueError(f"rank {rank}: duplicate window sequences {seqs}")
    if seqs != list(range(seqs[0], seqs[0] + len(seqs))):
        raise ValueError(f"rank {rank}: window sequence gap in {seqs} — a "
                         "mid-run window is missing (not just a rotated "
                         "prefix)")
    epochs = {d["epoch_ns"] for d in windows}
    if len(epochs) != 1:
        raise ValueError(f"rank {rank}: windows disagree on "
                         f"epoch_realtime_ns ({sorted(epochs)}) — mixed "
                         "runs in one directory")

    events = list(windows[0]["events"])
    for d in windows[1:]:
        events.extend(ev for ev in d["events"] if "ts" in ev)

    # The LAST window's cumulative counter is the rank's total; when the
    # whole run survived rotation the per-window deltas must account for
    # it exactly.
    dropped = windows[-1]["dropped"]
    delta_sum = sum(d["window_dropped"] for d in windows)
    if delta_sum > dropped:
        raise ValueError(
            f"rank {rank}: window drop deltas sum to {delta_sum} > "
            f"cumulative {dropped} — a consumer drained the rings twice")
    if seqs[0] == 0 and delta_sum != dropped:
        raise ValueError(
            f"rank {rank}: complete window run but drop deltas sum to "
            f"{delta_sum} != cumulative {dropped} — events were drained "
            "outside the streamer's single path")
    rotated_out = dropped - delta_sum if seqs[0] > 0 else 0

    return {
        "path": windows[0]["path"],
        "rank": rank,
        "epoch_ns": windows[0]["epoch_ns"],
        "dropped": dropped,
        "window_seq": None,
        "window_dropped": 0,
        "events": events,
        "windows": len(windows),
        "first_seq": seqs[0],
    }, rotated_out


def parse_start_markers(path):
    markers = {}
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        for line in f:
            m = START_RE.search(line)
            if m:
                markers[int(m.group(1))] = int(m.group(2))
    return markers


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="*", help="per-rank trace JSON files")
    ap.add_argument("--dir", default=None,
                    help="glob rank_*.trace.json and "
                         "rank_*.window_*.trace.json from this directory")
    ap.add_argument("--out", required=True, help="merged trace output path")
    ap.add_argument("--log", default=None,
                    help="launcher log with ASYNCIT_NODE_START markers "
                         "(clock-alignment cross-check)")
    ap.add_argument("--skew-tolerance", type=float, default=30.0,
                    help="max |trace anchor - start marker| seconds "
                         "(anchor precedes the marker by the rendezvous "
                         "time; default 30)")
    args = ap.parse_args()

    paths = list(args.traces)
    if args.dir:
        # One glob: rank_*.trace.json also matches the window names;
        # load_trace + stitch_rank classify by otherData.window_seq.
        paths += sorted(glob.glob(os.path.join(args.dir,
                                               "rank_*.trace.json")))
    if not paths:
        print("trace_merge: no input traces", file=sys.stderr)
        return 1

    try:
        docs = []
        for p in paths:
            try:
                docs.append(load_trace(p))
            except json.JSONDecodeError as e:
                # A SIGKILLed rank can die mid-flush, leaving its final
                # streaming window truncated — exactly the post-mortem
                # case the flight recorder exists for. Skip ONLY
                # window-named files: losing the newest window must not
                # cost the older ones, and a gap in the middle of a run
                # still fails the stitch-time sequence check. A truncated
                # plain exit dump stays a hard error (nothing kills a
                # rank between starting and finishing that atomic write
                # except a bug worth hearing about).
                if WINDOW_RE.search(os.path.basename(p)):
                    print(f"trace_merge: skipping truncated window {p}: "
                          f"{e}", file=sys.stderr)
                    continue
                raise
        if not docs:
            print("trace_merge: no readable traces", file=sys.stderr)
            return 1
        by_rank = {}
        for d in docs:
            by_rank.setdefault(d["rank"], []).append(d)
        traces = []
        windowed_ranks = {}
        for rank in sorted(by_rank):
            stitched, rotated_out = stitch_rank(rank, by_rank[rank])
            traces.append(stitched)
            if "windows" in stitched:
                windowed_ranks[str(rank)] = {
                    "windows": stitched["windows"],
                    "first_seq": stitched["first_seq"],
                    "rotated_out_dropped": rotated_out,
                }
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"trace_merge: {e}", file=sys.stderr)
        return 1

    ranks = [t["rank"] for t in traces]

    epoch0 = min(t["epoch_ns"] for t in traces)

    if args.log:
        markers = parse_start_markers(args.log)
        for t in traces:
            if t["rank"] not in markers:
                continue  # marker from an old binary / killed before start
            skew_s = abs(t["epoch_ns"] - markers[t["rank"]]) / 1e9
            if skew_s > args.skew_tolerance:
                print(f"trace_merge: rank {t['rank']} trace anchor is "
                      f"{skew_s:.3f}s from its ASYNCIT_NODE_START marker "
                      f"(> {args.skew_tolerance}s) — mixed runs in one "
                      "directory?", file=sys.stderr)
                return 1

    merged = []
    offsets_us = {}
    for t in traces:
        shift_us = (t["epoch_ns"] - epoch0) / 1e3
        offsets_us[str(t["rank"])] = shift_us
        for ev in t["events"]:
            if "ts" in ev:
                ev = dict(ev)
                ev["ts"] = ev["ts"] + shift_us
            merged.append(ev)
    # Stable chronological order (metadata events carry no ts; sort them
    # first so Perfetto names the tracks before their samples arrive).
    merged.sort(key=lambda ev: ev.get("ts", -1.0))

    other = {
        "schema": "asyncit-trace-merged/1",
        "ranks": sorted(ranks),
        "epoch_realtime_ns": epoch0,
        "rank_offsets_us": offsets_us,
        "events_dropped": sum(t["dropped"] for t in traces),
    }
    if windowed_ranks:
        other["windowed_ranks"] = windowed_ranks
    doc = {"traceEvents": merged, "otherData": other}
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    print(f"trace_merge: {len(merged)} events from {len(traces)} ranks "
          f"-> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
