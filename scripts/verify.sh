#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
# Usage:
#   scripts/verify.sh                               # legacy: build/ dir, default build type
#   scripts/verify.sh [build-dir]                   # legacy: custom build dir
#   scripts/verify.sh --preset <name> [cmake args]  # CMakePresets.json preset
#
# Presets (release | debug | asan | tsan) are exactly what
# .github/workflows/ci.yml runs, so `scripts/verify.sh --preset asan`
# reproduces the CI sanitizer leg locally and `--preset tsan` the
# ThreadSanitizer leg (its test preset filters to net_test,
# transport_test, membership_test and the multi-process churn_smoke —
# the suites with real concurrent threads and processes). Extra
# arguments after the preset name are forwarded to the configure step
# (e.g. -DCMAKE_CXX_COMPILER_LAUNCHER=ccache).
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--preset" ]]; then
  PRESET="${2:?usage: scripts/verify.sh --preset <release|debug|asan|tsan> [cmake args]}"
  shift 2
  cmake --preset "$PRESET" "$@"
  cmake --build --preset "$PRESET" -j "$(nproc)"
  ctest --preset "$PRESET" -j "$(nproc)"
else
  BUILD_DIR="${1:-build}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  cd "$BUILD_DIR"
  ctest --output-on-failure -j
fi
