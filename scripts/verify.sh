#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
# Usage:
#   scripts/verify.sh                               # legacy: build/ dir, default build type
#   scripts/verify.sh [build-dir]                   # legacy: custom build dir
#   scripts/verify.sh --preset <name> [cmake args]  # CMakePresets.json preset
#   scripts/verify.sh --preset <name> --simd-sweep  # + full ctest once per
#                                                   #   available SIMD level
#
# Presets (release | debug | asan | tsan) are exactly what
# .github/workflows/ci.yml runs, so `scripts/verify.sh --preset asan`
# reproduces the CI sanitizer leg locally and `--preset tsan` the
# ThreadSanitizer leg (its test preset filters to kernels_test, net_test,
# transport_test, membership_test, obs_test, train_test — the trace rings
# and the threaded PSGD server/worker pumps are concurrent structures
# tsan must bless — and the multi-process churn_smoke).
# The release/debug/asan presets run the FULL suite, which includes the
# train_test unit suite plus the multi-process train_smoke_{bsp,tap,ssp}
# and train_churn_smoke cluster tests.
# Extra arguments after the preset name are forwarded to the configure
# step (e.g. -DCMAKE_CXX_COMPILER_LAUNCHER=ccache).
#
# --simd-sweep re-runs the suite once per SIMD dispatch level this host
# can execute (ASYNCIT_SIMD=scalar always; avx2/avx512 per /proc/cpuinfo
# on x86-64, neon on aarch64) — the CI ISA-sweep leg, runnable locally.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"

SIMD_SWEEP=0
ARGS=()
for a in "$@"; do
  if [[ "$a" == "--simd-sweep" ]]; then SIMD_SWEEP=1; else ARGS+=("$a"); fi
done
set -- ${ARGS[@]+"${ARGS[@]}"}

# SIMD dispatch levels this host can execute — shared helper (also used
# by the CI tsan job); scripts/simd_levels.sh documents the authoritative
# C++ predicate it mirrors. Absolute path: the legacy branch below cds
# into the build directory before sweeping.
simd_levels() { "$REPO_ROOT/scripts/simd_levels.sh"; }

if [[ "${1:-}" == "--preset" ]]; then
  PRESET="${2:?usage: scripts/verify.sh --preset <release|debug|asan|tsan> [--simd-sweep] [cmake args]}"
  shift 2
  cmake --preset "$PRESET" "$@"
  cmake --build --preset "$PRESET" -j "$(nproc)"
  if [[ "$SIMD_SWEEP" == 1 ]]; then
    # The sweep covers every level including the auto-detected best, so
    # a separate default-level pass would only repeat one of its legs.
    # ASYNCIT_SIMD_REQUIRE makes dispatcher fallback FATAL (kernels_test):
    # a detection regression must fail the leg, not degrade it to scalar.
    for lvl in $(simd_levels); do
      echo "== ISA sweep: full suite with ASYNCIT_SIMD=$lvl =="
      ASYNCIT_SIMD="$lvl" ASYNCIT_SIMD_REQUIRE="$lvl" \
        ctest --preset "$PRESET" -j "$(nproc)"
    done
  else
    ctest --preset "$PRESET" -j "$(nproc)"
  fi
else
  BUILD_DIR="${1:-build}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  cd "$BUILD_DIR"
  if [[ "$SIMD_SWEEP" == 1 ]]; then
    for lvl in $(simd_levels); do
      echo "== ISA sweep: full suite with ASYNCIT_SIMD=$lvl =="
      ASYNCIT_SIMD="$lvl" ASYNCIT_SIMD_REQUIRE="$lvl" \
        ctest --output-on-failure -j
    done
  else
    ctest --output-on-failure -j
  fi
fi
