#!/usr/bin/env python3
"""Drive one simnet virtual-time sweep and assert on its summary line.

The single-process analogue of launch_cluster.py: writes a `transport
sim` node config, validates every key it wrote against the table
`asyncit_sim --schema` dumps (the binary's own parser table — schema
asyncit-node-config/1, the same SSOT asyncit_node uses), runs the
binary, parses the one ASYNCIT_SIM_JSON line (schema asyncit-sim/1) and
fails unless the world converged AND every re-run replayed bitwise
(`deterministic`). ctest runs this twice:

  sim_smoke        48 ranks, 2 runs — the every-preset leg (release,
                   asan, tsan: the fiber annotations are load-bearing);
  sim_scale_smoke  1000 ranks, dim 1000, 2 runs — the acceptance bar of
                   the subsystem; Release adds --max-wall 60.

Exit codes: 0 ok; 1 run failed a gate; 2 setup/drift error.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load_schema_keys(binary):
    """Key table from `asyncit_sim --schema` (asyncit-node-config/1), or
    None when the binary cannot dump it."""
    try:
        out = subprocess.run([binary, "--schema"], capture_output=True,
                             text=True, timeout=60)
        doc = json.loads(out.stdout)
        if out.returncode == 0 and doc.get("schema") == \
                "asyncit-node-config/1":
            return {k["key"] for k in doc["keys"]}
    except (OSError, subprocess.TimeoutExpired, json.JSONDecodeError,
            KeyError, TypeError):
        pass
    return None


def config_lines(args):
    lines = [("world", args.world), ("seed", args.seed),
             ("workload", "solve"), ("transport", "sim"),
             ("dim", args.dim), ("blocks", args.blocks or args.world),
             ("nnz", args.nnz), ("dominance", args.dominance),
             ("mode", args.mode), ("tol", args.tol),
             ("max_seconds", args.max_virtual),
             ("check_every", args.check_every),
             ("sim_runs", args.runs),
             ("sim_latency", args.latency),
             ("sim_jitter", 0.5),
             ("sim_compute", args.compute),
             ("sim_compute_jitter", 0.3)]
    if args.chaos:
        lines += [("chaos", 1), ("min_latency", 2e-4),
                  ("max_latency", 2e-3)]
    return lines


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary", help="path to asyncit_sim")
    ap.add_argument("--world", type=int, default=48)
    ap.add_argument("--dim", type=int, default=0,
                    help="problem dimension (default: world)")
    ap.add_argument("--blocks", type=int, default=0,
                    help="partition blocks (default: world)")
    ap.add_argument("--nnz", type=int, default=3)
    ap.add_argument("--dominance", type=float, default=8.0)
    ap.add_argument("--mode", default="async")
    ap.add_argument("--tol", type=float, default=1e-6)
    ap.add_argument("--seed", type=int, default=97)
    ap.add_argument("--runs", type=int, default=2)
    ap.add_argument("--latency", type=float, default=1e-4)
    ap.add_argument("--compute", type=float, default=1e-3)
    ap.add_argument("--check-every", type=int, default=4,
                    help="stop-check cadence in own updates; sim updates "
                    "are cheap, so check often instead of overshooting "
                    "the tolerance by a dense-broadcast round")
    ap.add_argument("--max-virtual", type=float, default=300.0,
                    help="virtual-seconds budget (costs no wall time)")
    ap.add_argument("--max-wall", type=float, default=0.0,
                    help="fail if total wall exceeds this (seconds)")
    ap.add_argument("--chaos", action="store_true",
                    help="stack the chaos delay model over the sim fabric")
    args = ap.parse_args()
    if args.dim == 0:
        args.dim = args.world

    lines = config_lines(args)
    schema_keys = load_schema_keys(args.binary)
    if schema_keys is None:
        print("sim_sweep: WARNING: binary cannot dump its config schema "
              "(--schema) — key validation skipped", flush=True)
    else:
        unknown = sorted({k for k, _ in lines} - schema_keys)
        if unknown:
            print(f"sim_sweep: config keys not in the binary's schema: "
                  f"{unknown} (driver/parser drift — see "
                  "src/asyncit/net/node_config.cpp)", file=sys.stderr)
            return 2

    cfg_fd, cfg_path = tempfile.mkstemp(prefix="asyncit_sim_",
                                        suffix=".cfg")
    try:
        with os.fdopen(cfg_fd, "w") as f:
            for key, value in lines:
                f.write(f"{key} {value}\n")
        cmd = [args.binary, "--config", cfg_path]
        if args.max_wall > 0.0:
            cmd += ["--max-wall", str(args.max_wall)]
        print(f"sim_sweep: {args.world} ranks, dim {args.dim}, "
              f"{args.runs} runs, config {cfg_path}", flush=True)
        out = subprocess.run(cmd, capture_output=True, text=True)
        sys.stdout.write(out.stdout)
        sys.stderr.write(out.stderr)

        summary = None
        for line in out.stdout.splitlines():
            if line.startswith("ASYNCIT_SIM_JSON "):
                summary = json.loads(line[len("ASYNCIT_SIM_JSON "):])
        if summary is None:
            print("sim_sweep: no ASYNCIT_SIM_JSON line in output",
                  file=sys.stderr)
            return 2
        if summary.get("schema") != "asyncit-sim/1":
            print(f"sim_sweep: unexpected summary schema "
                  f"{summary.get('schema')!r}", file=sys.stderr)
            return 2

        failures = []
        if not summary.get("ok"):
            failures.append("ok=false")
        if not summary.get("deterministic"):
            failures.append(f"{args.runs} runs did not replay "
                            "identically")
        if summary.get("converged_ranks") != args.world:
            failures.append(f"converged_ranks "
                            f"{summary.get('converged_ranks')} != "
                            f"{args.world}")
        if not summary.get("wall_ok"):
            failures.append("wall budget exceeded")
        if out.returncode != 0:
            failures.append(f"exit code {out.returncode}")
        if failures:
            print("sim_sweep: FAIL: " + "; ".join(failures),
                  file=sys.stderr)
            return 1
        print(f"sim_sweep: OK — {summary['events']} events/run, "
              f"{summary['events_per_sec']:.0f} ev/s, "
              f"{summary['virtual_seconds']:.3f} virtual s in "
              f"{summary['wall_seconds']:.3f} wall s, "
              f"log hash {summary['log_hash']}")
        return 0
    finally:
        try:
            os.unlink(cfg_path)
        except OSError:
            pass


if __name__ == "__main__":
    sys.exit(main())
