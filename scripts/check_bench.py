#!/usr/bin/env python3
"""Compare a BENCH_*.json report against a committed baseline, and
optionally track wall-clock trends across runs.

Usage:
    scripts/check_bench.py <report.json> <baseline.json>
        [--history PATH] [--drift-window N] [--drift-ratio R]
        [--history-limit M]

Baseline format (schema asyncit-bench-baseline/1):

    {
      "schema": "asyncit-bench-baseline/1",
      "bench": "kernels",
      "checks": [
        {"scenario": "spmv_n4096_nnz16", "field": "n", "equals": 4096},
        {"scenario": "spmv_n4096_nnz16", "field": "parity_max_abs_diff",
         "max": 1e-9},
        {"scenario": "block_residual", "field": "speedup_median",
         "warn_min": 1.5}
      ]
    }

Check kinds:
    equals             exact match (numbers, bools, strings) -> HARD FAIL
    min / max          inclusive band (numbers)              -> HARD FAIL
    warn_min/warn_max  inclusive band (numbers)              -> WARN ONLY

Fields are looked up in the scenario's "deterministic" dict first, then in
"measured". A missing scenario or field is a hard failure — a silently
dropped scenario is exactly the kind of drift the gate exists to catch.
The exception is checks marked `"optional": true`: those are SKIPPED when
the scenario or field is absent but still enforced (at full strength) when
present. They exist for host-dependent coverage — the per-SIMD-level
kernel parity fields only appear for the dispatch levels the runner
supports (an ARM runner has no avx2 fields, a scalar-only container has
neither), yet where a level runs its parity must still hard-gate.
Hard checks are meant for machine-independent fields (iteration counts,
convergence flags, residual tolerance bands, parity diffs); wall-clock
derived fields (timings, speedups) belong in warn-only checks.

Trend history (--history): the report's measured numeric fields are
appended as one JSONL record to PATH (CI persists the file across runs as
a downloaded artifact/cache). Before appending, time-like fields (name
contains "wall"/"seconds" or ends in _s/_ms) are drift-checked: with at
least 2N prior+current samples, WARN when the median of the newest N
exceeds drift-ratio x the median of the previous N — the sustained-
regression signal a single warn_max band cannot see. Trend warnings never
fail the gate.

Exit status: 0 = all hard checks pass (warnings allowed), 1 = any hard
failure, 2 = usage / malformed input.
"""

import argparse
import json
import os
import statistics
import sys


def fail(msg: str) -> None:
    print(f"check_bench: FATAL: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")


def lookup(scenario: dict, field: str):
    for section in ("deterministic", "measured"):
        sec = scenario.get(section, {})
        if field in sec:
            return sec[field], section
    return None, None


def numbers_equal(a, b) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    return a == b


def is_time_field(field: str) -> bool:
    return ("wall" in field or "seconds" in field or field.endswith("_s")
            or field.endswith("_ms"))


def run_checks(report: dict, baseline: dict) -> int:
    scenarios = {s.get("name"): s for s in report.get("scenarios", [])}
    failures = 0
    warnings = 0
    checked = 0

    for check in baseline.get("checks", []):
        name = check.get("scenario")
        field = check.get("field")
        label = f"{name}.{field}"
        scenario = scenarios.get(name)
        if scenario is None:
            if check.get("optional"):
                print(f"skip  {label}: scenario not in report (optional)")
                continue
            print(f"FAIL  {label}: scenario missing from report")
            failures += 1
            continue
        value, section = lookup(scenario, field)
        if section is None:
            if check.get("optional"):
                print(f"skip  {label}: field not in report (optional)")
                continue
            print(f"FAIL  {label}: field missing from report")
            failures += 1
            continue

        checked += 1
        hard_msgs = []
        warn_msgs = []
        if "equals" in check and not numbers_equal(value, check["equals"]):
            hard_msgs.append(f"expected == {check['equals']!r}")
        if "min" in check and not (isinstance(value, (int, float))
                                   and float(value) >= check["min"]):
            hard_msgs.append(f"expected >= {check['min']}")
        if "max" in check and not (isinstance(value, (int, float))
                                   and float(value) <= check["max"]):
            hard_msgs.append(f"expected <= {check['max']}")
        if "warn_min" in check and not (isinstance(value, (int, float))
                                        and float(value) >= check["warn_min"]):
            warn_msgs.append(f"expected >= {check['warn_min']}")
        if "warn_max" in check and not (isinstance(value, (int, float))
                                        and float(value) <= check["warn_max"]):
            warn_msgs.append(f"expected <= {check['warn_max']}")

        if hard_msgs:
            print(f"FAIL  {label} = {value!r}  ({'; '.join(hard_msgs)})")
            failures += 1
        elif warn_msgs:
            print(f"WARN  {label} = {value!r}  ({'; '.join(warn_msgs)})")
            warnings += 1
        else:
            print(f"ok    {label} = {value!r}")

    print(f"\ncheck_bench: {checked} checks, {failures} failures, "
          f"{warnings} warnings "
          f"({report.get('bench')} @ "
          f"{report.get('stamp', {}).get('git_sha', '?')})")
    return failures


def measured_record(report: dict) -> dict:
    """Compact one-run record: every numeric measured field per scenario."""
    measured = {}
    for scenario in report.get("scenarios", []):
        fields = {}
        for key, value in scenario.get("measured", {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            fields[key] = value
        if fields:
            measured[scenario.get("name", "?")] = fields
    return {
        "sha": report.get("stamp", {}).get("git_sha", "?"),
        "bench": report.get("bench", "?"),
        "measured": measured,
    }


def load_history(path: str) -> list:
    records = []
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # A torn line (interrupted CI write) loses one sample, not
                # the whole trend.
                print(f"check_bench: history {path}:{lineno}: "
                      f"skipping unparseable line", file=sys.stderr)
    return records


def check_drift(history: list, current: dict, window: int,
                ratio: float) -> int:
    """Warn-only sustained-drift scan over time-like measured fields."""
    warnings = 0
    for name, fields in current["measured"].items():
        for field, value in fields.items():
            if not is_time_field(field):
                continue
            series = [
                rec["measured"][name][field]
                for rec in history
                if isinstance(rec.get("measured", {}).get(name, {})
                              .get(field), (int, float))
            ]
            series.append(value)
            if len(series) < 2 * window:
                continue
            recent = statistics.median(series[-window:])
            prior = statistics.median(series[-2 * window:-window])
            if prior > 0 and recent > ratio * prior:
                print(f"WARN  trend {name}.{field}: median of last "
                      f"{window} runs {recent:.6g} > {ratio:g}x previous "
                      f"{window}-run median {prior:.6g} (sustained drift)")
                warnings += 1
    return warnings


def update_history(path: str, history: list, current: dict,
                   limit: int) -> None:
    """Appends `current` and prunes THIS bench's records to `limit`.
    Records of other benches sharing the file are preserved untouched."""
    bench = current["bench"]
    history = history + [current]
    ours = [rec for rec in history if rec.get("bench") == bench]
    if len(ours) > limit:
        drop = set(map(id, ours[:len(ours) - limit]))
        history = [rec for rec in history if id(rec) not in drop]
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        for rec in history:
            f.write(json.dumps(rec, separators=(",", ":")) + "\n")


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Gate a BENCH_*.json report against a baseline.",
        add_help=True)
    ap.add_argument("report")
    ap.add_argument("baseline")
    ap.add_argument("--history", default=None,
                    help="JSONL trend file: append this run's measured "
                         "fields and warn on sustained wall-clock drift")
    ap.add_argument("--drift-window", type=int, default=5)
    ap.add_argument("--drift-ratio", type=float, default=1.3)
    ap.add_argument("--history-limit", type=int, default=200)
    args = ap.parse_args()

    report = load(args.report)
    baseline = load(args.baseline)

    if report.get("schema") != "asyncit-bench/1":
        fail(f"{args.report}: unexpected report schema "
             f"{report.get('schema')!r}")
    if baseline.get("schema") != "asyncit-bench-baseline/1":
        fail(f"{args.baseline}: unexpected baseline schema "
             f"{baseline.get('schema')!r}")
    if report.get("bench") != baseline.get("bench"):
        fail(f"bench name mismatch: report {report.get('bench')!r} vs "
             f"baseline {baseline.get('bench')!r}")

    failures = run_checks(report, baseline)

    if args.history:
        current = measured_record(report)
        history = load_history(args.history)
        ours = [rec for rec in history
                if rec.get("bench") == current["bench"]]
        drift_warnings = check_drift(ours, current, args.drift_window,
                                     args.drift_ratio)
        update_history(args.history, history, current, args.history_limit)
        print(f"check_bench: trend {args.history}: "
              f"{len(ours) + 1} samples of {current['bench']}, "
              f"{drift_warnings} drift warnings")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
