#!/usr/bin/env python3
"""Compare a BENCH_*.json report against a committed baseline.

Usage:
    scripts/check_bench.py <report.json> <baseline.json>

Baseline format (schema asyncit-bench-baseline/1):

    {
      "schema": "asyncit-bench-baseline/1",
      "bench": "kernels",
      "checks": [
        {"scenario": "spmv_n4096_nnz16", "field": "n", "equals": 4096},
        {"scenario": "spmv_n4096_nnz16", "field": "parity_max_abs_diff",
         "max": 1e-9},
        {"scenario": "block_residual", "field": "speedup_median",
         "warn_min": 1.5}
      ]
    }

Check kinds:
    equals             exact match (numbers, bools, strings) -> HARD FAIL
    min / max          inclusive band (numbers)              -> HARD FAIL
    warn_min/warn_max  inclusive band (numbers)              -> WARN ONLY

Fields are looked up in the scenario's "deterministic" dict first, then in
"measured". A missing scenario or field is a hard failure — a silently
dropped scenario is exactly the kind of drift the gate exists to catch.
Hard checks are meant for machine-independent fields (iteration counts,
convergence flags, residual tolerance bands, parity diffs); wall-clock
derived fields (timings, speedups) belong in warn-only checks.

Exit status: 0 = all hard checks pass (warnings allowed), 1 = any hard
failure, 2 = usage / malformed input.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_bench: FATAL: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")


def lookup(scenario: dict, field: str):
    for section in ("deterministic", "measured"):
        sec = scenario.get(section, {})
        if field in sec:
            return sec[field], section
    return None, None


def numbers_equal(a, b) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    return a == b


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2

    report = load(sys.argv[1])
    baseline = load(sys.argv[2])

    if report.get("schema") != "asyncit-bench/1":
        fail(f"{sys.argv[1]}: unexpected report schema "
             f"{report.get('schema')!r}")
    if baseline.get("schema") != "asyncit-bench-baseline/1":
        fail(f"{sys.argv[2]}: unexpected baseline schema "
             f"{baseline.get('schema')!r}")
    if report.get("bench") != baseline.get("bench"):
        fail(f"bench name mismatch: report {report.get('bench')!r} vs "
             f"baseline {baseline.get('bench')!r}")

    scenarios = {s.get("name"): s for s in report.get("scenarios", [])}
    failures = 0
    warnings = 0
    checked = 0

    for check in baseline.get("checks", []):
        name = check.get("scenario")
        field = check.get("field")
        label = f"{name}.{field}"
        scenario = scenarios.get(name)
        if scenario is None:
            print(f"FAIL  {label}: scenario missing from report")
            failures += 1
            continue
        value, section = lookup(scenario, field)
        if section is None:
            print(f"FAIL  {label}: field missing from report")
            failures += 1
            continue

        checked += 1
        hard_msgs = []
        warn_msgs = []
        if "equals" in check and not numbers_equal(value, check["equals"]):
            hard_msgs.append(f"expected == {check['equals']!r}")
        if "min" in check and not (isinstance(value, (int, float))
                                   and float(value) >= check["min"]):
            hard_msgs.append(f"expected >= {check['min']}")
        if "max" in check and not (isinstance(value, (int, float))
                                   and float(value) <= check["max"]):
            hard_msgs.append(f"expected <= {check['max']}")
        if "warn_min" in check and not (isinstance(value, (int, float))
                                        and float(value) >= check["warn_min"]):
            warn_msgs.append(f"expected >= {check['warn_min']}")
        if "warn_max" in check and not (isinstance(value, (int, float))
                                        and float(value) <= check["warn_max"]):
            warn_msgs.append(f"expected <= {check['warn_max']}")

        if hard_msgs:
            print(f"FAIL  {label} = {value!r}  ({'; '.join(hard_msgs)})")
            failures += 1
        elif warn_msgs:
            print(f"WARN  {label} = {value!r}  ({'; '.join(warn_msgs)})")
            warnings += 1
        else:
            print(f"ok    {label} = {value!r}")

    print(f"\ncheck_bench: {checked} checks, {failures} failures, "
          f"{warnings} warnings "
          f"({report.get('bench')} @ "
          f"{report.get('stamp', {}).get('git_sha', '?')})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
