#!/usr/bin/env bash
# Prints the SIMD dispatch levels this host's CPU can execute, lowest
# first (e.g. "scalar avx2 avx512"). Single shell-side mirror of the
# AUTHORITATIVE predicate, cpu_supports() in
# src/asyncit/linalg/simd_dispatch.cpp — keep the two in sync when adding
# a backend. Used by scripts/verify.sh --simd-sweep and the CI tsan job,
# which pair each level with ASYNCIT_SIMD_REQUIRE: an emitted level whose
# backend IS compiled in must then be dispatchable or kernels_test fails
# the leg (a level the toolchain could not compile skips loudly instead —
# the test distinguishes the two; see
# DispatchEnv.RequiredLevelMustBeSupportedNotFallenBackFrom).
set -euo pipefail

levels="scalar"
case "$(uname -m)" in
  x86_64)
    if [[ -r /proc/cpuinfo ]] && grep -q '^flags' /proc/cpuinfo; then
      grep -qw avx2 /proc/cpuinfo && grep -qw fma /proc/cpuinfo \
        && levels="$levels avx2"
      # avx512 additionally requires avx2+fma (256-bit sparse path).
      grep -qw avx512f /proc/cpuinfo && grep -qw avx512vl /proc/cpuinfo \
        && grep -qw avx2 /proc/cpuinfo && grep -qw fma /proc/cpuinfo \
        && levels="$levels avx512"
    else
      # An UNDER-claim silently drops the sweep's vector coverage (the
      # suite still passes, just without the avx2/avx512 parity legs), so
      # a host where detection cannot run at all must say so out loud.
      echo "simd_levels.sh: WARNING: /proc/cpuinfo unreadable or without" \
           "'flags' lines on x86_64 — sweeping SCALAR ONLY, vector-level" \
           "parity coverage is lost on this host" >&2
    fi
    ;;
  aarch64 | arm64) levels="$levels neon" ;;  # arm64: macOS spelling
esac
echo "$levels"
