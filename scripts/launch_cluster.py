#!/usr/bin/env python3
"""Launch a multi-process asyncit TCP cluster on this machine.

Picks one free loopback port per rank, writes the asyncit_node config
file, spawns one asyncit_node process per rank, streams their output with
a [rank k] prefix, and aggregates the per-rank results (the
`ASYNCIT_NODE_JSON` asyncit-node/3 line each rank prints). Exit status 0
only when EVERY rank that was supposed to finish exits 0 (its local
oracle error met the tolerance / the training target was reached).

Every key this launcher writes is validated against the table
`asyncit_node --schema` dumps (asyncit-node-config/1) before any process
starts — the node's parser and this script share ONE schema
(src/asyncit/net/node_config.cpp), so a drifted launcher fails fast with
the offending key instead of a per-rank parse error storm.

Workloads (--workload):
  solve   (default) net::run_node over the seeded Jacobi system.
  train   parameter-server SGD: rank 0 is the server, ranks 1..world-1
          are minibatch workers over the seeded synthetic logistic
          dataset (--samples/--features/..., --discipline bsp|tap|ssp).
          Success means the server's train accuracy reached
          --target-accuracy before the epoch/wall budgets ran out.

Churn mode (--churn) exercises the elastic runtimes:

* solve: the world gets --spares extra slots marked `late`, the initial
  ranks start solving, one rank is SIGKILLed mid-solve (--kill-rank /
  --kill-after) and one spare is started (--join-after). The killed rank
  is an EXPECTED casualty; every other rank — survivors and the joiner —
  must still converge to the same tolerance as a static run, which is
  the acceptance criterion of the membership subsystem. The aggregate
  asserts that the survivors actually observed the death and the join
  (membership counters), and that no rank saw corrupt frames
  (bad_frames) or foreign geometry (frames_rejected).
* train: one WORKER rank is SIGKILLed mid-run over plain elastic TCP
  (`elastic 1`, no SWIM detector — membership rides the solve runtime).
  Only the TAP discipline is eligible: its server takes any delta from
  any worker, so losing a worker merely thins the delta stream; BSP/SSP
  would gate on the dead worker's clock forever. No spares/late joins —
  plain elastic rendezvous needs every slot present at launch. The
  acceptance criterion is the surviving ranks still reaching
  --target-accuracy.

Observability (--trace-dir DIR): every rank runs with full tracing and
the online admissibility auditor. Per-rank Chrome trace + metrics
snapshots land in DIR, the launcher records each rank's
ASYNCIT_NODE_START epoch marker there, and after the run it invokes
tools/trace_merge.py to produce DIR/merged.trace.json — one
Perfetto-loadable timeline for the whole cluster (value frames,
membership transitions, kills and rejoins side by side). The aggregate
JSON becomes schema asyncit-cluster/2: per-rank delay quantiles, a
cluster-wide delay summary, and an `admissibility` roll-up (all ranks'
conditions a-d verdicts + the max measured delay bound).

Usage:
    scripts/launch_cluster.py [--binary PATH] [--workers N] [--dim N]
                              [--blocks N] [--mode async|ssp|bsp]
                              [--tol T] [--seed S] [--max-seconds S]
                              [--workload solve|train]
                              [--samples N] [--features N] [--density D]
                              [--separation S] [--label-noise P]
                              [--ridge R] [--discipline bsp|tap|ssp]
                              [--learning-rate LR] [--batch-size N]
                              [--max-epochs N] [--target-accuracy A]
                              [--eval-every N]
                              [--chaos] [--min-latency S] [--max-latency S]
                              [--drop-prob P] [--keep-config]
                              [--membership] [--ping-period S]
                              [--ping-timeout S] [--suspicion-timeout S]
                              [--churn] [--spares N] [--kill-rank R]
                              [--kill-after S] [--join-after S]
                              [--json-out PATH] [--trace-dir DIR]
                              [--stream-interval S] [--stream-windows N]
                              [--heatmap] [--heatmap-quantile Q]

Streaming windows (--stream-interval S, with --trace-dir): each rank
runs the obs/ background flusher, leaving rotating
rank_<r>.window_<k>.trace.json chunks in DIR instead of one exit dump —
a SIGKILLed churn casualty leaves its last windows behind, and
trace_merge.py stitches windows and survivors alike into the merged
timeline.

Heat-map (--heatmap): after the run, tools/trace_heatmap.py renders the
per-(src,dst) link-delay quantiles of the aggregate as a rank-by-rank
grid — heatmap.txt and heatmap.svg in --trace-dir (or next to
--json-out).

The default binary path assumes the standard build tree
(build/tools/asyncit_node or build/<preset>/tools/asyncit_node).
"""

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time


def find_default_binary():
    candidates = ["build/tools/asyncit_node"]
    preset_root = "build"
    if os.path.isdir(preset_root):
        for entry in sorted(os.listdir(preset_root)):
            candidates.append(os.path.join(preset_root, entry, "tools",
                                           "asyncit_node"))
    for c in candidates:
        if os.path.isfile(c) and os.access(c, os.X_OK):
            return c
    return None


def pick_free_ports(n):
    """Bind n ephemeral listeners at once so the ports are distinct, then
    release them. The tiny bind race before the nodes re-bind is accepted
    (standard test-harness trick)."""
    socks = []
    try:
        for _ in range(n):
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            s.bind(("127.0.0.1", 0))
            socks.append(s)
        return [s.getsockname()[1] for s in socks]
    finally:
        for s in socks:
            s.close()


def load_schema_keys(binary):
    """The key table the node's own parser is built from
    (`asyncit_node --schema`, schema asyncit-node-config/1). Returns the
    set of valid config keys, or None when the binary cannot dump it
    (old binary — validation is then skipped with a warning)."""
    try:
        out = subprocess.run([binary, "--schema"], capture_output=True,
                             text=True, timeout=30)
        doc = json.loads(out.stdout)
        if out.returncode == 0 and doc.get("schema") == \
                "asyncit-node-config/1":
            return {k["key"] for k in doc["keys"]}
    except (OSError, subprocess.TimeoutExpired, json.JSONDecodeError,
            KeyError, TypeError):
        pass
    return None


def config_lines(args, world, late_ranks, ports):
    """The config as (key, value) pairs — workload-specific knobs only,
    so the file documents the run instead of echoing every default."""
    lines = [("world", world), ("seed", args.seed),
             ("workload", args.workload)]
    if args.workload == "solve":
        lines += [("dim", args.dim), ("blocks", args.blocks),
                  ("nnz", args.nnz), ("dominance", args.dominance),
                  ("mode", args.mode), ("staleness", args.staleness),
                  ("tol", args.tol), ("max_seconds", args.max_seconds)]
        if args.wire_delta:
            lines.append(("wire_delta", 1))
            if args.wire_topk:
                lines.append(("wire_topk", args.wire_topk))
            if args.wire_quant_bits:
                lines.append(("wire_quant_bits", args.wire_quant_bits))
            lines.append(("wire_refresh_every", args.wire_refresh_every))
    else:
        lines += [("samples", args.samples), ("features", args.features),
                  ("density", args.density),
                  ("separation", args.separation),
                  ("label_noise", args.label_noise), ("ridge", args.ridge),
                  ("discipline", args.discipline),
                  ("learning_rate", args.learning_rate),
                  ("batch_size", args.batch_size),
                  ("max_epochs", args.max_epochs),
                  ("target_accuracy", args.target_accuracy),
                  ("eval_every", args.eval_every),
                  ("staleness", args.staleness),
                  ("max_seconds", args.max_seconds)]
    lines += [("chaos", 1 if args.chaos else 0),
              ("min_latency", args.min_latency),
              ("max_latency", args.max_latency),
              ("drop_prob", args.drop_prob)]
    if args.membership:
        lines += [("membership", 1), ("ping_period", args.ping_period),
                  ("ping_timeout", args.ping_timeout),
                  ("suspicion_timeout", args.suspicion_timeout)]
    elif args.churn:
        lines.append(("elastic", 1))  # train churn: elastic, no SWIM
    if args.trace_dir:
        lines += [("trace", "full"), ("trace_dir", args.trace_dir)]
        if args.workload == "solve":
            lines.append(("audit", 1))  # auditor hooks the solve runtime
        if args.stream_interval > 0.0:
            lines += [("stream_interval", args.stream_interval),
                      ("stream_windows", args.stream_windows)]
    for rank in late_ranks:
        lines.append(("late", rank))
    for rank, port in enumerate(ports):
        lines.append(("node", f"{rank} 127.0.0.1 {port}"))
    return lines


def write_config(path, lines):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# generated by scripts/launch_cluster.py\n")
        for key, value in lines:
            f.write(f"{key} {value}\n")


def pump(rank, proc, results, started, start_epochs, lock):
    json_pattern = re.compile(r"^ASYNCIT_NODE_JSON\s+(.*)$")
    start_pattern = re.compile(r"^ASYNCIT_NODE_START\s(?:.*epoch_ns=(\d+))?")
    for raw in proc.stdout:
        line = raw.rstrip("\n")
        sm = start_pattern.match(line)
        if sm:
            with lock:
                started.add(rank)
                if sm.group(1):
                    start_epochs[rank] = int(sm.group(1))
        m = json_pattern.match(line)
        if m:
            try:
                fields = json.loads(m.group(1))
            except json.JSONDecodeError:
                fields = None
            if fields is not None:
                with lock:
                    results[rank] = fields
        print(f"[rank {rank}] {line}", flush=True)


def spawn(binary, cfg_path, rank, results, started, start_epochs, lock,
          procs, pumps):
    p = subprocess.Popen(
        [binary, "--config", cfg_path, "--rank", str(rank)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    procs[rank] = p
    t = threading.Thread(target=pump,
                         args=(rank, p, results, started, start_epochs,
                               lock))
    t.start()
    pumps.append(t)
    return p


def aggregate(results, counted_ranks, workload):
    """Sums the counters of the uniform asyncit-node/3 schema over the
    ranks that finished (the killed rank never reports), and rolls up
    the observability additions: a cluster-wide delay summary (count
    sum, max of each per-rank quantile) and the online admissibility
    verdicts (AND of boolean conditions, max of the measured bounds).
    Train runs add a `train` roll-up: the server's final loss/accuracy/
    epoch plus worker-step and throughput sums; solve runs report it
    null (mirroring the per-rank schema)."""
    total = {
        "schema": "asyncit-cluster/3",
        "workload": workload,
        "train": None,
        "ranks_reporting": len(counted_ranks),
        "updates": 0, "sent": 0, "delivered": 0, "dropped": 0,
        "inversions": 0, "stale_filtered": 0, "partials_sent": 0,
        "peers_stopped": 0, "frames_rejected": 0, "bad_frames": 0,
        "max_error": 0.0,
        "membership": {k: 0 for k in (
            "pings_sent", "acks_sent", "acks_received", "ping_reqs_sent",
            "gossip_frames_sent", "suspicions", "deaths_observed",
            "joins_observed", "refutations", "control_rejected")},
        "reassignments": 0, "snapshot_blocks_sent": 0,
        "snapshot_blocks_suppressed": 0,
        "wire": {k: 0 for k in (
            "bytes_raw", "bytes_wire", "frames_full", "frames_delta",
            "frames_heartbeat", "frames_codec")},
        "delay_summary": {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                          "max": 0.0},
        "admissibility": None,
        "obs": {"recorded": 0, "dropped": 0},
        "per_rank": {},
    }
    audited = []
    for rank in counted_ranks:
        r = results[rank]
        for key in ("updates", "sent", "delivered", "dropped", "inversions",
                    "stale_filtered", "partials_sent", "peers_stopped",
                    "frames_rejected", "bad_frames"):
            total[key] += int(r.get(key, 0))
        ms = r.get("membership", {})
        for key in total["membership"]:
            total["membership"][key] += int(ms.get(key, 0))
        total["reassignments"] += int(ms.get("reassignments", 0))
        total["snapshot_blocks_sent"] += int(ms.get("snapshot_blocks_sent",
                                                    0))
        total["snapshot_blocks_suppressed"] += int(
            ms.get("snapshot_blocks_suppressed", 0))
        wr = r.get("wire") or {}
        for key in total["wire"]:
            total["wire"][key] += int(wr.get(key, 0))
        total["max_error"] = max(total["max_error"],
                                 float(r.get("error", 0.0)))
        dq = r.get("delay_quantiles") or {}
        ds = total["delay_summary"]
        ds["count"] += int(dq.get("count", 0))
        for q in ("p50", "p95", "p99", "max"):
            ds[q] = max(ds[q], float(dq.get(q, 0.0)))
        ob = r.get("obs") or {}
        total["obs"]["recorded"] += int(ob.get("recorded", 0))
        total["obs"]["dropped"] += int(ob.get("dropped", 0))
        if r.get("admissibility"):
            audited.append(r["admissibility"])
        tr = r.get("train")
        if tr:
            if total["train"] is None:
                total["train"] = {"loss": None, "accuracy": None,
                                  "epoch": 0, "steps": 0,
                                  "deltas_applied": 0, "examples": 0,
                                  "examples_per_sec": 0.0}
            agg_tr = total["train"]
            if rank == 0:  # the server's eval is the authoritative one
                agg_tr["loss"] = tr.get("loss")
                agg_tr["accuracy"] = tr.get("accuracy")
                agg_tr["epoch"] = int(tr.get("epoch", 0))
            agg_tr["steps"] += int(tr.get("steps", 0))
            agg_tr["deltas_applied"] += int(tr.get("deltas_applied", 0))
            agg_tr["examples"] += int(tr.get("examples", 0))
            if rank != 0:  # worker throughputs add; the server's echoes
                agg_tr["examples_per_sec"] += \
                    float(tr.get("examples_per_sec", 0.0))
        total["per_rank"][str(rank)] = r
    if audited:
        total["admissibility"] = {
            "ranks_audited": len(audited),
            "a_holds": all(a.get("a_holds") for a in audited),
            "b_diverging": all(a.get("b_diverging") for a in audited),
            "c_fair": all(a.get("c_fair") for a in audited),
            "max_d_bound": max(int(a.get("d_bound", 0)) for a in audited),
            "max_c_worst_gap": max(int(a.get("c_worst_gap", 0))
                                   for a in audited),
            "mean_d_mean": sum(float(a.get("d_mean", 0.0))
                               for a in audited) / len(audited),
        }
    return total


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--binary", default=None)
    ap.add_argument("--workers", type=int, default=4,
                    help="ranks started at launch")
    ap.add_argument("--dim", type=int, default=128)
    ap.add_argument("--blocks", type=int, default=8)
    ap.add_argument("--nnz", type=int, default=4)
    ap.add_argument("--dominance", type=float, default=2.0)
    ap.add_argument("--mode", choices=["async", "ssp", "bsp"],
                    default="async")
    ap.add_argument("--staleness", type=int, default=2)
    ap.add_argument("--tol", type=float, default=1e-8)
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--max-seconds", type=float, default=30.0)
    ap.add_argument("--workload", choices=["solve", "train"],
                    default="solve")
    # train workload: dataset shape + SGD discipline (defaults mirror
    # src/asyncit/net/node_config.cpp)
    ap.add_argument("--samples", type=int, default=400)
    ap.add_argument("--features", type=int, default=80)
    ap.add_argument("--density", type=float, default=0.25)
    ap.add_argument("--separation", type=float, default=2.0)
    ap.add_argument("--label-noise", type=float, default=0.05)
    ap.add_argument("--ridge", type=float, default=0.1)
    ap.add_argument("--discipline", choices=["bsp", "tap", "ssp"],
                    default="tap")
    ap.add_argument("--learning-rate", type=float, default=0.5)
    ap.add_argument("--batch-size", type=int, default=16)
    ap.add_argument("--max-epochs", type=int, default=50)
    ap.add_argument("--target-accuracy", type=float, default=0.0)
    ap.add_argument("--eval-every", type=int, default=8)
    ap.add_argument("--wire-delta", action="store_true",
                    help="per-link delta encoding: ship only the changed "
                         "range of each block (solve)")
    ap.add_argument("--wire-topk", type=int, default=0,
                    help="cap delta frames at the densest window of this "
                         "many coordinates (lossy; requires --wire-delta)")
    ap.add_argument("--wire-quant-bits", type=int, default=0,
                    choices=[0, 8, 16],
                    help="scalar-quantize payloads (0 = raw doubles; "
                         "requires --wire-delta)")
    ap.add_argument("--wire-refresh-every", type=int, default=16,
                    help="full-frame resync period per (link, block)")
    ap.add_argument("--chaos", action="store_true",
                    help="inject the chaos delay model over TCP")
    ap.add_argument("--min-latency", type=float, default=0.0)
    ap.add_argument("--max-latency", type=float, default=0.0)
    ap.add_argument("--drop-prob", type=float, default=0.0)
    ap.add_argument("--keep-config", action="store_true")
    ap.add_argument("--membership", action="store_true",
                    help="elastic ranks: SWIM failure detector + gossip")
    ap.add_argument("--ping-period", type=float, default=0.05)
    ap.add_argument("--ping-timeout", type=float, default=0.15)
    ap.add_argument("--suspicion-timeout", type=float, default=0.6)
    ap.add_argument("--churn", action="store_true",
                    help="kill one rank and start one spare mid-solve "
                         "(implies --membership)")
    ap.add_argument("--spares", type=int, default=1,
                    help="late slots appended to the world (churn)")
    ap.add_argument("--kill-rank", type=int, default=1)
    ap.add_argument("--kill-after", type=float, default=0.8,
                    help="seconds after launch to SIGKILL --kill-rank")
    ap.add_argument("--join-after", type=float, default=1.6,
                    help="seconds after launch to start the first spare")
    ap.add_argument("--json-out", default=None,
                    help="write the aggregated asyncit-cluster/2 JSON here")
    ap.add_argument("--trace-dir", default=None,
                    help="full tracing + online audit: per-rank trace and "
                         "metrics files land here, merged to "
                         "merged.trace.json via tools/trace_merge.py")
    ap.add_argument("--stream-interval", type=float, default=0.0,
                    help="with --trace-dir: arm the streaming flusher — "
                         "rotating window files every S seconds instead "
                         "of one exit dump")
    ap.add_argument("--stream-windows", type=int, default=8,
                    help="newest window files kept per rank (rotation)")
    ap.add_argument("--heatmap", action="store_true",
                    help="render the link-delay heat-map (heatmap.txt + "
                         "heatmap.svg) from the aggregate via "
                         "tools/trace_heatmap.py")
    ap.add_argument("--heatmap-quantile",
                    choices=["p50", "p95", "p99", "max"], default="p95")
    args = ap.parse_args()

    if args.stream_interval > 0.0 and not args.trace_dir:
        print("launch_cluster: --stream-interval requires --trace-dir",
              file=sys.stderr)
        return 2

    train = args.workload == "train"
    if args.churn and not train:
        args.membership = True  # solve churn rides the SWIM detector
    if args.membership and train:
        print("launch_cluster: membership rides the solve runtime; train "
              "churn uses plain elastic TCP (drop --membership)",
              file=sys.stderr)
        return 2
    binary = args.binary or find_default_binary()
    if not binary or not os.path.isfile(binary):
        print("launch_cluster: asyncit_node binary not found "
              "(build it, or pass --binary)", file=sys.stderr)
        return 2

    # Plain elastic rendezvous needs every slot present at launch, so
    # train churn has no spares/late joins — just the kill.
    spares = args.spares if args.churn and not train else 0
    world = args.workers + spares
    late_ranks = list(range(args.workers, world))
    if args.churn and not (0 <= args.kill_rank < args.workers):
        print("launch_cluster: --kill-rank must be an initial rank",
              file=sys.stderr)
        return 2
    if train:
        if args.workers < 3:
            print("launch_cluster: train needs --workers >= 3 (server + "
                  "two workers)", file=sys.stderr)
            return 2
        if args.churn:
            if args.discipline != "tap":
                print("launch_cluster: train churn requires --discipline "
                      "tap (BSP/SSP gate on the dead worker's clock)",
                      file=sys.stderr)
                return 2
            if args.kill_rank == 0:
                print("launch_cluster: cannot kill rank 0 (the parameter "
                      "server is not replicated; see DESIGN.md §9)",
                      file=sys.stderr)
                return 2
    elif world > args.blocks:
        print("launch_cluster: world (incl. spares) must be <= blocks",
              file=sys.stderr)
        return 2

    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
        # Clear per-rank artifacts from any previous run: trace_merge
        # refuses to stitch a directory that mixes one run's one-shot
        # dumps with another run's streamed windows for the same rank,
        # and a stale window from a prior run would silently corrupt the
        # stitched timeline even when the filenames happen to line up.
        stale = re.compile(
            r"^(rank_\d+\.(window_\d+\.)?trace\.json"
            r"|rank_\d+\.metrics\.jsonl?"
            r"|merged\.trace\.json|start_markers\.log)$")
        for name in os.listdir(args.trace_dir):
            if stale.match(name):
                os.remove(os.path.join(args.trace_dir, name))

    ports = pick_free_ports(world)
    lines = config_lines(args, world, late_ranks, ports)
    schema_keys = load_schema_keys(binary)
    if schema_keys is None:
        print("launch_cluster: WARNING: binary cannot dump its config "
              "schema (--schema) — key validation skipped", flush=True)
    else:
        unknown = sorted({k for k, _ in lines} - schema_keys)
        if unknown:
            print("launch_cluster: config keys not in the node's schema: "
                  f"{unknown} (launcher/node drift — see "
                  "src/asyncit/net/node_config.cpp)", file=sys.stderr)
            return 2
    cfg_fd, cfg_path = tempfile.mkstemp(prefix="asyncit_cluster_",
                                        suffix=".cfg")
    os.close(cfg_fd)
    write_config(cfg_path, lines)
    print(f"launch_cluster: {args.workload}, {args.workers} ranks "
          f"(+{spares} late), ports {ports}, config {cfg_path}")

    procs = {}
    results = {}
    started = set()
    start_epochs = {}
    lock = threading.Lock()
    pumps = []
    killed = set()
    try:
        for rank in range(args.workers):
            spawn(binary, cfg_path, rank, results, started, start_epochs,
                  lock, procs, pumps)

        if args.churn:
            # Anchor the churn clock on every initial rank having passed
            # rendezvous and STARTED SOLVING (the ASYNCIT_NODE_START
            # marker): a kill scheduled from process spawn can land
            # inside setup on a slow or sanitizer-instrumented build and
            # wedge the survivors' rendezvous instead of their solve.
            anchor_deadline = time.monotonic() + 60.0
            while time.monotonic() < anchor_deadline:
                with lock:
                    if len(started) >= args.workers:
                        break
                time.sleep(0.01)
            with lock:
                if len(started) < args.workers:
                    print("launch_cluster: WARNING: start markers missing "
                          "(old binary?) — churn clock anchored blind",
                          flush=True)
            start_t = time.monotonic()

            # The churn schedule: a crash (SIGKILL — no goodbye frame, the
            # failure detector must notice) and a late join.
            time.sleep(max(0.0, args.kill_after -
                           (time.monotonic() - start_t)))
            victim = procs[args.kill_rank]
            if victim.poll() is None:
                print(f"launch_cluster: SIGKILL rank {args.kill_rank} "
                      f"at t={time.monotonic() - start_t:.2f}s", flush=True)
                victim.send_signal(signal.SIGKILL)
                killed.add(args.kill_rank)
            else:
                # Not a pass: the acceptance scenario exists to exercise
                # death/join/re-assignment, and silently skipping the
                # kill would let a broken detector ride through CI. The
                # final check below turns this into a nonzero exit;
                # lengthen the solve (more injected latency, tighter
                # tol) rather than shortening the kill window.
                print(f"launch_cluster: rank {args.kill_rank} already "
                      "finished before the kill (solve too fast — churn "
                      "NOT exercised)", flush=True)
            if late_ranks:  # train churn has none — kill only
                time.sleep(max(0.0, args.join_after -
                               (time.monotonic() - start_t)))
            for rank in late_ranks:
                print(f"launch_cluster: starting late rank {rank} "
                      f"at t={time.monotonic() - start_t:.2f}s", flush=True)
                spawn(binary, cfg_path, rank, results, started,
                      start_epochs, lock, procs, pumps)

        timeout = args.max_seconds + 60.0
        failed = []
        for rank, p in sorted(procs.items()):
            try:
                rc = p.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                p.kill()
                rc = -9
            if rc != 0 and rank not in killed:
                failed.append((rank, rc))
        for t in pumps:
            t.join()
    finally:
        for p in procs.values():
            if p.poll() is None:
                p.kill()
        if args.keep_config:
            print(f"launch_cluster: config kept at {cfg_path}")
        else:
            os.unlink(cfg_path)

    counted = sorted(r for r in procs if r not in killed)
    print("\nlaunch_cluster: summary")
    for rank in counted:
        r = results.get(rank)
        if r is None:
            print(f"  rank {rank}: NO RESULT LINE")
        elif train:
            tr = r.get("train") or {}
            print(f"  rank {rank}: ok={r.get('ok')} "
                  f"accuracy={tr.get('accuracy')} loss={tr.get('loss')} "
                  f"epoch={tr.get('epoch')} updates={r.get('updates')} "
                  f"sent={r.get('sent')} delivered={r.get('delivered')}")
        else:
            ms = r.get("membership", {})
            print(f"  rank {rank}: ok={r.get('ok')} "
                  f"error={r.get('error')} updates={r.get('updates')} "
                  f"sent={r.get('sent')} delivered={r.get('delivered')} "
                  f"deaths={ms.get('deaths_observed')} "
                  f"joins={ms.get('joins_observed')} "
                  f"reassign={ms.get('reassignments')}")
    for rank in sorted(killed):
        print(f"  rank {rank}: KILLED (scheduled churn casualty)")

    if args.trace_dir:
        # One cluster timeline out of the per-rank traces (the killed
        # rank never exported one — it is simply absent, its death still
        # visible in the survivors' membership lanes). The start markers
        # captured above cross-check the clock alignment.
        markers_path = os.path.join(args.trace_dir, "start_markers.log")
        with open(markers_path, "w", encoding="utf-8") as f:
            for rank in sorted(start_epochs):
                f.write(f"ASYNCIT_NODE_START rank={rank} "
                        f"epoch_ns={start_epochs[rank]}\n")
        merge_tool = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  os.pardir, "tools", "trace_merge.py")
        merged_path = os.path.join(args.trace_dir, "merged.trace.json")
        merge = subprocess.run(
            [sys.executable, merge_tool, "--dir", args.trace_dir,
             "--out", merged_path, "--log", markers_path],
            capture_output=False)
        if merge.returncode != 0:
            print("launch_cluster: trace merge failed", file=sys.stderr)
            return 1

    if failed:
        print(f"launch_cluster: FAILED ranks: {failed}", file=sys.stderr)
        return 1
    if any(r not in results for r in counted):
        print("launch_cluster: missing result lines", file=sys.stderr)
        return 1

    agg = aggregate(results, counted, args.workload)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(agg, f, indent=2)
        print(f"launch_cluster: aggregate written to {args.json_out}")

    if args.heatmap:
        out_dir = args.trace_dir or (os.path.dirname(
            os.path.abspath(args.json_out)) if args.json_out else ".")
        agg_path = args.json_out
        if not agg_path:
            agg_path = os.path.join(out_dir, "cluster.json")
            with open(agg_path, "w", encoding="utf-8") as f:
                json.dump(agg, f, indent=2)
        heatmap_tool = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), os.pardir,
            "tools", "trace_heatmap.py")
        hm = subprocess.run(
            [sys.executable, heatmap_tool, "--cluster", agg_path,
             "--quantile", args.heatmap_quantile,
             "--out-text", os.path.join(out_dir, "heatmap.txt"),
             "--out-svg", os.path.join(out_dir, "heatmap.svg")])
        if hm.returncode != 0:
            print("launch_cluster: heat-map rendering failed",
                  file=sys.stderr)
            return 1
        print("launch_cluster: heat-map -> "
              + os.path.join(out_dir, "heatmap.svg"))

    # Uniform-counter assertions (the same schema every rank reports).
    if agg["bad_frames"] != 0:
        print(f"launch_cluster: bad_frames={agg['bad_frames']} "
              "(corrupt wire traffic)", file=sys.stderr)
        return 1
    if agg["frames_rejected"] != 0:
        print(f"launch_cluster: frames_rejected={agg['frames_rejected']} "
              "(geometry mismatch between ranks)", file=sys.stderr)
        return 1
    if args.churn:
        if not killed:
            print("launch_cluster: churn requested but the kill never "
                  "landed (run finished first) — the scenario was NOT "
                  "exercised; lengthen the run", file=sys.stderr)
            return 1
        if train:
            # No SWIM counters here — the acceptance criterion is the
            # survivors converging, which the failed-ranks check above
            # enforced. Assert the post-kill run still made progress.
            tr = agg.get("train") or {}
            if int(tr.get("deltas_applied", 0)) == 0:
                print("launch_cluster: train churn ran but the server "
                      "applied no deltas", file=sys.stderr)
                return 1
        else:
            ms = agg["membership"]
            if ms["deaths_observed"] == 0:
                print("launch_cluster: churn ran but nobody observed the "
                      "death", file=sys.stderr)
                return 1
            if ms["joins_observed"] == 0:
                print("launch_cluster: churn ran but nobody observed the "
                      "join", file=sys.stderr)
                return 1
            if agg["reassignments"] == 0:
                print("launch_cluster: churn ran but blocks were never "
                      "re-assigned", file=sys.stderr)
                return 1

    print(f"launch_cluster: all {len(counted)} counted ranks converged"
          + (f" (rank {sorted(killed)} killed by schedule)" if killed
             else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
