// Tests for the support substrate: RNG determinism and distributions,
// running statistics, percentiles, slope fitting, table rendering, checks.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "asyncit/support/check.hpp"
#include "asyncit/support/rng.hpp"
#include "asyncit/support/stats.hpp"
#include "asyncit/support/table.hpp"
#include "asyncit/support/timer.hpp"

namespace asyncit {
namespace {

TEST(Check, ThrowsOnViolation) {
  EXPECT_THROW(ASYNCIT_CHECK(1 == 2), CheckError);
  EXPECT_NO_THROW(ASYNCIT_CHECK(1 == 1));
  try {
    ASYNCIT_CHECK_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(1.5, 2.0), 1.5);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(29);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (child1.next() == child2.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, ExactOrderStatistics) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
}

TEST(LsSlope, RecoversLinearTrend) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  EXPECT_NEAR(ls_slope(x, y), 3.0, 1e-12);
}

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string r = t.render();
  EXPECT_NE(r.find("name"), std::string::npos);
  EXPECT_NE(r.find("alpha"), std::string::npos);
  EXPECT_NE(r.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::sci(0.000123, 2), "1.23e-04");
}

TEST(WallTimer, MeasuresNonnegativeTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds());
}

}  // namespace
}  // namespace asyncit
