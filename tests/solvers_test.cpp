// Tests for the solver facade: the async/sync/sequential prox-gradient
// solvers agree on the minimizer, the linear/obstacle/network-flow solvers
// meet their problem-specific optimality criteria, and the ARock and
// DAve-RPG baselines converge to the same solutions.
#include <gtest/gtest.h>

#include <cmath>

#include "asyncit/problems/synthetic.hpp"
#include "asyncit/solvers/arock.hpp"
#include "asyncit/solvers/dave_rpg.hpp"
#include "asyncit/solvers/linear.hpp"
#include "asyncit/solvers/network_flow_solver.hpp"
#include "asyncit/solvers/prox_gradient.hpp"
#include "asyncit/support/check.hpp"

namespace asyncit::solvers {
namespace {

problems::SyntheticLasso small_lasso(std::uint64_t seed) {
  Rng rng(seed);
  problems::LassoConfig cfg;
  cfg.samples = 80;
  cfg.features = 40;
  cfg.support = 8;
  cfg.ridge = 0.2;
  cfg.lambda1 = 0.02;
  return problems::make_synthetic_lasso(cfg, rng);
}

TEST(ProxGradientSolvers, SequentialAsyncSyncAgree) {
  auto lasso = small_lasso(1);
  const auto seq = solve_prox_gradient_sequential(lasso.problem, 1e-12);

  ProxGradOptions opt;
  opt.workers = 2;
  opt.blocks = 8;
  opt.tol = 1e-9;
  opt.max_seconds = 30.0;
  opt.reference = seq.x;
  const auto async = solve_prox_gradient_async(lasso.problem, opt);
  const auto sync = solve_prox_gradient_sync(lasso.problem, opt);

  EXPECT_TRUE(async.converged) << async.error_to_reference;
  EXPECT_TRUE(sync.converged) << sync.error_to_reference;
  EXPECT_LT(async.error_to_reference, 1e-6);
  EXPECT_LT(sync.error_to_reference, 1e-6);
  EXPECT_NEAR(async.objective, seq.objective,
              1e-6 * std::max(1.0, std::abs(seq.objective)));
}

TEST(ProxGradientSolvers, BackwardForwardAndForwardBackwardAgree) {
  auto lasso = small_lasso(2);
  const auto seq = solve_prox_gradient_sequential(lasso.problem, 1e-12);

  ProxGradOptions opt;
  opt.workers = 2;
  opt.blocks = 8;
  opt.tol = 1e-9;
  opt.max_seconds = 30.0;
  opt.reference = seq.x;

  opt.use_backward_forward = true;
  const auto bf = solve_prox_gradient_async(lasso.problem, opt);
  opt.use_backward_forward = false;
  const auto fb = solve_prox_gradient_async(lasso.problem, opt);
  EXPECT_TRUE(bf.converged);
  EXPECT_TRUE(fb.converged);
  EXPECT_LT(la::dist_inf(bf.x, fb.x), 1e-5);
}

TEST(ProxGradientSolvers, FlexibleModeConverges) {
  auto lasso = small_lasso(3);
  const auto seq = solve_prox_gradient_sequential(lasso.problem, 1e-12);
  ProxGradOptions opt;
  opt.workers = 2;
  opt.blocks = 8;
  opt.inner_steps = 3;
  opt.flexible = true;
  opt.tol = 1e-8;
  opt.max_seconds = 30.0;
  opt.reference = seq.x;
  const auto flex = solve_prox_gradient_async(lasso.problem, opt);
  EXPECT_TRUE(flex.converged);
  EXPECT_LT(flex.error_to_reference, 1e-5);
}

TEST(LinearSolvers, AsyncAndSyncJacobiSolveTheSystem) {
  Rng rng(4);
  auto sys = problems::make_diagonally_dominant_system(100, 4, 2.0, rng);
  LinearSolveOptions opt;
  opt.workers = 2;
  opt.blocks = 10;
  opt.tol = 1e-9;
  opt.max_seconds = 30.0;
  const auto async = solve_jacobi_async(sys, opt);
  const auto sync = solve_jacobi_sync(sys, opt);
  EXPECT_TRUE(async.converged);
  EXPECT_TRUE(sync.converged);
  EXPECT_LT(async.residual_inf, 1e-7);
  EXPECT_LT(sync.residual_inf, 1e-7);
}

TEST(ObstacleSolver, MeetsComplementarityAndFeasibility) {
  problems::ObstacleProblem prob(16, -30.0, -0.05, 1.0);
  LinearSolveOptions opt;
  opt.workers = 2;
  opt.blocks = 16;
  opt.tol = 1e-8;
  opt.max_seconds = 30.0;
  const auto s = solve_obstacle_async(prob, opt);
  EXPECT_TRUE(s.converged);
  EXPECT_LT(s.feasibility_violation, 1e-9);
  EXPECT_LT(s.complementarity, 1e-5);
  EXPECT_GT(s.contact_points, 0u);
}

TEST(NetworkFlowSolver, SequentialAndAsyncReachFeasibility) {
  Rng rng(5);
  auto net = problems::make_random_network(16, 14, rng);
  const auto seq = solve_network_flow_sequential(net, 1e-9);
  EXPECT_TRUE(seq.converged);
  EXPECT_LT(seq.max_excess, 1e-8);
  // weak duality at optimum: primal cost == dual value
  EXPECT_NEAR(seq.primal_cost, seq.dual_value,
              1e-4 * std::max(1.0, std::abs(seq.primal_cost)));

  NetworkFlowOptions opt;
  opt.workers = 2;
  opt.tol = 1e-6;
  opt.max_seconds = 30.0;
  const auto async = solve_network_flow_async(net, opt);
  EXPECT_TRUE(async.converged);
  EXPECT_LT(async.max_excess, 1e-4);
  EXPECT_NEAR(async.primal_cost, seq.primal_cost,
              1e-3 * std::max(1.0, std::abs(seq.primal_cost)));
}

TEST(ARockSolver, ConvergesWithDamping) {
  auto lasso = small_lasso(6);
  ARockOptions opt;
  opt.eta = 0.6;
  opt.tol = 1e-8;
  opt.max_steps = 500000;
  opt.delay_bound = 8;
  const auto s = solve_arock(lasso.problem, opt);
  EXPECT_TRUE(s.converged);
  EXPECT_LT(s.error_to_reference, 1e-7);
  EXPECT_GT(s.macro_iterations, 0u);
  EXPECT_GT(s.epochs, 0u);
}

TEST(DaveRpg, ShardsSumToFullFunction) {
  auto lasso = small_lasso(7);
  const auto* ls = dynamic_cast<const problems::LeastSquaresFunction*>(
      lasso.problem.f.get());
  ASSERT_NE(ls, nullptr);
  auto shards = split_least_squares(*ls, 4);
  ASSERT_EQ(shards.size(), 4u);
  Rng rng(8);
  la::Vector x(ls->dim());
  for (auto& v : x) v = rng.normal();
  la::Vector g_full(ls->dim()), g_sum(ls->dim(), 0.0), g_shard(ls->dim());
  ls->gradient(x, g_full);
  double value_sum = 0.0;
  for (const auto& shard : shards) {
    shard->gradient(x, g_shard);
    la::axpy(1.0, g_shard, g_sum);
    value_sum += shard->value(x);
  }
  EXPECT_LT(la::dist_inf(g_full, g_sum), 1e-10);
  EXPECT_NEAR(value_sum, ls->value(x), 1e-8 * std::max(1.0, ls->value(x)));
}

TEST(DaveRpg, ConvergesToReferenceUnderStaleness) {
  auto lasso = small_lasso(9);
  const auto* ls = dynamic_cast<const problems::LeastSquaresFunction*>(
      lasso.problem.f.get());
  ASSERT_NE(ls, nullptr);
  const la::Vector x_star = lasso.problem.reference_minimizer(200000, 1e-13);
  auto shards = split_least_squares(*ls, 4);
  DaveRpgOptions opt;
  opt.max_steps = 400000;
  opt.tol = 1e-8;
  opt.delay_bound = 4;
  const auto s = solve_dave_rpg(shards, *lasso.problem.g, x_star, ls->mu(),
                                ls->lipschitz(), opt);
  EXPECT_TRUE(s.converged) << "error " << s.error_to_reference;
  EXPECT_GT(s.epoch_boundaries.size(), 1u);
  EXPECT_GT(s.macro_boundaries.size(), 1u);
}

}  // namespace
}  // namespace asyncit::solvers
